//! Lyra baseline (Li et al., EuroSys'23) adapted per §4.1: HP tasks play
//! the role of inference jobs, spot tasks the role of elastic training
//! jobs that borrow *whole idle nodes* on loan. Conservative loaning keeps
//! the eviction rate very low but queues spot tasks for a long time — the
//! behaviour Table 5 reports (e ≈ 1.8 %, long spot JQT).

use gfs_cluster::{Cluster, Decision, Scheduler};
use gfs_types::{SimTime, TaskSpec};

use crate::placement::{best_fit_nodes, gang_nodes_by, plan_preemption};

/// The Lyra policy.
#[derive(Debug, Clone, Default)]
pub struct Lyra {
    /// Fraction of nodes kept un-loanable as an inference headroom reserve.
    reserve_frac: f64,
}

impl Lyra {
    /// Creates the scheduler with the default 10 % node reserve.
    #[must_use]
    pub fn new() -> Self {
        Lyra { reserve_frac: 0.10 }
    }

    /// Creates the scheduler with a custom reserve fraction in `[0, 1)`.
    #[must_use]
    pub fn with_reserve(reserve_frac: f64) -> Self {
        Lyra {
            reserve_frac: reserve_frac.clamp(0.0, 0.99),
        }
    }
}

impl Scheduler for Lyra {
    fn name(&self) -> &str {
        "Lyra"
    }

    fn schedule(&mut self, task: &TaskSpec, cluster: &Cluster, now: SimTime) -> Option<Decision> {
        if task.priority.is_hp() {
            if let Some(nodes) = best_fit_nodes(cluster, task) {
                return Some(Decision::place(nodes));
            }
            // reclaim loaned nodes at minimal preemption cost (Lyra's
            // heuristic objective): evict the training tasks that waste the
            // least work
            let (nodes, victims) = plan_preemption(cluster, task, now, |rt, t| rt.waste(t) as u64)?;
            return Some(Decision {
                pod_nodes: nodes,
                preemptions: victims,
            });
        }
        // spot (training) tasks only run on loans: nodes that are entirely
        // idle or already loaned, and only while the reserve holds — both
        // facts are maintained incrementally by the capacity index. The
        // reserve is a fraction of the *schedulable* fleet: failed nodes
        // and nodes draining for maintenance must not count toward the
        // loanable budget (a draining node can never host a loan again).
        let total_nodes = cluster.schedulable_node_count() as f64;
        let idle_nodes = cluster.fully_idle_nodes() as f64;
        if idle_nodes <= total_nodes * self.reserve_frac {
            return None; // loan book is full: protect inference headroom
        }
        let nodes = gang_nodes_by(cluster, task, |n| {
            let fully_idle = n.idle_gpus() == n.total_gpus();
            let loaned = cluster.has_spot_on(n.id());
            if fully_idle || loaned {
                // prefer already-loaned nodes, then the emptiest
                Some(if loaned { 1_000.0 } else { 0.0 } + f64::from(n.idle_gpus()))
            } else {
                None
            }
        })?;
        Some(Decision::place(nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs_types::{GpuDemand, GpuModel, NodeId, Priority};

    fn task(id: u64, priority: Priority, gpus: u32) -> TaskSpec {
        TaskSpec::builder(id)
            .priority(priority)
            .gpus_per_pod(GpuDemand::whole(gpus))
            .duration_secs(10_000)
            .build()
            .unwrap()
    }

    #[test]
    fn spot_runs_only_on_idle_or_loaned_nodes() {
        let mut c = Cluster::homogeneous(4, GpuModel::A100, 8);
        // node 0 partially used by HP
        c.start_task(
            task(1, Priority::Hp, 4),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let mut s = Lyra::new();
        let d = s
            .schedule(&task(2, Priority::Spot, 2), &c, SimTime::ZERO)
            .unwrap();
        assert_ne!(d.pod_nodes[0], NodeId::new(0), "mixed node is not loanable");
    }

    #[test]
    fn spot_denied_when_reserve_exhausted() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        c.start_task(
            task(1, Priority::Hp, 4),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        c.start_task(
            task(2, Priority::Hp, 4),
            &[NodeId::new(1)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        // no fully idle node left
        let mut s = Lyra::new();
        assert!(s
            .schedule(&task(3, Priority::Spot, 1), &c, SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn spot_prefers_already_loaned_nodes() {
        let mut c = Cluster::homogeneous(4, GpuModel::A100, 8);
        c.start_task(
            task(1, Priority::Spot, 2),
            &[NodeId::new(2)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let mut s = Lyra::new();
        let d = s
            .schedule(&task(2, Priority::Spot, 2), &c, SimTime::ZERO)
            .unwrap();
        assert_eq!(
            d.pod_nodes,
            vec![NodeId::new(2)],
            "pack onto the existing loan"
        );
    }

    #[test]
    fn hp_reclaims_with_minimal_waste() {
        let mut c = Cluster::homogeneous(1, GpuModel::A100, 8);
        c.start_task(
            task(1, Priority::Spot, 8),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let mut s = Lyra::new();
        let d = s
            .schedule(&task(2, Priority::Hp, 8), &c, SimTime::from_secs(50))
            .unwrap();
        assert!(d.is_preemptive());
    }
}
