//! FGD baseline (Weng et al., ATC'23): Fragmentation Gradient Descent.
//! Requests are placed on the node whose fragmentation measure *increases
//! the least* (steepest descent on the fragmentation gradient). Following
//! §4.1 we lift the original in-card measure to in-node granularity:
//! fragmentation of a node is the expected number of idle GPUs that cannot
//! serve a request drawn from the workload's size distribution.

use gfs_cluster::{Cluster, Decision, Node, Scheduler};
use gfs_types::{GpuDemand, SimTime, TaskSpec};

use crate::placement::{gang_nodes_by, plan_preemption};

/// Request-size distribution used to weight the fragmentation measure:
/// `(whole cards, probability)` — the Table 3 HP mix.
const SIZE_MIX: [(u32, f64); 4] = [(1, 0.5511), (2, 0.1337), (4, 0.0753), (8, 0.2369)];

/// Fragmentation of a node: expected idle GPUs unusable for a random
/// request (idle capacity that cannot host the sampled size).
#[must_use]
pub fn node_fragmentation(node: &Node) -> f64 {
    let idle = f64::from(node.idle_gpus());
    SIZE_MIX
        .iter()
        .map(|&(size, p)| {
            if idle >= f64::from(size) {
                // usable; leftover below the size granule is fragmented
                p * (idle % f64::from(size))
            } else {
                // whole idle capacity is unusable for this size
                p * idle
            }
        })
        .sum()
}

/// Fragmentation delta if one pod of `demand` whole cards lands on `node`.
fn frag_delta(node: &Node, demand: u32) -> f64 {
    let before = node_fragmentation(node);
    // simulate: idle decreases by the demand
    let idle_after = f64::from(node.idle_gpus().saturating_sub(demand));
    let after: f64 = SIZE_MIX
        .iter()
        .map(|&(size, p)| {
            if idle_after >= f64::from(size) {
                p * (idle_after % f64::from(size))
            } else {
                p * idle_after
            }
        })
        .sum();
    after - before
}

/// The FGD policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fgd;

impl Fgd {
    /// Creates the scheduler.
    #[must_use]
    pub fn new() -> Self {
        Fgd
    }
}

impl Scheduler for Fgd {
    fn name(&self) -> &str {
        "FGD"
    }

    fn schedule(&mut self, task: &TaskSpec, cluster: &Cluster, now: SimTime) -> Option<Decision> {
        let demand = match task.gpus_per_pod {
            GpuDemand::Whole(n) => n,
            GpuDemand::Fraction(_) => 1,
        };
        if let Some(nodes) = gang_nodes_by(cluster, task, |n| Some(-frag_delta(n, demand))) {
            return Some(Decision::place(nodes));
        }
        if task.priority.is_hp() {
            // preemption falls back to evicting the newest spot containers,
            // like YARN — FGD itself contributes only the placement rule
            let (nodes, victims) = plan_preemption(cluster, task, now, |rt, _| {
                u64::MAX - rt.started_at.as_secs()
            })?;
            return Some(Decision {
                pod_nodes: nodes,
                preemptions: victims,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs_types::{GpuModel, NodeId, Priority};

    fn task(id: u64, priority: Priority, gpus: u32) -> TaskSpec {
        TaskSpec::builder(id)
            .priority(priority)
            .gpus_per_pod(GpuDemand::whole(gpus))
            .duration_secs(3_600)
            .build()
            .unwrap()
    }

    #[test]
    fn empty_node_has_zero_fragmentation() {
        let n = Node::new(NodeId::new(0), GpuModel::A100, 8);
        assert_eq!(
            node_fragmentation(&n),
            0.0,
            "8 idle GPUs serve every bucket"
        );
    }

    #[test]
    fn odd_remainders_fragment() {
        let mut n = Node::new(NodeId::new(0), GpuModel::A100, 8);
        n.place_pod(gfs_types::TaskId::new(1), GpuDemand::whole(5), Priority::Hp)
            .unwrap();
        // 3 idle: unusable for the 8-bucket, remainder 1 for the 2-bucket
        let f = node_fragmentation(&n);
        assert!(f > 0.0);
    }

    #[test]
    fn placement_minimises_fragmentation_growth() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        // node 0 has 6 idle; node 1 has 8 idle
        c.start_task(
            task(1, Priority::Hp, 2),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let mut s = Fgd::new();
        // a 2-GPU pod on node 0 leaves 4 idle (clean); on node 1 leaves 6
        // (fragmented for the 8- and 4-buckets)
        let d = s
            .schedule(&task(2, Priority::Hp, 2), &c, SimTime::ZERO)
            .unwrap();
        assert_eq!(d.pod_nodes, vec![NodeId::new(0)]);
    }

    #[test]
    fn hp_preempts_when_needed() {
        let mut c = Cluster::homogeneous(1, GpuModel::A100, 8);
        let spot = TaskSpec::builder(1)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::whole(8))
            .duration_secs(10_000)
            .build()
            .unwrap();
        c.start_task(spot, &[NodeId::new(0)], SimTime::ZERO, 0)
            .unwrap();
        let mut s = Fgd::new();
        let d = s
            .schedule(&task(2, Priority::Hp, 8), &c, SimTime::from_secs(10))
            .unwrap();
        assert!(d.is_preemptive());
    }
}
