//! Shared placement helpers used by the baseline schedulers, and the
//! churn-aware [`PlacementPolicy`] layer the PTS/GFS schedulers consult.

use std::collections::HashMap;

use gfs_cluster::{Cluster, DrainDecision, Node, RunningTask};
use gfs_types::{GpuDemand, NodeId, SimDuration, SimTime, TaskId, TaskSpec, HOUR};

/// A placement-time churn policy: how a scheduler anticipates failures,
/// drains and blast radii when choosing nodes, on top of (not instead of)
/// its own scoring.
///
/// The policy contributes up to three *lexicographically leading* score
/// components, in this priority order; a disabled component is constant
/// across candidates and falls through to the scheduler's native scores,
/// so [`PlacementPolicy::naive`] reproduces policy-less placement
/// decision for decision (the golden-report pins rely on this):
///
/// 1. **Reliability** ([`PlacementPolicy::reliability`]) — a node-failure
///    analogue of the PTS eviction-awareness score (Eq. 15–16): the
///    windowed failure history discounts failure-prone candidates the way
///    ē discounts eviction-prone ones. The history survives repair (a
///    flaky machine stays flaky), in contrast to the eviction history.
/// 2. **Drain avoidance** ([`PlacementPolicy::drain_aware`]) — discount
///    nodes whose failure domain currently contains a draining node:
///    maintenance waves walk through racks, so a rack with one node in
///    maintenance is where the next notices land. Also switches
///    [`PlacementPolicy::migrate_on_drain`] to the capacity-aware
///    variant.
/// 3. **Domain spread** ([`PlacementPolicy::spread_domains`]) — gang
///    anti-affinity over the cluster's declared
///    [`FailureDomain`](gfs_types::FailureDomain)s: each pod prefers the
///    candidate whose domain hosts the fewest pods of the gang placed so
///    far. Best-effort: when capacity is tight the gang still lands,
///    co-located, because the spread term only *orders* feasible
///    candidates — and reliability outranks it, so anti-affinity chooses
///    among dependable racks rather than overriding into flaky ones.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPolicy {
    /// Spread gang pods across failure domains (anti-affinity).
    pub spread_domains: bool,
    /// Discount nodes by their windowed failure history.
    pub reliability: bool,
    /// Avoid domains with in-progress drains; harvest checkpoints on a
    /// draining node when the cluster has no room to migrate into.
    pub drain_aware: bool,
    /// Window of the reliability term's failure count.
    pub failure_window_secs: SimDuration,
    /// Penalty per windowed failure, in percent (mirrors the Eq. 16
    /// `m`-penalty shape: score `= 1 − 0.01·m·f̄`, floored at 0).
    pub failure_penalty: f64,
    /// Replace the hard-window failure count with an exponentially
    /// decayed rate (`2^(−age/half_life)` per failure): a machine that
    /// failed yesterday scores worse than one that failed last week, with
    /// no cliff at the window edge. Only meaningful when
    /// [`PlacementPolicy::reliability`] is on. Also (and only) under this
    /// flag the preemptive path applies the same discount when ranking
    /// preemption target nodes.
    pub decayed_reliability: bool,
    /// Pool the decayed failure rate across the node's failure domain:
    /// domain-mates' rates (mean, weighted by
    /// [`PlacementPolicy::pool_weight`]) are added to the node's own, so
    /// a rack whose neighbours keep dying is suspect even when this
    /// particular machine has not failed yet. Requires
    /// [`PlacementPolicy::decayed_reliability`]; a node outside any
    /// declared domain pools nothing.
    pub pool_domains: bool,
    /// Half-life of the decayed failure rate.
    pub failure_half_life_secs: SimDuration,
    /// Weight of the domain-mates' mean decayed rate relative to the
    /// node's own rate when pooling.
    pub pool_weight: f64,
}

impl Default for PlacementPolicy {
    fn default() -> Self {
        PlacementPolicy::naive()
    }
}

impl PlacementPolicy {
    /// Policy-less placement: every component off. Schedulers built with
    /// this behave bit-for-bit like their pre-policy versions.
    #[must_use]
    pub fn naive() -> Self {
        PlacementPolicy {
            spread_domains: false,
            reliability: false,
            drain_aware: false,
            failure_window_secs: 48 * HOUR,
            failure_penalty: 25.0,
            decayed_reliability: false,
            pool_domains: false,
            failure_half_life_secs: 24 * HOUR,
            pool_weight: 0.5,
        }
    }

    /// Gang anti-affinity over failure domains only.
    #[must_use]
    pub fn domain_spread() -> Self {
        PlacementPolicy {
            spread_domains: true,
            ..PlacementPolicy::naive()
        }
    }

    /// Failure-history discounting only.
    #[must_use]
    pub fn reliability_scored() -> Self {
        PlacementPolicy {
            reliability: true,
            ..PlacementPolicy::naive()
        }
    }

    /// The full churn-aware policy: spread + reliability + drain
    /// awareness.
    #[must_use]
    pub fn churn_aware() -> Self {
        PlacementPolicy {
            spread_domains: true,
            reliability: true,
            drain_aware: true,
            ..PlacementPolicy::naive()
        }
    }

    /// The churn-aware policy with the decayed, domain-pooled reliability
    /// score: [`PlacementPolicy::churn_aware`] plus
    /// [`PlacementPolicy::decayed_reliability`] and
    /// [`PlacementPolicy::pool_domains`]. Kept as a separate variant so
    /// [`PlacementPolicy::churn_aware`] decisions stay bit-for-bit pinned.
    #[must_use]
    pub fn hazard_aware() -> Self {
        PlacementPolicy {
            decayed_reliability: true,
            pool_domains: true,
            ..PlacementPolicy::churn_aware()
        }
    }

    /// Whether every component is off (placement decisions are untouched).
    #[must_use]
    pub fn is_naive(&self) -> bool {
        !self.spread_domains && !self.reliability && !self.drain_aware
    }

    /// The anti-affinity key of a node: its declared failure domain, or a
    /// per-node pseudo-domain when the cluster has no topology (spreading
    /// then degenerates to spreading across nodes).
    #[must_use]
    pub fn domain_key(cluster: &Cluster, node: NodeId) -> u64 {
        match cluster.domain_of(node) {
            Some(d) => u64::from(d),
            None => (1 << 32) | u64::from(node.raw()),
        }
    }

    /// The gang-spread score component: minus the number of already-placed
    /// pods of this gang in the node's domain (0 when spreading is off, so
    /// the component is neutral).
    #[must_use]
    pub fn spread_component(&self, cluster: &Cluster, node: NodeId, used: &DomainUse) -> f64 {
        if !self.spread_domains {
            return 0.0;
        }
        -f64::from(used.count(PlacementPolicy::domain_key(cluster, node)))
    }

    /// The drain-avoidance score component: minus the number of nodes
    /// currently draining in the candidate's domain (0 when off, or when
    /// the node belongs to no declared domain).
    #[must_use]
    pub fn drain_component(&self, cluster: &Cluster, node: NodeId) -> f64 {
        if !self.drain_aware {
            return 0.0;
        }
        match cluster.domain_of(node) {
            Some(d) => -f64::from(cluster.draining_in_domain(d)),
            None => 0.0,
        }
    }

    /// The reliability score component in `[0, 1]` (1.0 when the term is
    /// off): `max(0, 1 − 0.01·m_f·f̄)` with `f̄` the node's failure count
    /// inside [`PlacementPolicy::failure_window_secs`] — Eq. 15–16
    /// transplanted from evictions to hardware failures.
    #[must_use]
    pub fn reliability_component(&self, node: &Node, now: SimTime) -> f64 {
        if !self.reliability {
            return 1.0;
        }
        let f = node.failures_within(now, self.failure_window_secs) as f64;
        (1.0 - 0.01 * self.failure_penalty * f).max(0.0)
    }

    /// The node's effective failure pressure under the decayed model: its
    /// own exponentially-decayed rate, plus (with
    /// [`PlacementPolicy::pool_domains`]) the mean decayed rate of its
    /// failure-domain mates weighted by [`PlacementPolicy::pool_weight`].
    /// A node outside any declared domain contributes only its own rate.
    #[must_use]
    pub fn pooled_failure_rate(&self, cluster: &Cluster, node: &Node, now: SimTime) -> f64 {
        let own = node.decayed_failure_rate(now, self.failure_half_life_secs);
        if !self.pool_domains {
            return own;
        }
        let Some(d) = cluster.domain_of(node.id()) else {
            return own;
        };
        let (sum, mates) = cluster
            .nodes()
            .iter()
            .filter(|m| m.id() != node.id() && cluster.domain_of(m.id()) == Some(d))
            .fold((0.0, 0u32), |(s, k), m| {
                (
                    s + m.decayed_failure_rate(now, self.failure_half_life_secs),
                    k + 1,
                )
            });
        if mates == 0 {
            own
        } else {
            own + self.pool_weight * sum / f64::from(mates)
        }
    }

    /// The reliability score component with the decayed/pooled extension:
    /// identical to [`PlacementPolicy::reliability_component`] unless
    /// [`PlacementPolicy::decayed_reliability`] is set, in which case the
    /// hard-window failure count is replaced by
    /// [`PlacementPolicy::pooled_failure_rate`]. This is the one entry
    /// point placement scoring calls, so legacy variants keep their
    /// pinned decisions bit for bit.
    #[must_use]
    pub fn hazard_component(&self, cluster: &Cluster, node: &Node, now: SimTime) -> f64 {
        if !self.reliability {
            return 1.0;
        }
        if !self.decayed_reliability {
            return self.reliability_component(node, now);
        }
        let rate = self.pooled_failure_rate(cluster, node, now);
        (1.0 - 0.01 * self.failure_penalty * rate).max(0.0)
    }

    /// The discount the *preemptive* path applies when ranking candidate
    /// target nodes: active only under
    /// [`PlacementPolicy::decayed_reliability`] (the legacy variants'
    /// preemptive decisions are pinned), constant 1.0 otherwise.
    #[must_use]
    pub fn preemption_reliability(&self, cluster: &Cluster, node: &Node, now: SimTime) -> f64 {
        if !self.decayed_reliability {
            return 1.0;
        }
        self.hazard_component(cluster, node, now)
    }

    /// The capacity-aware drain response (see
    /// `gfs_cluster::Scheduler::drain_decision`): migrate a can't-finish
    /// gang at the notice — early in the window — *unless* the cluster
    /// has no room of the gang's model to receive it, in which case the
    /// gang stays and keeps checkpointing until the forced deadline (an
    /// early migration into a full cluster forfeits the window's progress
    /// and buys nothing). "Room" counts the idle cards *plus* whatever
    /// the gang itself would free on schedulable nodes by leaving — a
    /// gang half on the draining node and half on an otherwise-busy
    /// healthy one can still re-place into its own vacated cards. With
    /// `drain_aware` off this is exactly the engine's historical rule.
    ///
    /// The check is a best-effort heuristic against the pre-migration
    /// cluster snapshot: when several gangs leave one drain notice at the
    /// same instant they do not see each other's vacated or claimed
    /// cards (idle counts are whole-card, so fractional reuse is judged
    /// conservatively). A wrong guess costs only the difference between
    /// a queue wait and a harvested window — both requeue paths remain
    /// correct.
    #[must_use]
    pub fn migrate_on_drain(
        &self,
        task: &RunningTask,
        notice: SimDuration,
        cluster: &Cluster,
        now: SimTime,
    ) -> bool {
        if task.remaining(now) <= notice {
            return false; // finishes in place
        }
        if self.drain_aware {
            let spec = &task.spec;
            let idle = f64::from(cluster.idle_gpus(Some(spec.gpu_model)));
            // cards this gang holds on *schedulable* nodes come back the
            // moment it migrates; cards on the draining (or any down)
            // node do not
            let freed: f64 = task
                .placements
                .iter()
                .filter(|p| {
                    cluster
                        .node(p.node)
                        .is_ok_and(gfs_cluster::Node::is_schedulable)
                })
                .map(|p| p.alloc.cards())
                .sum();
            if idle + freed < spec.total_gpus() {
                return false; // nowhere to go: harvest checkpoints instead
            }
        }
        true
    }

    /// [`PlacementPolicy::migrate_on_drain`] mapped onto the
    /// [`Scheduler::drain_decision`](gfs_cluster::Scheduler::drain_decision)
    /// answer — the one shared implementation every policy-carrying
    /// scheduler delegates to.
    #[must_use]
    pub fn drain_decision(
        &self,
        task: &RunningTask,
        notice: SimDuration,
        cluster: &Cluster,
        now: SimTime,
    ) -> DrainDecision {
        if self.migrate_on_drain(task, notice, cluster, now) {
            DrainDecision::Migrate
        } else {
            DrainDecision::Stay
        }
    }
}

/// Running tally of gang pods per anti-affinity domain key, threaded
/// through a gang's pod-by-pod selection.
#[derive(Debug, Default)]
pub struct DomainUse {
    counts: HashMap<u64, u32>,
}

impl DomainUse {
    /// An empty tally.
    #[must_use]
    pub fn new() -> Self {
        DomainUse::default()
    }

    /// Pods already assigned to `key`'s domain.
    #[must_use]
    pub fn count(&self, key: u64) -> u32 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Records one more pod in `key`'s domain.
    pub fn note(&mut self, key: u64) {
        *self.counts.entry(key).or_insert(0) += 1;
    }
}

/// Picks one node per pod of `task`, choosing for each pod the
/// highest-scoring node that still fits (ties broken by node id).
///
/// `score` returns `None` to exclude a node. Whole-card demands consume a
/// virtual idle-GPU budget so gangs spread correctly; fractional demands
/// are single-pod by construction.
pub fn gang_nodes_by<F>(cluster: &Cluster, task: &TaskSpec, score: F) -> Option<Vec<NodeId>>
where
    F: Fn(&Node) -> Option<f64>,
{
    // Feasible nodes come from the capacity index (O(answer)), not a scan
    // over every node. The selection itself is a max over a *total* order
    // (score, then lower node id), so candidate enumeration order cannot
    // change the outcome.
    let candidates: Vec<u32> = match task.gpus_per_pod {
        GpuDemand::Whole(need) => cluster.whole_fit_candidates(task.gpu_model, need),
        GpuDemand::Fraction(f) => cluster.fraction_fit_candidates(task.gpu_model, f),
    };
    // virtual idle budget, tracked only for nodes the gang actually picks.
    // Keyed lookups only (`get`/`entry`), never iterated — the det-iter
    // lint's canonical clean pattern: hash order can't reach a decision.
    let mut budget: HashMap<NodeId, u32> = HashMap::new();
    let mut out = Vec::with_capacity(task.pods as usize);
    for _ in 0..task.pods {
        let chosen = candidates
            .iter()
            .map(|&id| (NodeId::new(id), &cluster.nodes()[id as usize]))
            .filter(|(id, n)| match task.gpus_per_pod {
                GpuDemand::Whole(need) => {
                    budget.get(id).copied().unwrap_or_else(|| n.idle_gpus()) >= need
                }
                GpuDemand::Fraction(f) => n.gpus().iter().any(|g| g.free_fraction() >= f - 1e-12),
            })
            .filter_map(|(id, n)| score(n).map(|s| (id, s)))
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("scores are finite")
                    .then(b.0.cmp(&a.0))
            })
            .map(|(id, _)| id)?;
        if let GpuDemand::Whole(need) = task.gpus_per_pod {
            let entry = budget
                .entry(chosen)
                .or_insert_with(|| cluster.nodes()[chosen.index()].idle_gpus());
            *entry -= need;
        }
        out.push(chosen);
    }
    Some(out)
}

/// First-fit: the first node (by id) with room for each pod.
pub fn first_fit_nodes(cluster: &Cluster, task: &TaskSpec) -> Option<Vec<NodeId>> {
    gang_nodes_by(cluster, task, |n| Some(-(n.id().raw() as f64)))
}

/// Best-fit: prefer nodes with the fewest idle GPUs that still fit.
///
/// Whole-card demands take the direct bucket walk: the capacity index
/// already orders nodes by (idle ascending, id ascending), which is
/// exactly the best-fit total order, so the first node passing the gang
/// budget *is* the scan's argmax — no collect-then-score pass.
pub fn best_fit_nodes(cluster: &Cluster, task: &TaskSpec) -> Option<Vec<NodeId>> {
    let GpuDemand::Whole(need) = task.gpus_per_pod else {
        return gang_nodes_by(cluster, task, |n| Some(-(f64::from(n.idle_gpus()))));
    };
    let mut budget: HashMap<NodeId, u32> = HashMap::new();
    let mut out = Vec::with_capacity(task.pods as usize);
    for _ in 0..task.pods {
        let raw = cluster.best_fit_walk(task.gpu_model, need, |id| {
            let node = NodeId::new(id);
            budget
                .get(&node)
                .copied()
                .unwrap_or_else(|| cluster.nodes()[id as usize].idle_gpus())
                >= need
        })?;
        let node = NodeId::new(raw);
        let entry = budget
            .entry(node)
            .or_insert_with(|| cluster.nodes()[node.index()].idle_gpus());
        *entry -= need;
        out.push(node);
    }
    Some(out)
}

/// Worst-fit: prefer the emptiest nodes (used by Lyra's whole-node loans).
pub fn worst_fit_nodes(cluster: &Cluster, task: &TaskSpec) -> Option<Vec<NodeId>> {
    gang_nodes_by(cluster, task, |n| Some(f64::from(n.idle_gpus())))
}

/// A single-node preemption plan: evicting `victims` on `node` frees
/// enough capacity for one pod.
#[derive(Debug, Clone, PartialEq)]
pub struct PreemptionPlan {
    /// Target node.
    pub node: NodeId,
    /// Spot tasks to evict (node-local view).
    pub victims: Vec<TaskId>,
    /// Total wasted GPU-seconds of the victims (Eq. 17 summed).
    pub waste: f64,
}

/// Plans preemptive placement of every pod of an HP `task`: walks pods one
/// at a time, evicting the spot tasks chosen by `victim_order` (smaller key
/// evicted first) on the cheapest feasible node.
///
/// Returns `(pod_nodes, victims)` or `None` when even full eviction cannot
/// fit the task. Victims are deduplicated across pods (a gang victim
/// spanning nodes frees capacity everywhere it runs).
pub fn plan_preemption<K: Ord + Copy, F>(
    cluster: &Cluster,
    task: &TaskSpec,
    now: SimTime,
    victim_order: F,
) -> Option<(Vec<NodeId>, Vec<TaskId>)>
where
    F: Fn(&gfs_cluster::RunningTask, SimTime) -> K,
{
    let need = match task.gpus_per_pod {
        GpuDemand::Whole(n) => f64::from(n),
        GpuDemand::Fraction(f) => f,
    };
    // Only nodes that already fit or host an evictable spot pod can ever
    // satisfy a pod; the index enumerates exactly those, ascending by id
    // (matching the former full-scan visit order).
    let candidates = cluster.preemption_candidates(task.gpu_model, need.ceil() as u32);
    // virtual idle capacity per node, updated as we plan evictions.
    // Keyed lookups only (`get`/`entry`), never iterated — candidate order
    // comes from `preemption_candidates`, so hash order never decides.
    let mut virt_idle: HashMap<NodeId, f64> = HashMap::new();
    let mut evicted: Vec<TaskId> = Vec::new();
    let mut pod_nodes = Vec::with_capacity(task.pods as usize);

    for _ in 0..task.pods {
        // candidate = node where idle + evictable spot >= need
        let mut best: Option<(NodeId, Vec<TaskId>, f64)> = None;
        for n in candidates.iter().map(|&id| &cluster.nodes()[id as usize]) {
            // Victim waste is non-negative, so a zero-waste plan is the
            // global minimum and `better` below is a strict improvement:
            // nothing later in the (ascending-id) walk can win. Stop.
            if matches!(&best, Some((_, _, w)) if *w <= 0.0) {
                break;
            }
            let mut idle = virt_idle
                .get(&n.id())
                .copied()
                .unwrap_or_else(|| f64::from(n.idle_gpus()));
            if idle >= need {
                // no eviction required on this node: zero-waste plan
                match &best {
                    Some((_, _, w)) if *w <= 0.0 => {}
                    _ => best = Some((n.id(), Vec::new(), 0.0)),
                }
                continue;
            }
            let mut spots: Vec<&gfs_cluster::RunningTask> = cluster
                .spot_tasks_on(n.id())
                .into_iter()
                .filter(|rt| !evicted.contains(&rt.spec.id))
                .collect();
            spots.sort_by_key(|rt| victim_order(rt, now));
            let mut victims = Vec::new();
            let mut waste = 0.0;
            for rt in spots {
                if idle >= need {
                    break;
                }
                // GPUs this task holds on *this* node
                let local: f64 = rt
                    .placements
                    .iter()
                    .filter(|p| p.node == n.id())
                    .map(|p| p.alloc.cards())
                    .sum();
                idle += local;
                waste += rt.waste(now);
                victims.push(rt.spec.id);
            }
            if idle >= need {
                let better = match &best {
                    None => true,
                    Some((_, _, w)) => waste < *w,
                };
                if better {
                    best = Some((n.id(), victims, waste));
                }
            }
        }
        let (node, victims, _) = best?;
        // absent entries mean "actual idle count" now that the map is lazy
        let actual_idle = |c: &Cluster, id: NodeId| f64::from(c.nodes()[id.index()].idle_gpus());
        for v in &victims {
            // credit every node the victim occupies
            if let Some(rt) = cluster.running_task(*v) {
                for p in &rt.placements {
                    *virt_idle
                        .entry(p.node)
                        .or_insert_with(|| actual_idle(cluster, p.node)) += p.alloc.cards();
                }
            }
            evicted.push(*v);
        }
        *virt_idle
            .entry(node)
            .or_insert_with(|| actual_idle(cluster, node)) -= need;
        pod_nodes.push(node);
    }
    Some((pod_nodes, evicted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs_types::{GpuModel, Priority, SimTime};

    fn task(id: u64, pods: u32, gpus: u32, priority: Priority) -> TaskSpec {
        TaskSpec::builder(id)
            .priority(priority)
            .pods(pods)
            .gpus_per_pod(GpuDemand::whole(gpus))
            .duration_secs(3_600)
            .build()
            .unwrap()
    }

    #[test]
    fn first_fit_prefers_low_ids() {
        let c = Cluster::homogeneous(3, GpuModel::A100, 8);
        let nodes = first_fit_nodes(&c, &task(1, 2, 4, Priority::Hp)).unwrap();
        assert_eq!(nodes, vec![NodeId::new(0), NodeId::new(0)]);
    }

    #[test]
    fn best_fit_packs_loaded_nodes() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        c.start_task(
            task(1, 1, 6, Priority::Hp),
            &[NodeId::new(1)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let nodes = best_fit_nodes(&c, &task(2, 1, 2, Priority::Hp)).unwrap();
        assert_eq!(nodes, vec![NodeId::new(1)], "node 1 has fewer idle GPUs");
    }

    #[test]
    fn worst_fit_spreads() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        c.start_task(
            task(1, 1, 6, Priority::Hp),
            &[NodeId::new(1)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let nodes = worst_fit_nodes(&c, &task(2, 1, 2, Priority::Hp)).unwrap();
        assert_eq!(nodes, vec![NodeId::new(0)]);
    }

    #[test]
    fn gang_respects_budget() {
        let c = Cluster::homogeneous(2, GpuModel::A100, 8);
        // 3 pods × 8 GPUs cannot fit on 2 nodes
        assert!(first_fit_nodes(&c, &task(1, 3, 8, Priority::Hp)).is_none());
        // 2 pods × 8 spread over both nodes
        let nodes = first_fit_nodes(&c, &task(2, 2, 8, Priority::Hp)).unwrap();
        assert_eq!(nodes, vec![NodeId::new(0), NodeId::new(1)]);
    }

    #[test]
    fn model_filter_applies() {
        let c = Cluster::homogeneous(2, GpuModel::A10, 8);
        assert!(
            first_fit_nodes(&c, &task(1, 1, 1, Priority::Hp)).is_none(),
            "task wants A100"
        );
    }

    #[test]
    fn plan_preemption_evicts_cheapest() {
        let mut c = Cluster::homogeneous(1, GpuModel::A100, 8);
        let old_spot = TaskSpec::builder(1)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::whole(4))
            .duration_secs(100_000)
            .build()
            .unwrap();
        let young_spot = TaskSpec::builder(2)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::whole(4))
            .duration_secs(100_000)
            .build()
            .unwrap();
        c.start_task(old_spot, &[NodeId::new(0)], SimTime::ZERO, 0)
            .unwrap();
        c.start_task(young_spot, &[NodeId::new(0)], SimTime::from_secs(9_000), 0)
            .unwrap();
        let now = SimTime::from_secs(10_000);
        // prefer evicting the youngest (least waste): order key = waste
        let (nodes, victims) = plan_preemption(&c, &task(3, 1, 4, Priority::Hp), now, |rt, t| {
            rt.waste(t) as u64
        })
        .unwrap();
        assert_eq!(nodes, vec![NodeId::new(0)]);
        assert_eq!(victims, vec![TaskId::new(2)], "young task wastes less");
    }

    #[test]
    fn plan_preemption_prefers_idle_nodes() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        let spot = TaskSpec::builder(1)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::whole(8))
            .duration_secs(100_000)
            .build()
            .unwrap();
        c.start_task(spot, &[NodeId::new(0)], SimTime::ZERO, 0)
            .unwrap();
        let (nodes, victims) = plan_preemption(
            &c,
            &task(2, 1, 8, Priority::Hp),
            SimTime::from_secs(100),
            |rt, t| rt.waste(t) as u64,
        )
        .unwrap();
        assert_eq!(nodes, vec![NodeId::new(1)], "idle node wins (zero waste)");
        assert!(victims.is_empty());
    }

    #[test]
    fn plan_preemption_none_when_infeasible() {
        let c = Cluster::homogeneous(1, GpuModel::A100, 8);
        assert!(
            plan_preemption(&c, &task(1, 1, 16, Priority::Hp), SimTime::ZERO, |rt, t| {
                rt.waste(t) as u64
            })
            .is_none()
        );
    }

    #[test]
    fn naive_policy_components_are_neutral() {
        let c = Cluster::homogeneous(2, GpuModel::A100, 8);
        let p = PlacementPolicy::naive();
        assert!(p.is_naive());
        let mut used = DomainUse::new();
        used.note(PlacementPolicy::domain_key(&c, NodeId::new(0)));
        assert_eq!(p.spread_component(&c, NodeId::new(0), &used), 0.0);
        assert_eq!(p.drain_component(&c, NodeId::new(0)), 0.0);
        assert_eq!(
            p.reliability_component(&c.nodes()[0], SimTime::from_hours(1)),
            1.0
        );
        assert!(!PlacementPolicy::churn_aware().is_naive());
    }

    #[test]
    fn spread_counts_pods_per_domain_with_per_node_fallback() {
        let mut c = Cluster::homogeneous(4, GpuModel::A100, 8);
        let p = PlacementPolicy::domain_spread();
        // no topology: every node is its own pseudo-domain
        let k0 = PlacementPolicy::domain_key(&c, NodeId::new(0));
        let k1 = PlacementPolicy::domain_key(&c, NodeId::new(1));
        assert_ne!(k0, k1);
        c.set_failure_domains(&gfs_types::FailureDomain::racks(4, 2));
        let k0 = PlacementPolicy::domain_key(&c, NodeId::new(0));
        assert_eq!(
            k0,
            PlacementPolicy::domain_key(&c, NodeId::new(1)),
            "same rack"
        );
        let mut used = DomainUse::new();
        used.note(k0);
        used.note(k0);
        assert_eq!(p.spread_component(&c, NodeId::new(1), &used), -2.0);
        assert_eq!(
            p.spread_component(&c, NodeId::new(2), &used),
            0.0,
            "other rack untouched"
        );
    }

    #[test]
    fn reliability_discounts_failure_prone_nodes() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        c.fail_node(NodeId::new(0), SimTime::from_hours(1)).unwrap();
        c.restore_node(NodeId::new(0), SimTime::from_hours(2))
            .unwrap();
        let p = PlacementPolicy::reliability_scored();
        let now = SimTime::from_hours(3);
        let flaky = p.reliability_component(&c.nodes()[0], now);
        let stable = p.reliability_component(&c.nodes()[1], now);
        assert!(flaky < stable, "{flaky} vs {stable}");
        assert_eq!(stable, 1.0);
        assert!(
            (flaky - 0.75).abs() < 1e-9,
            "one failure at the default penalty"
        );
        // enough failures floor the score at 0 (never negative)
        for h in [5u64, 7, 9, 11] {
            c.fail_node(NodeId::new(0), SimTime::from_hours(h)).unwrap();
            c.restore_node(NodeId::new(0), SimTime::from_hours(h + 1))
                .unwrap();
        }
        assert_eq!(
            p.reliability_component(&c.nodes()[0], SimTime::from_hours(12)),
            0.0
        );
    }

    #[test]
    fn hazard_component_matches_windowed_score_unless_decayed() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        c.fail_node(NodeId::new(0), SimTime::from_hours(1)).unwrap();
        c.restore_node(NodeId::new(0), SimTime::from_hours(2))
            .unwrap();
        let now = SimTime::from_hours(3);
        // every legacy variant routes through the windowed component
        for p in [
            PlacementPolicy::naive(),
            PlacementPolicy::reliability_scored(),
            PlacementPolicy::churn_aware(),
        ] {
            assert_eq!(
                p.hazard_component(&c, &c.nodes()[0], now),
                p.reliability_component(&c.nodes()[0], now)
            );
        }
        // the decayed score is time-graded, not a step function
        let p = PlacementPolicy::hazard_aware();
        let fresh = p.hazard_component(&c, &c.nodes()[0], SimTime::from_hours(2));
        let stale = p.hazard_component(&c, &c.nodes()[0], SimTime::from_hours(50));
        assert!(fresh < stale, "{fresh} vs {stale}: old failures fade");
        assert!(stale < 1.0, "but never vanish abruptly");
        assert_eq!(p.hazard_component(&c, &c.nodes()[1], now), 1.0);
    }

    #[test]
    fn pooling_taints_domain_mates() {
        let mut c = Cluster::homogeneous(4, GpuModel::A100, 8);
        c.set_failure_domains(&gfs_types::FailureDomain::racks(4, 2));
        c.fail_node(NodeId::new(0), SimTime::from_hours(1)).unwrap();
        c.restore_node(NodeId::new(0), SimTime::from_hours(2))
            .unwrap();
        let p = PlacementPolicy::hazard_aware();
        let now = SimTime::from_hours(3);
        // node 1 never failed, but shares the rack with flaky node 0
        let mate = p.pooled_failure_rate(&c, &c.nodes()[1], now);
        let other = p.pooled_failure_rate(&c, &c.nodes()[2], now);
        assert!(mate > 0.0, "rack-mate inherits pooled suspicion");
        assert_eq!(other, 0.0, "other rack untouched");
        assert!(
            p.hazard_component(&c, &c.nodes()[1], now) < p.hazard_component(&c, &c.nodes()[2], now)
        );
        // the failed node itself is worse than its innocent mate
        assert!(p.pooled_failure_rate(&c, &c.nodes()[0], now) > mate);
        // without a topology pooling is inert
        let flat = Cluster::homogeneous(2, GpuModel::A100, 8);
        assert_eq!(
            p.pooled_failure_rate(&flat, &flat.nodes()[0], now),
            flat.nodes()[0].decayed_failure_rate(now, p.failure_half_life_secs)
        );
    }

    #[test]
    fn preemption_reliability_is_gated() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        c.fail_node(NodeId::new(0), SimTime::from_hours(1)).unwrap();
        c.restore_node(NodeId::new(0), SimTime::from_hours(2))
            .unwrap();
        let now = SimTime::from_hours(3);
        // churn_aware's preemptive cells are pinned: constant discount
        let legacy = PlacementPolicy::churn_aware();
        assert_eq!(legacy.preemption_reliability(&c, &c.nodes()[0], now), 1.0);
        let p = PlacementPolicy::hazard_aware();
        assert!(p.preemption_reliability(&c, &c.nodes()[0], now) < 1.0);
        assert!(!p.is_naive());
    }

    #[test]
    fn drain_component_flags_racks_mid_maintenance() {
        let mut c = Cluster::homogeneous(4, GpuModel::A100, 8);
        c.set_failure_domains(&gfs_types::FailureDomain::racks(4, 2));
        c.drain_node(NodeId::new(0), SimTime::from_hours(1))
            .unwrap();
        let p = PlacementPolicy::churn_aware();
        assert_eq!(
            p.drain_component(&c, NodeId::new(1)),
            -1.0,
            "rack-mate of the drain"
        );
        assert_eq!(
            p.drain_component(&c, NodeId::new(2)),
            0.0,
            "other rack clean"
        );
    }

    #[test]
    fn drain_aware_migration_harvests_when_cluster_is_full() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        let naive = PlacementPolicy::naive();
        let aware = PlacementPolicy::churn_aware();
        // a long gang on node 0 (3 600 s of work, far over any notice)
        c.start_task(
            task(1, 1, 8, Priority::Hp),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let rt = |c: &Cluster, id: u64| c.running_task(TaskId::new(id)).unwrap().clone();
        let gang = rt(&c, 1);
        // room on node 1: both migrate the can't-finish gang at the notice
        assert!(naive.migrate_on_drain(&gang, 600, &c, SimTime::ZERO));
        assert!(aware.migrate_on_drain(&gang, 600, &c, SimTime::ZERO));
        assert_eq!(
            aware.drain_decision(&gang, 600, &c, SimTime::ZERO),
            DrainDecision::Migrate
        );
        // neither touches a gang that finishes inside the window
        let end = SimTime::from_secs(3_600 - 100);
        assert!(!naive.migrate_on_drain(&gang, 600, &c, end));
        assert_eq!(
            aware.drain_decision(&gang, 600, &c, end),
            DrainDecision::Stay
        );
        // fill node 1 and drain node 0: the gang's own cards sit on the
        // draining node, so they never count as receivable — the
        // drain-aware policy stays and harvests
        c.start_task(
            task(8, 1, 8, Priority::Hp),
            &[NodeId::new(1)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        c.drain_node(NodeId::new(0), SimTime::from_secs(600))
            .unwrap();
        let gang = rt(&c, 1);
        assert!(
            naive.migrate_on_drain(&gang, 600, &c, SimTime::ZERO),
            "naive migrates regardless"
        );
        assert_eq!(
            aware.drain_decision(&gang, 600, &c, SimTime::ZERO),
            DrainDecision::Stay
        );
        // …but a gang whose cards sit on a *schedulable* node counts them:
        // migrating task 8 frees node 1, so it can re-place into its own
        // vacated cards
        let gang_elsewhere = rt(&c, 8);
        assert!(aware.migrate_on_drain(&gang_elsewhere, 600, &c, SimTime::ZERO));
    }
}
