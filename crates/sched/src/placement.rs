//! Shared placement helpers used by the baseline schedulers.

use std::collections::HashMap;

use gfs_cluster::{Cluster, Node};
use gfs_types::{GpuDemand, NodeId, SimTime, TaskId, TaskSpec};

/// Picks one node per pod of `task`, choosing for each pod the
/// highest-scoring node that still fits (ties broken by node id).
///
/// `score` returns `None` to exclude a node. Whole-card demands consume a
/// virtual idle-GPU budget so gangs spread correctly; fractional demands
/// are single-pod by construction.
pub fn gang_nodes_by<F>(cluster: &Cluster, task: &TaskSpec, score: F) -> Option<Vec<NodeId>>
where
    F: Fn(&Node) -> Option<f64>,
{
    // Feasible nodes come from the capacity index (O(answer)), not a scan
    // over every node. The selection itself is a max over a *total* order
    // (score, then lower node id), so candidate enumeration order cannot
    // change the outcome.
    let candidates: Vec<u32> = match task.gpus_per_pod {
        GpuDemand::Whole(need) => cluster.whole_fit_candidates(task.gpu_model, need),
        GpuDemand::Fraction(f) => cluster.fraction_fit_candidates(task.gpu_model, f),
    };
    // virtual idle budget, tracked only for nodes the gang actually picks
    let mut budget: HashMap<NodeId, u32> = HashMap::new();
    let mut out = Vec::with_capacity(task.pods as usize);
    for _ in 0..task.pods {
        let chosen = candidates
            .iter()
            .map(|&id| (NodeId::new(id), &cluster.nodes()[id as usize]))
            .filter(|(id, n)| match task.gpus_per_pod {
                GpuDemand::Whole(need) => {
                    budget.get(id).copied().unwrap_or_else(|| n.idle_gpus()) >= need
                }
                GpuDemand::Fraction(f) => {
                    n.gpus().iter().any(|g| g.free_fraction() >= f - 1e-12)
                }
            })
            .filter_map(|(id, n)| score(n).map(|s| (id, s)))
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("scores are finite")
                    .then(b.0.cmp(&a.0))
            })
            .map(|(id, _)| id)?;
        if let GpuDemand::Whole(need) = task.gpus_per_pod {
            let entry = budget
                .entry(chosen)
                .or_insert_with(|| cluster.nodes()[chosen.index()].idle_gpus());
            *entry -= need;
        }
        out.push(chosen);
    }
    Some(out)
}

/// First-fit: the first node (by id) with room for each pod.
pub fn first_fit_nodes(cluster: &Cluster, task: &TaskSpec) -> Option<Vec<NodeId>> {
    gang_nodes_by(cluster, task, |n| Some(-(n.id().raw() as f64)))
}

/// Best-fit: prefer nodes with the fewest idle GPUs that still fit.
pub fn best_fit_nodes(cluster: &Cluster, task: &TaskSpec) -> Option<Vec<NodeId>> {
    gang_nodes_by(cluster, task, |n| Some(-(f64::from(n.idle_gpus()))))
}

/// Worst-fit: prefer the emptiest nodes (used by Lyra's whole-node loans).
pub fn worst_fit_nodes(cluster: &Cluster, task: &TaskSpec) -> Option<Vec<NodeId>> {
    gang_nodes_by(cluster, task, |n| Some(f64::from(n.idle_gpus())))
}

/// A single-node preemption plan: evicting `victims` on `node` frees
/// enough capacity for one pod.
#[derive(Debug, Clone, PartialEq)]
pub struct PreemptionPlan {
    /// Target node.
    pub node: NodeId,
    /// Spot tasks to evict (node-local view).
    pub victims: Vec<TaskId>,
    /// Total wasted GPU-seconds of the victims (Eq. 17 summed).
    pub waste: f64,
}

/// Plans preemptive placement of every pod of an HP `task`: walks pods one
/// at a time, evicting the spot tasks chosen by `victim_order` (smaller key
/// evicted first) on the cheapest feasible node.
///
/// Returns `(pod_nodes, victims)` or `None` when even full eviction cannot
/// fit the task. Victims are deduplicated across pods (a gang victim
/// spanning nodes frees capacity everywhere it runs).
pub fn plan_preemption<K: Ord + Copy, F>(
    cluster: &Cluster,
    task: &TaskSpec,
    now: SimTime,
    victim_order: F,
) -> Option<(Vec<NodeId>, Vec<TaskId>)>
where
    F: Fn(&gfs_cluster::RunningTask, SimTime) -> K,
{
    let need = match task.gpus_per_pod {
        GpuDemand::Whole(n) => f64::from(n),
        GpuDemand::Fraction(f) => f,
    };
    // Only nodes that already fit or host an evictable spot pod can ever
    // satisfy a pod; the index enumerates exactly those, ascending by id
    // (matching the former full-scan visit order).
    let candidates = cluster.preemption_candidates(task.gpu_model, need.ceil() as u32);
    // virtual idle capacity per node, updated as we plan evictions
    let mut virt_idle: HashMap<NodeId, f64> = HashMap::new();
    let mut evicted: Vec<TaskId> = Vec::new();
    let mut pod_nodes = Vec::with_capacity(task.pods as usize);

    for _ in 0..task.pods {
        // candidate = node where idle + evictable spot >= need
        let mut best: Option<(NodeId, Vec<TaskId>, f64)> = None;
        for n in candidates.iter().map(|&id| &cluster.nodes()[id as usize]) {
            let mut idle = virt_idle
                .get(&n.id())
                .copied()
                .unwrap_or_else(|| f64::from(n.idle_gpus()));
            if idle >= need {
                // no eviction required on this node: zero-waste plan
                match &best {
                    Some((_, _, w)) if *w <= 0.0 => {}
                    _ => best = Some((n.id(), Vec::new(), 0.0)),
                }
                continue;
            }
            let mut spots: Vec<&gfs_cluster::RunningTask> = cluster
                .spot_tasks_on(n.id())
                .into_iter()
                .filter(|rt| !evicted.contains(&rt.spec.id))
                .collect();
            spots.sort_by_key(|rt| victim_order(rt, now));
            let mut victims = Vec::new();
            let mut waste = 0.0;
            for rt in spots {
                if idle >= need {
                    break;
                }
                // GPUs this task holds on *this* node
                let local: f64 = rt
                    .placements
                    .iter()
                    .filter(|p| p.node == n.id())
                    .map(|p| p.alloc.cards())
                    .sum();
                idle += local;
                waste += rt.waste(now);
                victims.push(rt.spec.id);
            }
            if idle >= need {
                let better = match &best {
                    None => true,
                    Some((_, _, w)) => waste < *w,
                };
                if better {
                    best = Some((n.id(), victims, waste));
                }
            }
        }
        let (node, victims, _) = best?;
        // absent entries mean "actual idle count" now that the map is lazy
        let actual_idle = |c: &Cluster, id: NodeId| f64::from(c.nodes()[id.index()].idle_gpus());
        for v in &victims {
            // credit every node the victim occupies
            if let Some(rt) = cluster.running_task(*v) {
                for p in &rt.placements {
                    *virt_idle
                        .entry(p.node)
                        .or_insert_with(|| actual_idle(cluster, p.node)) += p.alloc.cards();
                }
            }
            evicted.push(*v);
        }
        *virt_idle
            .entry(node)
            .or_insert_with(|| actual_idle(cluster, node)) -= need;
        pod_nodes.push(node);
    }
    Some((pod_nodes, evicted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs_types::{GpuModel, Priority, SimTime};

    fn task(id: u64, pods: u32, gpus: u32, priority: Priority) -> TaskSpec {
        TaskSpec::builder(id)
            .priority(priority)
            .pods(pods)
            .gpus_per_pod(GpuDemand::whole(gpus))
            .duration_secs(3_600)
            .build()
            .unwrap()
    }

    #[test]
    fn first_fit_prefers_low_ids() {
        let c = Cluster::homogeneous(3, GpuModel::A100, 8);
        let nodes = first_fit_nodes(&c, &task(1, 2, 4, Priority::Hp)).unwrap();
        assert_eq!(nodes, vec![NodeId::new(0), NodeId::new(0)]);
    }

    #[test]
    fn best_fit_packs_loaded_nodes() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        c.start_task(task(1, 1, 6, Priority::Hp), &[NodeId::new(1)], SimTime::ZERO, 0).unwrap();
        let nodes = best_fit_nodes(&c, &task(2, 1, 2, Priority::Hp)).unwrap();
        assert_eq!(nodes, vec![NodeId::new(1)], "node 1 has fewer idle GPUs");
    }

    #[test]
    fn worst_fit_spreads() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        c.start_task(task(1, 1, 6, Priority::Hp), &[NodeId::new(1)], SimTime::ZERO, 0).unwrap();
        let nodes = worst_fit_nodes(&c, &task(2, 1, 2, Priority::Hp)).unwrap();
        assert_eq!(nodes, vec![NodeId::new(0)]);
    }

    #[test]
    fn gang_respects_budget() {
        let c = Cluster::homogeneous(2, GpuModel::A100, 8);
        // 3 pods × 8 GPUs cannot fit on 2 nodes
        assert!(first_fit_nodes(&c, &task(1, 3, 8, Priority::Hp)).is_none());
        // 2 pods × 8 spread over both nodes
        let nodes = first_fit_nodes(&c, &task(2, 2, 8, Priority::Hp)).unwrap();
        assert_eq!(nodes, vec![NodeId::new(0), NodeId::new(1)]);
    }

    #[test]
    fn model_filter_applies() {
        let c = Cluster::homogeneous(2, GpuModel::A10, 8);
        assert!(first_fit_nodes(&c, &task(1, 1, 1, Priority::Hp)).is_none(), "task wants A100");
    }

    #[test]
    fn plan_preemption_evicts_cheapest() {
        let mut c = Cluster::homogeneous(1, GpuModel::A100, 8);
        let old_spot = TaskSpec::builder(1)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::whole(4))
            .duration_secs(100_000)
            .build()
            .unwrap();
        let young_spot = TaskSpec::builder(2)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::whole(4))
            .duration_secs(100_000)
            .build()
            .unwrap();
        c.start_task(old_spot, &[NodeId::new(0)], SimTime::ZERO, 0).unwrap();
        c.start_task(young_spot, &[NodeId::new(0)], SimTime::from_secs(9_000), 0).unwrap();
        let now = SimTime::from_secs(10_000);
        // prefer evicting the youngest (least waste): order key = waste
        let (nodes, victims) = plan_preemption(&c, &task(3, 1, 4, Priority::Hp), now, |rt, t| {
            rt.waste(t) as u64
        })
        .unwrap();
        assert_eq!(nodes, vec![NodeId::new(0)]);
        assert_eq!(victims, vec![TaskId::new(2)], "young task wastes less");
    }

    #[test]
    fn plan_preemption_prefers_idle_nodes() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        let spot = TaskSpec::builder(1)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::whole(8))
            .duration_secs(100_000)
            .build()
            .unwrap();
        c.start_task(spot, &[NodeId::new(0)], SimTime::ZERO, 0).unwrap();
        let (nodes, victims) =
            plan_preemption(&c, &task(2, 1, 8, Priority::Hp), SimTime::from_secs(100), |rt, t| {
                rt.waste(t) as u64
            })
            .unwrap();
        assert_eq!(nodes, vec![NodeId::new(1)], "idle node wins (zero waste)");
        assert!(victims.is_empty());
    }

    #[test]
    fn plan_preemption_none_when_infeasible() {
        let c = Cluster::homogeneous(1, GpuModel::A100, 8);
        assert!(plan_preemption(&c, &task(1, 1, 16, Priority::Hp), SimTime::ZERO, |rt, t| {
            rt.waste(t) as u64
        })
        .is_none());
    }
}
