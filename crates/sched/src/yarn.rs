//! YARN-CS baseline (§4.1): the classic capacity scheduler — FCFS queue,
//! best-fit placement, and preemption of spot containers whenever an HP
//! task cannot otherwise fit. Victim selection is reverse-submission order
//! (newest containers die first), the YARN convention.

use gfs_cluster::{Cluster, Decision, Scheduler};
use gfs_types::{SimTime, TaskSpec};

use crate::placement::{best_fit_nodes, plan_preemption};

/// The YARN-CS policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct YarnCs;

impl YarnCs {
    /// Creates the scheduler.
    #[must_use]
    pub fn new() -> Self {
        YarnCs
    }
}

impl Scheduler for YarnCs {
    fn name(&self) -> &str {
        "YARN-CS"
    }

    fn schedule(&mut self, task: &TaskSpec, cluster: &Cluster, now: SimTime) -> Option<Decision> {
        if let Some(nodes) = best_fit_nodes(cluster, task) {
            return Some(Decision::place(nodes));
        }
        if task.priority.is_hp() {
            // newest-first victim selection: YARN kills the most recently
            // launched containers
            let (nodes, victims) = plan_preemption(cluster, task, now, |rt, _| {
                u64::MAX - rt.started_at.as_secs()
            })?;
            return Some(Decision {
                pod_nodes: nodes,
                preemptions: victims,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs_types::{GpuDemand, GpuModel, NodeId, Priority, TaskId};

    fn spot(id: u64, gpus: u32) -> TaskSpec {
        TaskSpec::builder(id)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::whole(gpus))
            .duration_secs(100_000)
            .build()
            .unwrap()
    }

    fn hp(id: u64, gpus: u32) -> TaskSpec {
        TaskSpec::builder(id)
            .priority(Priority::Hp)
            .gpus_per_pod(GpuDemand::whole(gpus))
            .duration_secs(3_600)
            .build()
            .unwrap()
    }

    #[test]
    fn places_without_preemption_when_possible() {
        let c = Cluster::homogeneous(2, GpuModel::A100, 8);
        let mut s = YarnCs::new();
        let d = s.schedule(&hp(1, 4), &c, SimTime::ZERO).unwrap();
        assert!(!d.is_preemptive());
    }

    #[test]
    fn preempts_newest_spot_for_hp() {
        let mut c = Cluster::homogeneous(1, GpuModel::A100, 8);
        c.start_task(spot(1, 4), &[NodeId::new(0)], SimTime::ZERO, 0)
            .unwrap();
        c.start_task(spot(2, 4), &[NodeId::new(0)], SimTime::from_secs(500), 0)
            .unwrap();
        let mut s = YarnCs::new();
        let d = s
            .schedule(&hp(3, 4), &c, SimTime::from_secs(1_000))
            .unwrap();
        assert_eq!(
            d.preemptions,
            vec![TaskId::new(2)],
            "newest container evicted"
        );
    }

    #[test]
    fn spot_never_preempts() {
        let mut c = Cluster::homogeneous(1, GpuModel::A100, 8);
        c.start_task(spot(1, 8), &[NodeId::new(0)], SimTime::ZERO, 0)
            .unwrap();
        let mut s = YarnCs::new();
        assert!(s.schedule(&spot(2, 4), &c, SimTime::ZERO).is_none());
    }
}
