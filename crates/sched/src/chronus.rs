//! Chronus baseline (Gao et al., SoCC'21) adapted per §4.1: a lease-based
//! deadline scheduler. HP tasks map to SLO jobs with a 20-minute lease,
//! spot tasks to best-effort jobs with a 5-minute lease. Best-effort jobs
//! may only be displaced when their current lease has expired — there is no
//! arbitrary-time preemption, so its eviction statistic is reported
//! separately ("-" in Table 5).

use gfs_cluster::{Cluster, Decision, Scheduler};
use gfs_types::{SimDuration, SimTime, TaskSpec};

use crate::placement::{best_fit_nodes, plan_preemption};

/// Lease length for SLO (HP) jobs, seconds.
pub const HP_LEASE_SECS: SimDuration = 20 * 60;
/// Lease length for best-effort (spot) jobs, seconds.
pub const SPOT_LEASE_SECS: SimDuration = 5 * 60;

/// The Chronus policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct Chronus;

impl Chronus {
    /// Creates the scheduler.
    #[must_use]
    pub fn new() -> Self {
        Chronus
    }
}

impl Scheduler for Chronus {
    fn name(&self) -> &str {
        "Chronus"
    }

    fn queue_cmp(&self, a: &TaskSpec, b: &TaskSpec) -> std::cmp::Ordering {
        // SLO jobs first, earliest deadline (submit + lease) first; then
        // best-effort by submit order — Chronus's lease admission order.
        let key = |t: &TaskSpec| {
            let lease = if t.priority.is_hp() {
                HP_LEASE_SECS
            } else {
                SPOT_LEASE_SECS
            };
            (t.priority.is_spot(), t.submit_at.as_secs() + lease, t.id)
        };
        key(a).cmp(&key(b))
    }

    fn schedule(&mut self, task: &TaskSpec, cluster: &Cluster, now: SimTime) -> Option<Decision> {
        if let Some(nodes) = best_fit_nodes(cluster, task) {
            return Some(Decision::place(nodes));
        }
        if task.priority.is_hp() {
            // displacement only of best-effort jobs whose lease expired
            let (nodes, victims) = plan_preemption(cluster, task, now, |rt, t| {
                // lease-expired tasks first (ordered by how long past expiry,
                // most-expired first); unexpired tasks get a huge key so they
                // are only touched when unavoidable — and then we bail below
                let ran = rt.executed(t);
                if ran >= SPOT_LEASE_SECS {
                    u64::MAX / 2 - ran
                } else {
                    u64::MAX - ran
                }
            })?;
            // reject plans that would displace jobs inside their lease
            let all_expired = victims.iter().all(|v| {
                cluster
                    .running_task(*v)
                    .is_some_and(|rt| rt.executed(now) >= SPOT_LEASE_SECS)
            });
            if !all_expired {
                return None;
            }
            return Some(Decision {
                pod_nodes: nodes,
                preemptions: victims,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs_types::{GpuDemand, GpuModel, NodeId, Priority, TaskId};

    fn task(id: u64, priority: Priority, gpus: u32, submit: u64) -> TaskSpec {
        TaskSpec::builder(id)
            .priority(priority)
            .gpus_per_pod(GpuDemand::whole(gpus))
            .duration_secs(50_000)
            .submit_at(SimTime::from_secs(submit))
            .build()
            .unwrap()
    }

    #[test]
    fn queue_puts_slo_jobs_first() {
        let s = Chronus::new();
        let mut q = vec![
            task(1, Priority::Spot, 1, 0),
            task(2, Priority::Hp, 1, 100),
            task(3, Priority::Hp, 1, 0),
        ];
        s.sort_queue(&mut q);
        let ids: Vec<u64> = q.iter().map(|t| t.id.raw()).collect();
        assert_eq!(ids, vec![3, 2, 1]);
    }

    #[test]
    fn respects_unexpired_leases() {
        let mut c = Cluster::homogeneous(1, GpuModel::A100, 8);
        c.start_task(
            task(1, Priority::Spot, 8, 0),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let mut s = Chronus::new();
        // 100 s into the spot lease: HP must wait
        assert!(s
            .schedule(&task(2, Priority::Hp, 8, 0), &c, SimTime::from_secs(100))
            .is_none());
        // after the 5-minute lease the displacement is allowed
        let d = s
            .schedule(
                &task(3, Priority::Hp, 8, 0),
                &c,
                SimTime::from_secs(SPOT_LEASE_SECS + 1),
            )
            .unwrap();
        assert_eq!(d.preemptions, vec![TaskId::new(1)]);
    }

    #[test]
    fn places_on_idle_capacity_without_leases() {
        let c = Cluster::homogeneous(1, GpuModel::A100, 8);
        let mut s = Chronus::new();
        let d = s
            .schedule(&task(1, Priority::Spot, 2, 0), &c, SimTime::ZERO)
            .unwrap();
        assert!(!d.is_preemptive());
    }
}
