//! Baseline GPU-cluster schedulers compared against GFS in §4.4.
//!
//! * [`YarnCs`] — FCFS + best-fit with newest-first preemption.
//! * [`Chronus`] — lease-based deadline scheduling; displacement only at
//!   lease expiry.
//! * [`Lyra`] — whole-node loans to spot tasks with minimal-waste reclaim.
//! * [`Fgd`] — fragmentation-gradient-descent placement.
//!
//! The [`placement`] module exposes the shared first-fit / best-fit /
//! preemption-planning helpers these policies (and tests elsewhere) use,
//! plus the churn-aware [`PlacementPolicy`] layer (failure-domain
//! spreading, reliability scoring, drain awareness) that the PTS/GFS
//! schedulers consult at placement time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chronus;
mod fgd;
mod lyra;
pub mod placement;
mod yarn;

pub use chronus::{Chronus, HP_LEASE_SECS, SPOT_LEASE_SECS};
pub use fgd::{node_fragmentation, Fgd};
pub use lyra::Lyra;
pub use placement::{DomainUse, PlacementPolicy};
pub use yarn::YarnCs;
