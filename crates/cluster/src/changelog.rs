//! Per-cluster mutation log feeding epoch-invalidated read-side caches.
//!
//! Placement caches (the score index in `gfs_core`) need to know *which
//! nodes changed* since they last looked, without the cluster knowing who
//! is listening. The [`ChangeLog`] answers that with a bounded ring of
//! touched node ids plus a monotone cursor:
//!
//! * every cluster mutation that can affect a placement score appends the
//!   node id (occupancy changes, eviction records, fail/drain/restore,
//!   scale-out);
//! * a reader remembers the cursor from its last sync and calls
//!   [`ChangeLog::replay`] to visit exactly the ids touched since then;
//! * the ring is bounded — a reader that slept through more than the ring
//!   capacity gets `false` and must rebuild from the full cluster, so the
//!   log never grows with run length.
//!
//! Cursors are only meaningful against the *same* log instance: clones
//! and snapshot restores mint a fresh [`ChangeLog::instance`] id, so a
//! cache synced to one cluster can never silently mis-apply its cursor to
//! a copy.

use std::sync::atomic::{AtomicU64, Ordering};

/// Ring capacity in entries. Power of two; 32k ids (128 KiB) comfortably
/// covers the mutations between two scheduling passes at fleet scale.
const RING_CAP: usize = 1 << 15;

static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

fn mint_instance() -> u64 {
    NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed)
}

/// Bounded log of node ids touched by cluster mutations. See the module
/// docs for the reader protocol.
#[derive(Debug)]
pub struct ChangeLog {
    instance: u64,
    total: u64,
    ring: Vec<u32>,
}

impl Default for ChangeLog {
    fn default() -> Self {
        ChangeLog {
            instance: mint_instance(),
            total: 0,
            ring: Vec::new(),
        }
    }
}

impl Clone for ChangeLog {
    /// A cloned cluster is a *different* cluster as far as cursors are
    /// concerned: the clone carries the history but mints a fresh
    /// instance id, so readers synced to the original rebuild instead of
    /// replaying against diverging state.
    fn clone(&self) -> Self {
        ChangeLog {
            instance: mint_instance(),
            total: self.total,
            ring: self.ring.clone(),
        }
    }
}

impl ChangeLog {
    /// Identity of this log; unique per cluster value (clones and
    /// snapshot restores mint fresh ids).
    #[must_use]
    pub fn instance(&self) -> u64 {
        self.instance
    }

    /// Cursor positioned after everything recorded so far.
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.total
    }

    /// Records that `id` changed. Every call appends: collapsing even
    /// consecutive duplicates would be unsound, because a reader whose
    /// cursor already passed the earlier entry would never learn about
    /// the new mutation.
    pub fn note(&mut self, id: u32) {
        if self.ring.is_empty() {
            self.ring = vec![0; RING_CAP];
        }
        self.ring[(self.total as usize) & (RING_CAP - 1)] = id;
        self.total += 1;
    }

    /// Visits every id recorded since `from` (a cursor previously taken
    /// with [`ChangeLog::cursor`]), oldest first, possibly with
    /// duplicates. Returns `false` without calling `f` when the window
    /// has left the ring — the reader must rebuild from the cluster.
    pub fn replay(&self, from: u64, mut f: impl FnMut(u32)) -> bool {
        if from > self.total {
            return false;
        }
        let span = self.total - from;
        if span as usize > RING_CAP {
            return false;
        }
        for i in from..self.total {
            f(self.ring[(i as usize) & (RING_CAP - 1)]);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_sees_exactly_the_window() {
        let mut log = ChangeLog::default();
        log.note(1);
        log.note(2);
        let cur = log.cursor();
        log.note(3);
        log.note(4);
        let mut seen = Vec::new();
        assert!(log.replay(cur, |id| seen.push(id)));
        assert_eq!(seen, vec![3, 4]);
    }

    #[test]
    fn duplicates_are_preserved_for_already_synced_readers() {
        let mut log = ChangeLog::default();
        log.note(7);
        let cur = log.cursor(); // reader consumed the first 7
        log.note(7); // same node mutated again — must still be visible
        let mut seen = Vec::new();
        assert!(log.replay(cur, |id| seen.push(id)));
        assert_eq!(seen, vec![7]);
    }

    #[test]
    fn overflow_demands_rebuild() {
        let mut log = ChangeLog::default();
        for i in 0..(RING_CAP as u32 + 10) {
            log.note(i);
        }
        assert!(!log.replay(0, |_| {}), "window fell off the ring");
        let cur = log.cursor();
        log.note(1);
        let mut seen = Vec::new();
        assert!(log.replay(cur, |id| seen.push(id)), "fresh cursor replays");
        assert_eq!(seen, vec![1]);
    }

    #[test]
    fn clones_mint_fresh_instances() {
        let log = ChangeLog::default();
        let copy = log.clone();
        assert_ne!(log.instance(), copy.instance());
    }

    #[test]
    fn future_cursor_is_rejected() {
        let log = ChangeLog::default();
        assert!(!log.replay(5, |_| {}));
    }
}
