//! Cluster state: the set of nodes plus the registry of running tasks and
//! the incrementally-maintained [`CapacityIndex`] that keeps placement
//! queries off the O(nodes × gpus) scan path.

use std::collections::BTreeMap;
use std::sync::Arc;

use gfs_types::{
    Error, FailureDomain, GpuModel, NodeId, Result, SimDuration, SimTime, TaskId, TaskSpec,
};
use serde::{Deserialize, Serialize};

use crate::changelog::ChangeLog;
use crate::index::CapacityIndex;
use crate::node::{Node, NodeSnapshot, PodAlloc};

/// Where one pod of a running task lives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PodPlacement {
    /// Hosting node.
    pub node: NodeId,
    /// Concrete cards/fraction on that node.
    pub alloc: PodAlloc,
}

/// A task currently occupying GPUs.
#[derive(Debug, Clone)]
pub struct RunningTask {
    /// The immutable task description (shared with the simulator's task
    /// table, so starting a task never deep-copies the spec).
    pub spec: Arc<TaskSpec>,
    /// One placement per pod.
    pub placements: Vec<PodPlacement>,
    /// When this run segment started executing.
    pub started_at: SimTime,
    /// Work (seconds) preserved from earlier run segments.
    pub carried_progress: SimDuration,
}

impl RunningTask {
    /// Seconds executed in the current run segment.
    #[must_use]
    pub fn executed(&self, now: SimTime) -> SimDuration {
        now.since(self.started_at)
    }

    /// Total work progress including earlier segments.
    #[must_use]
    pub fn progress(&self, now: SimTime) -> SimDuration {
        self.carried_progress + self.executed(now)
    }

    /// Remaining work after `now`.
    #[must_use]
    pub fn remaining(&self, now: SimTime) -> SimDuration {
        self.spec.duration_secs.saturating_sub(self.progress(now))
    }

    /// Seconds of work that would be lost if preempted at `now`
    /// (the `t − t_check` term of Eq. 17).
    #[must_use]
    pub fn wasted_seconds(&self, now: SimTime) -> SimDuration {
        self.spec
            .checkpoint
            .wasted_work(self.carried_progress, self.executed(now))
    }

    /// The full waste of Eq. 17: `ϑ = g · (t − t_check)` in GPU-seconds.
    #[must_use]
    pub fn waste(&self, now: SimTime) -> f64 {
        self.spec.total_gpus() * self.wasted_seconds(now) as f64
    }

    /// Progress that survives a preemption at `now`.
    #[must_use]
    pub fn preserved_progress(&self, now: SimTime) -> SimDuration {
        self.spec
            .checkpoint
            .preserved_progress(self.carried_progress, self.executed(now))
    }
}

/// A task drained off a failed node: the run that was killed plus the
/// progress that survived per its checkpoint plan. The simulator requeues
/// it through the normal `Requeue` path.
#[derive(Debug, Clone)]
pub struct Displaced {
    /// The killed run (spec, placements, timing).
    pub task: RunningTask,
    /// Checkpointed work (seconds) to carry into the next run segment.
    pub preserved: SimDuration,
}

/// Per-model capacity totals, maintained incrementally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct ModelTotals {
    /// Cards on nodes of this model, down nodes included.
    cap_static: f64,
    /// Cards on *in-service* nodes of this model.
    cap: f64,
    /// Fully idle cards.
    idle: u32,
    /// HP allocation in cards.
    hp: f64,
    /// Spot allocation in cards.
    spot: f64,
}

/// The full cluster: nodes plus running-task registry plus spot outcome
/// counters (`G` successes / `F` evictions of Eq. 18).
///
/// Cluster-wide *and per-model* totals (capacity, idle cards, HP/spot
/// allocation) are maintained incrementally as pods are placed and
/// released and as nodes fail and recover, so the whole-cluster accessors
/// the SQA queries every quota tick — and the per-model queries
/// heterogeneous pools need — are O(1) instead of O(nodes × gpus).
///
/// Capacity accessors report *schedulable* capacity: a failed node's
/// cards leave [`Cluster::capacity`]/[`Cluster::idle_gpus`] the moment
/// [`Cluster::fail_node`] drains it, a draining node's the moment
/// [`Cluster::drain_node`] marks it (its pods keep running but nothing
/// new can land), and both return on [`Cluster::restore_node`].
/// [`Cluster::add_node`] extends every total with a freshly minted node.
/// [`Cluster::static_capacity`] keeps the as-built (plus scaled-out)
/// total for availability accounting.
#[derive(Debug, Clone, Default)]
pub struct Cluster {
    nodes: Vec<Node>,
    running: BTreeMap<TaskId, RunningTask>,
    index: CapacityIndex,
    spot_completed: u64,
    spot_evicted: u64,
    /// Historical count of tasks displaced by node failures.
    displaced_total: u64,
    /// Historical count of tasks gracefully migrated off draining nodes.
    migrated_total: u64,
    /// Nodes currently out of service.
    down_nodes: usize,
    /// Nodes currently draining (still up, accepting no placements).
    draining_nodes: usize,
    /// Total cards across in-service nodes.
    cap_total: f64,
    /// Total cards across all nodes, down ones included.
    cap_static: f64,
    /// Incrementally-maintained count of fully idle cards.
    idle_total: u32,
    /// Incrementally-maintained HP allocation in cards.
    hp_total: f64,
    /// Incrementally-maintained spot allocation in cards.
    spot_total: f64,
    /// Per-model totals (same invariants as the cluster-wide fields).
    model_totals: BTreeMap<GpuModel, ModelTotals>,
    /// Failure-domain membership per node index (`None` for nodes outside
    /// every declared domain, and for all nodes when no topology was
    /// declared). Grown with `add_node`.
    node_domain: Vec<Option<u32>>,
    /// Nodes currently draining, per declared failure domain — the O(1)
    /// query behind drain-aware placement ("is this rack mid-maintenance?").
    domain_draining: Vec<u32>,
    /// Node ids touched by score-relevant mutations, for epoch-invalidated
    /// read-side caches ([`ChangeLog`]). Not serialized: snapshot restore
    /// mints a fresh log and caches rebuild.
    changes: ChangeLog,
}

impl Cluster {
    /// Creates a cluster from explicit nodes.
    #[must_use]
    pub fn new(nodes: Vec<Node>) -> Self {
        let index = CapacityIndex::build(&nodes);
        let cap_total = nodes.iter().map(|n| f64::from(n.total_gpus())).sum();
        let idle_total = nodes.iter().map(Node::idle_gpus).sum();
        let hp_total = nodes.iter().map(Node::hp_allocated).sum();
        let spot_total = nodes.iter().map(Node::spot_allocated).sum();
        let mut model_totals: BTreeMap<GpuModel, ModelTotals> = BTreeMap::new();
        for n in &nodes {
            let t = model_totals.entry(n.model()).or_default();
            t.cap_static += f64::from(n.total_gpus());
            t.cap += f64::from(n.total_gpus());
            t.idle += n.idle_gpus();
            t.hp += n.hp_allocated();
            t.spot += n.spot_allocated();
        }
        Cluster {
            nodes,
            running: BTreeMap::new(),
            index,
            spot_completed: 0,
            spot_evicted: 0,
            displaced_total: 0,
            migrated_total: 0,
            down_nodes: 0,
            draining_nodes: 0,
            cap_total,
            cap_static: cap_total,
            idle_total,
            hp_total,
            spot_total,
            model_totals,
            node_domain: Vec::new(),
            domain_draining: Vec::new(),
            changes: ChangeLog::default(),
        }
    }

    /// Creates a homogeneous cluster: `node_count` nodes of `model` with
    /// `gpus_per_node` cards each (e.g. the 287-node A100 pool of §4.1).
    #[must_use]
    pub fn homogeneous(node_count: u32, model: GpuModel, gpus_per_node: u32) -> Self {
        Cluster::new(
            (0..node_count)
                .map(|i| Node::new(NodeId::new(i), model, gpus_per_node))
                .collect(),
        )
    }

    /// All nodes.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// One node by id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for an unknown id.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes
            .get(id.index())
            .filter(|n| n.id() == id)
            .ok_or_else(|| Error::NotFound(format!("{id}")))
    }

    fn node_mut(&mut self, id: NodeId) -> Result<&mut Node> {
        self.nodes
            .get_mut(id.index())
            .filter(|n| n.id() == id)
            .ok_or_else(|| Error::NotFound(format!("{id}")))
    }

    /// Nodes hosting the given GPU model.
    pub fn nodes_with_model(&self, model: GpuModel) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(move |n| n.model() == model)
    }

    /// In-service GPU cards (optionally restricted to one model) — O(1),
    /// down nodes excluded.
    #[must_use]
    pub fn capacity(&self, model: Option<GpuModel>) -> f64 {
        let Some(m) = model else {
            return self.cap_total;
        };
        self.model_totals.get(&m).map_or(0.0, |t| t.cap)
    }

    /// As-built GPU cards (optionally per model), down nodes included —
    /// the denominator of availability accounting.
    #[must_use]
    pub fn static_capacity(&self, model: Option<GpuModel>) -> f64 {
        let Some(m) = model else {
            return self.cap_static;
        };
        self.model_totals.get(&m).map_or(0.0, |t| t.cap_static)
    }

    /// Nodes currently in service.
    #[must_use]
    pub fn up_node_count(&self) -> usize {
        self.nodes.len() - self.down_nodes
    }

    /// Nodes currently out of service.
    #[must_use]
    pub fn down_node_count(&self) -> usize {
        self.down_nodes
    }

    /// Nodes currently draining for maintenance (up, but accepting no new
    /// placements).
    #[must_use]
    pub fn draining_node_count(&self) -> usize {
        self.draining_nodes
    }

    /// Nodes that can accept new placements: in service and not draining.
    #[must_use]
    pub fn schedulable_node_count(&self) -> usize {
        self.nodes.len() - self.down_nodes - self.draining_nodes
    }

    /// Sum of free card fractions (optionally per model).
    #[must_use]
    pub fn free_capacity(&self, model: Option<GpuModel>) -> f64 {
        self.nodes
            .iter()
            .filter(|n| model.is_none_or(|m| n.model() == m))
            .map(Node::free_capacity)
            .sum()
    }

    /// Count of completely idle cards (optionally per model) — the `S₀`
    /// of Eq. 10. O(1), down nodes excluded.
    #[must_use]
    pub fn idle_gpus(&self, model: Option<GpuModel>) -> u32 {
        let Some(m) = model else {
            return self.idle_total;
        };
        self.model_totals.get(&m).map_or(0, |t| t.idle)
    }

    /// Cards allocated to HP tasks (optionally per model) — O(1).
    #[must_use]
    pub fn hp_allocated(&self, model: Option<GpuModel>) -> f64 {
        let Some(m) = model else { return self.hp_total };
        self.model_totals.get(&m).map_or(0.0, |t| t.hp)
    }

    /// Cards allocated to spot tasks (optionally per model) — the `Sₐ`
    /// of Eq. 10. O(1).
    #[must_use]
    pub fn spot_allocated(&self, model: Option<GpuModel>) -> f64 {
        let Some(m) = model else {
            return self.spot_total;
        };
        self.model_totals.get(&m).map_or(0.0, |t| t.spot)
    }

    /// Overall allocation rate in `[0, 1]` (optionally per model).
    #[must_use]
    pub fn allocation_rate(&self, model: Option<GpuModel>) -> f64 {
        let cap = self.capacity(model);
        if cap == 0.0 {
            0.0
        } else {
            (self.hp_allocated(model) + self.spot_allocated(model)) / cap
        }
    }

    /// Registry of running tasks.
    pub fn running(&self) -> impl Iterator<Item = &RunningTask> {
        self.running.values()
    }

    /// Number of running tasks.
    #[must_use]
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Looks up one running task.
    #[must_use]
    pub fn running_task(&self, id: TaskId) -> Option<&RunningTask> {
        self.running.get(&id)
    }

    /// Spot tasks with at least one pod on `node`, ascending by task id.
    ///
    /// Served from the capacity index: O(spot tasks on the node) instead of
    /// a scan over the whole running registry.
    #[must_use]
    pub fn spot_tasks_on(&self, node: NodeId) -> Vec<&RunningTask> {
        self.index
            .spot_tasks_on(node)
            .iter()
            .map(|id| &self.running[id])
            .collect()
    }

    /// Whether `node` hosts at least one spot pod (index lookup).
    #[must_use]
    pub fn has_spot_on(&self, node: NodeId) -> bool {
        self.index.has_spot_on(node)
    }

    /// Number of nodes whose every card is idle (maintained incrementally).
    #[must_use]
    pub fn fully_idle_nodes(&self) -> usize {
        self.index.fully_idle_nodes()
    }

    /// Ascending node ids of `model` nodes with at least `need` whole idle
    /// cards — an O(answer) indexed query replacing full-cluster scans.
    #[must_use]
    pub fn whole_fit_candidates(&self, model: GpuModel, need: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.index.whole_fit_candidates(model, need, &mut out);
        out
    }

    /// Ascending node ids of `model` nodes that may fit a `frac` share of
    /// one card. The quantized index makes this a conservative superset;
    /// every returned node is re-checked here against exact card state, so
    /// the result equals a brute-force [`Node::can_fit`] scan.
    #[must_use]
    pub fn fraction_fit_candidates(&self, model: GpuModel, frac: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.index.fraction_fit_candidates(model, frac, &mut out);
        out.retain(|&id| {
            self.nodes
                .get(id as usize)
                .is_some_and(|n| n.can_fit(gfs_types::GpuDemand::Fraction(frac)))
        });
        out
    }

    /// Ascending node ids worth visiting when planning preemption of
    /// `need` cards on `model` nodes: nodes that already fit plus nodes
    /// hosting at least one spot pod. Other nodes cannot become feasible
    /// by evicting spot tasks.
    #[must_use]
    pub fn preemption_candidates(&self, model: GpuModel, need: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.index.preemption_candidates(model, need, &mut out);
        out
    }

    /// Walks `model` nodes best-fit-first (smallest sufficient idle count,
    /// ascending node id inside a bucket) until `accept` returns `true`,
    /// and returns that node — O(nodes skipped + 1). See
    /// [`CapacityIndex::best_fit_walk`].
    pub fn best_fit_walk(
        &self,
        model: GpuModel,
        need: u32,
        accept: impl FnMut(u32) -> bool,
    ) -> Option<u32> {
        self.index.best_fit_walk(model, need, accept)
    }

    /// The capacity-index placement key of node `id`: `(model, idle
    /// cards)` while schedulable, `None` while down or draining. See
    /// [`CapacityIndex::node_placement_key`].
    #[must_use]
    pub fn node_placement_key(&self, id: u32) -> Option<(GpuModel, u32)> {
        self.index.node_placement_key(id)
    }

    /// The mutation log feeding epoch-invalidated placement caches: every
    /// score-relevant node change (occupancy, eviction records,
    /// fail/drain/restore, scale-out) is recorded here. Readers keep a
    /// [`ChangeLog::cursor`] and replay only what changed.
    #[must_use]
    pub fn change_log(&self) -> &ChangeLog {
        &self.changes
    }

    /// Historical count of spot tasks that ran to completion (`G`).
    #[must_use]
    pub fn spot_completed(&self) -> u64 {
        self.spot_completed
    }

    /// Historical count of spot eviction events (`F`).
    #[must_use]
    pub fn spot_evicted(&self) -> u64 {
        self.spot_evicted
    }

    /// Historical count of tasks displaced by node failures (kept apart
    /// from `F`: displacement is hardware churn, not preemption).
    #[must_use]
    pub fn displaced(&self) -> u64 {
        self.displaced_total
    }

    /// Historical count of tasks gracefully migrated off draining nodes
    /// (kept apart from both `F` and the forced-displacement count: a
    /// migration honours the drain notice instead of losing the node).
    #[must_use]
    pub fn migrated(&self) -> u64 {
        self.migrated_total
    }

    /// Declares the cluster's failure-domain topology (racks, pods — the
    /// blast radii of correlated failures). Nodes listed in no domain, and
    /// every node when this is never called, report
    /// [`Cluster::domain_of`]` == None`. A node listed twice keeps its
    /// first domain; unknown node ids are ignored (shape-shared
    /// topologies degrade gracefully, like shape-shared dynamics plans).
    pub fn set_failure_domains(&mut self, domains: &[FailureDomain]) {
        self.node_domain = vec![None; self.nodes.len()];
        self.domain_draining = vec![0; domains.len()];
        for (d, domain) in domains.iter().enumerate() {
            for &node in &domain.nodes {
                if let Some(slot) = self.node_domain.get_mut(node.index()) {
                    slot.get_or_insert(d as u32);
                }
            }
        }
        // a topology declared mid-run must pick up in-progress drains
        for n in &self.nodes {
            if n.is_draining() {
                if let Some(Some(d)) = self.node_domain.get(n.id().index()) {
                    self.domain_draining[*d as usize] += 1;
                }
            }
        }
    }

    /// The failure domain `id` belongs to, as an index into the declared
    /// topology — O(1). `None` when the node is outside every domain or
    /// no topology was declared.
    #[must_use]
    pub fn domain_of(&self, id: NodeId) -> Option<u32> {
        self.node_domain.get(id.index()).copied().flatten()
    }

    /// Number of declared failure domains (0 without a topology).
    #[must_use]
    pub fn failure_domain_count(&self) -> usize {
        self.domain_draining.len()
    }

    /// Nodes currently draining inside failure domain `domain` — O(1),
    /// maintained incrementally through drain/restore/fail. Drain-aware
    /// placement uses this to steer gangs away from a rack that is
    /// mid-maintenance (its remaining nodes are usually next in the wave).
    #[must_use]
    pub fn draining_in_domain(&self, domain: u32) -> u32 {
        self.domain_draining
            .get(domain as usize)
            .copied()
            .unwrap_or(0)
    }

    fn change_domain_draining(&mut self, id: NodeId, delta: i32) {
        if let Some(Some(d)) = self.node_domain.get(id.index()) {
            let slot = &mut self.domain_draining[*d as usize];
            *slot = slot
                .checked_add_signed(delta)
                .expect("drain counts balance");
        }
    }

    /// Places `spec` with one pod per entry of `pod_nodes`, atomically
    /// (gang semantics): on any failure every already-placed pod is rolled
    /// back and an error returned.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidTask`] if the node list length differs from the pod
    /// count or the task is already running; [`Error::Capacity`] if any pod
    /// does not fit.
    pub fn start_task(
        &mut self,
        spec: impl Into<Arc<TaskSpec>>,
        pod_nodes: &[NodeId],
        now: SimTime,
        carried_progress: SimDuration,
    ) -> Result<()> {
        let spec: Arc<TaskSpec> = spec.into();
        if pod_nodes.len() != spec.pods as usize {
            return Err(Error::InvalidTask(format!(
                "{}: {} pod nodes for {} pods",
                spec.id,
                pod_nodes.len(),
                spec.pods
            )));
        }
        if self.running.contains_key(&spec.id) {
            return Err(Error::InvalidTask(format!(
                "{} is already running",
                spec.id
            )));
        }
        let mut placements: Vec<PodPlacement> = Vec::with_capacity(pod_nodes.len());
        for &nid in pod_nodes {
            let demand = spec.gpus_per_pod;
            let priority = spec.priority;
            let task = spec.id;
            let result = self.node_mut(nid).and_then(|n| {
                let before = (n.idle_gpus(), n.hp_allocated(), n.spot_allocated());
                n.place_pod(task, demand, priority)
                    .map(|alloc| (before, alloc))
            });
            match result {
                Ok((before, alloc)) => {
                    placements.push(PodPlacement { node: nid, alloc });
                    self.apply_node_delta(nid, before);
                }
                Err(e) => {
                    // roll back the partial gang
                    for p in &placements {
                        let before = {
                            let n = &self.nodes[p.node.index()];
                            (n.idle_gpus(), n.hp_allocated(), n.spot_allocated())
                        };
                        self.node_mut(p.node)
                            .expect("placed node exists")
                            .release_pod(task, &p.alloc, priority)
                            .expect("rollback of a fresh placement succeeds");
                        self.apply_node_delta(p.node, before);
                        let node = &self.nodes[p.node.index()];
                        self.index.refresh(node);
                        self.changes.note(p.node.raw());
                    }
                    // the failing node itself was never mutated
                    return Err(e);
                }
            }
            let node = &self.nodes[nid.index()];
            self.index.refresh(node);
            self.changes.note(nid.raw());
        }
        if spec.priority.is_spot() {
            for p in &placements {
                self.index.add_spot(p.node, spec.id);
            }
        }
        self.running.insert(
            spec.id,
            RunningTask {
                spec,
                placements,
                started_at: now,
                carried_progress,
            },
        );
        Ok(())
    }

    /// Completes a running task, releasing its GPUs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] if the task is not running.
    pub fn finish_task(&mut self, id: TaskId, _now: SimTime) -> Result<RunningTask> {
        let rt = self
            .running
            .remove(&id)
            .ok_or_else(|| Error::NotFound(format!("{id} not running")))?;
        self.release_placements(&rt);
        if rt.spec.priority.is_spot() {
            self.spot_completed += 1;
        }
        Ok(rt)
    }

    /// Evicts a running spot task at `now`: releases its GPUs, records the
    /// eviction on each hosting node, bumps `F`, and returns the task with
    /// the progress that survived (per its checkpoint plan).
    ///
    /// # Errors
    ///
    /// [`Error::NotFound`] if the task is not running;
    /// [`Error::InvalidTask`] when attempting to evict an HP task
    /// (constraint 12c/12d).
    pub fn evict_task(&mut self, id: TaskId, now: SimTime) -> Result<(RunningTask, SimDuration)> {
        let is_hp = self
            .running
            .get(&id)
            .ok_or_else(|| Error::NotFound(format!("{id} not running")))?
            .spec
            .priority
            .is_hp();
        if is_hp {
            return Err(Error::InvalidTask(format!(
                "{id} is HP and cannot be evicted"
            )));
        }
        let rt = self.running.remove(&id).expect("presence checked above");
        self.release_placements(&rt);
        let mut seen = Vec::new();
        for p in &rt.placements {
            if !seen.contains(&p.node) {
                seen.push(p.node);
                self.node_mut(p.node)
                    .expect("hosting node exists")
                    .record_eviction(now);
                // eviction-window scores changed even though occupancy was
                // already re-noted by the release above
                self.changes.note(p.node.raw());
            }
        }
        self.spot_evicted += 1;
        let preserved = rt.preserved_progress(now);
        Ok((rt, preserved))
    }

    fn release_placements(&mut self, rt: &RunningTask) {
        for p in &rt.placements {
            let before = {
                let n = &self.nodes[p.node.index()];
                (n.idle_gpus(), n.hp_allocated(), n.spot_allocated())
            };
            self.node_mut(p.node)
                .expect("hosting node exists")
                .release_pod(rt.spec.id, &p.alloc, rt.spec.priority)
                .expect("running placements are consistent");
            self.apply_node_delta(p.node, before);
            let node = &self.nodes[p.node.index()];
            self.index.refresh(node);
            self.changes.note(p.node.raw());
            if rt.spec.priority.is_spot() {
                self.index.remove_spot(p.node, rt.spec.id);
            }
        }
    }

    /// Folds one node's state change into the cluster-wide and per-model
    /// totals, given a `(idle, hp, spot)` snapshot taken before the
    /// mutation. The deltas mirror the node's own `+=`/`-=` updates, so
    /// the totals are deterministic; with the dyadic card fractions used
    /// throughout the workloads (whole cards, 0.25, 0.5) every delta is
    /// exact and the totals equal a fresh scan bit-for-bit.
    fn apply_node_delta(&mut self, id: NodeId, before: (u32, f64, f64)) {
        let n = &self.nodes[id.index()];
        let (idle, hp, spot) = (n.idle_gpus(), n.hp_allocated(), n.spot_allocated());
        let model = n.model();
        self.idle_total = self.idle_total + idle - before.0;
        self.hp_total += hp - before.1;
        self.spot_total += spot - before.2;
        let t = self.model_totals.entry(model).or_default();
        t.idle = t.idle + idle - before.0;
        t.hp += hp - before.1;
        t.spot += spot - before.2;
    }

    /// Returns `id`'s cards and capacity-index keys to the placement
    /// structures — the single re-index path shared by
    /// [`Cluster::restore_node`] (repair finished / drain cancelled) and
    /// [`Cluster::add_node`] (fresh machine). The node must already be
    /// schedulable; totals are credited from its *actual* card state, so
    /// a drain-cancelled node with pods still running re-enters with only
    /// its genuinely free cards.
    fn bring_into_service(&mut self, id: NodeId) {
        let node = &self.nodes[id.index()];
        debug_assert!(node.is_schedulable(), "re-index of an out-of-service node");
        let cards = f64::from(node.total_gpus());
        let idle = node.idle_gpus();
        let model = node.model();
        self.idle_total += idle;
        self.cap_total += cards;
        let t = self.model_totals.entry(model).or_default();
        t.idle += idle;
        t.cap += cards;
        self.index.restore_node(&self.nodes[id.index()]);
        self.changes.note(id.raw());
    }

    /// Starts a maintenance drain of `id`, to be forced down at
    /// `deadline`: the node accepts no new placements from this moment
    /// (its capacity-index keys vanish and its cards leave the
    /// in-service capacity totals), while running pods keep executing —
    /// they may finish inside the notice window, be migrated by the
    /// simulator, or be forcibly displaced at the deadline
    /// ([`Cluster::fail_node`] accounting).
    ///
    /// Note that allocation totals keep counting the draining node's
    /// running pods, so `allocation_rate` can transiently exceed 1 during
    /// a drain window — allocated work on capacity that is on its way
    /// out.
    ///
    /// # Errors
    ///
    /// [`Error::NotFound`] for an unknown id; [`Error::InvalidTask`] when
    /// the node is down or already draining.
    pub fn drain_node(&mut self, id: NodeId, deadline: SimTime) -> Result<()> {
        let node = self.node(id)?;
        if !node.is_up() {
            return Err(Error::InvalidTask(format!("{id} is down and cannot drain")));
        }
        if node.is_draining() {
            return Err(Error::InvalidTask(format!("{id} is already draining")));
        }
        let node = &mut self.nodes[id.index()];
        let idle = node.idle_gpus();
        let cards = f64::from(node.total_gpus());
        let model = node.model();
        node.set_draining(Some(deadline));
        node.record_drain();
        self.draining_nodes += 1;
        self.change_domain_draining(id, 1);
        self.idle_total -= idle;
        self.cap_total -= cards;
        let t = self.model_totals.entry(model).or_default();
        t.idle -= idle;
        t.cap -= cards;
        // placement keys vanish; the spot locality list stays (the node
        // still hosts its pods until they finish or the deadline hits)
        self.index.remove_node(&self.nodes[id.index()]);
        self.changes.note(id.raw());
        Ok(())
    }

    /// Adds a fresh node of `model` with `gpus_per_node` cards, minting
    /// the next sequential [`NodeId`] (scale-out / autoscaling). The new
    /// node joins every capacity total and placement query immediately.
    pub fn add_node(&mut self, model: GpuModel, gpus_per_node: u32) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(Node::new(id, model, gpus_per_node));
        if !self.node_domain.is_empty() {
            // a minted node belongs to no declared blast radius
            self.node_domain.push(None);
        }
        let cards = f64::from(gpus_per_node);
        self.cap_static += cards;
        self.model_totals.entry(model).or_default().cap_static += cards;
        self.bring_into_service(id);
        id
    }

    /// Gracefully migrates a running task off its nodes (drain-notice
    /// path): releases its GPUs everywhere and returns the task with the
    /// progress its checkpoint plan preserved, ready to requeue. Unlike
    /// [`Cluster::evict_task`] this records no eviction (no `F` bump, no
    /// per-node eviction history — honouring a maintenance notice is not
    /// preemption pressure), and unlike a failure the gang leaves on its
    /// own terms before the node goes down.
    ///
    /// # Errors
    ///
    /// [`Error::NotFound`] if the task is not running.
    pub fn migrate_task(&mut self, id: TaskId, now: SimTime) -> Result<(RunningTask, SimDuration)> {
        let rt = self
            .running
            .remove(&id)
            .ok_or_else(|| Error::NotFound(format!("{id} not running")))?;
        self.release_placements(&rt);
        let preserved = rt.preserved_progress(now);
        self.migrated_total += 1;
        Ok((rt, preserved))
    }

    /// Takes `id` out of service at `now`: every task with at least one
    /// pod on it is drained through the shared release path (the same
    /// bookkeeping evictions and rollbacks use), the node's capacity-index
    /// buckets vanish atomically, and its cards leave every capacity
    /// total. Both HP and spot tasks die — hardware does not honour
    /// priorities.
    ///
    /// The drained tasks are returned in ascending task-id order with the
    /// progress their checkpoint plans preserved, ready to requeue.
    /// Displacements are *not* recorded as evictions: `F` (Eq. 18), the
    /// per-node eviction history (Eq. 15) and the SQA feedback loop
    /// (Eq. 11) model preemption behaviour, and hardware churn polluting
    /// them would mis-tune spot admission.
    ///
    /// # Errors
    ///
    /// [`Error::NotFound`] for an unknown id; [`Error::InvalidTask`] when
    /// the node is already down.
    pub fn fail_node(&mut self, id: NodeId, now: SimTime) -> Result<Vec<Displaced>> {
        if !self.node(id)?.is_up() {
            return Err(Error::InvalidTask(format!("{id} is already down")));
        }
        // a draining node's cards and placement keys already left the
        // totals/index when the drain started; don't remove them twice
        let was_draining = self.nodes[id.index()].is_draining();
        // gang semantics in reverse: a task with any pod on the failed
        // node loses its whole gang, everywhere it runs
        let victims: Vec<TaskId> = self
            .running
            .iter()
            .filter(|(_, rt)| rt.placements.iter().any(|p| p.node == id))
            .map(|(tid, _)| *tid)
            .collect();
        let mut displaced = Vec::with_capacity(victims.len());
        for tid in victims {
            let rt = self
                .running
                .remove(&tid)
                .expect("collected from the registry");
            self.release_placements(&rt);
            let preserved = rt.preserved_progress(now);
            self.displaced_total += 1;
            displaced.push(Displaced {
                task: rt,
                preserved,
            });
        }
        // the node is now empty: remove it from the index (all its buckets
        // vanish in one idempotent call) and from the capacity totals
        self.index.remove_node(&self.nodes[id.index()]);
        self.changes.note(id.raw());
        let node = &mut self.nodes[id.index()];
        let cards = node.total_gpus();
        node.set_up(false);
        node.set_draining(None);
        node.record_failure(now);
        self.down_nodes += 1;
        if was_draining {
            self.draining_nodes -= 1;
            self.change_domain_draining(id, -1);
        } else {
            self.idle_total -= cards;
            self.cap_total -= f64::from(cards);
            let model = self.nodes[id.index()].model();
            let t = self.model_totals.entry(model).or_default();
            t.idle -= cards;
            t.cap -= f64::from(cards);
        }
        Ok(displaced)
    }

    /// Returns `id` to service. For a *down* node: all cards idle,
    /// capacity totals and index buckets restored, eviction history
    /// cleared (a machine back from repair must not inherit pre-failure
    /// eviction pressure in the Eq. 15–16 scores). For a *draining* node
    /// the drain is cancelled: its running pods were never disturbed, its
    /// still-free cards return to the totals, and its eviction history is
    /// kept — nothing was repaired.
    ///
    /// # Errors
    ///
    /// [`Error::NotFound`] for an unknown id; [`Error::InvalidTask`] when
    /// the node is already in full service.
    pub fn restore_node(&mut self, id: NodeId, _now: SimTime) -> Result<()> {
        let node = self.node(id)?;
        if node.is_up() && !node.is_draining() {
            return Err(Error::InvalidTask(format!("{id} is already up")));
        }
        let node = &mut self.nodes[id.index()];
        if node.is_up() {
            // cancel the in-progress drain; pods kept running throughout
            node.set_draining(None);
            self.draining_nodes -= 1;
            self.change_domain_draining(id, -1);
        } else {
            node.set_up(true);
            node.clear_eviction_history();
            self.down_nodes -= 1;
        }
        self.bring_into_service(id);
        Ok(())
    }

    /// Captures the cluster's full state as a serializable image: every
    /// node (card occupancy, failure/drain history, up/draining flags),
    /// the running-task registry, the spot/displacement/migration
    /// counters and every incrementally-accumulated capacity total —
    /// the floats verbatim, never recomputed, so restore is
    /// bit-identical. The [`CapacityIndex`] is *not* serialized: it is a
    /// pure acceleration structure and [`Cluster::from_snapshot`]
    /// rebuilds it to a behaviorally identical state.
    #[must_use]
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            nodes: self.nodes.iter().map(Node::snapshot).collect(),
            running: self
                .running
                .values()
                .map(|rt| RunningEntry {
                    spec: (*rt.spec).clone(),
                    placements: rt.placements.clone(),
                    started_at: rt.started_at,
                    carried_progress: rt.carried_progress,
                })
                .collect(),
            spot_completed: self.spot_completed,
            spot_evicted: self.spot_evicted,
            displaced_total: self.displaced_total,
            migrated_total: self.migrated_total,
            down_nodes: self.down_nodes,
            draining_nodes: self.draining_nodes,
            cap_total: self.cap_total,
            cap_static: self.cap_static,
            idle_total: self.idle_total,
            hp_total: self.hp_total,
            spot_total: self.spot_total,
            model_totals: self.model_totals.iter().map(|(m, t)| (*m, *t)).collect(),
            node_domain: self.node_domain.clone(),
            domain_draining: self.domain_draining.clone(),
        }
    }

    /// Streams the canonical JSON of [`Cluster::snapshot`] into `out`
    /// without materializing the [`ClusterSnapshot`] — no node-array
    /// clone, no per-task spec deep copies. Byte-identical to
    /// serializing the snapshot (the framing mirrors the derive: no
    /// field is ever skipped, so commas are static); fleet-scale
    /// checkpointing leans on this to keep snapshot cost linear in the
    /// serialized bytes alone.
    pub fn snapshot_json_into(&self, out: &mut String) {
        out.push_str("{\"nodes\":[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            n.snapshot().serialize_json(out);
        }
        out.push_str("],\"running\":[");
        for (i, rt) in self.running.values().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"spec\":");
            rt.spec.serialize_json(out);
            out.push_str(",\"placements\":");
            rt.placements.serialize_json(out);
            out.push_str(",\"started_at\":");
            rt.started_at.serialize_json(out);
            out.push_str(",\"carried_progress\":");
            rt.carried_progress.serialize_json(out);
            out.push('}');
        }
        out.push_str("],\"spot_completed\":");
        self.spot_completed.serialize_json(out);
        out.push_str(",\"spot_evicted\":");
        self.spot_evicted.serialize_json(out);
        out.push_str(",\"displaced_total\":");
        self.displaced_total.serialize_json(out);
        out.push_str(",\"migrated_total\":");
        self.migrated_total.serialize_json(out);
        out.push_str(",\"down_nodes\":");
        self.down_nodes.serialize_json(out);
        out.push_str(",\"draining_nodes\":");
        self.draining_nodes.serialize_json(out);
        out.push_str(",\"cap_total\":");
        self.cap_total.serialize_json(out);
        out.push_str(",\"cap_static\":");
        self.cap_static.serialize_json(out);
        out.push_str(",\"idle_total\":");
        self.idle_total.serialize_json(out);
        out.push_str(",\"hp_total\":");
        self.hp_total.serialize_json(out);
        out.push_str(",\"spot_total\":");
        self.spot_total.serialize_json(out);
        out.push_str(",\"model_totals\":[");
        for (i, (m, t)) in self.model_totals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            m.serialize_json(out);
            out.push(',');
            t.serialize_json(out);
            out.push(']');
        }
        out.push_str("],\"node_domain\":");
        self.node_domain.serialize_json(out);
        out.push_str(",\"domain_draining\":");
        self.domain_draining.serialize_json(out);
        out.push('}');
    }

    /// Rebuilds a cluster from a [`ClusterSnapshot`]. All persisted
    /// fields are restored verbatim; the capacity index is rebuilt from
    /// the restored nodes (full build, then removal of unschedulable
    /// nodes, then re-registration of every running spot placement),
    /// which reproduces the live index's observable behaviour exactly.
    #[must_use]
    // gfs-lint: allow(changelog-coverage, "constructor returns a fresh ChangeLog instance; instance minting already forces every ScoreIndex reader to full-rebuild")
    pub fn from_snapshot(s: ClusterSnapshot) -> Cluster {
        let nodes: Vec<Node> = s.nodes.into_iter().map(Node::from_snapshot).collect();
        let mut index = CapacityIndex::build(&nodes);
        for n in &nodes {
            if !n.is_schedulable() {
                index.remove_node(n);
            }
        }
        let mut running = BTreeMap::new();
        for e in s.running {
            let spec = Arc::new(e.spec);
            if spec.priority.is_spot() {
                for p in &e.placements {
                    index.add_spot(p.node, spec.id);
                }
            }
            running.insert(
                spec.id,
                RunningTask {
                    spec,
                    placements: e.placements,
                    started_at: e.started_at,
                    carried_progress: e.carried_progress,
                },
            );
        }
        Cluster {
            nodes,
            running,
            index,
            spot_completed: s.spot_completed,
            spot_evicted: s.spot_evicted,
            displaced_total: s.displaced_total,
            migrated_total: s.migrated_total,
            down_nodes: s.down_nodes,
            draining_nodes: s.draining_nodes,
            cap_total: s.cap_total,
            cap_static: s.cap_static,
            idle_total: s.idle_total,
            hp_total: s.hp_total,
            spot_total: s.spot_total,
            model_totals: s.model_totals.into_iter().collect(),
            node_domain: s.node_domain,
            domain_draining: s.domain_draining,
            changes: ChangeLog::default(),
        }
    }
}

/// Serializable image of a [`Cluster`] (see [`Cluster::snapshot`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    nodes: Vec<NodeSnapshot>,
    running: Vec<RunningEntry>,
    spot_completed: u64,
    spot_evicted: u64,
    displaced_total: u64,
    migrated_total: u64,
    down_nodes: usize,
    draining_nodes: usize,
    cap_total: f64,
    cap_static: f64,
    idle_total: u32,
    hp_total: f64,
    spot_total: f64,
    model_totals: Vec<(GpuModel, ModelTotals)>,
    node_domain: Vec<Option<u32>>,
    domain_draining: Vec<u32>,
}

/// One running task inside a [`ClusterSnapshot`]: the spec is stored by
/// value (the `Arc` sharing with the simulator's task table is an
/// in-memory optimisation, not state).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RunningEntry {
    spec: TaskSpec,
    placements: Vec<PodPlacement>,
    started_at: SimTime,
    carried_progress: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs_types::{CheckpointPlan, GpuDemand, Priority, HOUR};

    fn spec(id: u64, priority: Priority, pods: u32, gpus: u32) -> TaskSpec {
        TaskSpec::builder(id)
            .priority(priority)
            .pods(pods)
            .gpus_per_pod(GpuDemand::whole(gpus))
            .duration_secs(7_200)
            .checkpoint(CheckpointPlan::Periodic { interval: 1_800 })
            .build()
            .unwrap()
    }

    fn cluster() -> Cluster {
        Cluster::homogeneous(4, GpuModel::A100, 8)
    }

    #[test]
    fn streamed_snapshot_json_is_byte_identical() {
        let mut c = Cluster::homogeneous(6, GpuModel::A100, 8);
        c.set_failure_domains(&[
            FailureDomain::new([NodeId::new(0), NodeId::new(1), NodeId::new(2)]),
            FailureDomain::new([NodeId::new(3), NodeId::new(4)]),
        ]);
        c.start_task(
            spec(1, Priority::Hp, 2, 4),
            &[NodeId::new(0), NodeId::new(1)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        c.start_task(
            spec(2, Priority::Spot, 1, 8),
            &[NodeId::new(2)],
            SimTime::from_secs(30),
            120,
        )
        .unwrap();
        c.fail_node(NodeId::new(4), SimTime::from_secs(60)).unwrap();
        c.drain_node(NodeId::new(3), SimTime::from_secs(500))
            .unwrap();
        c.add_node(GpuModel::H800, 8);
        let mut derived = String::new();
        c.snapshot().serialize_json(&mut derived);
        let mut streamed = String::new();
        c.snapshot_json_into(&mut streamed);
        assert_eq!(derived, streamed);
    }

    #[test]
    fn capacity_accounting() {
        let c = cluster();
        assert_eq!(c.capacity(None), 32.0);
        assert_eq!(c.idle_gpus(None), 32);
        assert_eq!(c.capacity(Some(GpuModel::H800)), 0.0);
        assert_eq!(c.allocation_rate(None), 0.0);
    }

    #[test]
    fn start_finish_round_trip() {
        let mut c = cluster();
        let s = spec(1, Priority::Hp, 2, 4);
        c.start_task(s, &[NodeId::new(0), NodeId::new(1)], SimTime::ZERO, 0)
            .unwrap();
        assert_eq!(c.hp_allocated(None), 8.0);
        assert_eq!(c.running_count(), 1);
        let rt = c
            .finish_task(TaskId::new(1), SimTime::from_hours(2))
            .unwrap();
        assert_eq!(rt.spec.id, TaskId::new(1));
        assert_eq!(c.hp_allocated(None), 0.0);
        assert_eq!(c.running_count(), 0);
    }

    #[test]
    fn gang_placement_rolls_back_atomically() {
        let mut c = cluster();
        // fill node 1 completely
        c.start_task(
            spec(1, Priority::Hp, 1, 8),
            &[NodeId::new(1)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        // gang asking for node0 + node1 must fail and leave node0 untouched
        let r = c.start_task(
            spec(2, Priority::Hp, 2, 8),
            &[NodeId::new(0), NodeId::new(1)],
            SimTime::ZERO,
            0,
        );
        assert!(r.is_err());
        assert_eq!(
            c.node(NodeId::new(0)).unwrap().idle_gpus(),
            8,
            "rollback freed node 0"
        );
        assert_eq!(c.running_count(), 1);
    }

    #[test]
    fn eviction_counts_and_preserves_checkpoint() {
        let mut c = cluster();
        let s = spec(3, Priority::Spot, 1, 4);
        c.start_task(s, &[NodeId::new(2)], SimTime::ZERO, 0)
            .unwrap();
        let now = SimTime::from_secs(4_000); // two checkpoints at 1800/3600
        let (rt, preserved) = c.evict_task(TaskId::new(3), now).unwrap();
        assert_eq!(preserved, 3_600);
        assert_eq!(rt.wasted_seconds(now), 400);
        assert!((rt.waste(now) - 4.0 * 400.0).abs() < 1e-9);
        assert_eq!(c.spot_evicted(), 1);
        assert_eq!(
            c.node(NodeId::new(2))
                .unwrap()
                .evictions_within(now, 3_600 * 2),
            1
        );
    }

    #[test]
    fn hp_tasks_cannot_be_evicted() {
        let mut c = cluster();
        c.start_task(
            spec(4, Priority::Hp, 1, 1),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        assert!(c.evict_task(TaskId::new(4), SimTime::ZERO).is_err());
        assert_eq!(
            c.running_count(),
            1,
            "task must survive the failed eviction"
        );
    }

    #[test]
    fn spot_tasks_on_filters_by_node() {
        let mut c = cluster();
        c.start_task(
            spec(5, Priority::Spot, 1, 2),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        c.start_task(
            spec(6, Priority::Spot, 1, 2),
            &[NodeId::new(1)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        c.start_task(
            spec(7, Priority::Hp, 1, 2),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let on0 = c.spot_tasks_on(NodeId::new(0));
        assert_eq!(on0.len(), 1);
        assert_eq!(on0[0].spec.id, TaskId::new(5));
    }

    #[test]
    fn remaining_work_shrinks_with_time() {
        let mut c = cluster();
        c.start_task(
            spec(8, Priority::Spot, 1, 1),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let rt = c.running_task(TaskId::new(8)).unwrap();
        assert_eq!(rt.remaining(SimTime::from_secs(7_200)), 0);
        assert_eq!(rt.remaining(SimTime::from_secs(3_600)), 3_600);
        assert_eq!(rt.progress(SimTime::from_secs(100)), 100);
    }

    #[test]
    fn duplicate_start_rejected() {
        let mut c = cluster();
        c.start_task(
            spec(9, Priority::Hp, 1, 1),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let again = spec(9, Priority::Hp, 1, 1);
        assert!(c
            .start_task(again, &[NodeId::new(1)], SimTime::ZERO, 0)
            .is_err());
    }

    /// The O(1) cluster totals must track brute-force node scans through
    /// placements, finishes, evictions and failed (rolled-back) gangs.
    #[test]
    fn cached_totals_match_scans() {
        let assert_consistent = |c: &Cluster| {
            let idle: u32 = c.nodes().iter().map(Node::idle_gpus).sum();
            let hp: f64 = c.nodes().iter().map(Node::hp_allocated).sum();
            let spot: f64 = c.nodes().iter().map(Node::spot_allocated).sum();
            let cap: f64 = c.nodes().iter().map(|n| f64::from(n.total_gpus())).sum();
            assert_eq!(c.idle_gpus(None), idle);
            assert_eq!(c.hp_allocated(None), hp);
            assert_eq!(c.spot_allocated(None), spot);
            assert_eq!(c.capacity(None), cap);
        };
        let mut c = cluster();
        assert_consistent(&c);
        c.start_task(
            spec(1, Priority::Hp, 2, 4),
            &[NodeId::new(0), NodeId::new(1)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        assert_consistent(&c);
        c.start_task(
            spec(2, Priority::Spot, 1, 2),
            &[NodeId::new(2)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        assert_consistent(&c);
        // fractional placement
        let frac = TaskSpec::builder(3)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::fraction(0.25).unwrap())
            .duration_secs(1_000)
            .build()
            .unwrap();
        c.start_task(frac, &[NodeId::new(3)], SimTime::ZERO, 0)
            .unwrap();
        assert_consistent(&c);
        // failed gang rolls back cleanly
        assert!(c
            .start_task(
                spec(4, Priority::Hp, 2, 8),
                &[NodeId::new(0), NodeId::new(1)],
                SimTime::ZERO,
                0
            )
            .is_err());
        assert_consistent(&c);
        c.evict_task(TaskId::new(2), SimTime::from_secs(100))
            .unwrap();
        assert_consistent(&c);
        c.finish_task(TaskId::new(1), SimTime::from_hours(2))
            .unwrap();
        assert_consistent(&c);
        assert_eq!(c.idle_gpus(None), 31, "only the fractional card is busy");
    }

    #[test]
    fn fail_node_drains_hp_and_spot_and_removes_capacity() {
        let mut c = cluster();
        c.start_task(
            spec(1, Priority::Hp, 2, 4),
            &[NodeId::new(0), NodeId::new(1)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        c.start_task(
            spec(2, Priority::Spot, 1, 2),
            &[NodeId::new(1)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        c.start_task(
            spec(3, Priority::Spot, 1, 8),
            &[NodeId::new(2)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let displaced = c
            .fail_node(NodeId::new(1), SimTime::from_secs(2_000))
            .unwrap();
        // the gang on nodes 0+1 dies entirely, plus the spot task on node 1
        let ids: Vec<u64> = displaced.iter().map(|d| d.task.spec.id.raw()).collect();
        assert_eq!(ids, vec![1, 2], "ascending task-id order");
        // checkpoint plan (1800 s interval): one checkpoint survived
        assert_eq!(displaced[0].preserved, 1_800);
        assert_eq!(c.running_count(), 1, "node 2 task untouched");
        assert!(!c.node(NodeId::new(1)).unwrap().is_up());
        assert_eq!(c.capacity(None), 24.0, "8 cards left service");
        assert_eq!(c.static_capacity(None), 32.0, "as-built total unchanged");
        assert_eq!(c.capacity(Some(GpuModel::A100)), 24.0);
        assert_eq!(
            c.idle_gpus(None),
            16,
            "nodes 0,3 idle; node 2 full; node 1 gone"
        );
        assert_eq!(c.hp_allocated(None), 0.0, "gang released everywhere");
        assert_eq!(c.spot_allocated(None), 8.0);
        assert_eq!(c.up_node_count(), 3);
        assert_eq!(c.displaced(), 2);
        assert_eq!(c.spot_evicted(), 0, "displacement is not preemption");
        // the down node is invisible to every placement query
        assert!(!c.whole_fit_candidates(GpuModel::A100, 1).contains(&1));
        assert!(
            c.fail_node(NodeId::new(1), SimTime::ZERO).is_err(),
            "double fail rejected"
        );
    }

    #[test]
    fn restore_node_brings_capacity_and_buckets_back() {
        let mut c = cluster();
        c.fail_node(NodeId::new(2), SimTime::ZERO).unwrap();
        assert!(
            c.restore_node(NodeId::new(0), SimTime::ZERO).is_err(),
            "already up"
        );
        c.restore_node(NodeId::new(2), SimTime::from_hours(2))
            .unwrap();
        assert_eq!(c.capacity(None), 32.0);
        assert_eq!(c.idle_gpus(None), 32);
        assert_eq!(c.down_node_count(), 0);
        assert!(c.whole_fit_candidates(GpuModel::A100, 8).contains(&2));
        // and it accepts pods again
        c.start_task(
            spec(9, Priority::Hp, 1, 8),
            &[NodeId::new(2)],
            SimTime::from_hours(2),
            0,
        )
        .unwrap();
        assert_eq!(c.hp_allocated(None), 8.0);
    }

    #[test]
    fn restore_clears_eviction_history() {
        let mut c = cluster();
        c.start_task(
            spec(1, Priority::Spot, 1, 2),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        c.evict_task(TaskId::new(1), SimTime::from_secs(100))
            .unwrap();
        assert_eq!(
            c.node(NodeId::new(0))
                .unwrap()
                .evictions_within(SimTime::from_secs(200), HOUR),
            1
        );
        c.fail_node(NodeId::new(0), SimTime::from_secs(300))
            .unwrap();
        c.restore_node(NodeId::new(0), SimTime::from_secs(400))
            .unwrap();
        assert_eq!(
            c.node(NodeId::new(0))
                .unwrap()
                .evictions_within(SimTime::from_secs(500), HOUR),
            0,
            "a machine back from repair starts with a clean history"
        );
    }

    #[test]
    fn start_task_on_down_node_rolls_back() {
        let mut c = cluster();
        c.fail_node(NodeId::new(1), SimTime::ZERO).unwrap();
        let r = c.start_task(
            spec(5, Priority::Hp, 2, 2),
            &[NodeId::new(0), NodeId::new(1)],
            SimTime::ZERO,
            0,
        );
        assert!(r.is_err());
        assert_eq!(
            c.idle_gpus(None),
            24,
            "node 0 rolled back, node 1 still down"
        );
        assert_eq!(c.running_count(), 0);
    }

    #[test]
    fn per_model_totals_track_heterogeneous_pools() {
        let mut nodes: Vec<Node> = (0..2)
            .map(|i| Node::new(NodeId::new(i), GpuModel::A100, 8))
            .collect();
        nodes.push(Node::new(NodeId::new(2), GpuModel::H800, 8));
        let mut c = Cluster::new(nodes);
        assert_eq!(c.capacity(Some(GpuModel::A100)), 16.0);
        assert_eq!(c.capacity(Some(GpuModel::H800)), 8.0);
        let h800 = TaskSpec::builder(1)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::whole(4))
            .gpu_model(GpuModel::H800)
            .duration_secs(1_000)
            .build()
            .unwrap();
        c.start_task(h800, &[NodeId::new(2)], SimTime::ZERO, 0)
            .unwrap();
        assert_eq!(c.spot_allocated(Some(GpuModel::H800)), 4.0);
        assert_eq!(c.spot_allocated(Some(GpuModel::A100)), 0.0);
        assert_eq!(c.idle_gpus(Some(GpuModel::H800)), 4);
        c.fail_node(NodeId::new(2), SimTime::from_secs(10)).unwrap();
        assert_eq!(c.capacity(Some(GpuModel::H800)), 0.0);
        assert_eq!(c.static_capacity(Some(GpuModel::H800)), 8.0);
        assert_eq!(c.spot_allocated(Some(GpuModel::H800)), 0.0);
        assert_eq!(
            c.capacity(Some(GpuModel::A100)),
            16.0,
            "other pools untouched"
        );
    }

    #[test]
    fn drain_node_blocks_placements_but_keeps_pods_running() {
        let mut c = cluster();
        c.start_task(
            spec(1, Priority::Hp, 1, 4),
            &[NodeId::new(1)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        c.start_task(
            spec(2, Priority::Spot, 1, 2),
            &[NodeId::new(1)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        c.drain_node(NodeId::new(1), SimTime::from_secs(3_600))
            .unwrap();
        let n1 = c.node(NodeId::new(1)).unwrap();
        assert!(n1.is_up() && n1.is_draining());
        assert_eq!(n1.drain_deadline(), Some(SimTime::from_secs(3_600)));
        // pods keep running, but the node is invisible to placement
        assert_eq!(c.running_count(), 2);
        assert_eq!(c.hp_allocated(None), 4.0, "running pods stay allocated");
        assert_eq!(c.capacity(None), 24.0, "draining cards left the totals");
        assert_eq!(
            c.idle_gpus(None),
            24,
            "node 1's two free cards left with it"
        );
        assert!(!c.whole_fit_candidates(GpuModel::A100, 1).contains(&1));
        assert!(
            !c.preemption_candidates(GpuModel::A100, 8).contains(&1),
            "spot pods on a draining node are not preemption targets"
        );
        assert_eq!(c.schedulable_node_count(), 3);
        assert_eq!(c.draining_node_count(), 1);
        assert_eq!(c.up_node_count(), 4, "draining nodes are still in service");
        // no new placements land
        assert!(c
            .start_task(
                spec(9, Priority::Hp, 1, 1),
                &[NodeId::new(1)],
                SimTime::ZERO,
                0
            )
            .is_err());
        // double drain and drain-of-down rejected
        assert!(c
            .drain_node(NodeId::new(1), SimTime::from_secs(9_999))
            .is_err());
        c.fail_node(NodeId::new(0), SimTime::ZERO).unwrap();
        assert!(c
            .drain_node(NodeId::new(0), SimTime::from_secs(9_999))
            .is_err());
    }

    #[test]
    fn forced_shutdown_of_draining_node_matches_fail_accounting() {
        let mut c = cluster();
        c.start_task(
            spec(1, Priority::Spot, 1, 4),
            &[NodeId::new(2)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        c.drain_node(NodeId::new(2), SimTime::from_secs(1_800))
            .unwrap();
        // deadline hits with the pod still running: fail_node semantics
        let displaced = c
            .fail_node(NodeId::new(2), SimTime::from_secs(1_800))
            .unwrap();
        assert_eq!(displaced.len(), 1);
        assert_eq!(c.displaced(), 1);
        assert_eq!(c.spot_evicted(), 0, "forced displacement is not preemption");
        assert_eq!(
            c.capacity(None),
            24.0,
            "cards were already out at drain start"
        );
        assert_eq!(c.idle_gpus(None), 24);
        assert_eq!(c.spot_allocated(None), 0.0);
        assert_eq!(c.down_node_count(), 1);
        assert_eq!(c.draining_node_count(), 0);
        // and the full cycle closes: restore brings everything back
        c.restore_node(NodeId::new(2), SimTime::from_secs(5_000))
            .unwrap();
        assert_eq!(c.capacity(None), 32.0);
        assert_eq!(c.idle_gpus(None), 32);
    }

    #[test]
    fn restore_cancels_drain_without_touching_pods() {
        let mut c = cluster();
        c.start_task(
            spec(1, Priority::Spot, 1, 2),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        c.evict_task(TaskId::new(1), SimTime::from_secs(50))
            .unwrap();
        c.start_task(
            spec(2, Priority::Hp, 1, 3),
            &[NodeId::new(0)],
            SimTime::from_secs(60),
            0,
        )
        .unwrap();
        c.drain_node(NodeId::new(0), SimTime::from_secs(3_600))
            .unwrap();
        assert_eq!(c.idle_gpus(None), 24);
        c.restore_node(NodeId::new(0), SimTime::from_secs(100))
            .unwrap();
        let n0 = c.node(NodeId::new(0)).unwrap();
        assert!(n0.is_schedulable());
        assert_eq!(c.running_count(), 1, "the HP pod never moved");
        assert_eq!(c.idle_gpus(None), 29, "only genuinely free cards return");
        assert_eq!(c.capacity(None), 32.0);
        assert!(c.whole_fit_candidates(GpuModel::A100, 5).contains(&0));
        assert_eq!(
            n0.evictions_within(SimTime::from_secs(200), HOUR),
            1,
            "a cancelled drain repairs nothing, so history survives"
        );
    }

    #[test]
    fn migrate_task_releases_without_eviction_accounting() {
        let mut c = cluster();
        c.start_task(
            spec(1, Priority::Hp, 2, 4),
            &[NodeId::new(0), NodeId::new(1)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let (rt, preserved) = c
            .migrate_task(TaskId::new(1), SimTime::from_secs(4_000))
            .unwrap();
        assert_eq!(rt.spec.id, TaskId::new(1));
        assert_eq!(preserved, 3_600, "two 1800 s checkpoints survived");
        assert_eq!(c.migrated(), 1);
        assert_eq!(c.displaced(), 0);
        assert_eq!(c.spot_evicted(), 0);
        assert_eq!(c.hp_allocated(None), 0.0);
        assert_eq!(c.idle_gpus(None), 32);
        assert_eq!(
            c.node(NodeId::new(0))
                .unwrap()
                .evictions_within(SimTime::from_secs(5_000), HOUR),
            0,
            "migration leaves no eviction pressure behind"
        );
        assert!(
            c.migrate_task(TaskId::new(1), SimTime::ZERO).is_err(),
            "gone"
        );
    }

    #[test]
    fn add_node_mints_sequential_ids_and_extends_totals() {
        let mut c = cluster();
        let id = c.add_node(GpuModel::H800, 8);
        assert_eq!(id, NodeId::new(4));
        assert_eq!(c.nodes().len(), 5);
        assert_eq!(c.capacity(None), 40.0);
        assert_eq!(
            c.static_capacity(None),
            40.0,
            "scale-out grows the as-built total"
        );
        assert_eq!(c.capacity(Some(GpuModel::H800)), 8.0);
        assert_eq!(c.idle_gpus(Some(GpuModel::H800)), 8);
        assert!(c.whole_fit_candidates(GpuModel::H800, 8).contains(&4));
        // the new node is a first-class citizen: placements, spot lists,
        // failure and repair all work
        let h = TaskSpec::builder(7)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::whole(4))
            .gpu_model(GpuModel::H800)
            .duration_secs(1_000)
            .build()
            .unwrap();
        c.start_task(h, &[id], SimTime::ZERO, 0).unwrap();
        assert_eq!(c.spot_tasks_on(id).len(), 1);
        let displaced = c.fail_node(id, SimTime::from_secs(10)).unwrap();
        assert_eq!(displaced.len(), 1);
        assert_eq!(c.capacity(Some(GpuModel::H800)), 0.0);
        c.restore_node(id, SimTime::from_secs(20)).unwrap();
        assert_eq!(c.capacity(Some(GpuModel::H800)), 8.0);
        // a second add keeps minting sequentially
        assert_eq!(c.add_node(GpuModel::A100, 8), NodeId::new(5));
        assert_eq!(c.capacity(None), 48.0);
    }

    #[test]
    fn failure_and_drain_history_survive_restore() {
        let mut c = cluster();
        c.fail_node(NodeId::new(1), SimTime::from_hours(1)).unwrap();
        c.restore_node(NodeId::new(1), SimTime::from_hours(2))
            .unwrap();
        c.fail_node(NodeId::new(1), SimTime::from_hours(5)).unwrap();
        c.restore_node(NodeId::new(1), SimTime::from_hours(6))
            .unwrap();
        let n1 = c.node(NodeId::new(1)).unwrap();
        assert_eq!(
            n1.failure_count(),
            2,
            "repairs must not erase the failure history"
        );
        assert_eq!(n1.failures_within(SimTime::from_hours(6), 2 * HOUR), 1);
        assert_eq!(n1.last_failure(), Some(SimTime::from_hours(5)));
        assert_eq!(
            n1.time_since_failure(SimTime::from_hours(7)),
            Some(2 * HOUR)
        );
        // a forced drain shutdown is an up→down transition too
        c.drain_node(NodeId::new(2), SimTime::from_hours(8))
            .unwrap();
        c.fail_node(NodeId::new(2), SimTime::from_hours(8)).unwrap();
        let n2 = c.node(NodeId::new(2)).unwrap();
        assert_eq!(n2.failure_count(), 1);
        assert_eq!(n2.drain_count(), 1);
        assert_eq!(c.node(NodeId::new(0)).unwrap().failure_count(), 0);
    }

    #[test]
    fn failure_domains_answer_membership_and_drain_queries() {
        let mut c = cluster(); // 4 nodes
        assert_eq!(
            c.domain_of(NodeId::new(0)),
            None,
            "no topology declared yet"
        );
        assert_eq!(c.failure_domain_count(), 0);
        c.set_failure_domains(&FailureDomain::racks(4, 2));
        assert_eq!(c.failure_domain_count(), 2);
        assert_eq!(c.domain_of(NodeId::new(0)), Some(0));
        assert_eq!(c.domain_of(NodeId::new(1)), Some(0));
        assert_eq!(c.domain_of(NodeId::new(3)), Some(1));
        assert_eq!(c.domain_of(NodeId::new(99)), None);
        // drain bookkeeping per domain, through the full lifecycle
        c.drain_node(NodeId::new(0), SimTime::from_hours(1))
            .unwrap();
        assert_eq!(c.draining_in_domain(0), 1);
        assert_eq!(c.draining_in_domain(1), 0);
        c.drain_node(NodeId::new(1), SimTime::from_hours(1))
            .unwrap();
        assert_eq!(c.draining_in_domain(0), 2);
        // cancel one drain, force the other down: both leave the count
        c.restore_node(NodeId::new(0), SimTime::from_secs(100))
            .unwrap();
        assert_eq!(c.draining_in_domain(0), 1);
        c.fail_node(NodeId::new(1), SimTime::from_secs(200))
            .unwrap();
        assert_eq!(c.draining_in_domain(0), 0);
        // repair of a *down* node does not touch drain counts
        c.restore_node(NodeId::new(1), SimTime::from_secs(300))
            .unwrap();
        assert_eq!(c.draining_in_domain(0), 0);
        // scale-out mints nodes outside every declared blast radius
        let minted = c.add_node(GpuModel::A100, 8);
        assert_eq!(c.domain_of(minted), None);
        c.drain_node(minted, SimTime::from_hours(2)).unwrap();
        assert_eq!(
            c.draining_in_domain(0),
            0,
            "undomained drains count nowhere"
        );
        assert_eq!(c.draining_node_count(), 1);
    }

    #[test]
    fn mid_run_topology_declaration_picks_up_active_drains() {
        let mut c = cluster();
        c.drain_node(NodeId::new(2), SimTime::from_hours(1))
            .unwrap();
        c.set_failure_domains(&FailureDomain::racks(4, 2));
        assert_eq!(
            c.draining_in_domain(1),
            1,
            "node 2's in-progress drain registered"
        );
    }

    /// Snapshot → restore must be lossless: same serialized image, same
    /// observable behaviour (capacity queries, index-served candidate
    /// lists, running registry) after a busy history of placements,
    /// evictions, drains, failures and scale-out.
    #[test]
    fn snapshot_round_trip_is_lossless() {
        let mut c = cluster();
        c.set_failure_domains(&FailureDomain::racks(4, 2));
        c.start_task(
            spec(1, Priority::Hp, 2, 4),
            &[NodeId::new(0), NodeId::new(1)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        c.start_task(
            spec(2, Priority::Spot, 1, 2),
            &[NodeId::new(2)],
            SimTime::from_secs(50),
            0,
        )
        .unwrap();
        let frac = TaskSpec::builder(3)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::fraction(0.25).unwrap())
            .duration_secs(9_000)
            .build()
            .unwrap();
        c.start_task(frac, &[NodeId::new(2)], SimTime::from_secs(60), 0)
            .unwrap();
        c.evict_task(TaskId::new(2), SimTime::from_secs(2_000))
            .unwrap();
        c.fail_node(NodeId::new(3), SimTime::from_secs(3_000))
            .unwrap();
        c.drain_node(NodeId::new(1), SimTime::from_secs(9_999))
            .unwrap();
        c.add_node(GpuModel::H800, 8);
        let snap = c.snapshot();
        let json = {
            let mut s = String::new();
            use serde::Serialize as _;
            snap.serialize_json(&mut s);
            s
        };
        let parsed: ClusterSnapshot = serde_json::from_str(&json).expect("snapshot parses");
        assert_eq!(parsed, snap, "serialized image round-trips");
        let r = Cluster::from_snapshot(parsed);
        // persisted fields and totals are verbatim
        assert_eq!(r.snapshot(), snap, "restore → snapshot is idempotent");
        // index-served queries match the live cluster's
        assert_eq!(
            r.whole_fit_candidates(GpuModel::A100, 1),
            c.whole_fit_candidates(GpuModel::A100, 1)
        );
        assert_eq!(
            r.fraction_fit_candidates(GpuModel::A100, 0.5),
            c.fraction_fit_candidates(GpuModel::A100, 0.5)
        );
        assert_eq!(
            r.preemption_candidates(GpuModel::A100, 1),
            c.preemption_candidates(GpuModel::A100, 1)
        );
        assert_eq!(r.fully_idle_nodes(), c.fully_idle_nodes());
        assert_eq!(
            r.spot_tasks_on(NodeId::new(2)).len(),
            c.spot_tasks_on(NodeId::new(2)).len()
        );
        assert_eq!(r.running_count(), c.running_count());
        assert_eq!(r.capacity(None), c.capacity(None));
        assert_eq!(r.idle_gpus(None), c.idle_gpus(None));
        assert_eq!(r.draining_in_domain(0), c.draining_in_domain(0));
        assert_eq!(r.domain_of(NodeId::new(1)), c.domain_of(NodeId::new(1)));
        // failure history survives the round trip
        assert_eq!(r.node(NodeId::new(3)).unwrap().failure_count(), 1);
    }

    #[test]
    fn unknown_node_in_gang_is_rolled_back() {
        let mut c = cluster();
        let r = c.start_task(
            spec(10, Priority::Hp, 2, 1),
            &[NodeId::new(0), NodeId::new(99)],
            SimTime::ZERO,
            0,
        );
        assert!(r.is_err());
        assert_eq!(c.idle_gpus(None), 32);
    }
}
