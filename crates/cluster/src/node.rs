//! A single machine hosting several GPUs.
//!
//! Nodes track per-card occupancy (supporting both whole-card and
//! fractional allocations), cached per-priority totals, and a timestamped
//! eviction history powering the eviction-awareness score (Eq. 15–16) and
//! the circuit-breaker.

use std::collections::VecDeque;

use gfs_types::{
    Error, GpuDemand, GpuModel, NodeId, Priority, Result, SimDuration, SimTime, TaskId,
};
use serde::{Deserialize, Serialize};

/// Occupancy of one GPU card.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gpu {
    free: f64,
    shares: Vec<(TaskId, f64)>,
}

impl Gpu {
    fn new() -> Self {
        Gpu {
            free: 1.0,
            shares: Vec::new(),
        }
    }

    /// Unallocated fraction of the card in `[0, 1]`.
    #[must_use]
    pub fn free_fraction(&self) -> f64 {
        self.free
    }

    /// Whether the card is completely unallocated.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.free >= 1.0 - 1e-9
    }

    /// Tasks holding a share of this card.
    #[must_use]
    pub fn shares(&self) -> &[(TaskId, f64)] {
        &self.shares
    }
}

/// How a pod occupies GPUs on one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PodAlloc {
    /// The pod owns these whole cards.
    Whole(Vec<usize>),
    /// The pod owns a fraction of a single card.
    Fraction {
        /// Card index on the node.
        gpu: usize,
        /// Fraction in `(0, 1)`.
        amount: f64,
    },
}

impl PodAlloc {
    /// Number of GPU cards represented by the allocation.
    #[must_use]
    pub fn cards(&self) -> f64 {
        match self {
            PodAlloc::Whole(v) => v.len() as f64,
            PodAlloc::Fraction { amount, .. } => *amount,
        }
    }
}

/// A cluster node.
#[derive(Debug, Clone)]
pub struct Node {
    id: NodeId,
    model: GpuModel,
    gpus: Vec<Gpu>,
    hp_alloc: f64,
    spot_alloc: f64,
    evictions: VecDeque<SimTime>,
    /// Timestamps of up→down transitions (abrupt failures and forced
    /// drain shutdowns), powering the reliability score of churn-aware
    /// placement. Unlike the eviction history this is *not* cleared on
    /// restore: a machine that keeps failing is exactly what the score
    /// must remember across repairs.
    failures: VecDeque<SimTime>,
    /// Monotonic count of up→down transitions over the node's lifetime.
    failure_total: u32,
    /// Exact time of the most recent up→down transition (independent of
    /// the windowed history's retirement).
    last_failure: Option<SimTime>,
    /// Monotonic count of maintenance-drain notices received.
    drain_total: u32,
    /// Whether the node is in service. A down node holds no allocations
    /// and reports zero idle/free capacity, so every placement scan skips
    /// it naturally; only [`Node::total_gpus`] keeps reporting the static
    /// card count (availability accounting needs it).
    up: bool,
    /// Forced-shutdown deadline of an in-progress maintenance drain. A
    /// draining node is still up (its pods keep running) but accepts no
    /// new placements and reports zero idle/free capacity, exactly like a
    /// down node from a scheduler's point of view.
    drain_deadline: Option<SimTime>,
}

impl Node {
    /// Creates an empty node with `num_gpus` cards of `model`.
    #[must_use]
    pub fn new(id: NodeId, model: GpuModel, num_gpus: u32) -> Self {
        Node {
            id,
            model,
            gpus: (0..num_gpus).map(|_| Gpu::new()).collect(),
            hp_alloc: 0.0,
            spot_alloc: 0.0,
            evictions: VecDeque::new(),
            failures: VecDeque::new(),
            failure_total: 0,
            last_failure: None,
            drain_total: 0,
            up: true,
            drain_deadline: None,
        }
    }

    /// Whether the node is in service (running pods keep a *draining*
    /// node up until its deadline).
    #[must_use]
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Whether the node is draining for maintenance.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.drain_deadline.is_some()
    }

    /// The forced-shutdown deadline of an in-progress drain.
    #[must_use]
    pub fn drain_deadline(&self) -> Option<SimTime> {
        self.drain_deadline
    }

    /// Whether the node can accept new placements: in service and not
    /// draining. Every capacity/placement query gates on this.
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        self.up && self.drain_deadline.is_none()
    }

    /// Takes the node in or out of service. The caller
    /// ([`Cluster`](crate::Cluster)) is responsible for draining pods
    /// first and keeping the capacity index consistent.
    pub(crate) fn set_up(&mut self, up: bool) {
        self.up = up;
    }

    /// Starts (`Some(deadline)`) or cancels (`None`) a maintenance drain.
    /// The caller ([`Cluster`](crate::Cluster)) keeps the capacity totals
    /// and index consistent around the transition.
    pub(crate) fn set_draining(&mut self, deadline: Option<SimTime>) {
        self.drain_deadline = deadline;
    }

    /// The ungated card scan backing [`Node::idle_gpus`]: cards that are
    /// physically unallocated, regardless of the up/draining state.
    #[must_use]
    pub(crate) fn physical_idle_gpus(&self) -> u32 {
        self.gpus.iter().filter(|g| g.is_idle()).count() as u32
    }

    /// Forgets the node's eviction history (called on restore: a machine
    /// returning from repair must not inherit the pre-failure eviction
    /// pressure that would mis-steer the Eq. 15–16 scores).
    pub(crate) fn clear_eviction_history(&mut self) {
        self.evictions.clear();
    }

    /// Node identifier.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// GPU model of every card on this node.
    #[must_use]
    pub fn model(&self) -> GpuModel {
        self.model
    }

    /// Total number of cards.
    #[must_use]
    pub fn total_gpus(&self) -> u32 {
        self.gpus.len() as u32
    }

    /// Cards that are completely unallocated (0 while the node is down or
    /// draining — a drained card cannot host anything new).
    #[must_use]
    pub fn idle_gpus(&self) -> u32 {
        if !self.is_schedulable() {
            return 0;
        }
        self.physical_idle_gpus()
    }

    /// Sum of free fractions across all cards (0 while the node is down
    /// or draining).
    #[must_use]
    pub fn free_capacity(&self) -> f64 {
        if !self.is_schedulable() {
            return 0.0;
        }
        self.gpus.iter().map(Gpu::free_fraction).sum()
    }

    /// GPUs (in cards) allocated to HP tasks.
    #[must_use]
    pub fn hp_allocated(&self) -> f64 {
        self.hp_alloc
    }

    /// GPUs (in cards) allocated to spot tasks.
    #[must_use]
    pub fn spot_allocated(&self) -> f64 {
        self.spot_alloc
    }

    /// GPUs (in cards) allocated in total.
    #[must_use]
    pub fn allocated(&self) -> f64 {
        self.hp_alloc + self.spot_alloc
    }

    /// Per-card occupancy view.
    #[must_use]
    pub fn gpus(&self) -> &[Gpu] {
        &self.gpus
    }

    /// Whether a pod with the given demand could be placed right now
    /// (always false while the node is down or draining).
    #[must_use]
    pub fn can_fit(&self, demand: GpuDemand) -> bool {
        if !self.is_schedulable() {
            return false;
        }
        match demand {
            GpuDemand::Whole(n) => self.idle_gpus() >= n,
            GpuDemand::Fraction(f) => self.gpus.iter().any(|g| g.free_fraction() >= f - 1e-12),
        }
    }

    /// Places one pod of `task` on this node, choosing concrete cards:
    /// whole-card pods take idle cards; fractional pods bin-pack onto the
    /// *most loaded* card that still fits (best-fit, limiting fragmentation).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Capacity`] if the demand does not fit.
    pub fn place_pod(
        &mut self,
        task: TaskId,
        demand: GpuDemand,
        priority: Priority,
    ) -> Result<PodAlloc> {
        if !self.is_schedulable() {
            return Err(Error::Capacity(format!(
                "{} is {}",
                self.id,
                if self.up { "draining" } else { "down" }
            )));
        }
        let alloc = match demand {
            GpuDemand::Whole(n) => {
                let idle: Vec<usize> = self
                    .gpus
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.is_idle())
                    .map(|(i, _)| i)
                    .take(n as usize)
                    .collect();
                if idle.len() < n as usize {
                    return Err(Error::Capacity(format!(
                        "{}: {} idle GPUs, pod needs {n}",
                        self.id,
                        self.idle_gpus()
                    )));
                }
                for &i in &idle {
                    self.gpus[i].free = 0.0;
                    self.gpus[i].shares.push((task, 1.0));
                }
                PodAlloc::Whole(idle)
            }
            GpuDemand::Fraction(f) => {
                let best = self
                    .gpus
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.free_fraction() >= f - 1e-12)
                    .min_by(|(_, a), (_, b)| {
                        a.free_fraction()
                            .partial_cmp(&b.free_fraction())
                            .expect("free fractions are finite")
                    })
                    .map(|(i, _)| i);
                let Some(i) = best else {
                    return Err(Error::Capacity(format!(
                        "{}: no card has a free fraction of {f}",
                        self.id
                    )));
                };
                self.gpus[i].free = (self.gpus[i].free - f).max(0.0);
                self.gpus[i].shares.push((task, f));
                PodAlloc::Fraction { gpu: i, amount: f }
            }
        };
        let cards = alloc.cards();
        match priority {
            Priority::Hp => self.hp_alloc += cards,
            Priority::Spot => self.spot_alloc += cards,
        }
        Ok(alloc)
    }

    /// Releases a previously placed pod.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] if the task holds no matching share.
    pub fn release_pod(
        &mut self,
        task: TaskId,
        alloc: &PodAlloc,
        priority: Priority,
    ) -> Result<()> {
        match alloc {
            PodAlloc::Whole(cards) => {
                for &i in cards {
                    let gpu = self
                        .gpus
                        .get_mut(i)
                        .ok_or_else(|| Error::NotFound(format!("gpu {i} on {}", self.id)))?;
                    let pos = gpu
                        .shares
                        .iter()
                        .position(|(t, _)| *t == task)
                        .ok_or_else(|| Error::NotFound(format!("{task} share on gpu {i}")))?;
                    gpu.shares.remove(pos);
                    gpu.free = 1.0;
                }
            }
            PodAlloc::Fraction { gpu, amount } => {
                let g = self
                    .gpus
                    .get_mut(*gpu)
                    .ok_or_else(|| Error::NotFound(format!("gpu {gpu} on {}", self.id)))?;
                let pos = g
                    .shares
                    .iter()
                    .position(|(t, a)| *t == task && (a - amount).abs() < 1e-12)
                    .ok_or_else(|| Error::NotFound(format!("{task} share on gpu {gpu}")))?;
                g.shares.remove(pos);
                g.free = (g.free + amount).min(1.0);
            }
        }
        let cards = alloc.cards();
        match priority {
            Priority::Hp => self.hp_alloc = (self.hp_alloc - cards).max(0.0),
            Priority::Spot => self.spot_alloc = (self.spot_alloc - cards).max(0.0),
        }
        Ok(())
    }

    /// Records one eviction event at `now`.
    pub fn record_eviction(&mut self, now: SimTime) {
        record_timestamped(&mut self.evictions, now);
    }

    /// Number of evictions recorded in the last `window` seconds.
    #[must_use]
    pub fn evictions_within(&self, now: SimTime, window: SimDuration) -> usize {
        count_within(&self.evictions, now, window)
    }

    /// The earliest future time at which some `evictions_within(now, w)`
    /// count for `w ∈ windows` will change by pure aging — i.e. the last
    /// instant the current counts are still valid (`count_within` uses an
    /// inclusive boundary, so an eviction at `tₑ` leaves a window `w` when
    /// `now > tₑ + w`). `None` when no logged eviction sits inside any of
    /// the windows: the counts are stable until the next mutation. Score
    /// caches use this to schedule eviction-window-aware invalidation.
    #[must_use]
    pub fn eviction_score_valid_until(
        &self,
        now: SimTime,
        windows: &[SimDuration],
    ) -> Option<SimTime> {
        let mut edge: Option<u64> = None;
        for &te in &self.evictions {
            for &w in windows {
                if now.since(te) <= w {
                    let leave = te.as_secs() + w;
                    if edge.is_none_or(|e| leave < e) {
                        edge = Some(leave);
                    }
                }
            }
        }
        edge.map(SimTime::from_secs)
    }

    /// Records one up→down transition at `now` (abrupt failure or forced
    /// drain shutdown). Called by [`Cluster`](crate::Cluster) from
    /// `fail_node`; survives restore — see [`Node::failures_within`].
    pub(crate) fn record_failure(&mut self, now: SimTime) {
        self.failure_total = self.failure_total.saturating_add(1);
        self.last_failure = Some(now);
        record_timestamped(&mut self.failures, now);
    }

    /// Records one maintenance-drain notice.
    pub(crate) fn record_drain(&mut self) {
        self.drain_total = self.drain_total.saturating_add(1);
    }

    /// Number of up→down transitions within the last `window` seconds —
    /// the failure analogue of [`Node::evictions_within`], feeding the
    /// reliability term of churn-aware placement. The history survives
    /// repair (a flaky machine stays flaky in the score), in deliberate
    /// contrast to the eviction history, which restore clears.
    #[must_use]
    pub fn failures_within(&self, now: SimTime, window: SimDuration) -> usize {
        count_within(&self.failures, now, window)
    }

    /// Lifetime count of up→down transitions (monotonic; unlike the
    /// windowed history this never retires entries).
    #[must_use]
    pub fn failure_count(&self) -> u32 {
        self.failure_total
    }

    /// Lifetime count of maintenance-drain notices received (monotonic).
    #[must_use]
    pub fn drain_count(&self) -> u32 {
        self.drain_total
    }

    /// When the node last went down, if it ever did (exact, independent
    /// of the windowed history's retirement).
    #[must_use]
    pub fn last_failure(&self) -> Option<SimTime> {
        self.last_failure
    }

    /// Seconds since the node last went down (`None` for a node that
    /// never failed) — an O(1) placement-time freshness query.
    #[must_use]
    pub fn time_since_failure(&self, now: SimTime) -> Option<SimDuration> {
        self.last_failure().map(|t| now.since(t))
    }

    /// Exponentially-decayed failure rate: every failure in the retained
    /// history contributes `2^(−age/half_life)`, so a failure loses half
    /// its weight every `half_life_secs`. Unlike the hard
    /// [`Node::failures_within`] window this never forgets abruptly — a
    /// machine that failed yesterday scores worse than one that failed
    /// last week, which scores worse than one that never failed.
    #[must_use]
    pub fn decayed_failure_rate(&self, now: SimTime, half_life_secs: SimDuration) -> f64 {
        let hl = half_life_secs.max(1) as f64;
        self.failures
            .iter()
            .map(|&t| (-(now.since(t) as f64) / hl).exp2())
            .sum()
    }

    /// Captures the node's full state — card occupancy, allocation
    /// totals, the timestamped eviction/failure histories and the
    /// up/draining flags — as a serializable image.
    #[must_use]
    pub fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            id: self.id,
            model: self.model,
            gpus: self.gpus.clone(),
            hp_alloc: self.hp_alloc,
            spot_alloc: self.spot_alloc,
            evictions: self.evictions.iter().copied().collect(),
            failures: self.failures.iter().copied().collect(),
            failure_total: self.failure_total,
            last_failure: self.last_failure,
            drain_total: self.drain_total,
            up: self.up,
            drain_deadline: self.drain_deadline,
        }
    }

    /// Rebuilds a node from a [`NodeSnapshot`] — the exact inverse of
    /// [`Node::snapshot`]: every field, including the incrementally
    /// accumulated allocation totals, is restored verbatim rather than
    /// recomputed, so a restored node is bit-identical to the captured
    /// one.
    #[must_use]
    pub fn from_snapshot(s: NodeSnapshot) -> Node {
        Node {
            id: s.id,
            model: s.model,
            gpus: s.gpus,
            hp_alloc: s.hp_alloc,
            spot_alloc: s.spot_alloc,
            evictions: s.evictions.into(),
            failures: s.failures.into(),
            failure_total: s.failure_total,
            last_failure: s.last_failure,
            drain_total: s.drain_total,
            up: s.up,
            drain_deadline: s.drain_deadline,
        }
    }
}

/// Serializable image of one [`Node`] (see [`Node::snapshot`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSnapshot {
    id: NodeId,
    model: GpuModel,
    gpus: Vec<Gpu>,
    hp_alloc: f64,
    spot_alloc: f64,
    evictions: Vec<SimTime>,
    failures: Vec<SimTime>,
    failure_total: u32,
    last_failure: Option<SimTime>,
    drain_total: u32,
    up: bool,
    drain_deadline: Option<SimTime>,
}

/// Appends `now` to a timestamped event log and retires entries older
/// than any plausible scoring window (7 days) — the shared bound of the
/// eviction and failure histories. Lifetime counters that must never
/// retire ([`Node::failure_count`]) are kept separately by the caller.
fn record_timestamped(log: &mut VecDeque<SimTime>, now: SimTime) {
    log.push_back(now);
    let horizon = 7 * gfs_types::SECONDS_PER_DAY;
    while let Some(&front) = log.front() {
        if now.since(front) > horizon {
            log.pop_front();
        } else {
            break;
        }
    }
}

/// Events in `log` within the last `window` seconds (inclusive boundary).
fn count_within(log: &VecDeque<SimTime>, now: SimTime, window: SimDuration) -> usize {
    log.iter().filter(|&&t| now.since(t) <= window).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new(NodeId::new(0), GpuModel::A100, 8)
    }

    #[test]
    fn whole_card_place_and_release() {
        let mut n = node();
        let t = TaskId::new(1);
        let a = n.place_pod(t, GpuDemand::whole(3), Priority::Hp).unwrap();
        assert_eq!(n.idle_gpus(), 5);
        assert_eq!(n.hp_allocated(), 3.0);
        n.release_pod(t, &a, Priority::Hp).unwrap();
        assert_eq!(n.idle_gpus(), 8);
        assert_eq!(n.hp_allocated(), 0.0);
    }

    #[test]
    fn rejects_oversized_pod() {
        let mut n = node();
        n.place_pod(TaskId::new(1), GpuDemand::whole(6), Priority::Hp)
            .unwrap();
        let err = n.place_pod(TaskId::new(2), GpuDemand::whole(3), Priority::Spot);
        assert!(err.is_err());
        assert!(n.can_fit(GpuDemand::whole(2)));
        assert!(!n.can_fit(GpuDemand::whole(3)));
    }

    #[test]
    fn fractional_best_fit_packs_tightly() {
        let mut n = node();
        let a = n
            .place_pod(
                TaskId::new(1),
                GpuDemand::fraction(0.5).unwrap(),
                Priority::Spot,
            )
            .unwrap();
        let b = n
            .place_pod(
                TaskId::new(2),
                GpuDemand::fraction(0.3).unwrap(),
                Priority::Spot,
            )
            .unwrap();
        // second share lands on the same, already-loaded card
        match (&a, &b) {
            (PodAlloc::Fraction { gpu: g1, .. }, PodAlloc::Fraction { gpu: g2, .. }) => {
                assert_eq!(g1, g2, "best fit should co-locate fractions");
            }
            other => panic!("unexpected allocs {other:?}"),
        }
        assert_eq!(n.idle_gpus(), 7);
        assert!((n.spot_allocated() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn fractional_release_restores_capacity() {
        let mut n = node();
        let f = GpuDemand::fraction(0.25).unwrap();
        let a = n.place_pod(TaskId::new(9), f, Priority::Spot).unwrap();
        n.release_pod(TaskId::new(9), &a, Priority::Spot).unwrap();
        assert_eq!(n.idle_gpus(), 8);
        assert!((n.free_capacity() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn release_unknown_share_errors() {
        let mut n = node();
        let a = PodAlloc::Whole(vec![0]);
        assert!(n.release_pod(TaskId::new(5), &a, Priority::Hp).is_err());
    }

    #[test]
    fn eviction_window_counts() {
        let mut n = node();
        n.record_eviction(SimTime::from_hours(1));
        n.record_eviction(SimTime::from_hours(10));
        n.record_eviction(SimTime::from_hours(24));
        let now = SimTime::from_hours(25);
        assert_eq!(n.evictions_within(now, gfs_types::HOUR), 1);
        // the window boundary is inclusive: the hour-1 eviction is exactly
        // 24 h old at now = 25 h
        assert_eq!(n.evictions_within(now, 24 * gfs_types::HOUR), 3);
        assert_eq!(n.evictions_within(now, 23 * gfs_types::HOUR), 2);
        assert_eq!(n.evictions_within(now, 48 * gfs_types::HOUR), 3);
    }

    #[test]
    fn eviction_history_is_bounded() {
        let mut n = node();
        for h in 0..1_000 {
            n.record_eviction(SimTime::from_hours(h));
        }
        // entries older than 7 days get retired
        assert!(n.evictions_within(SimTime::from_hours(999), u64::MAX) <= 7 * 24 + 1);
    }

    #[test]
    fn failure_history_counts_and_freshness() {
        let mut n = node();
        assert_eq!(n.failure_count(), 0);
        assert!(n.last_failure().is_none());
        assert!(n.time_since_failure(SimTime::from_hours(1)).is_none());
        n.record_failure(SimTime::from_hours(1));
        n.record_failure(SimTime::from_hours(30));
        assert_eq!(n.failure_count(), 2);
        let now = SimTime::from_hours(31);
        assert_eq!(n.failures_within(now, gfs_types::HOUR * 2), 1);
        assert_eq!(n.failures_within(now, 40 * gfs_types::HOUR), 2);
        assert_eq!(n.last_failure(), Some(SimTime::from_hours(30)));
        assert_eq!(n.time_since_failure(now), Some(gfs_types::HOUR));
        n.record_drain();
        assert_eq!(n.drain_count(), 1);
    }

    #[test]
    fn failure_history_is_bounded_but_total_is_not() {
        let mut n = node();
        for h in 0..1_000 {
            n.record_failure(SimTime::from_hours(h));
        }
        assert!(n.failures_within(SimTime::from_hours(999), u64::MAX) <= 7 * 24 + 1);
        assert_eq!(
            n.failure_count(),
            1_000,
            "the lifetime counter never retires"
        );
        assert!(n.last_failure().is_some());
    }

    #[test]
    fn free_capacity_mixes_whole_and_fraction() {
        let mut n = node();
        n.place_pod(TaskId::new(1), GpuDemand::whole(2), Priority::Hp)
            .unwrap();
        n.place_pod(
            TaskId::new(2),
            GpuDemand::fraction(0.5).unwrap(),
            Priority::Spot,
        )
        .unwrap();
        assert!((n.free_capacity() - 5.5).abs() < 1e-9);
        assert_eq!(n.allocated(), 2.5);
    }
}
