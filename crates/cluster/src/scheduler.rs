//! The scheduler interface every policy (GFS and all baselines) implements.
//!
//! A scheduler receives an immutable view of the [`Cluster`] and answers
//! placement questions; the simulator owns execution (evicting victims,
//! committing placements, requeuing). This keeps policies pure and easy to
//! compare.

use std::cmp::Ordering;

use gfs_types::{NodeId, Priority, SimDuration, SimTime, TaskId, TaskSpec};

use crate::cluster::{Cluster, RunningTask};

/// A placement decision for one task.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Decision {
    /// Hosting node for each pod (length = pod count; duplicates allowed).
    pub pod_nodes: Vec<NodeId>,
    /// Spot tasks that must be evicted before the placement fits.
    pub preemptions: Vec<TaskId>,
}

impl Decision {
    /// A decision that places pods without preempting anyone.
    #[must_use]
    pub fn place(pod_nodes: Vec<NodeId>) -> Self {
        Decision {
            pod_nodes,
            preemptions: Vec::new(),
        }
    }

    /// Whether the decision requires evictions.
    #[must_use]
    pub fn is_preemptive(&self) -> bool {
        !self.preemptions.is_empty()
    }
}

/// Lifecycle notifications delivered to schedulers for feedback loops
/// (e.g. the SQA's eviction-rate / queueing-time controller, Eq. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskEvent {
    /// A task entered the pending queue.
    Submitted {
        /// Task id.
        task: TaskId,
        /// Task priority class.
        priority: Priority,
        /// Event time.
        at: SimTime,
    },
    /// A task started executing after queuing for `queued_secs`.
    Started {
        /// Task id.
        task: TaskId,
        /// Task priority class.
        priority: Priority,
        /// Seconds spent in the queue for this segment.
        queued_secs: u64,
        /// Event time.
        at: SimTime,
    },
    /// A task finished all its work.
    Finished {
        /// Task id.
        task: TaskId,
        /// Task priority class.
        priority: Priority,
        /// Event time.
        at: SimTime,
    },
    /// A spot task was evicted by a preemption.
    Evicted {
        /// Task id.
        task: TaskId,
        /// Event time.
        at: SimTime,
    },
    /// A task (any priority) was displaced by a node failure. Kept apart
    /// from [`TaskEvent::Evicted`] so eviction-driven feedback loops
    /// (Eq. 11, Eq. 15) are not polluted by hardware churn.
    Displaced {
        /// Task id.
        task: TaskId,
        /// Task priority class.
        priority: Priority,
        /// Event time.
        at: SimTime,
    },
    /// A node began a maintenance drain: it accepts no new placements
    /// (its cards already left every capacity total) and will be forced
    /// down at `deadline`. Tasks that cannot finish inside the notice
    /// window are migrated by the simulator and arrive as
    /// [`TaskEvent::Displaced`] notifications just before this event, so
    /// a policy can proactively re-place gangs instead of losing work at
    /// the deadline.
    DrainNotice {
        /// The draining node.
        node: NodeId,
        /// When the node will be forced out of service.
        deadline: SimTime,
        /// Event time (start of the notice window).
        at: SimTime,
    },
    /// A fresh node joined the cluster (scale-out); its capacity just
    /// entered every cluster total.
    NodeAdded {
        /// The minted node.
        node: NodeId,
        /// Cards it brought.
        added_gpus: u32,
        /// Event time.
        at: SimTime,
    },
    /// A node failed; its capacity just left every cluster total.
    NodeDown {
        /// The failed node.
        node: NodeId,
        /// Cards that vanished with it.
        lost_gpus: u32,
        /// Event time.
        at: SimTime,
    },
    /// A node returned to service with all cards idle.
    NodeUp {
        /// The restored node.
        node: NodeId,
        /// Cards that came back.
        restored_gpus: u32,
        /// Event time.
        at: SimTime,
    },
}

/// What to do with a task running on a node that just received a drain
/// notice — the answer of [`Scheduler::drain_decision`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainDecision {
    /// Migrate the gang now (graceful release with checkpointed progress,
    /// requeue after the grace period) — early in the notice window,
    /// before the forced deadline.
    Migrate,
    /// Leave the gang running on the draining node: it either finishes
    /// inside the notice window or keeps checkpointing until the forced
    /// shutdown displaces it at the deadline.
    Stay,
}

/// A scheduling policy.
///
/// Implementations must be deterministic: same state + same inputs must
/// produce the same decision, so simulations are reproducible.
pub trait Scheduler {
    /// Display name used in reports.
    fn name(&self) -> &str;

    /// Proposes a placement for `task`, or `None` to leave it pending.
    ///
    /// A returned [`Decision`] may list spot victims in `preemptions`; the
    /// simulator evicts them before committing the placement.
    fn schedule(&mut self, task: &TaskSpec, cluster: &Cluster, now: SimTime) -> Option<Decision>;

    /// Periodic hook (the simulator fires it at the configured quota-update
    /// interval; GFS recomputes `Q_H` here).
    fn on_tick(&mut self, _now: SimTime, _cluster: &Cluster) {}

    /// Lifecycle notification hook.
    fn on_event(&mut self, _event: &TaskEvent, _cluster: &Cluster) {}

    /// Aggregate upper-quantile GPU-demand forecast over the next `_h`
    /// hours at confidence `_p`, if this scheduler maintains one. GFS
    /// answers from its demand estimator (the Eq. 9 per-org upper
    /// quantiles, aggregated); schedulers without a forecasting loop
    /// return `None` and capacity controllers (`gfs_market`) fall back to
    /// a windowed-arrival estimate. Must be a pure read: the simulator
    /// never calls it, so scheduler state and goldens are unaffected.
    fn demand_forecast(&self, _p: f64, _h: usize) -> Option<f64> {
        None
    }

    /// Chooses how `task`, running on a node whose drain notice just
    /// landed, rides out the notice window. The simulator consults this
    /// once per affected gang at the notice and executes the answer.
    ///
    /// The default reproduces the engine's historical hard-wired rule:
    /// migrate exactly the gangs that cannot finish inside the window
    /// (`remaining > notice`), leave the rest to finish in place. A
    /// drain-aware policy may instead keep a can't-finish gang
    /// checkpointing until the deadline when the cluster has no room for
    /// it anyway — see `gfs_sched::placement::PlacementPolicy`.
    fn drain_decision(
        &self,
        task: &RunningTask,
        notice: SimDuration,
        _cluster: &Cluster,
        now: SimTime,
    ) -> DrainDecision {
        if task.remaining(now) > notice {
            DrainDecision::Migrate
        } else {
            DrainDecision::Stay
        }
    }

    /// Relative queue priority of two pending tasks: `Less` runs first.
    ///
    /// The key must be *static per task* (derived from the spec only): the
    /// simulator keeps its pending queue incrementally sorted by this
    /// comparator — inserting each task once instead of re-sorting the
    /// whole queue every scheduling pass — and equal tasks stay in FIFO
    /// arrival order. The default (`Equal`) is plain FIFO; PTS orders by
    /// GPU request, pod count and submit time (§3.4.2).
    fn queue_cmp(&self, _a: &TaskSpec, _b: &TaskSpec) -> Ordering {
        Ordering::Equal
    }

    /// Sorts a queue into the order of [`Scheduler::queue_cmp`] (stable, so
    /// ties keep their arrival order). Provided for external callers; the
    /// simulator itself maintains order incrementally.
    fn sort_queue(&self, queue: &mut Vec<TaskSpec>) {
        queue.sort_by(|a, b| self.queue_cmp(a, b));
    }

    /// Serializes the scheduler's *dynamic* state (feedback-loop
    /// accumulators, demand history — anything not rebuilt by the
    /// scheduler's constructor) for a service snapshot. `None` declares
    /// the scheduler stateless: every decision is a pure function of the
    /// cluster view, so crash recovery only needs to re-run the
    /// constructor. The default is `None`, which is correct for all
    /// baseline schedulers in the workspace; GFS overrides it.
    fn save_state(&self) -> Option<String> {
        None
    }

    /// Restores state captured by [`Scheduler::save_state`] into a
    /// freshly-constructed scheduler. Returns `false` when the blob is
    /// not recognized (wrong scheduler, corrupted snapshot); the default
    /// accepts nothing, matching the default `save_state` of `None`.
    fn restore_state(&mut self, _state: &str) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_constructors() {
        let d = Decision::place(vec![NodeId::new(1), NodeId::new(1)]);
        assert!(!d.is_preemptive());
        let p = Decision {
            pod_nodes: vec![NodeId::new(0)],
            preemptions: vec![TaskId::new(9)],
        };
        assert!(p.is_preemptive());
    }

    #[test]
    fn scheduler_trait_is_object_safe() {
        struct Never;
        impl Scheduler for Never {
            fn name(&self) -> &str {
                "never"
            }
            fn schedule(&mut self, _: &TaskSpec, _: &Cluster, _: SimTime) -> Option<Decision> {
                None
            }
        }
        let mut s: Box<dyn Scheduler> = Box::new(Never);
        let cluster = Cluster::homogeneous(1, gfs_types::GpuModel::A100, 8);
        let task = TaskSpec::builder(1).build().unwrap();
        assert!(s.schedule(&task, &cluster, SimTime::ZERO).is_none());
        assert_eq!(s.name(), "never");
    }
}
