//! In-memory GPU cluster model for the GFS reproduction.
//!
//! The paper's production cluster (Table 1) is replaced by this
//! deterministic state machine: [`Node`]s hold per-card occupancy with both
//! whole-card and fractional allocations, the [`Cluster`] tracks running
//! tasks, eviction history and the spot outcome counters used by the
//! preemption-cost model (Eq. 18), and the [`Scheduler`] trait is the
//! interface every policy — GFS and the four baselines — implements.
//!
//! # Hot-path architecture
//!
//! Every placement question a scheduler can ask is answered by the
//! [`CapacityIndex`], which `start_task` / `evict_task` / `finish_task`
//! maintain incrementally:
//!
//! * per-GPU-model **idle buckets** (nodes keyed by whole idle cards) make
//!   "nodes with ≥ k idle GPUs" an O(answer) walk instead of an
//!   O(nodes × gpus) scan,
//! * a quantized **best-fit order** over partially-occupied cards serves
//!   fractional demands (candidates are re-verified against exact card
//!   state, so results equal a brute-force [`Node::can_fit`] scan — see
//!   the property test in `tests/property_based.rs`),
//! * per-node **spot locality lists** (sorted by task id, which also makes
//!   victim enumeration deterministic) turn preemption planning from
//!   O(nodes × running tasks) into O(candidate nodes × local spots).
//!
//! The indexed queries are exposed as [`Cluster::whole_fit_candidates`],
//! [`Cluster::fraction_fit_candidates`], [`Cluster::preemption_candidates`],
//! [`Cluster::spot_tasks_on`], [`Cluster::has_spot_on`] and
//! [`Cluster::fully_idle_nodes`]; all five schedulers in the workspace are
//! built on them. The running-task registry itself is an ordered map, so
//! iteration (and therefore every scheduling decision derived from it) is
//! reproducible across processes.
//!
//! Task specs are shared as `Arc<TaskSpec>` between the simulator's task
//! table and the running registry: starting, evicting and requeuing a task
//! never deep-copies the spec ([`Cluster::start_task`] accepts
//! `impl Into<Arc<TaskSpec>>`, so plain `TaskSpec` values still work).
//!
//! # Cluster dynamics
//!
//! Cluster membership changes mid-run along four verbs:
//!
//! * [`Cluster::fail_node`] — abrupt failure: drains every pod on the
//!   node through the shared release path (HP and spot alike — hardware
//!   does not honour priorities), removes the node's index buckets
//!   atomically and subtracts its cards from every capacity total;
//! * [`Cluster::drain_node`] — maintenance drain with notice: the node
//!   stops accepting placements immediately (index keys and capacity
//!   leave with it) while its pods keep running until they finish, are
//!   migrated ([`Cluster::migrate_task`]) or are forcibly displaced at
//!   the deadline through `fail_node` accounting;
//! * [`Cluster::restore_node`] — reverses either: a repaired node returns
//!   with all cards idle and a clean eviction history, a drain-cancelled
//!   node returns with its pods untouched;
//! * [`Cluster::add_node`] — scale-out: mints the next sequential
//!   [`NodeId`](gfs_types::NodeId) and extends every total and index
//!   structure.
//!
//! Capacity accessors therefore always describe the *schedulable* fleet,
//! per GPU model in O(1) ([`Cluster::capacity`] with `Some(model)`),
//! while [`Cluster::static_capacity`] keeps the as-built-plus-scaled-out
//! denominator for availability metrics. The engine-side event flow is
//! documented on `gfs_sim::dynamics`.
//!
//! Churn leaves a *history* behind for placement policies to read in
//! O(1): `fail_node` records per-node up→down transitions
//! ([`Node::failures_within`], [`Node::failure_count`],
//! [`Node::time_since_failure`] — kept across repairs, unlike the
//! eviction history), `drain_node` bumps [`Node::drain_count`], and a
//! declared failure-domain topology ([`Cluster::set_failure_domains`])
//! answers [`Cluster::domain_of`] and the per-domain
//! [`Cluster::draining_in_domain`] count that drain-aware placement
//! steers by.
//!
//! # Examples
//!
//! ```
//! use gfs_cluster::Cluster;
//! use gfs_types::{GpuDemand, GpuModel, NodeId, Priority, SimTime, TaskSpec};
//!
//! let mut cluster = Cluster::homogeneous(2, GpuModel::A100, 8);
//! let task = TaskSpec::builder(1)
//!     .priority(Priority::Spot)
//!     .gpus_per_pod(GpuDemand::whole(4))
//!     .build()?;
//! cluster.start_task(task, &[NodeId::new(0)], SimTime::ZERO, 0)?;
//! assert_eq!(cluster.idle_gpus(None), 12);
//! # Ok::<(), gfs_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod changelog;
mod cluster;
mod index;
mod node;
mod scheduler;

pub use changelog::ChangeLog;
pub use cluster::{Cluster, ClusterSnapshot, Displaced, PodPlacement, RunningTask};
pub use index::CapacityIndex;
pub use node::{Gpu, Node, NodeSnapshot, PodAlloc};
pub use scheduler::{Decision, DrainDecision, Scheduler, TaskEvent};
