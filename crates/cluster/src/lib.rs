//! In-memory GPU cluster model for the GFS reproduction.
//!
//! The paper's production cluster (Table 1) is replaced by this
//! deterministic state machine: [`Node`]s hold per-card occupancy with both
//! whole-card and fractional allocations, the [`Cluster`] tracks running
//! tasks, eviction history and the spot outcome counters used by the
//! preemption-cost model (Eq. 18), and the [`Scheduler`] trait is the
//! interface every policy — GFS and the four baselines — implements.
//!
//! # Examples
//!
//! ```
//! use gfs_cluster::Cluster;
//! use gfs_types::{GpuDemand, GpuModel, NodeId, Priority, SimTime, TaskSpec};
//!
//! let mut cluster = Cluster::homogeneous(2, GpuModel::A100, 8);
//! let task = TaskSpec::builder(1)
//!     .priority(Priority::Spot)
//!     .gpus_per_pod(GpuDemand::whole(4))
//!     .build()?;
//! cluster.start_task(task, &[NodeId::new(0)], SimTime::ZERO, 0)?;
//! assert_eq!(cluster.idle_gpus(None), 12);
//! # Ok::<(), gfs_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod node;
mod scheduler;

pub use cluster::{Cluster, PodPlacement, RunningTask};
pub use node::{Gpu, Node, PodAlloc};
pub use scheduler::{Decision, Scheduler, TaskEvent};
