//! Incrementally-maintained capacity index over the cluster's nodes.
//!
//! Every scheduler in the workspace answers the same two questions for
//! every pending task on every pass: *which nodes can host a pod of this
//! demand* and *which nodes host evictable spot tasks*. Answering them by
//! scanning `nodes × gpus` (and `nodes × running_tasks` for preemption
//! planning) dominated simulation time, so the [`Cluster`](crate::Cluster)
//! maintains this index incrementally inside `start_task` / `evict_task` /
//! `finish_task`:
//!
//! * **Idle buckets** — per GPU model, a bucket per whole-card idle count
//!   holding the node ids with exactly that many idle cards. "Nodes with
//!   ≥ k idle cards" is a walk over buckets `k..`, touching only feasible
//!   nodes.
//! * **Partial-card best-fit keys** — per GPU model, an ordered set of
//!   `(quantized max free fraction, node id)` for nodes that have at least
//!   one *partially* occupied card. Fractional-demand feasibility checks
//!   walk only nodes whose best partial card could fit (fully idle cards
//!   are covered by the idle buckets).
//! * **Spot locality** — per node, the ids of running spot tasks with at
//!   least one pod on it, kept sorted so victim enumeration is
//!   deterministic. This turns `spot_tasks_on` from a scan over the whole
//!   running registry into a per-node lookup.
//!
//! Quantized fraction keys are a conservative filter: a candidate
//! surfaced by the index is always re-verified against the node's exact
//! card state, so the index can never change scheduling outcomes — only
//! skip work (see `tests/property_based.rs` for the brute-force
//! equivalence property).

use std::collections::BTreeMap;

use gfs_types::{GpuModel, NodeId, TaskId};

use crate::node::Node;

/// Fraction keys are quantized to micro-cards for ordering.
const FRAC_SCALE: f64 = 1e6;

/// Quantizes a free fraction for use as an index key.
fn quantize(frac: f64) -> u32 {
    (frac * FRAC_SCALE).round() as u32
}

/// Per-node snapshot of the keys currently stored in the index.
#[derive(Debug, Clone, Copy, Default)]
struct NodeKey {
    idle: u32,
    /// Quantized best free fraction among partially-occupied cards;
    /// `None` when every card is fully idle or fully occupied.
    partial: Option<u32>,
    fully_idle: bool,
    /// Whether the node currently owns entries in the placement
    /// structures (idle buckets / partial keys / fully-idle count). Down
    /// and draining nodes are absent; removal is idempotent through this
    /// flag, so a drain followed by a forced shutdown cannot
    /// double-remove.
    present: bool,
}

/// The capacity index. See the module docs for the structure.
#[derive(Debug, Clone, Default)]
pub struct CapacityIndex {
    keys: Vec<NodeKey>,
    models: Vec<GpuModel>,
    /// Per model: `buckets[idle] = ascending node ids with that idle count`.
    idle_buckets: BTreeMap<GpuModel, Vec<Vec<u32>>>,
    /// Per model: ordered `(quantized partial free, node id)` pairs.
    partial: BTreeMap<GpuModel, std::collections::BTreeSet<(u32, u32)>>,
    /// Per node: running spot tasks with at least one pod here (sorted).
    spot_on_node: Vec<Vec<TaskId>>,
    /// Per model: ascending node ids currently hosting ≥ 1 spot pod —
    /// the preemption-victim walk visits only these instead of scanning
    /// every node's (mostly empty) spot list.
    spot_hosts: BTreeMap<GpuModel, Vec<u32>>,
    fully_idle_count: usize,
}

impl CapacityIndex {
    /// Builds the index from scratch over `nodes`.
    #[must_use]
    pub fn build(nodes: &[Node]) -> Self {
        let mut index = CapacityIndex {
            keys: vec![NodeKey::default(); nodes.len()],
            models: nodes.iter().map(Node::model).collect(),
            idle_buckets: BTreeMap::new(),
            partial: BTreeMap::new(),
            spot_on_node: vec![Vec::new(); nodes.len()],
            spot_hosts: BTreeMap::new(),
            fully_idle_count: 0,
        };
        for node in nodes {
            index.insert_node(node);
        }
        index
    }

    fn compute_key(node: &Node) -> NodeKey {
        let mut idle = 0u32;
        let mut best_partial: Option<u32> = None;
        for gpu in node.gpus() {
            if gpu.is_idle() {
                idle += 1;
            } else {
                let free = gpu.free_fraction();
                if free > 1e-12 {
                    let q = quantize(free);
                    if best_partial.is_none_or(|b| q > b) {
                        best_partial = Some(q);
                    }
                }
            }
        }
        NodeKey {
            idle,
            partial: best_partial,
            fully_idle: idle == node.total_gpus(),
            present: false,
        }
    }

    fn insert_node(&mut self, node: &Node) {
        let id = node.id().index();
        // grow the per-node slots on first sight (scale-out mints fresh
        // node ids past the as-built range)
        if self.keys.len() <= id {
            self.keys.resize(id + 1, NodeKey::default());
            self.spot_on_node.resize(id + 1, Vec::new());
            self.models.resize(id + 1, node.model());
        }
        self.models[id] = node.model();
        let mut key = Self::compute_key(node);
        key.present = true;
        let raw = node.id().raw();
        self.keys[id] = key;
        let buckets = self.idle_buckets.entry(node.model()).or_default();
        if buckets.len() <= key.idle as usize {
            buckets.resize(key.idle as usize + 1, Vec::new());
        }
        let bucket = &mut buckets[key.idle as usize];
        let pos = bucket.partition_point(|&n| n < raw);
        bucket.insert(pos, raw);
        if let Some(q) = key.partial {
            self.partial
                .entry(node.model())
                .or_default()
                .insert((q, raw));
        }
        if key.fully_idle {
            self.fully_idle_count += 1;
        }
    }

    /// Re-derives one node's keys after its occupancy changed. An
    /// unschedulable node (down or draining) stays out of the placement
    /// structures — releasing a pod on a draining node must not re-admit
    /// the node to any placement query.
    pub fn refresh(&mut self, node: &Node) {
        if !node.is_schedulable() {
            self.remove_node(node);
            return;
        }
        let id = node.id().index();
        if !self.keys[id].present {
            self.insert_node(node);
            return;
        }
        let raw = node.id().raw();
        let old = self.keys[id];
        let mut new = Self::compute_key(node);
        new.present = true;
        if old.idle != new.idle {
            let buckets = self.idle_buckets.entry(node.model()).or_default();
            let bucket = &mut buckets[old.idle as usize];
            if let Ok(pos) = bucket.binary_search(&raw) {
                bucket.remove(pos);
            }
            if buckets.len() <= new.idle as usize {
                buckets.resize(new.idle as usize + 1, Vec::new());
            }
            let bucket = &mut buckets[new.idle as usize];
            let pos = bucket.partition_point(|&n| n < raw);
            bucket.insert(pos, raw);
        }
        if old.partial != new.partial {
            let set = self.partial.entry(node.model()).or_default();
            if let Some(q) = old.partial {
                set.remove(&(q, raw));
            }
            if let Some(q) = new.partial {
                set.insert((q, raw));
            }
        }
        match (old.fully_idle, new.fully_idle) {
            (false, true) => self.fully_idle_count += 1,
            (true, false) => self.fully_idle_count -= 1,
            _ => {}
        }
        self.keys[id] = new;
    }

    /// Removes a node from every *placement* structure, using the keys
    /// stored at the last refresh: its idle-bucket entry, partial-card key
    /// and fully-idle count all vanish in one call, so no query can
    /// observe a half-removed node. Idempotent — removing an absent node
    /// (e.g. forcing down a node already out of the index because it was
    /// draining) is a no-op. The spot locality list is left alone: a
    /// draining node still hosts its spot pods.
    pub fn remove_node(&mut self, node: &Node) {
        let id = node.id().index();
        let raw = node.id().raw();
        let key = self.keys[id];
        if !key.present {
            return;
        }
        if let Some(buckets) = self.idle_buckets.get_mut(&node.model()) {
            if let Some(bucket) = buckets.get_mut(key.idle as usize) {
                if let Ok(pos) = bucket.binary_search(&raw) {
                    bucket.remove(pos);
                }
            }
        }
        if let Some(q) = key.partial {
            if let Some(set) = self.partial.get_mut(&node.model()) {
                set.remove(&(q, raw));
            }
        }
        if key.fully_idle {
            self.fully_idle_count -= 1;
        }
        self.keys[id] = NodeKey::default();
    }

    /// Re-inserts a restored (or drain-cancelled) node, recomputing its
    /// keys from the node's actual card state; also the growth path for
    /// nodes minted by scale-out ([`insert_node`](Self::insert_node)
    /// extends the per-node slots on first sight).
    pub fn restore_node(&mut self, node: &Node) {
        self.insert_node(node);
    }

    /// Records that `task` (spot) now has a pod on `node`.
    pub fn add_spot(&mut self, node: NodeId, task: TaskId) {
        let list = &mut self.spot_on_node[node.index()];
        if let Err(pos) = list.binary_search(&task) {
            list.insert(pos, task);
            if list.len() == 1 {
                let raw = node.raw();
                let hosts = self
                    .spot_hosts
                    .entry(self.models[node.index()])
                    .or_default();
                if let Err(pos) = hosts.binary_search(&raw) {
                    hosts.insert(pos, raw);
                }
            }
        }
    }

    /// Removes `task` from `node`'s spot locality list.
    pub fn remove_spot(&mut self, node: NodeId, task: TaskId) {
        let list = &mut self.spot_on_node[node.index()];
        if let Ok(pos) = list.binary_search(&task) {
            list.remove(pos);
            if list.is_empty() {
                if let Some(hosts) = self.spot_hosts.get_mut(&self.models[node.index()]) {
                    if let Ok(pos) = hosts.binary_search(&node.raw()) {
                        hosts.remove(pos);
                    }
                }
            }
        }
    }

    /// Spot tasks with at least one pod on `node`, ascending by id.
    #[must_use]
    pub fn spot_tasks_on(&self, node: NodeId) -> &[TaskId] {
        &self.spot_on_node[node.index()]
    }

    /// Whether `node` hosts at least one spot pod.
    #[must_use]
    pub fn has_spot_on(&self, node: NodeId) -> bool {
        !self.spot_on_node[node.index()].is_empty()
    }

    /// Count of nodes with every card idle (any model).
    #[must_use]
    pub fn fully_idle_nodes(&self) -> usize {
        self.fully_idle_count
    }

    /// Node ids (ascending) of `model` nodes with at least `need` whole
    /// idle cards.
    pub fn whole_fit_candidates(&self, model: GpuModel, need: u32, out: &mut Vec<u32>) {
        out.clear();
        let Some(buckets) = self.idle_buckets.get(&model) else {
            return;
        };
        for bucket in buckets.iter().skip(need as usize) {
            out.extend_from_slice(bucket);
        }
        out.sort_unstable();
    }

    /// Node ids (ascending) of `model` nodes that *may* fit a fraction `f`
    /// of one card: any node with an idle card, plus nodes whose best
    /// partial card has at least `f` free (conservatively widened by the
    /// quantization step; callers must re-verify with
    /// [`Node::can_fit`](crate::Node::can_fit)).
    pub fn fraction_fit_candidates(&self, model: GpuModel, f: f64, out: &mut Vec<u32>) {
        out.clear();
        if let Some(buckets) = self.idle_buckets.get(&model) {
            for bucket in buckets.iter().skip(1) {
                out.extend_from_slice(bucket);
            }
        }
        if let Some(set) = self.partial.get(&model) {
            let min_q = quantize((f - 1e-9).max(0.0)).saturating_sub(1);
            for &(_, id) in set.range((min_q, 0)..) {
                out.push(id);
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Node ids (ascending) worth visiting when planning a preemption of
    /// `need` cards on `model` nodes: nodes that already fit, plus
    /// *schedulable* nodes hosting at least one spot pod (a draining node
    /// still hosts spot pods but cannot accept the preemptor's placement,
    /// so evicting there would only destroy work).
    pub fn preemption_candidates(&self, model: GpuModel, need: u32, out: &mut Vec<u32>) {
        self.whole_fit_candidates(model, need, out);
        if let Some(hosts) = self.spot_hosts.get(&model) {
            out.extend(
                hosts
                    .iter()
                    .copied()
                    .filter(|&id| self.keys[id as usize].present),
            );
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Walks `model` nodes best-fit-first — idle buckets in ascending
    /// idle-count order starting at `need`, ascending node ids inside a
    /// bucket — until `accept` returns `true`, and returns that node id.
    /// O(nodes skipped + 1) instead of collect-everything-then-score.
    pub fn best_fit_walk(
        &self,
        model: GpuModel,
        need: u32,
        mut accept: impl FnMut(u32) -> bool,
    ) -> Option<u32> {
        let buckets = self.idle_buckets.get(&model)?;
        for bucket in buckets.iter().skip(need as usize) {
            for &id in bucket {
                if accept(id) {
                    return Some(id);
                }
            }
        }
        None
    }

    /// The placement key of node `id` as currently indexed: its GPU model
    /// and whole-card idle count, or `None` while the node is out of the
    /// placement structures (down or draining). Read-side caches mirror
    /// their bucket membership from this.
    #[must_use]
    pub fn node_placement_key(&self, id: u32) -> Option<(GpuModel, u32)> {
        let key = self.keys.get(id as usize)?;
        if !key.present {
            return None;
        }
        Some((self.models[id as usize], key.idle))
    }
}
