//! The assembled GFS scheduler (Fig. 6): GDE + SQA + PTS behind the
//! [`Scheduler`] trait, implementing the closed loop of Alg. 3.

use gfs_cluster::{Cluster, Decision, DrainDecision, RunningTask, Scheduler, TaskEvent};
use gfs_sched::placement::PlacementPolicy;
use gfs_types::{GfsParams, SimDuration, SimTime, TaskSpec};
use serde::{Deserialize, Serialize};

use crate::gde::{DemandEstimator, GdeState};
use crate::pts::{Pts, PtsVariant};
use crate::sqa::{SpotQuotaAllocator, SqaState};

/// The serialized dynamic state of a [`GfsScheduler`]: the SQA feedback
/// accumulators plus (when a GDE is attached) the demand-history rollup.
/// This is what [`Scheduler::save_state`] encodes for service snapshots;
/// the PTS carries no dynamic state (it is a pure function of the cluster
/// view), and parameters/models are rebuilt by the scheduler factory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GfsState {
    /// Spot Quota Allocator accumulators.
    pub sqa: SqaState,
    /// Demand-estimator history, when a GDE is attached.
    pub gde: Option<GdeState>,
}

/// The GFS scheduling framework.
///
/// * **Quota check** — spot tasks are admitted only within the SQA quota
///   `Q_H` (Alg. 3 line 1).
/// * **Non-preemptive scheduling** — Alg. 1 with the three-criteria
///   scoring.
/// * **Preemptive fallback** — HP tasks failing non-preemptive placement
///   preempt spot tasks per Alg. 2.
///
/// Without a [`DemandEstimator`] the aggregated demand forecast is zero and
/// the quota degenerates to "all currently idle GPUs" — useful for unit
/// tests and as a conservative fallback.
pub struct GfsScheduler {
    display_name: String,
    params: GfsParams,
    pts: Pts,
    sqa: SpotQuotaAllocator,
    gde: Option<DemandEstimator>,
}

impl std::fmt::Debug for GfsScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GfsScheduler({}, quota={:.1}, eta={:.2})",
            self.display_name,
            self.sqa.quota(),
            self.sqa.eta()
        )
    }
}

impl GfsScheduler {
    /// Creates the framework with an optional demand estimator and
    /// policy-less (naive) placement.
    #[must_use]
    pub fn new(params: GfsParams, variant: PtsVariant, gde: Option<DemandEstimator>) -> Self {
        GfsScheduler::with_policy(params, variant, gde, PlacementPolicy::naive())
    }

    /// Creates the framework with a churn [`PlacementPolicy`] steering
    /// the PTS node choice (domain spreading, reliability scoring, drain
    /// awareness). A [`PlacementPolicy::naive`] policy reproduces
    /// [`GfsScheduler::new`] bit for bit.
    #[must_use]
    pub fn with_policy(
        params: GfsParams,
        variant: PtsVariant,
        gde: Option<DemandEstimator>,
        policy: PlacementPolicy,
    ) -> Self {
        let display_name = match (variant, &gde) {
            (PtsVariant::Full, Some(_)) => "GFS".to_string(),
            (PtsVariant::Full, None) => "GFS (no GDE)".to_string(),
            (PtsVariant::SimpleScoring, _) => "GFS-s".to_string(),
            (PtsVariant::RandomPreemption, _) => "GFS-p".to_string(),
            (PtsVariant::Degraded, _) => "GFS-sp".to_string(),
        };
        GfsScheduler {
            display_name,
            pts: Pts::with_policy(params.clone(), variant, policy),
            sqa: SpotQuotaAllocator::new(params.clone()),
            params,
            gde,
        }
    }

    /// Creates the full framework with Table 4 defaults and no estimator.
    #[must_use]
    pub fn with_defaults() -> Self {
        GfsScheduler::new(GfsParams::default(), PtsVariant::Full, None)
    }

    /// Overrides the display name (used by ablation harnesses, e.g.
    /// "GFS-e" for the peak-predictor variant).
    pub fn set_display_name(&mut self, name: impl Into<String>) {
        self.display_name = name.into();
    }

    /// Current spot quota `Q_H`.
    #[must_use]
    pub fn quota(&self) -> f64 {
        self.sqa.quota()
    }

    /// Current SQA safety coefficient `η`.
    #[must_use]
    pub fn eta(&self) -> f64 {
        self.sqa.eta()
    }

    /// The configured parameters.
    #[must_use]
    pub fn params(&self) -> &GfsParams {
        &self.params
    }

    fn per_org_hp_usage(&self, cluster: &Cluster) -> Vec<f64> {
        let n = self.gde.as_ref().map_or(0, DemandEstimator::num_orgs);
        let mut usage = vec![0.0; n];
        if n == 0 {
            return usage;
        }
        for rt in cluster.running() {
            if rt.spec.priority.is_hp() {
                usage[rt.spec.org.index() % n] += rt.spec.total_gpus();
            }
        }
        usage
    }
}

impl Scheduler for GfsScheduler {
    fn name(&self) -> &str {
        &self.display_name
    }

    fn on_tick(&mut self, now: SimTime, cluster: &Cluster) {
        let usage = self.per_org_hp_usage(cluster);
        let upper = match &mut self.gde {
            Some(gde) => {
                gde.record_usage(now, &usage);
                gde.aggregate_upper(
                    self.params.guarantee_rate,
                    self.params.guarantee_hours as usize,
                )
            }
            None => 0.0,
        };
        self.sqa.update(now, cluster, upper);
    }

    fn demand_forecast(&self, p: f64, h: usize) -> Option<f64> {
        self.gde.as_ref().map(|g| g.aggregate_upper(p, h))
    }

    fn on_event(&mut self, event: &TaskEvent, cluster: &Cluster) {
        match event {
            TaskEvent::Evicted { task, at } => self.sqa.record_eviction(*task, *at),
            TaskEvent::Submitted { task, priority, at } if priority.is_spot() => {
                self.sqa.record_spot_submitted(*task, *at);
            }
            TaskEvent::Started {
                task,
                priority,
                queued_secs,
                at,
            } if priority.is_spot() => {
                self.sqa.record_spot_start(*task, *at, *queued_secs);
            }
            TaskEvent::Displaced { task, priority, at } if priority.is_spot() => {
                self.sqa.record_displacement(*task, *at);
            }
            // capacity changed under the quota — a node died, returned,
            // started draining (its cards can host nothing new) or joined
            // by scale-out: re-clamp immediately instead of admitting
            // against vanished GPUs (or ignoring fresh ones) until the
            // next 300 s tick (the SQA keeps the last forecast for this)
            TaskEvent::NodeDown { .. }
            | TaskEvent::NodeUp { .. }
            | TaskEvent::DrainNotice { .. }
            | TaskEvent::NodeAdded { .. } => {
                self.sqa.refresh_capacity(cluster);
            }
            _ => {}
        }
    }

    fn schedule(&mut self, task: &TaskSpec, cluster: &Cluster, now: SimTime) -> Option<Decision> {
        // Alg. 3: quota gate for spot tasks
        if task.priority.is_spot() && !self.sqa.admits(cluster, task.total_gpus()) {
            return None;
        }
        if let Some(nodes) = self.pts.schedule_nonpreemptive(task, cluster, now) {
            return Some(Decision::place(nodes));
        }
        if task.priority.is_hp() {
            let (nodes, victims) = self.pts.schedule_preemptive(task, cluster, now)?;
            return Some(Decision {
                pod_nodes: nodes,
                preemptions: victims,
            });
        }
        None
    }

    fn queue_cmp(&self, a: &TaskSpec, b: &TaskSpec) -> std::cmp::Ordering {
        Pts::task_order(a, b)
    }

    fn drain_decision(
        &self,
        task: &RunningTask,
        notice: SimDuration,
        cluster: &Cluster,
        now: SimTime,
    ) -> DrainDecision {
        self.pts.policy().drain_decision(task, notice, cluster, now)
    }

    fn save_state(&self) -> Option<String> {
        let state = GfsState {
            sqa: self.sqa.save_state(),
            gde: self.gde.as_ref().map(DemandEstimator::save_state),
        };
        let mut out = String::new();
        state.serialize_json(&mut out);
        Some(out)
    }

    fn restore_state(&mut self, state: &str) -> bool {
        let mut p = serde::de::Parser::new(state);
        let Ok(parsed) = GfsState::deserialize_json(&mut p) else {
            return false;
        };
        if !p.at_end() {
            return false;
        }
        match (&mut self.gde, parsed.gde) {
            (Some(gde), Some(s)) => {
                if !gde.restore_state(s) {
                    return false;
                }
            }
            (None, None) => {}
            // a GDE-less snapshot cannot hydrate a GDE-ful scheduler (or
            // vice versa): the factory and the snapshot disagree
            _ => return false,
        }
        self.sqa.restore_state(parsed.sqa);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs_types::{GpuDemand, GpuModel, NodeId, Priority, TaskId};

    fn task(id: u64, priority: Priority, gpus: u32) -> TaskSpec {
        TaskSpec::builder(id)
            .priority(priority)
            .gpus_per_pod(GpuDemand::whole(gpus))
            .duration_secs(50_000)
            .build()
            .unwrap()
    }

    #[test]
    fn spot_blocked_until_first_quota_update() {
        let mut s = GfsScheduler::with_defaults();
        let c = Cluster::homogeneous(2, GpuModel::A100, 8);
        assert!(s
            .schedule(&task(1, Priority::Spot, 2), &c, SimTime::ZERO)
            .is_none());
        s.on_tick(SimTime::from_secs(300), &c);
        assert!(s.quota() > 0.0);
        assert!(s
            .schedule(&task(1, Priority::Spot, 2), &c, SimTime::ZERO)
            .is_some());
    }

    #[test]
    fn hp_ignores_quota_and_preempts() {
        let mut s = GfsScheduler::with_defaults();
        let mut c = Cluster::homogeneous(1, GpuModel::A100, 8);
        c.start_task(
            task(1, Priority::Spot, 8),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let d = s
            .schedule(&task(2, Priority::Hp, 4), &c, SimTime::from_secs(10))
            .unwrap();
        assert!(d.is_preemptive());
        assert_eq!(d.preemptions, vec![TaskId::new(1)]);
    }

    #[test]
    fn eviction_feedback_reaches_sqa() {
        let mut s = GfsScheduler::with_defaults();
        let c = Cluster::homogeneous(1, GpuModel::A100, 8);
        s.on_tick(SimTime::from_secs(300), &c);
        let q0 = s.quota();
        // storm of evictions within the window
        for i in 0..20 {
            s.on_event(
                &TaskEvent::Evicted {
                    task: TaskId::new(i),
                    at: SimTime::from_secs(400),
                },
                &c,
            );
        }
        s.on_tick(SimTime::from_secs(600), &c);
        assert!(s.eta() < 1.0, "η must shrink after an eviction storm");
        assert!(s.quota() < q0);
    }

    #[test]
    fn node_down_reclamps_quota_immediately() {
        let mut s = GfsScheduler::with_defaults();
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        s.on_tick(SimTime::from_secs(300), &c);
        assert!((s.quota() - 16.0).abs() < 1e-9);
        c.fail_node(NodeId::new(1), SimTime::from_secs(400))
            .unwrap();
        s.on_event(
            &TaskEvent::NodeDown {
                node: NodeId::new(1),
                lost_gpus: 8,
                at: SimTime::from_secs(400),
            },
            &c,
        );
        assert!(
            (s.quota() - 8.0).abs() < 1e-9,
            "quota tracks the surviving fleet"
        );
        assert!(s
            .schedule(&task(1, Priority::Spot, 12), &c, SimTime::from_secs(401))
            .is_none());
        c.restore_node(NodeId::new(1), SimTime::from_secs(500))
            .unwrap();
        s.on_event(
            &TaskEvent::NodeUp {
                node: NodeId::new(1),
                restored_gpus: 8,
                at: SimTime::from_secs(500),
            },
            &c,
        );
        assert!((s.quota() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn drain_notice_and_scale_out_reclamp_quota() {
        let mut s = GfsScheduler::with_defaults();
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        s.on_tick(SimTime::from_secs(300), &c);
        assert!((s.quota() - 16.0).abs() < 1e-9);
        // a draining node's cards can host nothing new: quota shrinks at
        // the notice, not at the deadline
        c.drain_node(NodeId::new(1), SimTime::from_secs(3_600))
            .unwrap();
        s.on_event(
            &TaskEvent::DrainNotice {
                node: NodeId::new(1),
                deadline: SimTime::from_secs(3_600),
                at: SimTime::from_secs(400),
            },
            &c,
        );
        assert!(
            (s.quota() - 8.0).abs() < 1e-9,
            "quota tracks the schedulable fleet"
        );
        // scale-out grows it right back
        let added = c.add_node(GpuModel::A100, 8);
        s.on_event(
            &TaskEvent::NodeAdded {
                node: added,
                added_gpus: 8,
                at: SimTime::from_secs(500),
            },
            &c,
        );
        assert!(
            (s.quota() - 16.0).abs() < 1e-9,
            "fresh capacity admits spot immediately"
        );
    }

    #[test]
    fn display_names_follow_variants() {
        assert_eq!(
            GfsScheduler::new(GfsParams::default(), PtsVariant::Degraded, None).name(),
            "GFS-sp"
        );
        assert_eq!(GfsScheduler::with_defaults().name(), "GFS (no GDE)");
        let mut s = GfsScheduler::with_defaults();
        s.set_display_name("GFS-e");
        assert_eq!(s.name(), "GFS-e");
    }

    #[test]
    fn queue_sorting_delegates_to_pts() {
        let s = GfsScheduler::with_defaults();
        let mut q = vec![task(1, Priority::Hp, 1), task(2, Priority::Hp, 8)];
        s.sort_queue(&mut q);
        assert_eq!(q[0].id, TaskId::new(2));
    }

    #[test]
    fn state_round_trip_restores_feedback_loop() {
        let mut s = GfsScheduler::with_defaults();
        let c = Cluster::homogeneous(2, GpuModel::A100, 8);
        s.on_tick(SimTime::from_secs(300), &c);
        for i in 0..7 {
            s.on_event(
                &TaskEvent::Evicted {
                    task: TaskId::new(i),
                    at: SimTime::from_secs(400),
                },
                &c,
            );
        }
        s.on_event(
            &TaskEvent::Submitted {
                task: TaskId::new(99),
                priority: Priority::Spot,
                at: SimTime::from_secs(410),
            },
            &c,
        );
        s.on_tick(SimTime::from_secs(600), &c);
        let blob = s.save_state().expect("GFS is stateful");

        let mut fresh = GfsScheduler::with_defaults();
        assert_ne!(fresh.eta(), s.eta(), "fresh scheduler starts clean");
        assert!(fresh.restore_state(&blob));
        assert_eq!(fresh.eta(), s.eta());
        assert_eq!(fresh.quota(), s.quota());
        // the restored blob re-encodes identically (canonical ordering)
        assert_eq!(fresh.save_state().unwrap(), blob);
        // and the restored feedback loop evolves identically
        s.on_tick(SimTime::from_secs(900), &c);
        fresh.on_tick(SimTime::from_secs(900), &c);
        assert_eq!(fresh.save_state().unwrap(), s.save_state().unwrap());
    }

    #[test]
    fn restore_rejects_garbage_and_mismatched_shape() {
        let mut s = GfsScheduler::with_defaults();
        assert!(!s.restore_state("not json"));
        assert!(!s.restore_state("{}"));
        let blob = s.save_state().unwrap();
        assert!(!s.restore_state(&format!("{blob} trailing")));
        assert!(s.restore_state(&blob));
    }
}
