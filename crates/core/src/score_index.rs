//! Epoch-invalidated score index: the O(log n) replacement for the PTS
//! lexicographic placement scan.
//!
//! [`Pts::schedule_nonpreemptive`](crate::Pts::schedule_nonpreemptive)
//! historically found each pod's node by scoring *every* feasible
//! candidate and taking the lexicographic max — O(n) per decision, the
//! difference between a simulator and a schedulable control plane at
//! 100k nodes (ROADMAP item 1). This module caches the scores instead:
//!
//! * **Bucket trees** — one tournament (segment) tree per capacity-index
//!   bucket `(GpuModel, idle cards)`, whose internal nodes hold the
//!   winning node id under the exact scan order: packed `<Score1, Score2,
//!   Score3>` descending, then lower node id. A whole-card query for `g`
//!   cards reads the root of every bucket `g..` (at most
//!   `gpus_per_node + 1` roots) and picks the best — O(log n) total.
//! * **Epoch invalidation** — the cluster's [`ChangeLog`] records every
//!   score-relevant node mutation; [`ScoreIndex::prepare`] replays only
//!   the ids touched since its last cursor and recomputes those keys. A
//!   cursor that falls off the bounded log (or a different cluster
//!   instance) forces a full rebuild.
//! * **Eviction-window-aware invalidation** — `Score3` depends on
//!   windowed eviction *counts*, which also change by pure aging. Each
//!   cached key carries the last instant its counts stay valid
//!   ([`Node::eviction_score_valid_until`]); a min-heap of those
//!   deadlines recomputes exactly the nodes whose windows just aged out.
//!
//! ## Why the cached order is bit-identical to the scan
//!
//! All score components are finite and non-negative (`Score1 ∈ [0, 1]`,
//! `Score2 ≥ 0`, `Score3 ≥ 0`; the spot circuit breaker excludes a node
//! *before* a non-positive `Score3` could be stored), and for such
//! doubles the IEEE-754 bit pattern is monotone in the value — comparing
//! packed `u64` triples is exactly `partial_cmp` on the float triples,
//! with no epsilon anywhere. Scores are always recomputed from real node
//! state through the same [`Pts::node_scores`](crate::Pts::node_scores)
//! the scan calls, so a synced index cannot disagree with the scan even
//! in the last bit (property-pinned in `tests/property_based.rs`).
//!
//! Gang budgets never enter the cache: a pod's predecessors only *gate*
//! a node (virtual budget < demand), they never change its score, so the
//! caller masks budget-exhausted leaves for the duration of one gang and
//! reinserts them afterwards.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use gfs_cluster::Cluster;
use gfs_types::{GpuModel, Priority, SimTime};

use crate::pts::Pts;

/// Sentinel for "no node" in leaves and winner slots.
const EMPTY: u32 = u32::MAX;

/// Which cached score flavor a query reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flavor {
    /// HP scoring (eviction-seeking `Score3`).
    Hp,
    /// Spot scoring (eviction-averse `Score3`; circuit-broken nodes are
    /// absent from this flavor entirely).
    Spot,
}

impl Flavor {
    pub(crate) fn of(priority: Priority) -> Flavor {
        match priority {
            Priority::Hp => Flavor::Hp,
            Priority::Spot => Flavor::Spot,
        }
    }
}

/// `<Score1, Score2, Score3>` packed as order-preserving bit patterns.
type Key = [u64; 3];

fn pack(scores: (f64, f64, f64)) -> Key {
    [scores.0.to_bits(), scores.1.to_bits(), scores.2.to_bits()]
}

/// Per-node cache slot.
#[derive(Debug, Clone, Default)]
struct Slot {
    /// Where the node's leaf lives: `(model, idle bucket, leaf pos)`;
    /// `None` while out of the placement structures (down, draining, or
    /// temporarily masked by a gang budget).
    bucket: Option<(GpuModel, u32, u32)>,
    hp: Option<Key>,
    spot: Option<Key>,
    /// Last second at which the eviction-window counts behind these keys
    /// are still current (`None` = stable until the next mutation).
    valid_until: Option<u64>,
}

impl Slot {
    fn key(&self, flavor: Flavor) -> Option<Key> {
        match flavor {
            Flavor::Hp => self.hp,
            Flavor::Spot => self.spot,
        }
    }
}

fn key_of(slots: &[Slot], flavor: Flavor, id: u32) -> Option<Key> {
    if id == EMPTY {
        return None;
    }
    slots[id as usize].key(flavor)
}

/// The scan's total order: higher packed scores win, ties prefer the
/// *lower* node id (the `then(b.0.cmp(&a.0))` of the scan's `max_by`).
fn duel(slots: &[Slot], flavor: Flavor, a: u32, b: u32) -> u32 {
    match (key_of(slots, flavor, a), key_of(slots, flavor, b)) {
        (None, None) => EMPTY,
        (Some(_), None) => a,
        (None, Some(_)) => b,
        (Some(ka), Some(kb)) => {
            if (ka, Reverse(a)) >= (kb, Reverse(b)) {
                a
            } else {
                b
            }
        }
    }
}

/// Tournament tree over one `(model, idle)` bucket's members. Leaves hold
/// node ids; internal slots hold the per-flavor duel winner of their
/// subtree. Positions are an implementation detail — winners depend only
/// on `(key, id)`, so leaf placement cannot affect decisions.
#[derive(Debug, Clone, Default)]
struct BucketTree {
    /// Leaf capacity; always a power of two (or 0 before first insert).
    cap: usize,
    /// `leaves[pos]` = node id or `EMPTY`.
    leaves: Vec<u32>,
    /// Internal duel winners, index 1..cap (standard implicit heap
    /// layout; entry 0 unused). Empty when `cap <= 1`.
    hp_win: Vec<u32>,
    spot_win: Vec<u32>,
    free: Vec<u32>,
    len: usize,
}

impl BucketTree {
    fn child(&self, flavor: Flavor, j: usize) -> u32 {
        if j >= self.cap {
            self.leaves[j - self.cap]
        } else {
            match flavor {
                Flavor::Hp => self.hp_win[j],
                Flavor::Spot => self.spot_win[j],
            }
        }
    }

    fn refresh_internal(&mut self, slots: &[Slot], i: usize) {
        let hp = duel(
            slots,
            Flavor::Hp,
            self.child(Flavor::Hp, 2 * i),
            self.child(Flavor::Hp, 2 * i + 1),
        );
        let spot = duel(
            slots,
            Flavor::Spot,
            self.child(Flavor::Spot, 2 * i),
            self.child(Flavor::Spot, 2 * i + 1),
        );
        self.hp_win[i] = hp;
        self.spot_win[i] = spot;
    }

    /// Recomputes winners on the path from leaf `pos` to the root.
    fn update_path(&mut self, slots: &[Slot], pos: u32) {
        let mut i = (self.cap + pos as usize) / 2;
        while i >= 1 {
            self.refresh_internal(slots, i);
            i /= 2;
        }
    }

    fn grow(&mut self, slots: &[Slot]) {
        let new_cap = (self.cap * 2).max(1);
        self.leaves.resize(new_cap, EMPTY);
        // hand out fresh positions high-to-low so pops take low first
        for pos in (self.cap..new_cap).rev() {
            self.free.push(pos as u32);
        }
        self.cap = new_cap;
        self.hp_win = vec![EMPTY; self.cap.max(1)];
        self.spot_win = vec![EMPTY; self.cap.max(1)];
        for i in (1..self.cap).rev() {
            self.refresh_internal(slots, i);
        }
    }

    fn insert(&mut self, slots: &[Slot], id: u32) -> u32 {
        if self.free.is_empty() {
            self.grow(slots);
        }
        let pos = self.free.pop().expect("grow produced a free leaf");
        self.leaves[pos as usize] = id;
        self.len += 1;
        self.update_path(slots, pos);
        pos
    }

    fn remove(&mut self, slots: &[Slot], pos: u32) {
        debug_assert_ne!(self.leaves[pos as usize], EMPTY);
        self.leaves[pos as usize] = EMPTY;
        self.free.push(pos);
        self.len -= 1;
        self.update_path(slots, pos);
    }

    fn winner(&self, slots: &[Slot], flavor: Flavor) -> u32 {
        if self.len == 0 || self.cap == 0 {
            return EMPTY;
        }
        if self.cap == 1 {
            let id = self.leaves[0];
            if key_of(slots, flavor, id).is_some() {
                return id;
            }
            return EMPTY;
        }
        match flavor {
            Flavor::Hp => self.hp_win[1],
            Flavor::Spot => self.spot_win[1],
        }
    }
}

/// The score index. One per [`Pts`](crate::Pts) instance, bound to one
/// cluster value at a time (a different cluster — or a clone, which mints
/// a fresh change-log instance — triggers a rebuild on first use).
#[derive(Debug, Clone, Default)]
pub(crate) struct ScoreIndex {
    /// Change-log instance this index is synced to.
    bound: Option<u64>,
    cursor: u64,
    last_now: SimTime,
    slots: Vec<Slot>,
    trees: BTreeMap<(GpuModel, u32), BucketTree>,
    /// Min-heap of `(valid_until, node id)` eviction-window deadlines.
    expiry: BinaryHeap<Reverse<(u64, u32)>>,
    scratch: Vec<u32>,
}

impl ScoreIndex {
    /// Brings the index in sync with `cluster` at `now`: full rebuild on
    /// first contact / instance change / log overflow / time moving
    /// backwards, otherwise an incremental replay of the changed ids plus
    /// aging-out of expired eviction windows.
    pub(crate) fn prepare(&mut self, pts: &Pts, cluster: &Cluster, now: SimTime) {
        let log = cluster.change_log();
        if self.bound != Some(log.instance()) || now < self.last_now {
            self.rebuild(pts, cluster, now);
            return;
        }
        let mut ids = std::mem::take(&mut self.scratch);
        ids.clear();
        let replayed = log.replay(self.cursor, |id| ids.push(id));
        if !replayed {
            self.scratch = ids;
            self.rebuild(pts, cluster, now);
            return;
        }
        self.cursor = log.cursor();
        for &id in &ids {
            self.recompute(pts, cluster, id, now);
        }
        self.scratch = ids;
        while let Some(&Reverse((t, id))) = self.expiry.peek() {
            if t >= now.as_secs() {
                break;
            }
            self.expiry.pop();
            // only act on the node's *current* deadline; earlier entries
            // for the same node are stale and skipped
            if self
                .slots
                .get(id as usize)
                .is_some_and(|s| s.valid_until == Some(t))
            {
                self.recompute(pts, cluster, id, now);
            }
        }
        self.last_now = now;
    }

    fn rebuild(&mut self, pts: &Pts, cluster: &Cluster, now: SimTime) {
        let log = cluster.change_log();
        self.bound = Some(log.instance());
        self.cursor = log.cursor();
        self.last_now = now;
        self.trees.clear();
        self.expiry.clear();
        self.slots.clear();
        self.slots.resize(cluster.nodes().len(), Slot::default());
        for node in cluster.nodes() {
            self.recompute(pts, cluster, node.id().raw(), now);
        }
    }

    /// Recomputes one node's cached keys and tree membership from real
    /// cluster state.
    fn recompute(&mut self, pts: &Pts, cluster: &Cluster, id: u32, now: SimTime) {
        if self.slots.len() <= id as usize {
            // scale-out minted a fresh node id
            self.slots.resize(id as usize + 1, Slot::default());
        }
        let placement = cluster.node_placement_key(id);
        let (hp, spot, valid_until) = match placement {
            None => (None, None, None),
            Some(_) => {
                let node = &cluster.nodes()[id as usize];
                let hp = pts.node_scores(node, Priority::Hp, now).map(pack);
                let spot = pts.node_scores(node, Priority::Spot, now).map(pack);
                let valid = if pts.scoring_time_invariant() {
                    None
                } else {
                    node.eviction_score_valid_until(now, &pts.eviction_windows())
                        .map(SimTime::as_secs)
                };
                (hp, spot, valid)
            }
        };
        let slot = &mut self.slots[id as usize];
        let old_bucket = slot.bucket;
        let deadline_changed = slot.valid_until != valid_until;
        slot.hp = hp;
        slot.spot = spot;
        slot.valid_until = valid_until;
        match (old_bucket, placement) {
            (Some((m, k, pos)), Some(new)) if (m, k) == new => {
                // same bucket, keys changed: refresh the winner path
                let tree = self.trees.get_mut(&(m, k)).expect("occupied bucket");
                tree.update_path(&self.slots, pos);
            }
            (old, new) => {
                if let Some((m, k, pos)) = old {
                    let tree = self.trees.get_mut(&(m, k)).expect("occupied bucket");
                    tree.remove(&self.slots, pos);
                }
                if let Some((m, k)) = new {
                    let tree = self.trees.entry((m, k)).or_default();
                    let pos = tree.insert(&self.slots, id);
                    self.slots[id as usize].bucket = Some((m, k, pos));
                } else {
                    self.slots[id as usize].bucket = None;
                }
            }
        }
        if deadline_changed {
            if let Some(t) = valid_until {
                self.expiry.push(Reverse((t, id)));
            }
        }
    }

    /// The scan winner among schedulable `model` nodes with at least
    /// `need` whole idle cards: lexicographic max of the cached scores,
    /// ties to the lower node id. Requires a preceding
    /// [`ScoreIndex::prepare`] this scheduling round.
    pub(crate) fn query(&self, model: GpuModel, need: u32, flavor: Flavor) -> Option<u32> {
        let mut best: Option<(Key, Reverse<u32>)> = None;
        let mut best_id = EMPTY;
        for (_, tree) in self.trees.range((model, need)..=(model, u32::MAX)) {
            let w = tree.winner(&self.slots, flavor);
            if w == EMPTY {
                continue;
            }
            let key = key_of(&self.slots, flavor, w).expect("winner has a key");
            let cand = (key, Reverse(w));
            if best.is_none_or(|b| cand > b) {
                best = Some(cand);
                best_id = w;
            }
        }
        (best_id != EMPTY).then_some(best_id)
    }

    /// Debug aid: prints every node whose cached state disagrees with a
    /// fresh recomputation. Temporary instrumentation for the
    /// index-equivalence work; only called under `GFS_XCHECK_INDEX`.
    pub(crate) fn debug_dump(&self, pts: &Pts, cluster: &Cluster, now: SimTime) {
        for node in cluster.nodes() {
            let id = node.id().raw();
            let slot = &self.slots[id as usize];
            let placement = cluster.node_placement_key(id);
            let hp = pts.node_scores(node, Priority::Hp, now).map(pack);
            let spot = pts.node_scores(node, Priority::Spot, now).map(pack);
            let bucket_ok = match (slot.bucket, placement) {
                (Some((m, k, _)), Some(p)) => (m, k) == p,
                (None, None) => true,
                _ => false,
            };
            if slot.hp != hp || slot.spot != spot || !bucket_ok {
                eprintln!(
                    "node {id}: cached hp={:?} spot={:?} bucket={:?} vs fresh hp={:?} spot={:?} placement={:?} valid_until={:?} idle={}",
                    slot.hp, slot.spot, slot.bucket, hp, spot, placement, slot.valid_until,
                    node.idle_gpus()
                );
            }
        }
    }

    /// Temporarily hides a node from queries (gang budget exhausted for
    /// the pods still being placed). Keys stay cached; pair with
    /// [`ScoreIndex::unmask`] before the scheduling call returns.
    pub(crate) fn mask(&mut self, id: u32) {
        if let Some((m, k, pos)) = self.slots[id as usize].bucket.take() {
            let tree = self.trees.get_mut(&(m, k)).expect("occupied bucket");
            tree.remove(&self.slots, pos);
        }
    }

    /// Re-admits a node hidden by [`ScoreIndex::mask`]. The cluster was
    /// not mutated in between (scheduling is a pure read), so the node
    /// rejoins the bucket it was masked out of.
    pub(crate) fn unmask(&mut self, cluster: &Cluster, id: u32) {
        if self.slots[id as usize].bucket.is_some() {
            return;
        }
        if let Some((m, k)) = cluster.node_placement_key(id) {
            let tree = self.trees.entry((m, k)).or_default();
            let pos = tree.insert(&self.slots, id);
            self.slots[id as usize].bucket = Some((m, k, pos));
        }
    }
}
