//! Reference model for the scheduling optimization problem (Eq. 12).
//!
//! The paper formulates placement-with-preemption as a mixed-integer
//! program and then solves it heuristically (PTS) because the exact
//! problem is NP-hard. This module provides an *exhaustive* optimal solver
//! for tiny instances, used by tests and the ablation benches to measure
//! how close the Alg. 2 heuristic gets to the optimum.

use gfs_cluster::Cluster;
use gfs_types::{GpuDemand, NodeId, SimTime, TaskId, TaskSpec};

/// An optimal preemption plan for one incoming HP task.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalPlan {
    /// Chosen node per pod.
    pub pod_nodes: Vec<NodeId>,
    /// Evicted spot tasks.
    pub victims: Vec<TaskId>,
    /// Objective value: `(#victims, total waste in GPU-seconds)`,
    /// lexicographic — the Eq. 12 objective restricted to one decision.
    pub objective: (usize, f64),
}

/// Exhaustively searches every subset of running spot tasks and every pod
/// placement to find the plan minimising `(#victims, waste)`.
///
/// Exponential in the number of running spot tasks — intended for
/// instances with at most ~16 spot tasks (tests/verification only).
///
/// Returns `None` when even evicting everything cannot host the task.
#[must_use]
pub fn optimal_preemption(cluster: &Cluster, task: &TaskSpec, now: SimTime) -> Option<OptimalPlan> {
    let spots: Vec<(TaskId, f64)> = cluster
        .running()
        .filter(|rt| rt.spec.priority.is_spot())
        .map(|rt| (rt.spec.id, rt.waste(now)))
        .collect();
    assert!(
        spots.len() <= 20,
        "exhaustive solver limited to 20 spot tasks, got {}",
        spots.len()
    );
    let need = match task.gpus_per_pod {
        GpuDemand::Whole(g) => f64::from(g),
        GpuDemand::Fraction(f) => f,
    };

    let mut best: Option<OptimalPlan> = None;
    for mask in 0u32..(1 << spots.len()) {
        let victims: Vec<TaskId> = spots
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, (id, _))| *id)
            .collect();
        let waste: f64 = spots
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, (_, w))| *w)
            .sum();
        let objective = (victims.len(), waste);
        if let Some(b) = &best {
            // prune dominated subsets early
            if objective.0 > b.objective.0
                || (objective.0 == b.objective.0 && objective.1 >= b.objective.1)
            {
                continue;
            }
        }
        // virtual idle capacity after evicting the subset
        let mut idle: Vec<(NodeId, f64)> = cluster
            .nodes()
            .iter()
            .filter(|n| n.model() == task.gpu_model)
            .map(|n| (n.id(), f64::from(n.idle_gpus())))
            .collect();
        for v in &victims {
            if let Some(rt) = cluster.running_task(*v) {
                for p in &rt.placements {
                    if let Some(slot) = idle.iter_mut().find(|(id, _)| *id == p.node) {
                        slot.1 += p.alloc.cards();
                    }
                }
            }
        }
        // greedy feasibility: place pods on the emptiest nodes first
        // (optimal for identical pod sizes)
        idle.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("idle counts are finite"));
        let mut pod_nodes = Vec::with_capacity(task.pods as usize);
        for _ in 0..task.pods {
            match idle.iter_mut().find(|(_, cap)| *cap + 1e-9 >= need) {
                Some(slot) => {
                    slot.1 -= need;
                    pod_nodes.push(slot.0);
                }
                None => break,
            }
        }
        if pod_nodes.len() == task.pods as usize {
            best = Some(OptimalPlan {
                pod_nodes,
                victims,
                objective,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pts::{Pts, PtsVariant};
    use gfs_types::{CheckpointPlan, GfsParams, GpuModel, Priority};

    fn spot(id: u64, gpus: u32, start: u64) -> (TaskSpec, SimTime) {
        (
            TaskSpec::builder(id)
                .priority(Priority::Spot)
                .gpus_per_pod(GpuDemand::whole(gpus))
                .duration_secs(100_000)
                .checkpoint(CheckpointPlan::Periodic { interval: 1_800 })
                .build()
                .unwrap(),
            SimTime::from_secs(start),
        )
    }

    fn hp(id: u64, pods: u32, gpus: u32) -> TaskSpec {
        TaskSpec::builder(id)
            .priority(Priority::Hp)
            .pods(pods)
            .gpus_per_pod(GpuDemand::whole(gpus))
            .duration_secs(3_600)
            .build()
            .unwrap()
    }

    #[test]
    fn zero_victims_when_idle_space_exists() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        let (s, at) = spot(1, 8, 0);
        c.start_task(s, &[NodeId::new(0)], at, 0).unwrap();
        let plan = optimal_preemption(&c, &hp(2, 1, 4), SimTime::from_secs(100)).unwrap();
        assert!(plan.victims.is_empty());
        assert_eq!(plan.objective, (0, 0.0));
    }

    #[test]
    fn minimal_victim_subset_found() {
        let mut c = Cluster::homogeneous(1, GpuModel::A100, 8);
        for (i, g) in [2u32, 2, 4].iter().enumerate() {
            let (s, at) = spot(i as u64 + 1, *g, 0);
            c.start_task(s, &[NodeId::new(0)], at, 0).unwrap();
        }
        // need 4 GPUs: evicting the single 4-GPU task (1 victim) is optimal
        let plan = optimal_preemption(&c, &hp(9, 1, 4), SimTime::from_secs(1_000)).unwrap();
        assert_eq!(plan.victims, vec![TaskId::new(3)]);
    }

    #[test]
    fn infeasible_returns_none() {
        let c = Cluster::homogeneous(1, GpuModel::A100, 8);
        assert!(optimal_preemption(&c, &hp(1, 1, 16), SimTime::ZERO).is_none());
    }

    #[test]
    fn pts_heuristic_matches_optimum_on_small_instances() {
        // randomized-ish small instances: PTS must match the optimal victim
        // count (its victim choice may differ in waste but not count here)
        let pts = Pts::new(GfsParams::default(), PtsVariant::Full);
        for seed in 0..8u64 {
            let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
            let sizes = [2u32, 4, 2, 4, 2];
            let mut placed = 0u32;
            for (i, &g) in sizes.iter().enumerate() {
                let node = NodeId::new((i as u32 + seed as u32) % 2);
                if c.node(node).unwrap().idle_gpus() >= g {
                    let (s, _) = spot(i as u64 + 1, g, seed * 100);
                    if c.start_task(s, &[node], SimTime::from_secs(seed * 100), 0)
                        .is_ok()
                    {
                        placed += 1;
                    }
                }
            }
            assert!(placed >= 3);
            let now = SimTime::from_secs(5_000);
            let task = hp(99, 1, 6);
            let optimal = optimal_preemption(&c, &task, now);
            let heuristic = pts.schedule_preemptive(&task, &c, now);
            match (optimal, heuristic) {
                (Some(opt), Some((_, victims))) => {
                    assert!(
                        victims.len() <= opt.objective.0 + 1,
                        "seed {seed}: heuristic evicted {} vs optimal {}",
                        victims.len(),
                        opt.objective.0
                    );
                }
                (None, None) => {}
                (o, h) => panic!("seed {seed}: feasibility disagreement {o:?} vs {h:?}"),
            }
        }
    }
}
