//! The bare PTS placement engine as a standalone scheduler.
//!
//! [`PtsScheduler`] is `GfsScheduler` minus the SQA quota gate and the
//! demand estimator: spot tasks are admitted whenever placement succeeds,
//! HP tasks fall back to waste-aware preemption, and the queue follows the
//! §3.4.2 order. It exists as the *placement ablation row*: pairing it
//! with a [`PlacementPolicy`] measures what churn-aware placement (domain
//! spreading, reliability scoring, drain awareness) contributes on its
//! own, with no quota feedback in the loop.

use gfs_cluster::{Cluster, Decision, DrainDecision, RunningTask, Scheduler};
use gfs_sched::placement::PlacementPolicy;
use gfs_types::{GfsParams, SimDuration, SimTime, TaskSpec};

use crate::pts::{Pts, PtsVariant};

/// The PTS placement engine behind the [`Scheduler`] trait, with no spot
/// quota: a pure placement policy.
#[derive(Debug, Clone)]
pub struct PtsScheduler {
    pts: Pts,
}

impl PtsScheduler {
    /// Creates the scheduler with policy-less placement.
    #[must_use]
    pub fn new(params: GfsParams) -> Self {
        PtsScheduler::with_policy(params, PlacementPolicy::naive())
    }

    /// Creates the scheduler with a churn [`PlacementPolicy`].
    #[must_use]
    pub fn with_policy(params: GfsParams, policy: PlacementPolicy) -> Self {
        PtsScheduler {
            pts: Pts::with_policy(params, PtsVariant::Full, policy),
        }
    }

    /// The active churn policy.
    #[must_use]
    pub fn policy(&self) -> &PlacementPolicy {
        self.pts.policy()
    }
}

impl Scheduler for PtsScheduler {
    fn name(&self) -> &str {
        "PTS"
    }

    fn schedule(&mut self, task: &TaskSpec, cluster: &Cluster, now: SimTime) -> Option<Decision> {
        if let Some(nodes) = self.pts.schedule_nonpreemptive(task, cluster, now) {
            return Some(Decision::place(nodes));
        }
        if task.priority.is_hp() {
            let (nodes, victims) = self.pts.schedule_preemptive(task, cluster, now)?;
            return Some(Decision {
                pod_nodes: nodes,
                preemptions: victims,
            });
        }
        None
    }

    fn queue_cmp(&self, a: &TaskSpec, b: &TaskSpec) -> std::cmp::Ordering {
        Pts::task_order(a, b)
    }

    fn drain_decision(
        &self,
        task: &RunningTask,
        notice: SimDuration,
        cluster: &Cluster,
        now: SimTime,
    ) -> DrainDecision {
        self.pts.policy().drain_decision(task, notice, cluster, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs_types::{FailureDomain, GpuDemand, GpuModel, NodeId, Priority, TaskId};

    fn task(id: u64, priority: Priority, pods: u32, gpus: u32) -> TaskSpec {
        TaskSpec::builder(id)
            .priority(priority)
            .pods(pods)
            .gpus_per_pod(GpuDemand::whole(gpus))
            .duration_secs(50_000)
            .build()
            .unwrap()
    }

    #[test]
    fn admits_spot_without_quota_and_preempts_for_hp() {
        let mut s = PtsScheduler::new(GfsParams::default());
        let mut c = Cluster::homogeneous(1, GpuModel::A100, 8);
        // spot lands with no on_tick warm-up (no SQA gate)
        let d = s
            .schedule(&task(1, Priority::Spot, 1, 8), &c, SimTime::ZERO)
            .unwrap();
        assert!(!d.is_preemptive());
        c.start_task(
            task(1, Priority::Spot, 1, 8),
            &d.pod_nodes,
            SimTime::ZERO,
            0,
        )
        .unwrap();
        // a full cluster refuses further spot but preempts for HP
        assert!(s
            .schedule(&task(2, Priority::Spot, 1, 4), &c, SimTime::from_secs(10))
            .is_none());
        let d = s
            .schedule(&task(3, Priority::Hp, 1, 4), &c, SimTime::from_secs(10))
            .unwrap();
        assert_eq!(d.preemptions, vec![TaskId::new(1)]);
    }

    #[test]
    fn spread_policy_splits_gangs_across_racks() {
        let mut c = Cluster::homogeneous(4, GpuModel::A100, 8);
        c.set_failure_domains(&FailureDomain::racks(4, 2));
        let gang = task(1, Priority::Hp, 2, 4);
        // naive packing stacks both pods on one node (Score1 ties break low)
        let mut naive = PtsScheduler::new(GfsParams::default());
        let d = naive.schedule(&gang, &c, SimTime::ZERO).unwrap();
        assert_eq!(
            d.pod_nodes[0], d.pod_nodes[1],
            "packing co-locates the gang"
        );
        // domain spread pushes the second pod into the other rack
        let mut spread =
            PtsScheduler::with_policy(GfsParams::default(), PlacementPolicy::domain_spread());
        let d = spread.schedule(&gang, &c, SimTime::ZERO).unwrap();
        let racks: Vec<_> = d.pod_nodes.iter().map(|n| c.domain_of(*n)).collect();
        assert_ne!(
            racks[0], racks[1],
            "gang spans two failure domains: {:?}",
            d.pod_nodes
        );
    }

    #[test]
    fn spread_falls_back_when_capacity_is_tight() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        c.set_failure_domains(&[FailureDomain::new([NodeId::new(0), NodeId::new(1)])]);
        // one domain only: anti-affinity cannot separate, but the gang
        // must still land (best-effort)
        let mut spread =
            PtsScheduler::with_policy(GfsParams::default(), PlacementPolicy::domain_spread());
        let d = spread
            .schedule(&task(1, Priority::Hp, 2, 8), &c, SimTime::ZERO)
            .unwrap();
        assert_eq!(d.pod_nodes.len(), 2);
    }

    #[test]
    fn reliability_policy_avoids_flaky_nodes() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        // node 0 failed twice recently; naive placement still prefers it
        // (tie on scores → lower id), reliability steers to node 1
        for h in [1u64, 3] {
            c.fail_node(NodeId::new(0), SimTime::from_hours(h)).unwrap();
            c.restore_node(NodeId::new(0), SimTime::from_hours(h + 1))
                .unwrap();
        }
        let now = SimTime::from_hours(5);
        let spot = task(1, Priority::Spot, 1, 2);
        let mut naive = PtsScheduler::new(GfsParams::default());
        assert_eq!(
            naive.schedule(&spot, &c, now).unwrap().pod_nodes,
            vec![NodeId::new(0)]
        );
        let mut scored =
            PtsScheduler::with_policy(GfsParams::default(), PlacementPolicy::reliability_scored());
        assert_eq!(
            scored.schedule(&spot, &c, now).unwrap().pod_nodes,
            vec![NodeId::new(1)]
        );
    }

    #[test]
    fn drain_aware_policy_avoids_racks_mid_maintenance() {
        let mut c = Cluster::homogeneous(4, GpuModel::A100, 8);
        c.set_failure_domains(&FailureDomain::racks(4, 2));
        c.drain_node(NodeId::new(0), SimTime::from_hours(2))
            .unwrap();
        let spot = task(1, Priority::Spot, 1, 2);
        let now = SimTime::from_secs(100);
        // naive: lower id wins the tie → node 1, right next to the drain
        let mut naive = PtsScheduler::new(GfsParams::default());
        assert_eq!(
            naive.schedule(&spot, &c, now).unwrap().pod_nodes,
            vec![NodeId::new(1)]
        );
        // drain-aware: rack 0 is mid-wave, prefer rack 1
        let mut aware =
            PtsScheduler::with_policy(GfsParams::default(), PlacementPolicy::churn_aware());
        assert_eq!(
            aware.schedule(&spot, &c, now).unwrap().pod_nodes,
            vec![NodeId::new(2)]
        );
    }

    #[test]
    fn queue_order_is_pts_order() {
        let s = PtsScheduler::new(GfsParams::default());
        let mut q = vec![task(1, Priority::Hp, 1, 1), task(2, Priority::Hp, 1, 8)];
        s.sort_queue(&mut q);
        assert_eq!(q[0].id, TaskId::new(2), "larger requests first");
    }
}
