//! Preemptive Task Scheduler (§3.4): the placement engine of GFS.
//!
//! Non-preemptive scheduling (Alg. 1) filters feasible nodes and ranks
//! them by the lexicographic score `<Score1, Score2, Score3>`:
//!
//! 1. **GPU packing** (Eq. 13) — prefer nearly-full nodes;
//! 2. **homogeneous co-location** (Eq. 14) — HP with HP, spot with spot;
//! 3. **eviction awareness** (Eq. 15–16) — spot avoids eviction-prone
//!    nodes (with a circuit breaker), HP seeks them.
//!
//! Preemptive scheduling (Alg. 2) virtually evicts spot tasks per node,
//! spares the highest-waste victims (Eq. 17), and places each HP pod on
//! the node with the lowest preemption cost (Eq. 18–19).

use std::cell::RefCell;
use std::collections::HashMap;

use gfs_cluster::{Cluster, Node, RunningTask};
use gfs_sched::placement::{DomainUse, PlacementPolicy};
use gfs_types::{
    GfsParams, GpuDemand, NodeId, Priority, SimDuration, SimTime, TaskId, TaskSpec, HOUR,
};

use crate::score_index::{Flavor, ScoreIndex};

/// Which degradation (if any) to apply — the Table 10 ablation variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PtsVariant {
    /// Full GFS scoring + waste-aware preemption.
    #[default]
    Full,
    /// `GFS-s`: non-preemptive scoring reduced to GPU packing only.
    SimpleScoring,
    /// `GFS-p`: preemptive module replaced by pseudo-random node/victim
    /// selection.
    RandomPreemption,
    /// `GFS-sp`: both degradations combined.
    Degraded,
}

impl PtsVariant {
    fn scoring_degraded(self) -> bool {
        matches!(self, PtsVariant::SimpleScoring | PtsVariant::Degraded)
    }

    fn preemption_degraded(self) -> bool {
        matches!(self, PtsVariant::RandomPreemption | PtsVariant::Degraded)
    }
}

/// The PTS placement engine.
#[derive(Debug, Clone)]
pub struct Pts {
    params: GfsParams,
    variant: PtsVariant,
    policy: PlacementPolicy,
    /// Cached per-node placement scores (see [`crate::score_index`]),
    /// synced lazily against the cluster's change log. Interior
    /// mutability keeps the long-pinned `&self` scheduling API; a
    /// `Pts` is owned by one scheduler on one simulation thread, so
    /// the dynamic borrow can never be contended.
    index: RefCell<ScoreIndex>,
}

impl Pts {
    /// Creates the engine with policy-less (naive) placement.
    #[must_use]
    pub fn new(params: GfsParams, variant: PtsVariant) -> Self {
        Pts::with_policy(params, variant, PlacementPolicy::naive())
    }

    /// Creates the engine with a churn [`PlacementPolicy`]: the policy's
    /// spread / drain-avoidance / reliability components lead the
    /// lexicographic node score, ahead of `<Score1, Score2, Score3>`, so
    /// a [`PlacementPolicy::naive`] engine decides bit-for-bit like one
    /// built by [`Pts::new`].
    #[must_use]
    pub fn with_policy(params: GfsParams, variant: PtsVariant, policy: PlacementPolicy) -> Self {
        Pts {
            params,
            variant,
            policy,
            index: RefCell::new(ScoreIndex::default()),
        }
    }

    /// The active variant.
    #[must_use]
    pub fn variant(&self) -> PtsVariant {
        self.variant
    }

    /// The active churn policy.
    #[must_use]
    pub fn policy(&self) -> &PlacementPolicy {
        &self.policy
    }

    /// Weighted node eviction rate `ē` (Eq. 15).
    #[must_use]
    pub fn node_eviction_rate(&self, node: &Node, now: SimTime) -> f64 {
        let short = node.evictions_within(now, self.params.eviction_window_short_secs) as f64;
        let long = node.evictions_within(now, self.params.eviction_window_long_secs) as f64;
        let t_long_hours = (self.params.eviction_window_long_secs / HOUR).max(1) as f64;
        self.params.gamma * short + (1.0 - self.params.gamma) * long / t_long_hours
    }

    /// Eviction-awareness score (Eq. 16). Returns the score; a spot score
    /// of exactly 0 triggers the circuit breaker (node excluded).
    #[must_use]
    pub fn score3(&self, node: &Node, priority: Priority, now: SimTime) -> f64 {
        let e_bar = self.node_eviction_rate(node, now);
        let x = 0.01 * self.params.penalty_m * e_bar;
        match priority {
            Priority::Hp => x.min(1.0),
            Priority::Spot => (1.0 - x).max(0.0),
        }
    }

    /// Full `<Score1, Score2, Score3>` for a candidate node (Eq. 13–16),
    /// or `None` when the circuit breaker blacklists it for a spot task.
    #[must_use]
    pub fn node_scores(
        &self,
        node: &Node,
        priority: Priority,
        now: SimTime,
    ) -> Option<(f64, f64, f64)> {
        let total = f64::from(node.total_gpus()).max(1.0);
        let s1 = 1.0 - f64::from(node.idle_gpus()) / total;
        if self.variant.scoring_degraded() {
            return Some((s1, 0.0, 0.0));
        }
        let s2 = match priority {
            Priority::Hp => node.hp_allocated() / total,
            Priority::Spot => node.spot_allocated() / total,
        };
        let s3 = self.score3(node, priority, now);
        if priority.is_spot() && s3 <= 0.0 {
            return None; // circuit breaker (§3.4.2)
        }
        Some((s1, s2, s3))
    }

    /// Whether cached node scores can only change through a cluster
    /// mutation: the degraded variants score packing alone, so nothing
    /// in the key decays with simulated time.
    pub(crate) fn scoring_time_invariant(&self) -> bool {
        self.variant.scoring_degraded()
    }

    /// The eviction-count windows `Score3` is computed over, for
    /// deadline-based cache invalidation.
    pub(crate) fn eviction_windows(&self) -> [SimDuration; 2] {
        [
            self.params.eviction_window_short_secs,
            self.params.eviction_window_long_secs,
        ]
    }

    /// Non-preemptive scheduling (Alg. 1): one node per pod, or `None`.
    ///
    /// With a non-naive [`PlacementPolicy`] the policy's components lead
    /// the per-candidate key lexicographically — reliability, then drain
    /// avoidance, then gang spread, then the paper's
    /// `<Score1, Score2, Score3>`; disabled components are constant, so
    /// the comparison falls through to the native scores.
    ///
    /// Whole-card demand under a naive policy — the paper's own
    /// configuration, and the hot path at fleet scale — is answered from
    /// the [`ScoreIndex`] in O(log n) instead of scoring every feasible
    /// node; the index reproduces the scan's total order exactly (see
    /// the module doc of [`crate::score_index`] and the equivalence
    /// property test), so the fast path is behaviourally invisible.
    #[must_use]
    pub fn schedule_nonpreemptive(
        &self,
        task: &TaskSpec,
        cluster: &Cluster,
        now: SimTime,
    ) -> Option<Vec<NodeId>> {
        if self.policy.is_naive() {
            if let GpuDemand::Whole(g) = task.gpus_per_pod {
                let fast = self.schedule_whole_indexed(task, g, cluster, now);
                if std::env::var_os("GFS_XCHECK_INDEX").is_some() {
                    let slow = self.schedule_nonpreemptive_scan(task, cluster, now);
                    if fast != slow {
                        self.index.borrow().debug_dump(self, cluster, now);
                        panic!(
                            "index/scan divergence: task {:?} pods {} g {g} prio {:?} now {now:?}: fast {fast:?} slow {slow:?}",
                            task.id, task.pods, task.priority
                        );
                    }
                }
                return fast;
            }
        }
        self.schedule_nonpreemptive_scan(task, cluster, now)
    }

    /// The reference implementation of Alg. 1: scores every feasible
    /// candidate per pod and takes the lexicographic max. O(n) per
    /// decision — kept for non-naive policies, fractional demand, and
    /// as the oracle the indexed fast path is property-tested against.
    #[must_use]
    pub fn schedule_nonpreemptive_scan(
        &self,
        task: &TaskSpec,
        cluster: &Cluster,
        now: SimTime,
    ) -> Option<Vec<NodeId>> {
        // Alg. 1 line 1 ("filter feasible nodes") through the capacity
        // index instead of a full scan; the lexicographic max is a total
        // order (scores, then lower id), so the result is scan-identical.
        let candidates: Vec<u32> = match task.gpus_per_pod {
            GpuDemand::Whole(g) => cluster.whole_fit_candidates(task.gpu_model, g),
            GpuDemand::Fraction(f) => cluster.fraction_fit_candidates(task.gpu_model, f),
        };
        let mut budget: HashMap<NodeId, u32> = HashMap::new();
        let mut used_domains = DomainUse::new();
        let mut out = Vec::with_capacity(task.pods as usize);
        for _ in 0..task.pods {
            let candidate = candidates
                .iter()
                .map(|&id| (NodeId::new(id), &cluster.nodes()[id as usize]))
                .filter(|(id, n)| match task.gpus_per_pod {
                    GpuDemand::Whole(g) => {
                        budget.get(id).copied().unwrap_or_else(|| n.idle_gpus()) >= g
                    }
                    GpuDemand::Fraction(f) => {
                        n.gpus().iter().any(|gpu| gpu.free_fraction() >= f - 1e-12)
                    }
                })
                .filter_map(|(id, n)| {
                    let (s1, s2, s3) = self.node_scores(n, task.priority, now)?;
                    // reliability outranks spread: avoiding flaky hardware
                    // beats separating pods — anti-affinity then chooses
                    // *among* the reliable candidates, never overrides them
                    // into a failure-prone rack
                    let key = (
                        self.policy.hazard_component(cluster, n, now),
                        self.policy.drain_component(cluster, id),
                        self.policy.spread_component(cluster, id, &used_domains),
                        s1,
                        s2,
                        s3,
                    );
                    Some((id, key))
                })
                .max_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .expect("scores are finite")
                        .then(b.0.cmp(&a.0))
                })
                .map(|(id, _)| id)?;
            if let GpuDemand::Whole(g) = task.gpus_per_pod {
                let entry = budget
                    .entry(candidate)
                    .or_insert_with(|| cluster.nodes()[candidate.index()].idle_gpus());
                *entry -= g;
            }
            if self.policy.spread_domains {
                used_domains.note(PlacementPolicy::domain_key(cluster, candidate));
            }
            out.push(candidate);
        }
        Some(out)
    }

    /// The indexed whole-card fast path: each pod's node is the winner
    /// of an O(log n) [`ScoreIndex`] query. Gang budgets (a pod may not
    /// overcommit cards its gang-mates already claimed) are handled by
    /// masking exhausted nodes out of the index for the duration of the
    /// call — scheduling never mutates the cluster, so the masked nodes
    /// re-enter exactly the buckets they left.
    fn schedule_whole_indexed(
        &self,
        task: &TaskSpec,
        g: u32,
        cluster: &Cluster,
        now: SimTime,
    ) -> Option<Vec<NodeId>> {
        let mut index = self.index.borrow_mut();
        index.prepare(self, cluster, now);
        let flavor = Flavor::of(task.priority);
        let mut budget: HashMap<u32, u32> = HashMap::new();
        let mut masked: Vec<u32> = Vec::new();
        let mut out = Vec::with_capacity(task.pods as usize);
        for _ in 0..task.pods {
            let Some(id) = index.query(task.gpu_model, g, flavor) else {
                break;
            };
            let left = budget
                .entry(id)
                .or_insert_with(|| cluster.nodes()[id as usize].idle_gpus());
            *left -= g;
            if *left < g {
                index.mask(id);
                masked.push(id);
            }
            out.push(NodeId::new(id));
        }
        for id in masked {
            index.unmask(cluster, id);
        }
        (out.len() == task.pods as usize).then_some(out)
    }

    /// Preemption cost of a node plan (Eq. 19).
    #[must_use]
    pub fn preemption_cost(
        &self,
        cluster: &Cluster,
        victims_waste: f64,
        victim_count: usize,
        now: SimTime,
    ) -> f64 {
        let g = cluster.spot_completed() as f64;
        let f = cluster.spot_evicted() as f64;
        let k = victim_count as f64;
        let eviction_impact = (f + k) / (g + f + k).max(1.0);
        let gpu_time = cluster.capacity(None) * (now.as_secs().max(HOUR)) as f64;
        eviction_impact + self.params.beta * victims_waste / gpu_time
    }

    /// Preemptive scheduling (Alg. 2) for an HP task: returns the chosen
    /// node per pod plus the global victim set, or `None` if infeasible
    /// even after virtually evicting every spot task.
    ///
    /// # Panics
    ///
    /// Debug-panics if called with a spot task (constraint 12c/12d).
    #[must_use]
    pub fn schedule_preemptive(
        &self,
        task: &TaskSpec,
        cluster: &Cluster,
        now: SimTime,
    ) -> Option<(Vec<NodeId>, Vec<TaskId>)> {
        debug_assert!(task.priority.is_hp(), "only HP tasks may preempt");
        let need = task.gpus_per_pod.cards();
        // Alg. 2 only ever succeeds on nodes that already fit the pod or
        // host evictable spot tasks; the index yields exactly those,
        // ascending by id (the former full-scan visit order).
        let candidates = cluster.preemption_candidates(task.gpu_model, need.ceil() as u32);
        let mut virt_idle: HashMap<NodeId, f64> = HashMap::new();
        let mut evicted: Vec<TaskId> = Vec::new();
        let mut pod_nodes = Vec::with_capacity(task.pods as usize);

        for pod in 0..task.pods {
            // (node, victims, reliability, cost): reliability leads the
            // comparison but is a constant 1.0 except under the gated
            // decayed-reliability policy, so legacy preemptive decisions
            // reduce to the pure cost comparison they were pinned on
            let mut best: Option<(NodeId, Vec<TaskId>, f64, f64)> = None;
            for n in candidates.iter().map(|&id| &cluster.nodes()[id as usize]) {
                let idle = virt_idle
                    .get(&n.id())
                    .copied()
                    .unwrap_or_else(|| f64::from(n.idle_gpus()));
                let spots: Vec<&RunningTask> = cluster
                    .spot_tasks_on(n.id())
                    .into_iter()
                    .filter(|rt| !evicted.contains(&rt.spec.id))
                    .collect();
                let local_gpus = |rt: &RunningTask| -> f64 {
                    rt.placements
                        .iter()
                        .filter(|p| p.node == n.id())
                        .map(|p| p.alloc.cards())
                        .sum()
                };
                let total_reclaimable: f64 =
                    idle + spots.iter().map(|rt| local_gpus(rt)).sum::<f64>();
                if total_reclaimable + 1e-9 < need {
                    continue; // even full eviction cannot host this pod
                }
                let (victims, waste) = if self.variant.preemption_degraded() {
                    // GFS-p: victims in pseudo-random (id-hash) order
                    let mut order: Vec<&RunningTask> = spots.clone();
                    order.sort_by_key(|rt| {
                        rt.spec.id.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(pod)
                    });
                    let mut r = idle;
                    let mut vs = Vec::new();
                    let mut w = 0.0;
                    for rt in order {
                        if r + 1e-9 >= need {
                            break;
                        }
                        r += local_gpus(rt);
                        w += rt.waste(now);
                        vs.push(rt.spec.id);
                    }
                    (vs, w)
                } else {
                    // Alg. 2 lines 8–12: start from "evict everyone", then
                    // spare the highest-waste tasks while the pod still fits
                    let mut order: Vec<&RunningTask> = spots.clone();
                    order.sort_by(|a, b| {
                        b.waste(now)
                            .partial_cmp(&a.waste(now))
                            .expect("waste is finite")
                            .then(a.spec.id.cmp(&b.spec.id))
                    });
                    let mut r = total_reclaimable;
                    let mut victims: Vec<TaskId> = order.iter().map(|rt| rt.spec.id).collect();
                    let mut waste: f64 = order.iter().map(|rt| rt.waste(now)).sum();
                    for rt in &order {
                        let local = local_gpus(rt);
                        if r - local + 1e-9 >= need {
                            r -= local;
                            waste -= rt.waste(now);
                            victims.retain(|v| *v != rt.spec.id);
                        }
                    }
                    (victims, waste)
                };
                let cost = self.preemption_cost(cluster, waste, victims.len(), now);
                let rel = self.policy.preemption_reliability(cluster, n, now);
                let better = match &best {
                    None => true,
                    Some((b, _, br, c)) => {
                        if self.variant.preemption_degraded() {
                            // pseudo-random node pick: hash order instead of cost
                            let h = |id: NodeId| {
                                (u64::from(id.raw()) ^ task.id.raw())
                                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            };
                            h(n.id()) < h(*b)
                        } else {
                            // a flaky target loses to a dependable one
                            // before cost is consulted (Eq. 18 extended)
                            (rel, -cost) > (*br, -*c)
                        }
                    }
                };
                if better {
                    let decided = victims.is_empty();
                    best = Some((n.id(), victims, rel, cost));
                    // a zero-victim plan carries the global minimum cost
                    // (Eq. 19 is monotone in victim count and waste) and
                    // later zero-victim ties lose to this lower id, so —
                    // when cost alone decides — no candidate can still
                    // strictly win: stop scanning
                    if decided
                        && !self.variant.preemption_degraded()
                        && !self.policy.decayed_reliability
                    {
                        break;
                    }
                }
            }
            let (node, victims, _, _) = best?;
            // absent entries mean "actual idle" now that the map is lazy
            let actual_idle =
                |c: &Cluster, id: NodeId| f64::from(c.nodes()[id.index()].idle_gpus());
            for v in &victims {
                if let Some(rt) = cluster.running_task(*v) {
                    for p in &rt.placements {
                        *virt_idle
                            .entry(p.node)
                            .or_insert_with(|| actual_idle(cluster, p.node)) += p.alloc.cards();
                    }
                }
                evicted.push(*v);
            }
            *virt_idle
                .entry(node)
                .or_insert_with(|| actual_idle(cluster, node)) -= need;
            pod_nodes.push(node);
        }
        Some((pod_nodes, evicted))
    }

    /// Queue ordering of §3.4.2 as a comparator: larger GPU requests
    /// first, then more pods, then earlier submissions.
    #[must_use]
    pub fn task_order(a: &TaskSpec, b: &TaskSpec) -> std::cmp::Ordering {
        b.total_gpus()
            .partial_cmp(&a.total_gpus())
            .expect("GPU counts are finite")
            .then(b.pods.cmp(&a.pods))
            .then(a.submit_at.cmp(&b.submit_at))
            .then(a.id.cmp(&b.id))
    }

    /// Sorts a queue by [`Pts::task_order`].
    pub fn sort_queue(queue: &mut [TaskSpec]) {
        queue.sort_by(Pts::task_order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs_types::{CheckpointPlan, GpuModel};

    fn pts() -> Pts {
        Pts::new(GfsParams::default(), PtsVariant::Full)
    }

    fn task(id: u64, priority: Priority, pods: u32, gpus: u32) -> TaskSpec {
        TaskSpec::builder(id)
            .priority(priority)
            .pods(pods)
            .gpus_per_pod(GpuDemand::whole(gpus))
            .duration_secs(100_000)
            .checkpoint(CheckpointPlan::Periodic { interval: 1_800 })
            .build()
            .unwrap()
    }

    #[test]
    fn packing_prefers_fuller_nodes() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        c.start_task(
            task(1, Priority::Hp, 1, 4),
            &[NodeId::new(1)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let nodes = pts()
            .schedule_nonpreemptive(&task(2, Priority::Hp, 1, 2), &c, SimTime::ZERO)
            .unwrap();
        assert_eq!(
            nodes,
            vec![NodeId::new(1)],
            "Score1 packs onto the loaded node"
        );
    }

    #[test]
    fn colocation_separates_priorities() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        // equal fill so Score1 ties: node0 runs HP, node1 runs spot
        c.start_task(
            task(1, Priority::Hp, 1, 4),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        c.start_task(
            task(2, Priority::Spot, 1, 4),
            &[NodeId::new(1)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let p = pts();
        let hp_nodes = p
            .schedule_nonpreemptive(&task(3, Priority::Hp, 1, 2), &c, SimTime::ZERO)
            .unwrap();
        assert_eq!(hp_nodes, vec![NodeId::new(0)], "HP co-locates with HP");
        let spot_nodes = p
            .schedule_nonpreemptive(&task(4, Priority::Spot, 1, 2), &c, SimTime::ZERO)
            .unwrap();
        assert_eq!(
            spot_nodes,
            vec![NodeId::new(1)],
            "spot co-locates with spot"
        );
    }

    #[test]
    fn eviction_awareness_steers_spot_away() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        let now = SimTime::from_hours(1);
        // node 0 suffers heavy recent evictions (through the public
        // run-then-evict flow) — enough to trip the circuit breaker
        for i in 0..50 {
            let t = task(100 + i, Priority::Spot, 1, 1);
            c.start_task(t, &[NodeId::new(0)], now, 0).unwrap();
            c.evict_task(TaskId::new(100 + i), now).unwrap();
        }
        let p = pts();
        let e0 = p.node_eviction_rate(&c.nodes()[0], now);
        assert!(e0 >= 50.0 * 0.8, "short-window count dominates: {e0}");
        // spot is circuit-broken on node 0
        assert!(p.node_scores(&c.nodes()[0], Priority::Spot, now).is_none());
        let nodes = p
            .schedule_nonpreemptive(&task(5, Priority::Spot, 1, 2), &c, now)
            .unwrap();
        assert_eq!(nodes, vec![NodeId::new(1)]);
        // HP prefers the eviction-prone node (asymmetric score)
        let hp_s3_n0 = p.score3(&c.nodes()[0], Priority::Hp, now);
        let hp_s3_n1 = p.score3(&c.nodes()[1], Priority::Hp, now);
        assert!(hp_s3_n0 > hp_s3_n1);
    }

    #[test]
    fn nonpreemptive_fails_when_full() {
        let mut c = Cluster::homogeneous(1, GpuModel::A100, 8);
        c.start_task(
            task(1, Priority::Spot, 1, 8),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        assert!(pts()
            .schedule_nonpreemptive(&task(2, Priority::Hp, 1, 4), &c, SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn preemption_spares_high_waste_victims() {
        let mut c = Cluster::homogeneous(1, GpuModel::A100, 8);
        // old task: huge waste since last checkpoint at 1800-boundary
        c.start_task(
            task(1, Priority::Spot, 1, 4),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        // young task: little waste
        c.start_task(
            task(2, Priority::Spot, 1, 4),
            &[NodeId::new(0)],
            SimTime::from_secs(3_500),
            0,
        )
        .unwrap();
        let now = SimTime::from_secs(3_599); // old: 1799s since checkpoint; young: 99s
        let (nodes, victims) = pts()
            .schedule_preemptive(&task(3, Priority::Hp, 1, 4), &c, now)
            .unwrap();
        assert_eq!(nodes, vec![NodeId::new(0)]);
        assert_eq!(
            victims,
            vec![TaskId::new(2)],
            "the young (low-waste) task is evicted"
        );
    }

    #[test]
    fn preemption_prefers_free_nodes() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        c.start_task(
            task(1, Priority::Spot, 1, 8),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let (nodes, victims) = pts()
            .schedule_preemptive(&task(2, Priority::Hp, 1, 4), &c, SimTime::from_secs(10))
            .unwrap();
        assert_eq!(nodes, vec![NodeId::new(1)]);
        assert!(
            victims.is_empty(),
            "no eviction needed: zero-victim plan wins"
        );
    }

    #[test]
    fn preemptive_gang_across_nodes() {
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        c.start_task(
            task(1, Priority::Spot, 1, 8),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        c.start_task(
            task(2, Priority::Spot, 1, 8),
            &[NodeId::new(1)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let gang = task(3, Priority::Hp, 2, 8);
        let (nodes, victims) = pts()
            .schedule_preemptive(&gang, &c, SimTime::from_secs(100))
            .unwrap();
        assert_eq!(nodes.len(), 2);
        assert_eq!(victims.len(), 2, "both spot tasks must go");
    }

    #[test]
    fn preemptive_infeasible_returns_none() {
        let c = Cluster::homogeneous(1, GpuModel::A100, 8);
        assert!(pts()
            .schedule_preemptive(&task(1, Priority::Hp, 1, 16), &c, SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn degraded_scoring_uses_packing_only() {
        let p = Pts::new(GfsParams::default(), PtsVariant::SimpleScoring);
        let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
        c.start_task(
            task(1, Priority::Hp, 1, 4),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        c.start_task(
            task(2, Priority::Spot, 1, 4),
            &[NodeId::new(1)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        // co-location would pick node 1 for spot; packing-only ties → lowest id
        let nodes = p
            .schedule_nonpreemptive(&task(3, Priority::Spot, 1, 2), &c, SimTime::ZERO)
            .unwrap();
        assert_eq!(
            nodes,
            vec![NodeId::new(0)],
            "tie broken by node id, no co-location"
        );
    }

    #[test]
    fn random_preemption_is_deterministic_but_not_cost_driven() {
        let p = Pts::new(GfsParams::default(), PtsVariant::RandomPreemption);
        let mut c = Cluster::homogeneous(1, GpuModel::A100, 8);
        c.start_task(
            task(1, Priority::Spot, 1, 4),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        c.start_task(
            task(2, Priority::Spot, 1, 4),
            &[NodeId::new(0)],
            SimTime::ZERO,
            0,
        )
        .unwrap();
        let a = p.schedule_preemptive(&task(3, Priority::Hp, 1, 4), &c, SimTime::from_secs(50));
        let b = p.schedule_preemptive(&task(3, Priority::Hp, 1, 4), &c, SimTime::from_secs(50));
        assert_eq!(a, b, "hash-based choice is reproducible");
        assert!(a.unwrap().1.len() == 1);
    }

    #[test]
    fn preemption_avoids_flaky_nodes_only_under_hazard_policy() {
        // two equally-costed preemption targets; node 0 is flaky
        let build = || {
            let mut c = Cluster::homogeneous(2, GpuModel::A100, 8);
            c.fail_node(NodeId::new(0), SimTime::from_hours(1)).unwrap();
            c.restore_node(NodeId::new(0), SimTime::from_hours(2))
                .unwrap();
            for (id, node) in [(1, 0), (2, 1)] {
                c.start_task(
                    task(id, Priority::Spot, 1, 8),
                    &[NodeId::new(node)],
                    SimTime::from_hours(3),
                    0,
                )
                .unwrap();
            }
            c
        };
        let now = SimTime::from_hours(4);
        let hp = task(9, Priority::Hp, 1, 8);
        // churn_aware is pinned: cost ties break on visit order → node 0
        let legacy = Pts::with_policy(
            GfsParams::default(),
            PtsVariant::Full,
            PlacementPolicy::churn_aware(),
        );
        let (nodes, _) = legacy.schedule_preemptive(&hp, &build(), now).unwrap();
        assert_eq!(nodes, vec![NodeId::new(0)]);
        // the hazard policy discounts the flaky node before cost
        let hazard = Pts::with_policy(
            GfsParams::default(),
            PtsVariant::Full,
            PlacementPolicy::hazard_aware(),
        );
        let (nodes, victims) = hazard.schedule_preemptive(&hp, &build(), now).unwrap();
        assert_eq!(nodes, vec![NodeId::new(1)], "flaky target loses");
        assert_eq!(victims, vec![TaskId::new(2)]);
    }

    #[test]
    fn queue_sorted_by_size_pods_submit() {
        let mut q = vec![
            task(1, Priority::Hp, 1, 1),
            task(2, Priority::Hp, 1, 8),
            task(3, Priority::Hp, 2, 4),
            {
                let mut t = task(4, Priority::Hp, 1, 8);
                t.submit_at = SimTime::from_secs(10);
                t
            },
        ];
        Pts::sort_queue(&mut q);
        let ids: Vec<u64> = q.iter().map(|t| t.id.raw()).collect();
        // 3: 8 GPUs 2 pods; 2 & 4: 8 GPUs 1 pod (2 submitted earlier); 1: 1 GPU
        assert_eq!(ids, vec![3, 2, 4, 1]);
    }

    #[test]
    fn preemption_cost_monotone_in_victims_and_waste() {
        let p = pts();
        let c = Cluster::homogeneous(1, GpuModel::A100, 8);
        let now = SimTime::from_hours(2);
        let base = p.preemption_cost(&c, 0.0, 0, now);
        let one = p.preemption_cost(&c, 0.0, 1, now);
        let wasteful = p.preemption_cost(&c, 1e6, 1, now);
        assert!(one > base);
        assert!(wasteful > one);
    }
}
