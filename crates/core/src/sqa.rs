//! Spot Quota Allocator (§3.3): converts demand forecasts into a
//! time-varying spot GPU quota with an eviction-aware feedback loop.
//!
//! * GPU inventory (Eq. 9): `f(p,H) = max(0, C − Σ_o max ŷ_o|p[1..H])`.
//!   (The paper prints `C − max(C, Σ…)`, which is never positive; per the
//!   accompanying prose — "when the aggregated demand exceeds C, we set
//!   f(p,H) = 0" — the intended form is the clamped difference.)
//! * Quota (Eq. 10): `Q_H = min(f(p,H)·η, S₀ + Sₐ)`.
//! * Safety coefficient update (Eq. 11) from the realised eviction rate
//!   `e` and the maximum spot queuing time `l` over the last `H` hours.
//!   `l` covers tasks *still waiting* as well as recent starts — otherwise
//!   a collapsed quota would suppress the very signal (long queues) that
//!   Eq. 11 uses to recover.

use std::collections::{BTreeMap, VecDeque};

use gfs_cluster::Cluster;
use gfs_types::{EtaUpdateRule, GfsParams, SimDuration, SimTime, TaskId};
use serde::{Deserialize, Serialize};

/// Minimum number of spot outcomes (starts + evictions) in the feedback
/// window before the eviction-rate rule of Eq. 11 is trusted; avoids `η`
/// collapsing on a single unlucky eviction.
const MIN_FEEDBACK_SAMPLES: usize = 5;

/// The spot quota controller.
#[derive(Debug, Clone)]
pub struct SpotQuotaAllocator {
    params: GfsParams,
    eta: f64,
    quota: f64,
    evictions: VecDeque<SimTime>,
    spot_starts: VecDeque<(SimTime, SimDuration)>, // (start, queued_secs)
    waiting: BTreeMap<TaskId, SimTime>,            // spot tasks in the queue
    /// Aggregated demand upper bound of the last [`Self::update`]; reused
    /// by [`Self::refresh_capacity`] between quota ticks.
    last_upper: f64,
    /// Whether [`Self::update`] has ever run — before the first forecast
    /// the quota must stay at zero, whatever else happens.
    updated: bool,
}

/// The dynamic state of a [`SpotQuotaAllocator`] — everything its feedback
/// loop has accumulated since construction, in a serializable shape. The
/// configured [`GfsParams`] are deliberately excluded: a restore always
/// happens into an allocator rebuilt by the same scheduler factory, which
/// supplies them. The waiting set is keyed and sorted by task id so the
/// JSON encoding is canonical — the live `BTreeMap` already iterates in
/// that order (it was a `HashMap` until the det-iter lint flagged its
/// iteration sites as replay-determinism hazards).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SqaState {
    eta: f64,
    quota: f64,
    evictions: Vec<SimTime>,
    spot_starts: Vec<(SimTime, SimDuration)>,
    waiting: Vec<(TaskId, SimTime)>,
    last_upper: f64,
    updated: bool,
}

impl SpotQuotaAllocator {
    /// Captures the allocator's dynamic state for a service snapshot.
    #[must_use]
    pub fn save_state(&self) -> SqaState {
        let waiting: Vec<(TaskId, SimTime)> =
            self.waiting.iter().map(|(&t, &at)| (t, at)).collect();
        SqaState {
            eta: self.eta,
            quota: self.quota,
            evictions: self.evictions.iter().copied().collect(),
            spot_starts: self.spot_starts.iter().copied().collect(),
            waiting,
            last_upper: self.last_upper,
            updated: self.updated,
        }
    }

    /// Overwrites the allocator's dynamic state with a captured
    /// [`SqaState`] (parameters keep their constructed values).
    pub fn restore_state(&mut self, s: SqaState) {
        self.eta = s.eta;
        self.quota = s.quota;
        self.evictions = s.evictions.into();
        self.spot_starts = s.spot_starts.into();
        self.waiting = s.waiting.into_iter().collect();
        self.last_upper = s.last_upper;
        self.updated = s.updated;
    }

    /// Creates the allocator with `η = η₀` and zero quota (no spot task is
    /// admitted until the first update).
    #[must_use]
    pub fn new(params: GfsParams) -> Self {
        SpotQuotaAllocator {
            eta: params.eta_initial,
            params,
            quota: 0.0,
            evictions: VecDeque::new(),
            spot_starts: VecDeque::new(),
            waiting: BTreeMap::new(),
            last_upper: 0.0,
            updated: false,
        }
    }

    /// Current spot quota `Q_H` in GPUs.
    #[must_use]
    pub fn quota(&self) -> f64 {
        self.quota
    }

    /// Current safety coefficient `η`.
    #[must_use]
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Records a spot task entering the pending queue.
    pub fn record_spot_submitted(&mut self, task: TaskId, at: SimTime) {
        self.waiting.insert(task, at);
    }

    /// Records one spot eviction (feeds the realised eviction rate `e`).
    /// The task re-enters the waiting set (it will be requeued).
    pub fn record_eviction(&mut self, task: TaskId, at: SimTime) {
        self.evictions.push_back(at);
        self.waiting.insert(task, at);
    }

    /// Records one spot run start and its queuing delay (feeds `e` and the
    /// max queuing time `l`).
    pub fn record_spot_start(&mut self, task: TaskId, at: SimTime, queued_secs: SimDuration) {
        self.waiting.remove(&task);
        self.spot_starts.push_back((at, queued_secs));
    }

    /// Records a spot task displaced by a node failure: it re-enters the
    /// waiting set (so the queue-pressure signal `l` of Eq. 11 sees it)
    /// but — unlike [`Self::record_eviction`] — does **not** count toward
    /// the realised eviction rate `e`: hardware churn is not preemption
    /// pressure, and letting it shrink `η` would starve spot admission
    /// exactly when displaced tasks need requeue capacity.
    pub fn record_displacement(&mut self, task: TaskId, at: SimTime) {
        self.waiting.insert(task, at);
    }

    /// Re-clamps the quota against the current cluster after a capacity
    /// change (node failure/recovery), reusing the last forecast. Without
    /// this, a quota computed against the pre-failure fleet would keep
    /// admitting spot tasks against GPUs that no longer exist until the
    /// next quota tick (up to 300 s of mis-scored capacity). A no-op
    /// before the first [`Self::update`]: with no forecast yet, the
    /// "zero quota until the first update" contract wins — a node event
    /// must not open the spot gate.
    pub fn refresh_capacity(&mut self, cluster: &Cluster) {
        if !self.updated {
            return;
        }
        let f = self.inventory(cluster, self.last_upper);
        let s0 = f64::from(cluster.idle_gpus(None));
        let sa = cluster.spot_allocated(None);
        self.quota = (f * self.eta).min(s0 + sa).max(0.0);
    }

    fn retire(&mut self, now: SimTime) {
        let window = self.params.guarantee_secs();
        while let Some(&t) = self.evictions.front() {
            if now.since(t) > window {
                self.evictions.pop_front();
            } else {
                break;
            }
        }
        while let Some(&(t, _)) = self.spot_starts.front() {
            if now.since(t) > window {
                self.spot_starts.pop_front();
            } else {
                break;
            }
        }
    }

    /// Realised eviction rate `e` over the last `H` hours:
    /// evictions / (evictions + successful starts).
    #[must_use]
    pub fn recent_eviction_rate(&self) -> f64 {
        let ev = self.evictions.len() as f64;
        let st = self.spot_starts.len() as f64;
        if ev + st == 0.0 {
            0.0
        } else {
            ev / (ev + st)
        }
    }

    /// Maximum spot queuing time `l` (seconds): the longest wait among
    /// recent starts and among tasks still queued at `now`.
    #[must_use]
    pub fn recent_max_queue_secs(&self, now: SimTime) -> SimDuration {
        let started = self.spot_starts.iter().map(|&(_, q)| q).max().unwrap_or(0);
        let waiting = self
            .waiting
            .values()
            .map(|&enq| now.since(enq))
            .max()
            .unwrap_or(0);
        started.max(waiting)
    }

    /// GPU inventory `f(p, H)` (Eq. 9) given the aggregated demand upper
    /// bound from the GDE.
    #[must_use]
    pub fn inventory(&self, cluster: &Cluster, aggregated_upper: f64) -> f64 {
        let c = cluster.capacity(None);
        (c - aggregated_upper).max(0.0)
    }

    /// Recomputes `η` (Eq. 11) and the quota `Q_H` (Eq. 10). Call at every
    /// quota-update interval with the freshest forecast.
    pub fn update(&mut self, now: SimTime, cluster: &Cluster, aggregated_upper: f64) {
        self.last_upper = aggregated_upper;
        self.updated = true;
        self.retire(now);
        if self.params.eta_rule == EtaUpdateRule::Adaptive {
            let p = self.params.guarantee_rate;
            // Eq. 11 interprets p as the tolerated eviction budget
            // (p = 0.9 guarantee ⇒ 10 % tolerated evictions)
            let budget = 1.0 - p;
            let e = self.recent_eviction_rate();
            let l = self.recent_max_queue_secs(now);
            let samples = self.evictions.len() + self.spot_starts.len();
            let mut adjusted = false;
            if e > 1.5 * budget && e > 0.0 && samples >= MIN_FEEDBACK_SAMPLES {
                self.eta *= budget / e;
                adjusted = true;
            } else if e < 0.5 * budget && l > self.params.max_jqt_threshold_secs {
                self.eta *= 1.5 - e / budget;
                adjusted = true;
            }
            if adjusted {
                // each outcome event drives at most one proportional step:
                // Eq. 11 applied every 300 s over a 1 h window would
                // otherwise re-shrink η twelve times for a single burst
                self.evictions.clear();
                self.spot_starts.clear();
            }
            let (lo, hi) = self.params.eta_bounds;
            self.eta = self.eta.clamp(lo, hi);
        }
        // the Eq. 10 clamp lives in refresh_capacity (shared with the
        // node-event path); last_upper/updated were set above
        self.refresh_capacity(cluster);
    }

    /// Quota check of Alg. 3: whether admitting `demand_gpus` more spot
    /// GPUs keeps the allocation within `Q_H`.
    #[must_use]
    pub fn admits(&self, cluster: &Cluster, demand_gpus: f64) -> bool {
        cluster.spot_allocated(None) + demand_gpus <= self.quota + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs_types::{GpuModel, HOUR};

    fn params() -> GfsParams {
        GfsParams::default()
    }

    fn cluster() -> Cluster {
        Cluster::homogeneous(4, GpuModel::A100, 8) // 32 GPUs
    }

    fn id(i: u64) -> TaskId {
        TaskId::new(i)
    }

    #[test]
    fn inventory_clamps_at_zero() {
        let sqa = SpotQuotaAllocator::new(params());
        let c = cluster();
        assert_eq!(sqa.inventory(&c, 10.0), 22.0);
        assert_eq!(sqa.inventory(&c, 40.0), 0.0, "demand above capacity");
    }

    #[test]
    fn quota_capped_by_physical_availability() {
        let mut sqa = SpotQuotaAllocator::new(params());
        let c = cluster();
        sqa.update(SimTime::ZERO, &c, 0.0);
        // f = 32, η = 1, S0 + Sa = 32
        assert!((sqa.quota() - 32.0).abs() < 1e-9);
        sqa.update(SimTime::ZERO, &c, 30.0);
        assert!((sqa.quota() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn admits_respects_quota() {
        let mut sqa = SpotQuotaAllocator::new(params());
        let c = cluster();
        assert!(!sqa.admits(&c, 1.0), "zero quota before first update");
        sqa.update(SimTime::ZERO, &c, 24.0); // quota = 8
        assert!(sqa.admits(&c, 8.0));
        assert!(!sqa.admits(&c, 9.0));
    }

    #[test]
    fn high_eviction_shrinks_eta() {
        let mut sqa = SpotQuotaAllocator::new(params());
        let c = cluster();
        let now = SimTime::from_hours(1);
        // 50% eviction rate >> 1.5 × 10% budget
        for i in 0..5 {
            sqa.record_eviction(id(i), now);
            sqa.record_spot_start(id(100 + i), now, 10);
        }
        sqa.update(now, &c, 0.0);
        assert!(
            (sqa.eta() - 0.2).abs() < 1e-9,
            "η ×= 0.1/0.5, got {}",
            sqa.eta()
        );
    }

    #[test]
    fn single_eviction_does_not_crash_eta() {
        let mut sqa = SpotQuotaAllocator::new(params());
        let c = cluster();
        let now = SimTime::from_hours(1);
        sqa.record_eviction(id(1), now);
        sqa.record_spot_start(id(2), now, 10);
        sqa.update(now, &c, 0.0);
        assert_eq!(sqa.eta(), 1.0, "below the sample floor, η must hold");
    }

    #[test]
    fn low_eviction_long_queue_grows_eta() {
        let mut sqa = SpotQuotaAllocator::new(params());
        let c = cluster();
        let now = SimTime::from_hours(1);
        // zero evictions, but an over-threshold queue wait
        sqa.record_spot_start(id(1), now, 2 * HOUR);
        sqa.update(now, &c, 0.0);
        assert!(
            (sqa.eta() - 1.5).abs() < 1e-9,
            "η ×= 1.5 − 0, got {}",
            sqa.eta()
        );
    }

    #[test]
    fn waiting_tasks_feed_queue_signal() {
        // the recovery deadlock regression test: nothing starts, but a task
        // waits past θ — η must still grow
        let mut sqa = SpotQuotaAllocator::new(params());
        let c = cluster();
        sqa.record_spot_submitted(id(7), SimTime::ZERO);
        let later = SimTime::from_hours(2);
        assert_eq!(sqa.recent_max_queue_secs(later), 2 * HOUR);
        sqa.update(later, &c, 0.0);
        assert!(sqa.eta() > 1.0, "waiting task must trigger recovery");
        // once started, the waiting entry clears
        sqa.record_spot_start(id(7), later, 2 * HOUR);
        assert!(sqa.waiting.is_empty());
    }

    #[test]
    fn evicted_task_counts_as_waiting_again() {
        let mut sqa = SpotQuotaAllocator::new(params());
        sqa.record_spot_start(id(3), SimTime::ZERO, 0);
        sqa.record_eviction(id(3), SimTime::from_minutes(10));
        assert_eq!(
            sqa.recent_max_queue_secs(SimTime::from_minutes(40)),
            30 * 60,
            "requeued task has been waiting 30 minutes"
        );
    }

    #[test]
    fn eta_unchanged_in_dead_band() {
        let mut sqa = SpotQuotaAllocator::new(params());
        let c = cluster();
        let now = SimTime::from_hours(1);
        // e = 10% = budget exactly: neither rule fires
        sqa.record_eviction(id(1), now);
        for i in 0..9 {
            sqa.record_spot_start(id(10 + i), now, 10);
        }
        sqa.update(now, &c, 0.0);
        assert_eq!(sqa.eta(), 1.0);
    }

    #[test]
    fn frozen_rule_never_moves_eta() {
        let p = GfsParams::builder()
            .eta_rule(EtaUpdateRule::Frozen)
            .build()
            .unwrap();
        let mut sqa = SpotQuotaAllocator::new(p);
        let c = cluster();
        let now = SimTime::from_hours(1);
        for i in 0..10 {
            sqa.record_eviction(id(i), now);
        }
        sqa.update(now, &c, 0.0);
        assert_eq!(sqa.eta(), 1.0, "GFS-d ablation keeps η fixed");
    }

    #[test]
    fn feedback_window_retires_old_events() {
        let mut sqa = SpotQuotaAllocator::new(params());
        let c = cluster();
        sqa.record_eviction(id(1), SimTime::ZERO);
        sqa.record_spot_start(id(2), SimTime::ZERO, 10);
        // 2 hours later (H = 1 h window): both events retired
        sqa.update(SimTime::from_hours(2), &c, 0.0);
        assert_eq!(sqa.recent_eviction_rate(), 0.0);
        // task 1 is still waiting after its eviction though
        assert!(sqa.recent_max_queue_secs(SimTime::from_hours(2)) > 0);
    }

    #[test]
    fn refresh_before_first_update_keeps_quota_zero() {
        // a node event arriving before the first quota tick must not open
        // the spot gate: with no forecast yet, "zero quota until the
        // first update" wins
        let mut sqa = SpotQuotaAllocator::new(params());
        let mut c = cluster();
        c.fail_node(gfs_types::NodeId::new(0), SimTime::from_secs(10))
            .unwrap();
        sqa.refresh_capacity(&c);
        assert_eq!(sqa.quota(), 0.0);
        assert!(!sqa.admits(&c, 1.0));
    }

    #[test]
    fn refresh_capacity_reclamps_after_node_failure() {
        let mut sqa = SpotQuotaAllocator::new(params());
        let mut c = cluster();
        sqa.update(SimTime::ZERO, &c, 8.0); // f = 24, quota = 24
        assert!((sqa.quota() - 24.0).abs() < 1e-9);
        // half the fleet dies: the quota must shrink before the next tick
        c.fail_node(gfs_types::NodeId::new(0), SimTime::from_secs(10))
            .unwrap();
        c.fail_node(gfs_types::NodeId::new(1), SimTime::from_secs(10))
            .unwrap();
        sqa.refresh_capacity(&c);
        assert!(
            (sqa.quota() - 8.0).abs() < 1e-9,
            "16 − 8 forecast, got {}",
            sqa.quota()
        );
        assert!(!sqa.admits(&c, 9.0));
        // recovery restores the original quota (same forecast)
        c.restore_node(gfs_types::NodeId::new(0), SimTime::from_secs(20))
            .unwrap();
        c.restore_node(gfs_types::NodeId::new(1), SimTime::from_secs(20))
            .unwrap();
        sqa.refresh_capacity(&c);
        assert!((sqa.quota() - 24.0).abs() < 1e-9);
    }

    #[test]
    fn displacement_feeds_queue_signal_but_not_eviction_rate() {
        let mut sqa = SpotQuotaAllocator::new(params());
        sqa.record_spot_start(id(1), SimTime::ZERO, 0);
        sqa.record_displacement(id(1), SimTime::from_minutes(5));
        assert_eq!(sqa.recent_eviction_rate(), 0.0, "churn is not preemption");
        assert_eq!(
            sqa.recent_max_queue_secs(SimTime::from_minutes(35)),
            30 * 60,
            "displaced task has been waiting since the failure"
        );
    }

    #[test]
    fn eta_respects_bounds() {
        let p = GfsParams::builder().eta_bounds(0.5, 2.0).build().unwrap();
        let mut sqa = SpotQuotaAllocator::new(p);
        let c = cluster();
        let now = SimTime::from_hours(1);
        for i in 0..100 {
            sqa.record_eviction(id(i), now);
        }
        sqa.update(now, &c, 0.0);
        assert_eq!(sqa.eta(), 0.5, "clamped at the lower bound");
    }
}
