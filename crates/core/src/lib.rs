//! GFS — the paper's contribution: a preemption-aware scheduling framework
//! with predictive spot-instance management (§3).
//!
//! The three cooperating modules of Fig. 6:
//!
//! * [`DemandEstimator`] (GDE, §3.2) — wraps a `gfs-forecast` model
//!   (OrgLinear by default) into an online per-organization demand
//!   estimator producing `ICDF(p, μ̂, σ̂)` upper bounds;
//! * [`SpotQuotaAllocator`] (SQA, §3.3) — turns those bounds into the
//!   spot quota `Q_H` (Eq. 9–10) with the adaptive safety coefficient `η`
//!   (Eq. 11);
//! * [`Pts`] (PTS, §3.4) — the placement engine: three-criteria
//!   non-preemptive scoring (Alg. 1, Eq. 13–16) and waste-aware preemptive
//!   fallback (Alg. 2, Eq. 17–19).
//!
//! [`GfsScheduler`] assembles them behind the `gfs_cluster::Scheduler`
//! trait (Alg. 3); [`PtsVariant`] selects the Table 10 ablation variants;
//! [`milp`] holds the exhaustive reference solver for the Eq. 12 program.
//!
//! [`PtsScheduler`] exposes the bare placement engine (no quota, no
//! estimator) as a scheduler of its own — the placement-policy ablation
//! row: pair it with a `gfs_sched::PlacementPolicy` to measure what
//! churn-aware placement contributes independently of spot admission.
//! Both it and [`GfsScheduler`] accept a policy
//! ([`GfsScheduler::with_policy`]); the default is naive (policy-less)
//! placement, bit-identical to the pre-policy behaviour.
//!
//! # Examples
//!
//! ```
//! use gfs_cluster::{Cluster, Scheduler};
//! use gfs_core::GfsScheduler;
//! use gfs_types::{GpuDemand, GpuModel, Priority, SimTime, TaskSpec};
//!
//! let cluster = Cluster::homogeneous(4, GpuModel::A100, 8);
//! let mut gfs = GfsScheduler::with_defaults();
//! gfs.on_tick(SimTime::from_secs(300), &cluster); // first quota update
//! let task = TaskSpec::builder(1)
//!     .priority(Priority::Spot)
//!     .gpus_per_pod(GpuDemand::whole(2))
//!     .build()?;
//! let decision = gfs.schedule(&task, &cluster, SimTime::from_secs(300));
//! assert!(decision.is_some());
//! # Ok::<(), gfs_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gde;
mod gfs;
pub mod milp;
mod pts;
mod pts_sched;
mod score_index;
mod sqa;

pub use gde::{DemandEstimator, GdeState};
pub use gfs::{GfsScheduler, GfsState};
pub use pts::{Pts, PtsVariant};
pub use pts_sched::PtsScheduler;
pub use sqa::{SpotQuotaAllocator, SqaState};
