//! `gfs_lint` CLI — the workspace self-scan and baseline ratchet.
//!
//! ```text
//! gfs_lint check  [--root DIR] [--baseline FILE] [--json]   # gate (CI)
//! gfs_lint record [--root DIR] [--baseline FILE]            # re-record baseline
//! gfs_lint report [--root DIR] [--json]                     # print findings only
//! ```
//!
//! `check` exits 0 when every per-(path, rule) finding count is at or
//! below the committed baseline, 1 when any count grew (new findings),
//! and 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use gfs_lint::{parse_report, ratchet, render_json, render_table, scan_workspace, Finding};

struct Opts {
    cmd: String,
    root: PathBuf,
    baseline: PathBuf,
    json: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| "check".to_string());
    if !matches!(cmd.as_str(), "check" | "record" | "report") {
        return Err(format!(
            "unknown command `{cmd}` (expected check, record or report)"
        ));
    }
    let mut root = PathBuf::from(".");
    let mut baseline = None;
    let mut json = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--baseline" => {
                baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a value")?,
                ));
            }
            "--json" => json = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let baseline = baseline.unwrap_or_else(|| root.join("LINT_BASELINE.json"));
    Ok(Opts {
        cmd,
        root,
        baseline,
        json,
    })
}

fn print_findings(findings: &[Finding], json: bool) {
    if json {
        print!("{}", render_json(findings));
    } else {
        print!("{}", render_table(findings));
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gfs_lint: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = match scan_workspace(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("gfs_lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    match opts.cmd.as_str() {
        "report" => {
            print_findings(&findings, opts.json);
            ExitCode::SUCCESS
        }
        "record" => {
            if let Err(e) = std::fs::write(&opts.baseline, render_json(&findings)) {
                eprintln!("gfs_lint: cannot write {}: {e}", opts.baseline.display());
                return ExitCode::from(2);
            }
            eprintln!(
                "gfs_lint: recorded {} finding(s) to {}",
                findings.len(),
                opts.baseline.display()
            );
            ExitCode::SUCCESS
        }
        _ => {
            // check: gate against the baseline (absent baseline = empty)
            let base = match std::fs::read_to_string(&opts.baseline) {
                Ok(text) => match parse_report(&text) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("gfs_lint: bad baseline {}: {e}", opts.baseline.display());
                        return ExitCode::from(2);
                    }
                },
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                Err(e) => {
                    eprintln!("gfs_lint: cannot read {}: {e}", opts.baseline.display());
                    return ExitCode::from(2);
                }
            };
            let diff = ratchet(&findings, &base);
            for (path, rule, cur, was) in &diff.improved {
                eprintln!(
                    "gfs_lint: ratchet progress: {path} {} {cur} < baselined {was} — run `just lint-baseline` to lock it in",
                    rule.name()
                );
            }
            if diff.ok() {
                eprintln!(
                    "gfs_lint: ok — {} finding(s), none above baseline",
                    findings.len()
                );
                ExitCode::SUCCESS
            } else {
                print_findings(&findings, opts.json);
                for (path, rule, cur, was) in &diff.regressed {
                    eprintln!(
                        "gfs_lint: FAIL: {path} has {cur} `{}` finding(s), baseline allows {was}",
                        rule.name()
                    );
                }
                eprintln!(
                    "gfs_lint: fix the new finding(s), add a `// gfs-lint: allow(rule, \"reason\")` pragma with a real justification, or (for accepted debt) re-record with `just lint-baseline`"
                );
                ExitCode::FAILURE
            }
        }
    }
}
