//! A hand-written, lossy Rust lexer — just enough structure for the rule
//! engine: identifiers, single-character punctuation, literals and
//! lifetimes, with comments and string/char literal *contents* discarded
//! (so a `HashMap` mentioned in a doc comment or a format string can never
//! trip a rule). Line comments are additionally scanned for
//! `gfs-lint: allow(rule, "reason")` pragmas and `gfs-lint: hot(zone)`
//! markers (which opt the following function into zone-specific rules,
//! e.g. `hot(tape)` for the `tape-alloc` allocation check).
//!
//! The lexer is deliberately not a parser: rules work over the flat token
//! stream with small pattern matchers (see [`crate::rules`]). That keeps
//! the whole pass offline-buildable with zero dependencies — no `syn`, no
//! proc-macro machinery — at the cost of being a heuristic: pragmas exist
//! exactly because a lexer-level scanner cannot always prove intent.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `for`, …).
    Ident,
    /// One punctuation character (`::` is two `Punct(':')` tokens).
    Punct(char),
    /// Numeric, string, byte-string or char literal (contents discarded
    /// for strings/chars; the span still points at the source).
    Literal,
    /// A lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

/// One token: kind plus its byte span and 1-based source line.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
}

/// A `// gfs-lint: allow(rule, "reason")` escape hatch found in a line
/// comment. A malformed pragma (unparseable arguments, missing or empty
/// reason) is reported by the engine as a `bad-pragma` finding instead of
/// silently suppressing anything.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub line: u32,
    /// Whether the comment is the only thing on its line (then it applies
    /// to the next token-bearing line instead of its own).
    pub standalone: bool,
    /// The rule name inside `allow(...)`.
    pub rule: String,
    /// The quoted justification. Required; must be non-empty.
    pub reason: String,
    /// Parse error, when the pragma text after `gfs-lint:` is malformed.
    pub malformed: Option<String>,
}

/// A `// gfs-lint: hot(zone)` marker: opts the next function item into
/// zone-specific rules (currently only `tape` — the `tape-alloc`
/// allocation check). A malformed marker surfaces as a `bad-pragma`
/// finding via [`Pragma::malformed`]; an unknown zone is reported by the
/// rule engine.
#[derive(Debug, Clone)]
pub struct Marker {
    /// 1-based line the marker comment sits on.
    pub line: u32,
    /// The zone name inside `hot(...)`.
    pub zone: String,
}

/// A lexed file: the source, its token stream, pragmas and hot markers.
#[derive(Debug)]
pub struct LexFile<'a> {
    /// The original source text.
    pub src: &'a str,
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Pragmas in source order.
    pub pragmas: Vec<Pragma>,
    /// `hot(zone)` markers in source order.
    pub markers: Vec<Marker>,
}

impl LexFile<'_> {
    /// The source text of token `i`, or `""` out of range.
    #[must_use]
    pub fn text(&self, i: usize) -> &str {
        match self.toks.get(i) {
            Some(t) => self.src.get(t.start..t.end).unwrap_or(""),
            None => "",
        }
    }

    /// Whether token `i` is the identifier `word`.
    #[must_use]
    pub fn is_ident(&self, i: usize, word: &str) -> bool {
        matches!(self.toks.get(i), Some(t) if t.kind == TokKind::Ident) && self.text(i) == word
    }

    /// Whether token `i` is the punctuation `c`.
    #[must_use]
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        matches!(self.toks.get(i), Some(t) if t.kind == TokKind::Punct(c))
    }

    /// 1-based line of token `i` (0 when out of range).
    #[must_use]
    pub fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map_or(0, |t| t.line)
    }

    /// Index one past the `}` matching the `{` at token index `open`
    /// (which must be a `{`); `toks.len()` when unbalanced.
    #[must_use]
    pub fn match_brace(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < self.toks.len() {
            match self.toks[i].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.toks.len()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src`. Never fails: unrecognized bytes are skipped.
#[must_use]
pub fn lex(src: &str) -> LexFile<'_> {
    let b = src.as_bytes();
    let n = b.len();
    let mut toks = Vec::new();
    let mut pragmas = Vec::new();
    let mut markers = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_start = 0usize; // byte offset of the current line's start

    macro_rules! push {
        ($kind:expr, $start:expr, $end:expr) => {
            toks.push(Tok {
                kind: $kind,
                line,
                start: $start,
                end: $end,
            })
        };
    }

    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                // line comment: scan to EOL, check for a pragma
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                let comment = &src[start..i];
                // doc comments (`///`, `//!`) are prose *about* pragmas,
                // never pragmas themselves
                let doc = comment.starts_with("///") || comment.starts_with("//!");
                let standalone = src[line_start..start].trim().is_empty();
                if !doc {
                    match parse_pragma(comment, line, standalone) {
                        Some(PragmaItem::Allow(p)) => pragmas.push(p),
                        Some(PragmaItem::Hot(m)) => markers.push(m),
                        None => {}
                    }
                }
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                // block comment, nested
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                            line_start = i + 1;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start = i;
                i = skip_string(b, i, &mut line, &mut line_start);
                push!(TokKind::Literal, start, i);
            }
            b'\'' => {
                // char literal vs lifetime
                let start = i;
                if i + 1 < n && b[i + 1] == b'\\' {
                    // escaped char literal: skip to closing quote
                    i += 2;
                    if i < n {
                        i += 1; // the escaped char
                    }
                    while i < n && b[i] != b'\'' && b[i] != b'\n' {
                        i += 1; // \u{...} tails
                    }
                    if i < n && b[i] == b'\'' {
                        i += 1;
                    }
                    push!(TokKind::Literal, start, i);
                } else if i + 2 < n && is_ident_start(b[i + 1]) && b[i + 2] == b'\'' {
                    i += 3; // 'x'
                    push!(TokKind::Literal, start, i);
                } else if i + 1 < n && is_ident_start(b[i + 1]) {
                    // lifetime or label
                    i += 1;
                    while i < n && is_ident_cont(b[i]) {
                        i += 1;
                    }
                    push!(TokKind::Lifetime, start, i);
                } else if i + 2 < n && b[i + 2] == b'\'' {
                    i += 3; // e.g. ' ' or any single-byte char
                    push!(TokKind::Literal, start, i);
                } else {
                    i += 1;
                    push!(TokKind::Punct('\''), start, i);
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < n {
                    if is_ident_cont(b[i]) {
                        i += 1;
                    } else if b[i] == b'.'
                        && i + 1 < n
                        && b[i + 1].is_ascii_digit()
                        && !src[start..i].contains('.')
                    {
                        i += 1; // decimal point (not `..`)
                    } else if (b[i] == b'+' || b[i] == b'-')
                        && matches!(b[i - 1], b'e' | b'E')
                        && src[start..i]
                            .chars()
                            .next()
                            .is_some_and(|d| d.is_ascii_digit())
                    {
                        i += 1; // exponent sign
                    } else {
                        break;
                    }
                }
                push!(TokKind::Literal, start, i);
            }
            _ if is_ident_start(c) => {
                let start = i;
                // raw strings / byte strings: r"..", r#".."#, b"..", br#".."#
                let raw = maybe_raw_string(b, i);
                if let Some(end) = raw {
                    let text = &src[i..end];
                    line += text.bytes().filter(|&x| x == b'\n').count() as u32;
                    if let Some(last_nl) = text.rfind('\n') {
                        line_start = i + last_nl + 1;
                    }
                    i = end;
                    push!(TokKind::Literal, start, i);
                    continue;
                }
                if c == b'r'
                    && i + 1 < n
                    && b[i + 1] == b'#'
                    && i + 2 < n
                    && is_ident_start(b[i + 2])
                {
                    i += 2; // raw identifier r#ident
                }
                i += 1;
                while i < n && is_ident_cont(b[i]) {
                    i += 1;
                }
                // b'x' byte char literal
                if c == b'b' && i == start + 1 && i < n && b[i] == b'\'' {
                    i += 1;
                    while i < n && b[i] != b'\'' && b[i] != b'\n' {
                        if b[i] == b'\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    if i < n && b[i] == b'\'' {
                        i += 1;
                    }
                    push!(TokKind::Literal, start, i);
                    continue;
                }
                push!(TokKind::Ident, start, i);
            }
            _ if c.is_ascii_punctuation() => {
                push!(TokKind::Punct(c as char), i, i + 1);
                i += 1;
            }
            _ => i += 1, // stray non-ASCII byte outside any token
        }
    }

    LexFile {
        src,
        toks,
        pragmas,
        markers,
    }
}

/// Consumes a `"…"` string starting at `i` (which must be the opening
/// quote), honouring backslash escapes; returns the index past the
/// closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32, line_start: &mut usize) -> usize {
    let n = b.len();
    i += 1;
    while i < n {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
                *line_start = i;
            }
            _ => i += 1,
        }
    }
    n
}

/// When the bytes at `i` start a raw/byte string (`r"`, `r#"`, `b"`,
/// `br#"` …), returns the index one past its end.
fn maybe_raw_string(b: &[u8], i: usize) -> Option<usize> {
    let n = b.len();
    let mut j = i;
    // optional b prefix, then r for raw (or bare b for a byte string)
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
        if j < n && b[j] == b'r' {
            raw = true;
            j += 1;
        }
    } else if b[j] == b'r' {
        raw = true;
        j += 1;
    } else {
        return None;
    }
    if raw {
        let mut hashes = 0usize;
        while j < n && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j >= n || b[j] != b'"' {
            return None;
        }
        j += 1;
        // scan for `"` followed by `hashes` hash marks
        while j < n {
            if b[j] == b'"' {
                let mut k = 0usize;
                while k < hashes && j + 1 + k < n && b[j + 1 + k] == b'#' {
                    k += 1;
                }
                if k == hashes {
                    return Some(j + 1 + hashes);
                }
            }
            j += 1;
        }
        Some(n)
    } else {
        // b"..." — ordinary escapes
        if j >= n || b[j] != b'"' {
            return None;
        }
        j += 1;
        while j < n {
            match b[j] {
                b'\\' => j += 2,
                b'"' => return Some(j + 1),
                _ => j += 1,
            }
        }
        Some(n)
    }
}

/// One parsed `gfs-lint:` comment: an `allow(...)` pragma or a
/// `hot(zone)` marker.
enum PragmaItem {
    Allow(Pragma),
    Hot(Marker),
}

/// Parses a pragma out of one line comment, if it contains the
/// `gfs-lint:` marker. Returns `None` for ordinary comments.
fn parse_pragma(comment: &str, line: u32, standalone: bool) -> Option<PragmaItem> {
    let at = comment.find("gfs-lint:")?;
    let rest = comment[at + "gfs-lint:".len()..].trim();
    let bad = |msg: &str| {
        PragmaItem::Allow(Pragma {
            line,
            standalone,
            rule: String::new(),
            reason: String::new(),
            malformed: Some(msg.to_string()),
        })
    };
    if let Some(args) = rest.strip_prefix("hot") {
        let zone = match args
            .trim()
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
        {
            Some(z) => z.trim(),
            None => return Some(bad("expected `hot(zone)`")),
        };
        let ok = !zone.is_empty()
            && zone
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
        if !ok {
            return Some(bad("expected `hot(zone)`"));
        }
        return Some(PragmaItem::Hot(Marker {
            line,
            zone: zone.to_string(),
        }));
    }
    let Some(args) = rest.strip_prefix("allow") else {
        return Some(bad("expected `allow(rule, \"reason\")` or `hot(zone)`"));
    };
    let args = args.trim();
    let inner = match args.strip_prefix('(').and_then(|s| s.strip_suffix(')')) {
        Some(s) => s,
        None => return Some(bad("expected `allow(rule, \"reason\")`")),
    };
    let Some((rule, reason_part)) = inner.split_once(',') else {
        return Some(bad("missing reason: `allow(rule, \"reason\")`"));
    };
    let reason_part = reason_part.trim();
    let reason = match reason_part
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
    {
        Some(r) => r,
        None => return Some(bad("reason must be a double-quoted string")),
    };
    if reason.trim().is_empty() {
        return Some(bad("reason must not be empty"));
    }
    Some(PragmaItem::Allow(Pragma {
        line,
        standalone,
        rule: rule.trim().to_string(),
        reason: reason.to_string(),
        malformed: None,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        let f = lex(src);
        (0..f.toks.len())
            .filter(|&i| f.toks[i].kind == TokKind::Ident)
            .map(|i| f.text(i).to_string())
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let x = "HashMap::new()";
            let y = r#"HashMap"#;
            let z = b"HashMap";
            let c = 'H';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"real_ident".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) { let c = 'x'; g(c) }");
        assert!(ids.contains(&"g".to_string()));
        let f = lex("&'static str");
        assert!(f
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && f.src[t.start..t.end] == *"'static"));
    }

    #[test]
    fn lines_are_tracked_through_strings() {
        let src = "a\n\"x\ny\"\nb";
        let f = lex(src);
        let a = f
            .toks
            .iter()
            .find(|t| f.src[t.start..t.end] == *"a")
            .unwrap();
        let bt = f
            .toks
            .iter()
            .find(|t| f.src[t.start..t.end] == *"b")
            .unwrap();
        assert_eq!(a.line, 1);
        assert_eq!(bt.line, 4);
    }

    #[test]
    fn number_lexing_stops_at_range() {
        let f = lex("for i in 0..10 {}");
        let lits: Vec<&str> = (0..f.toks.len())
            .filter(|&i| f.toks[i].kind == TokKind::Literal)
            .map(|i| f.text(i))
            .collect();
        assert_eq!(lits, vec!["0", "10"]);
        let f = lex("let x = 1.5e-3;");
        assert!((0..f.toks.len()).any(|i| f.text(i) == "1.5e-3"));
    }

    #[test]
    fn pragmas_parse_and_report_malformed() {
        let src = "\
// gfs-lint: allow(det-iter, \"order-free max\")
x.iter(); // gfs-lint: allow(det-clock, \"inline\")
// gfs-lint: allow(det-iter)
";
        let f = lex(src);
        assert_eq!(f.pragmas.len(), 3);
        assert_eq!(f.pragmas[0].rule, "det-iter");
        assert!(f.pragmas[0].standalone);
        assert!(f.pragmas[0].malformed.is_none());
        assert_eq!(f.pragmas[1].rule, "det-clock");
        assert!(!f.pragmas[1].standalone);
        assert!(f.pragmas[2].malformed.is_some());
    }

    #[test]
    fn hot_markers_parse_and_malformed_report() {
        let src = "\
// gfs-lint: hot(tape)
fn f() {}
// gfs-lint: hot()
// gfs-lint: hot(tape
";
        let f = lex(src);
        assert_eq!(f.markers.len(), 1);
        assert_eq!(f.markers[0].zone, "tape");
        assert_eq!(f.markers[0].line, 1);
        let malformed: Vec<u32> = f
            .pragmas
            .iter()
            .filter(|p| p.malformed.is_some())
            .map(|p| p.line)
            .collect();
        assert_eq!(malformed, vec![3, 4]);
    }

    #[test]
    fn match_brace_spans_bodies() {
        let f = lex("fn f() { if x { y(); } } fn g() {}");
        let open = (0..f.toks.len()).find(|&i| f.is_punct(i, '{')).unwrap();
        let end = f.match_brace(open);
        assert!(f.is_ident(end, "fn"), "next item after f's body");
    }
}
