//! `gfs_lint` — workspace determinism & golden-pin static analysis.
//!
//! Every golden pin in this repo (the six `tests/golden_*` suites and the
//! threads=1 == threads=8 fleet determinism contract, see
//! `gfs_sim::fleet`) rests on invariants that `rustc` cannot check:
//! iteration order, clock sources, serde attribute pairing, and the
//! ChangeLog epoch protocol. This crate is a std-only static-analysis pass
//! that checks them. It has **zero dependencies** — a hand-written lossy
//! lexer ([`lexer`]), not `syn` — so it builds offline and keeps working
//! even when the code it scans does not compile.
//!
//! # Rules
//!
//! | rule | invariant protected |
//! |------|---------------------|
//! | `det-iter` | **Replay determinism.** `std` hash containers iterate in a per-process random order (`RandomState`). Iterating one inside a decision path (`crates/{sim,sched,cluster,core,market}`) can reorder placement, eviction or pricing decisions between two runs of the same seed, silently breaking the golden pins. Keyed lookups (`get`, `entry`, `insert`, `remove`, `contains_key`) are fine — the `budget`/`virt_idle` maps in `gfs_sched::placement` are the canonical clean pattern. Fix: `BTreeMap`/`BTreeSet`, or collect-and-sort before iterating. |
//! | `det-clock` | **Reproducibility.** `Instant::now()`/`SystemTime` reads feed wall-clock time into results. Decision paths may only read simulated time (`SimTime`). Allowlisted: `crates/bench/` (harness timing is its job) and `crates/forecast/src/timing.rs` (the one choke point for model train-time measurement). |
//! | `golden-serde` | **Golden-pin forward/backward compatibility.** A field with `#[serde(skip_serializing_if = …)]` but no `default` produces reports that cannot be re-read when the field was skipped — the skip-at-zero pin contract requires the pair. |
//! | `changelog-coverage` | **ScoreIndex epoch protocol.** Score-relevant `Cluster`/`Node` mutations must reach `ChangeLog::note` so the incremental `ScoreIndex` invalidates the right nodes. Inside `crates/cluster/src/cluster.rs`, any `fn` calling a mutation primitive (`place_pod`, `set_up`, `index.refresh`, …) must reach `changes.note` directly or via a same-file logged helper. Outside `gfs_cluster`, raw `Node` mutators are flagged outright — go through `Cluster`'s logged API. |
//! | `service-unwrap` | **Crash-safe recovery.** `unwrap`/`expect` in `ClusterService` journal/recovery functions turns a detectable torn journal tail into a crash loop; those paths must return the typed `JournalError`/`RestoreError`. |
//! | `tape-alloc` | **Zero-allocation steady state.** The `gfs_nn` tape arena's performance contract (enforced dynamically by the `forecast-alloc-gate` test lane) is that a warm training step allocates nothing. Functions marked `// gfs-lint: hot(tape)` in `crates/nn` may not call `Box::new`/`Rc::new`/`Vec::new`, expand `vec![…]`, or `.clone()` (tensor clones allocate unless the copy-on-write share was taken outside the hot path). |
//! | `bad-pragma` | A `gfs-lint:` pragma that does not parse, lacks a reason, names an unknown rule, or marks an unknown hot zone. Never suppressible. |
//!
//! # Pragmas
//!
//! A rule can be suppressed per line with an escape hatch that *requires a
//! written justification*:
//!
//! ```text
//! // gfs-lint: allow(det-iter, "max over u64s is order-independent")
//! let worst = waiting.values().copied().max();
//! ```
//!
//! A standalone pragma comment applies to the next token-bearing line; a
//! trailing (inline) pragma applies to its own line. The reason string is
//! mandatory and must be non-empty — a pragma without one is itself a
//! `bad-pragma` finding, as is an unknown rule name.
//!
//! A second comment form, `// gfs-lint: hot(tape)`, is an opt-in marker:
//! it places the next function under the `tape-alloc` zone rule rather
//! than suppressing anything.
//!
//! # Report & ratchet
//!
//! Findings are emitted sorted by `(path, line, rule)` in a byte-stable
//! JSON encoding plus a human table ([`report`]). CI runs the self-scan
//! (`just lint`) and hard-fails when any per-`(path, rule)` finding count
//! exceeds the committed `LINT_BASELINE.json` — a ratchet: drift in line
//! numbers is tolerated, growth is not, and improvements are re-recorded
//! with `just lint-baseline`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;

pub use report::{
    parse_report, ratchet, render_json, render_table, sort_findings, Finding, Ratchet, RuleId,
};
pub use rules::scan_source;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Workspace directories worth scanning, relative to the root.
const SCAN_ROOTS: [&str; 4] = ["src", "crates", "examples", "tests"];

/// Collects every `.rs` file under the workspace `root`'s scan roots, as
/// sorted workspace-relative `/`-separated paths. Skips `target/`, VCS
/// metadata, and lint rule fixtures (`tests/fixtures/` holds deliberate
/// violations).
///
/// # Errors
///
/// Propagates filesystem errors other than a missing scan root.
pub fn collect_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = rel_path(root, &path);
            if rel.contains("tests/fixtures/") {
                continue;
            }
            out.push(rel);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

/// Scans the whole workspace at `root` and returns the findings in
/// canonical order. This is the `lint_self` mode the CI gate runs.
///
/// # Errors
///
/// Propagates filesystem errors from walking or reading sources.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in collect_files(root)? {
        let src = fs::read_to_string(root.join(&rel))?;
        findings.extend(scan_source(&rel, &src));
    }
    sort_findings(&mut findings);
    Ok(findings)
}
