//! Finding representation, the stable machine-readable report encoding,
//! and the baseline ratchet.
//!
//! # Report encoding
//!
//! Findings are always emitted sorted by `(path, line, rule)` — byte-wise
//! on the path, numerically on the line — so two runs over the same tree
//! produce byte-identical reports (the same property every golden pin in
//! this repo relies on). The JSON shape is fixed:
//!
//! ```json
//! {
//!   "version": 1,
//!   "findings": [
//!     {"path": "crates/core/src/sqa.rs", "line": 65, "rule": "det-iter", "message": "…"}
//!   ]
//! }
//! ```
//!
//! # Ratchet semantics
//!
//! The committed `LINT_BASELINE.json` records the accepted debt. The gate
//! compares **per-(path, rule) finding counts**, not exact lines: line
//! numbers drift with every edit, and pinning them would make unrelated
//! refactors fail the gate. A file may never *gain* findings of a rule
//! beyond its baselined count (hard failure); dropping below the baseline
//! is reported as ratchet progress and `just lint-baseline` re-records it.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The rules the engine knows. See the crate docs for what each protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// No iteration over `HashMap`/`HashSet` in decision paths.
    DetIter,
    /// No wall-clock reads outside the bench/timing allowlists.
    DetClock,
    /// Every `skip_serializing_if` field also carries `default`.
    GoldenSerde,
    /// Score-relevant cluster mutations go through logged helpers.
    ChangelogCoverage,
    /// No `unwrap`/`expect` in `ClusterService` journal/recovery paths.
    ServiceUnwrap,
    /// No heap allocation (`Box::new`, `Rc::new`, `.clone()`, `Vec::new`,
    /// `vec![]`) inside `// gfs-lint: hot(tape)` functions of `crates/nn`.
    TapeAlloc,
    /// A `gfs-lint:` pragma that does not parse (never suppressible).
    BadPragma,
}

impl RuleId {
    /// The rule's stable name, as used in reports and pragmas.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RuleId::DetIter => "det-iter",
            RuleId::DetClock => "det-clock",
            RuleId::GoldenSerde => "golden-serde",
            RuleId::ChangelogCoverage => "changelog-coverage",
            RuleId::ServiceUnwrap => "service-unwrap",
            RuleId::TapeAlloc => "tape-alloc",
            RuleId::BadPragma => "bad-pragma",
        }
    }

    /// Parses a rule name (as written in a pragma or a report).
    #[must_use]
    pub fn parse(s: &str) -> Option<RuleId> {
        Some(match s {
            "det-iter" => RuleId::DetIter,
            "det-clock" => RuleId::DetClock,
            "golden-serde" => RuleId::GoldenSerde,
            "changelog-coverage" => RuleId::ChangelogCoverage,
            "service-unwrap" => RuleId::ServiceUnwrap,
            "tape-alloc" => RuleId::TapeAlloc,
            "bad-pragma" => RuleId::BadPragma,
            _ => return None,
        })
    }

    /// Every rule, in report order.
    pub const ALL: [RuleId; 7] = [
        RuleId::DetIter,
        RuleId::DetClock,
        RuleId::GoldenSerde,
        RuleId::ChangelogCoverage,
        RuleId::ServiceUnwrap,
        RuleId::TapeAlloc,
        RuleId::BadPragma,
    ];
}

/// One finding: `path:line:rule` plus a human explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// The violated rule.
    pub rule: RuleId,
    /// What was found and why it matters.
    pub message: String,
}

/// Sorts findings into the canonical report order `(path, line, rule)`.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule.name()).cmp(&(b.path.as_str(), b.line, b.rule.name()))
    });
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders the canonical sorted JSON report. Byte-stable: the same
/// findings always produce the same bytes.
#[must_use]
pub fn render_json(findings: &[Finding]) -> String {
    let mut sorted: Vec<Finding> = findings.to_vec();
    sort_findings(&mut sorted);
    let mut out = String::new();
    out.push_str("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"path\": \"");
        escape_json(&f.path, &mut out);
        let _ = write!(
            out,
            "\", \"line\": {}, \"rule\": \"{}\", \"message\": \"",
            f.line,
            f.rule.name()
        );
        escape_json(&f.message, &mut out);
        out.push_str("\"}");
    }
    if sorted.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Renders the human table: one aligned `path:line  rule  message` row per
/// finding, in canonical order.
#[must_use]
pub fn render_table(findings: &[Finding]) -> String {
    let mut sorted: Vec<Finding> = findings.to_vec();
    sort_findings(&mut sorted);
    if sorted.is_empty() {
        return "no findings\n".to_string();
    }
    let loc_w = sorted
        .iter()
        .map(|f| f.path.len() + 1 + digits(f.line))
        .max()
        .unwrap_or(0);
    let rule_w = sorted
        .iter()
        .map(|f| f.rule.name().len())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for f in &sorted {
        let loc = format!("{}:{}", f.path, f.line);
        let _ = writeln!(
            out,
            "{loc:<loc_w$}  {rule:<rule_w$}  {msg}",
            rule = f.rule.name(),
            msg = f.message
        );
    }
    out
}

fn digits(mut n: u32) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

// ---------------------------------------------------------------------
// Minimal JSON reader for the fixed report schema (the crate is
// dependency-free on purpose; see Cargo.toml).
// ---------------------------------------------------------------------

struct Reader<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Reader<'a> {
    fn new(s: &'a str) -> Self {
        Reader {
            b: s.as_bytes(),
            i: 0,
        }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} of baseline JSON",
                c as char, self.i
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    let e = *self.b.get(self.i).ok_or("truncated escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    }
                }
                c if c < 0x80 => {
                    out.push(c as char);
                    self.i += 1;
                }
                _ => {
                    // multi-byte UTF-8: copy the full sequence
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xC0) == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i]).map_err(|_| "bad UTF-8")?,
                    );
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<u64, String> {
        self.ws();
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
        }
        if start == self.i {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| "bad number".to_string())?
            .parse()
            .map_err(|_| "bad number".to_string())
    }
}

/// Parses a report/baseline JSON produced by [`render_json`] (tolerant of
/// whitespace and key order inside each finding object).
pub fn parse_report(json: &str) -> Result<Vec<Finding>, String> {
    let mut r = Reader::new(json);
    r.eat(b'{')?;
    let mut findings = Vec::new();
    loop {
        let key = r.string()?;
        r.eat(b':')?;
        match key.as_str() {
            "version" => {
                let v = r.number()?;
                if v != 1 {
                    return Err(format!("unsupported report version {v}"));
                }
            }
            "findings" => {
                r.eat(b'[')?;
                if r.peek() == Some(b']') {
                    r.eat(b']')?;
                } else {
                    loop {
                        findings.push(parse_finding(&mut r)?);
                        match r.peek() {
                            Some(b',') => r.eat(b',')?,
                            _ => {
                                r.eat(b']')?;
                                break;
                            }
                        }
                    }
                }
            }
            other => return Err(format!("unknown top-level key {other:?}")),
        }
        match r.peek() {
            Some(b',') => r.eat(b',')?,
            _ => {
                r.eat(b'}')?;
                break;
            }
        }
    }
    Ok(findings)
}

fn parse_finding(r: &mut Reader<'_>) -> Result<Finding, String> {
    r.eat(b'{')?;
    let (mut path, mut line, mut rule, mut message) = (None, None, None, None);
    loop {
        let key = r.string()?;
        r.eat(b':')?;
        match key.as_str() {
            "path" => path = Some(r.string()?),
            "line" => line = Some(r.number()?),
            "rule" => {
                let name = r.string()?;
                rule = Some(RuleId::parse(&name).ok_or_else(|| format!("unknown rule {name:?}"))?);
            }
            "message" => message = Some(r.string()?),
            other => return Err(format!("unknown finding key {other:?}")),
        }
        match r.peek() {
            Some(b',') => r.eat(b',')?,
            _ => {
                r.eat(b'}')?;
                break;
            }
        }
    }
    Ok(Finding {
        path: path.ok_or("finding missing \"path\"")?,
        line: u32::try_from(line.ok_or("finding missing \"line\"")?)
            .map_err(|_| "line out of range")?,
        rule: rule.ok_or("finding missing \"rule\"")?,
        message: message.ok_or("finding missing \"message\"")?,
    })
}

// ---------------------------------------------------------------------
// Ratchet
// ---------------------------------------------------------------------

/// Outcome of diffing the current findings against the baseline.
#[derive(Debug, Default)]
pub struct Ratchet {
    /// `(path, rule, current, baselined)` where current > baselined —
    /// these fail the gate.
    pub regressed: Vec<(String, RuleId, usize, usize)>,
    /// `(path, rule, current, baselined)` where current < baselined —
    /// ratchet progress; re-record the baseline to lock it in.
    pub improved: Vec<(String, RuleId, usize, usize)>,
}

impl Ratchet {
    /// Whether the gate passes (no per-(path, rule) count grew).
    #[must_use]
    pub fn ok(&self) -> bool {
        self.regressed.is_empty()
    }
}

/// Diffs current findings against the baseline by per-(path, rule) counts.
#[must_use]
pub fn ratchet(current: &[Finding], baseline: &[Finding]) -> Ratchet {
    let count = |fs: &[Finding]| {
        let mut m: BTreeMap<(String, RuleId), usize> = BTreeMap::new();
        for f in fs {
            *m.entry((f.path.clone(), f.rule)).or_insert(0) += 1;
        }
        m
    };
    let cur = count(current);
    let base = count(baseline);
    let mut out = Ratchet::default();
    for (k, &c) in &cur {
        let b = base.get(k).copied().unwrap_or(0);
        if c > b {
            out.regressed.push((k.0.clone(), k.1, c, b));
        }
    }
    for (k, &b) in &base {
        let c = cur.get(k).copied().unwrap_or(0);
        if c < b {
            out.improved.push((k.0.clone(), k.1, c, b));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(path: &str, line: u32, rule: RuleId) -> Finding {
        Finding {
            path: path.to_string(),
            line,
            rule,
            message: format!("m{line}"),
        }
    }

    #[test]
    fn json_round_trips() {
        let findings = vec![
            f("b.rs", 2, RuleId::DetClock),
            f("a.rs", 9, RuleId::DetIter),
            f("a.rs", 1, RuleId::GoldenSerde),
        ];
        let json = render_json(&findings);
        let back = parse_report(&json).unwrap();
        let mut sorted = findings.clone();
        sort_findings(&mut sorted);
        assert_eq!(back, sorted);
    }

    #[test]
    fn empty_report_parses() {
        let json = render_json(&[]);
        assert_eq!(parse_report(&json).unwrap(), Vec::new());
    }

    #[test]
    fn escapes_survive() {
        let mut finding = f("a.rs", 1, RuleId::DetIter);
        finding.message = "quote \" slash \\ tab\t".to_string();
        let back = parse_report(&render_json(&[finding.clone()])).unwrap();
        assert_eq!(back[0].message, finding.message);
    }

    #[test]
    fn ratchet_fails_only_on_growth() {
        let base = vec![f("a.rs", 1, RuleId::DetIter), f("a.rs", 5, RuleId::DetIter)];
        // same count, different lines: drift is fine
        let drifted = vec![f("a.rs", 2, RuleId::DetIter), f("a.rs", 9, RuleId::DetIter)];
        assert!(ratchet(&drifted, &base).ok());
        // one more in the same file: regression
        let mut grown = drifted.clone();
        grown.push(f("a.rs", 20, RuleId::DetIter));
        let r = ratchet(&grown, &base);
        assert!(!r.ok());
        assert_eq!(
            r.regressed,
            vec![("a.rs".to_string(), RuleId::DetIter, 3, 2)]
        );
        // a new file with any finding: regression
        let r = ratchet(&[f("new.rs", 1, RuleId::DetClock)], &base);
        assert!(!r.ok());
        // fewer than baselined: progress, still ok
        let r = ratchet(&drifted[..1], &base);
        assert!(r.ok());
        assert_eq!(
            r.improved,
            vec![("a.rs".to_string(), RuleId::DetIter, 1, 2)]
        );
    }

    #[test]
    fn rule_names_round_trip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.name()), Some(r));
        }
        assert_eq!(RuleId::parse("nope"), None);
    }
}
