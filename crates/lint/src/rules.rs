//! The five rules, as token-stream pattern matchers over [`crate::lexer`]
//! output, plus pragma application. See the crate docs for the invariant
//! each rule protects and the exact scoping.

use crate::lexer::{lex, LexFile, TokKind};
use crate::report::{Finding, RuleId};

/// Decision-path crates: the only places where scheduling, simulation or
/// market outcomes are computed, so the only places where iteration order
/// or wall-clock reads can corrupt a pinned result.
const DECISION_PREFIXES: [&str; 5] = [
    "crates/sim/src/",
    "crates/sched/src/",
    "crates/cluster/src/",
    "crates/core/src/",
    "crates/market/src/",
];

/// Hash-container methods whose visit order is arbitrary. Keyed access
/// (`get`, `entry`, `insert`, `remove`, `contains_key`, indexing) is fine
/// and deliberately not listed: the `budget`/`virt_idle` maps in
/// `gfs_sched::placement` are the canonical keyed-lookup-only pattern.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// `Node` mutators that change a placement score. Inside
/// `crates/cluster/src/cluster.rs` these must sit in a function that
/// reaches `changes.note` (the ScoreIndex epoch contract).
const NODE_PRIMITIVES: [&str; 8] = [
    "place_pod",
    "release_pod",
    "record_eviction",
    "record_failure",
    "record_drain",
    "set_up",
    "set_draining",
    "clear_eviction_history",
];

/// The subset of [`NODE_PRIMITIVES`] whose names are unambiguous enough
/// to flag *outside* `gfs_cluster` (`record_eviction` is excluded: the
/// SQA controller has an unrelated method of that name).
const NODE_PRIMITIVES_FOREIGN: [&str; 7] = [
    "place_pod",
    "release_pod",
    "record_failure",
    "record_drain",
    "set_up",
    "set_draining",
    "clear_eviction_history",
];

/// `CapacityIndex` mutators (`self.index.<m>(…)`) — same contract.
const INDEX_MUTATORS: [&str; 5] = [
    "refresh",
    "remove_node",
    "restore_node",
    "add_spot",
    "remove_spot",
];

/// Journal/recovery functions of `gfs_sim::service` that must use typed
/// errors only: a panic mid-recovery turns a detectable torn tail into a
/// crash loop.
const JOURNAL_FNS: [&str; 17] = [
    "parse_journal",
    "checksum_ok",
    "append",
    "append_record",
    "with_seq",
    "journal_admission",
    "enable_journal",
    "journal",
    "last_seq",
    "text",
    "replay_journal",
    "restore",
    "from_json",
    "to_json",
    "state_hash",
    "snapshot",
    "snapshot_json",
];

/// Scans one file. `path` must be the workspace-relative, `/`-separated
/// path — rules scope themselves by it.
#[must_use]
pub fn scan_source(path: &str, src: &str) -> Vec<Finding> {
    let f = lex(src);
    let tests = test_spans(&f);
    let mut findings = Vec::new();

    if in_decision_path(path) {
        det_iter(path, &f, &tests, &mut findings);
    }
    if det_clock_scope(path) {
        det_clock(path, &f, &tests, &mut findings);
    }
    golden_serde(path, &f, &mut findings);
    if path.starts_with("crates/cluster/") && path.ends_with("cluster.rs") {
        changelog_local(path, &f, &tests, &mut findings);
    } else if in_decision_path(path) && !path.starts_with("crates/cluster/") {
        changelog_foreign(path, &f, &tests, &mut findings);
    }
    if path.starts_with("crates/sim/") && path.ends_with("service.rs") {
        service_unwrap(path, &f, &tests, &mut findings);
    }
    if path.starts_with("crates/nn/") {
        tape_alloc(path, &f, &tests, &mut findings);
    }

    apply_pragmas(path, &f, &mut findings);
    findings
}

fn in_decision_path(path: &str) -> bool {
    DECISION_PREFIXES.iter().any(|p| path.starts_with(p))
}

fn det_clock_scope(path: &str) -> bool {
    path.starts_with("crates/")
        && path.contains("/src/")
        && !path.starts_with("crates/bench/")
        && path != "crates/forecast/src/timing.rs"
}

// -------------------------------------------------------------------
// structure helpers
// -------------------------------------------------------------------

/// Token-index spans of `#[cfg(test)]`-gated modules and functions.
fn test_spans(f: &LexFile<'_>) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 6 < f.toks.len() {
        let hit = f.is_punct(i, '#')
            && f.is_punct(i + 1, '[')
            && f.is_ident(i + 2, "cfg")
            && f.is_punct(i + 3, '(')
            && f.is_ident(i + 4, "test")
            && f.is_punct(i + 5, ')')
            && f.is_punct(i + 6, ']');
        if !hit {
            i += 1;
            continue;
        }
        let mut j = i + 7;
        // skip further attributes before the item
        while f.is_punct(j, '#') && f.is_punct(j + 1, '[') {
            let mut depth = 0i32;
            while j < f.toks.len() {
                match f.toks[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // find the gated item's body brace (stop at `;` for `mod x;`)
        let mut k = j;
        let mut depth = 0i32;
        while k < f.toks.len() {
            match f.toks[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct(';') if depth == 0 => break,
                TokKind::Punct('{') if depth == 0 => {
                    spans.push((k, f.match_brace(k)));
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        i = j.max(i + 1);
    }
    spans
}

fn in_test(tests: &[(usize, usize)], i: usize) -> bool {
    tests.iter().any(|&(a, b)| i >= a && i < b)
}

/// A function item: name plus its body token span.
struct FnItem {
    name: String,
    line: u32,
    body: Option<(usize, usize)>,
}

/// Extracts every `fn` item (including nested ones) with its body span.
fn fn_items(f: &LexFile<'_>) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < f.toks.len() {
        if f.is_ident(i, "fn") && matches!(f.toks.get(i + 1), Some(t) if t.kind == TokKind::Ident) {
            let name = f.text(i + 1).to_string();
            let line = f.line(i + 1);
            // scan to the body `{` or a `;` (trait method declaration),
            // at bracket depth 0 (return types like `-> [u8; 4]` nest)
            let mut k = i + 2;
            let mut depth = 0i32;
            let mut body = None;
            while k < f.toks.len() {
                match f.toks[k].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                    TokKind::Punct(';') if depth == 0 => break,
                    TokKind::Punct('{') if depth == 0 => {
                        body = Some((k, f.match_brace(k)));
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            out.push(FnItem { name, line, body });
        }
        i += 1;
    }
    out
}

// -------------------------------------------------------------------
// det-iter
// -------------------------------------------------------------------

/// Collects identifiers bound to `HashMap`/`HashSet` in this file: typed
/// bindings/fields/params (`name: [&] [mut] [std::collections::] HashMap<…>`,
/// including one wrapper like `Option<HashMap<…>>`) and initializer
/// bindings (`name = HashMap::new()`).
fn hash_names(f: &LexFile<'_>) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..f.toks.len() {
        if !(f.is_ident(i, "HashMap") || f.is_ident(i, "HashSet")) {
            continue;
        }
        // initializer form: `name = HashMap::…`
        if i >= 2 && f.is_punct(i - 1, '=') && f.toks[i - 2].kind == TokKind::Ident {
            names.push(f.text(i - 2).to_string());
            continue;
        }
        // type-annotation form: walk back over the type prefix to the `:`
        let mut j = i as isize - 1;
        let mut saw_colon = false;
        while j >= 0 {
            let ju = j as usize;
            match f.toks[ju].kind {
                TokKind::Punct(':') => {
                    saw_colon = true;
                    j -= 1;
                }
                TokKind::Punct('&') | TokKind::Punct('<') => j -= 1,
                TokKind::Lifetime => j -= 1,
                TokKind::Ident
                    if matches!(
                        f.text(ju),
                        "std"
                            | "collections"
                            | "mut"
                            | "dyn"
                            | "Option"
                            | "Vec"
                            | "Box"
                            | "Arc"
                            | "Rc"
                            | "Mutex"
                            | "RefCell"
                            | "Cell"
                    ) =>
                {
                    j -= 1;
                }
                _ => break,
            }
        }
        if saw_colon && j >= 0 && f.toks[j as usize].kind == TokKind::Ident {
            let name = f.text(j as usize);
            if name != "fn" && name != "let" {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

fn det_iter(path: &str, f: &LexFile<'_>, tests: &[(usize, usize)], out: &mut Vec<Finding>) {
    let names = hash_names(f);
    if names.is_empty() {
        return;
    }
    let is_hash = |i: usize| {
        f.toks.get(i).is_some_and(|t| t.kind == TokKind::Ident)
            && names.iter().any(|n| n == f.text(i))
    };
    for i in 0..f.toks.len() {
        if in_test(tests, i) {
            continue;
        }
        // `map.iter()` and friends
        if is_hash(i)
            && f.is_punct(i + 1, '.')
            && ITER_METHODS.iter().any(|m| f.is_ident(i + 2, m))
            && f.is_punct(i + 3, '(')
        {
            out.push(Finding {
                path: path.to_string(),
                line: f.line(i),
                rule: RuleId::DetIter,
                message: format!(
                    "iteration over std hash container `{}` (`.{}()`) in a decision path: visit order is nondeterministic — use BTreeMap/BTreeSet, sort the keys first, or pragma with a proof of order-independence",
                    f.text(i),
                    f.text(i + 2),
                ),
            });
        }
        // `for x in map {` / `for x in &map {`
        if f.is_ident(i, "for") {
            let mut j = i + 1;
            let mut in_idx = None;
            while j < f.toks.len() && j < i + 64 {
                if f.is_punct(j, '{') {
                    break;
                }
                if f.is_ident(j, "in") {
                    in_idx = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(start) = in_idx else { continue };
            let mut k = start + 1;
            while k < f.toks.len() && k < start + 64 && !f.is_punct(k, '{') {
                if is_hash(k) && f.is_punct(k + 1, '{') {
                    out.push(Finding {
                        path: path.to_string(),
                        line: f.line(k),
                        rule: RuleId::DetIter,
                        message: format!(
                            "`for` loop over std hash container `{}` in a decision path: visit order is nondeterministic — use BTreeMap/BTreeSet, sort the keys first, or pragma with a proof of order-independence",
                            f.text(k),
                        ),
                    });
                }
                k += 1;
            }
        }
    }
}

// -------------------------------------------------------------------
// det-clock
// -------------------------------------------------------------------

fn det_clock(path: &str, f: &LexFile<'_>, tests: &[(usize, usize)], out: &mut Vec<Finding>) {
    for i in 0..f.toks.len() {
        if in_test(tests, i) {
            continue;
        }
        if f.is_ident(i, "Instant")
            && f.is_punct(i + 1, ':')
            && f.is_punct(i + 2, ':')
            && f.is_ident(i + 3, "now")
        {
            out.push(Finding {
                path: path.to_string(),
                line: f.line(i),
                rule: RuleId::DetClock,
                message: "`Instant::now()` outside the bench/timing allowlist: wall-clock reads make runs irreproducible — route timing through `gfs_bench::harness` or `gfs_forecast`'s `timing` helper".to_string(),
            });
        }
        if f.is_ident(i, "SystemTime") && f.is_punct(i + 1, ':') && f.is_punct(i + 2, ':') {
            out.push(Finding {
                path: path.to_string(),
                line: f.line(i),
                rule: RuleId::DetClock,
                message: "`SystemTime` use outside the bench/timing allowlist: wall-clock reads make runs irreproducible — simulated time (`SimTime`) is the only clock decision paths may read".to_string(),
            });
        }
    }
}

// -------------------------------------------------------------------
// golden-serde
// -------------------------------------------------------------------

fn golden_serde(path: &str, f: &LexFile<'_>, out: &mut Vec<Finding>) {
    let mut i = 0;
    while i < f.toks.len() {
        // start of an attribute run attached to one field
        if !(f.is_punct(i, '#') && f.is_punct(i + 1, '[')) {
            i += 1;
            continue;
        }
        let mut has_skip = false;
        let mut skip_line = 0u32;
        let mut has_default = false;
        let mut j = i;
        // walk the whole consecutive attribute run (serde or otherwise)
        while f.is_punct(j, '#') && f.is_punct(j + 1, '[') {
            let serde_attr = f.is_ident(j + 2, "serde");
            // find the matching `]`
            let mut depth = 0i32;
            let mut k = j + 1;
            while k < f.toks.len() {
                match f.toks[k].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Ident if serde_attr => {
                        if f.text(k) == "skip_serializing_if" {
                            has_skip = true;
                            skip_line = f.line(k);
                        } else if f.text(k) == "default" {
                            has_default = true;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k + 1;
        }
        if has_skip && !has_default {
            out.push(Finding {
                path: path.to_string(),
                line: skip_line,
                rule: RuleId::GoldenSerde,
                message: "`skip_serializing_if` without `default`: old reports missing the field would fail to deserialize, breaking the skip-at-zero golden-pin contract — add `default` to the same `#[serde(…)]` attribute".to_string(),
            });
        }
        i = j.max(i + 1);
    }
}

// -------------------------------------------------------------------
// changelog-coverage
// -------------------------------------------------------------------

fn body_calls_primitive(f: &LexFile<'_>, a: usize, b: usize) -> Option<(u32, String)> {
    for i in a..b.min(f.toks.len()) {
        if NODE_PRIMITIVES.iter().any(|p| f.is_ident(i, p)) && f.is_punct(i + 1, '(') {
            return Some((f.line(i), f.text(i).to_string()));
        }
        if f.is_ident(i, "index")
            && f.is_punct(i + 1, '.')
            && INDEX_MUTATORS.iter().any(|m| f.is_ident(i + 2, m))
            && f.is_punct(i + 3, '(')
        {
            return Some((f.line(i + 2), format!("index.{}", f.text(i + 2))));
        }
    }
    None
}

/// Arm (a): inside `cluster.rs`, every function whose body calls a
/// score-relevant mutation primitive must reach `changes.note` — directly
/// or through another function of this file that does (delegating to a
/// logged helper like `bring_into_service` counts).
fn changelog_local(path: &str, f: &LexFile<'_>, tests: &[(usize, usize)], out: &mut Vec<Finding>) {
    let fns = fn_items(f);
    let has_note = |a: usize, b: usize| {
        (a..b.min(f.toks.len().saturating_sub(2))).any(|i| {
            f.is_ident(i, "changes") && f.is_punct(i + 1, '.') && f.is_ident(i + 2, "note")
        })
    };
    let mut covered: Vec<bool> = fns
        .iter()
        .map(|it| it.body.is_some_and(|(a, b)| has_note(a, b)))
        .collect();
    // fixpoint: a fn that calls a covered fn is covered
    loop {
        let mut changed = false;
        for (idx, it) in fns.iter().enumerate() {
            if covered[idx] {
                continue;
            }
            let Some((a, b)) = it.body else { continue };
            for i in a..b.min(f.toks.len()) {
                if f.toks[i].kind == TokKind::Ident && f.is_punct(i + 1, '(') {
                    let callee = f.text(i);
                    if fns
                        .iter()
                        .enumerate()
                        .any(|(j, g)| covered[j] && g.name == callee)
                    {
                        covered[idx] = true;
                        changed = true;
                        break;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (idx, it) in fns.iter().enumerate() {
        let Some((a, b)) = it.body else { continue };
        if in_test(tests, a) || covered[idx] {
            continue;
        }
        if let Some((_, what)) = body_calls_primitive(f, a, b) {
            out.push(Finding {
                path: path.to_string(),
                line: it.line,
                rule: RuleId::ChangelogCoverage,
                message: format!(
                    "fn `{}` mutates score-relevant state (`{}`) without reaching `changes.note`: the ScoreIndex epoch contract requires every such mutation to be logged (directly or via a logged helper)",
                    it.name, what,
                ),
            });
        }
    }
}

/// Arm (b): outside `gfs_cluster`, raw `Node` mutators are off limits —
/// score-relevant mutation must go through `Cluster`'s logged API.
fn changelog_foreign(
    path: &str,
    f: &LexFile<'_>,
    tests: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    for i in 0..f.toks.len() {
        if in_test(tests, i) {
            continue;
        }
        if f.is_punct(i, '.')
            && NODE_PRIMITIVES_FOREIGN.iter().any(|p| f.is_ident(i + 1, p))
            && f.is_punct(i + 2, '(')
        {
            out.push(Finding {
                path: path.to_string(),
                line: f.line(i + 1),
                rule: RuleId::ChangelogCoverage,
                message: format!(
                    "raw score-relevant Node mutation `.{}()` outside gfs_cluster: it bypasses the ChangeLog, so the ScoreIndex would serve stale scores — go through Cluster's logged API",
                    f.text(i + 1),
                ),
            });
        }
    }
}

// -------------------------------------------------------------------
// service-unwrap
// -------------------------------------------------------------------

fn service_unwrap(path: &str, f: &LexFile<'_>, tests: &[(usize, usize)], out: &mut Vec<Finding>) {
    for it in fn_items(f) {
        if !JOURNAL_FNS.contains(&it.name.as_str()) {
            continue;
        }
        let Some((a, b)) = it.body else { continue };
        if in_test(tests, a) {
            continue;
        }
        for i in a..b.min(f.toks.len()) {
            if f.is_punct(i, '.')
                && (f.is_ident(i + 1, "unwrap") || f.is_ident(i + 1, "expect"))
                && f.is_punct(i + 2, '(')
            {
                out.push(Finding {
                    path: path.to_string(),
                    line: f.line(i + 1),
                    rule: RuleId::ServiceUnwrap,
                    message: format!(
                        "`.{}()` in journal/recovery path `{}`: a panic here turns a detectable torn tail into a crash loop — return the typed `JournalError`/`RestoreError` instead",
                        f.text(i + 1),
                        it.name,
                    ),
                });
            }
        }
    }
}

// -------------------------------------------------------------------
// tape-alloc
// -------------------------------------------------------------------

/// Allocating constructors flagged by `tape-alloc` when called as
/// `T::new(...)` inside a `hot(tape)` function.
const ALLOC_CTORS: [&str; 3] = ["Box", "Rc", "Vec"];

/// Inside functions marked `// gfs-lint: hot(tape)` (the zero-allocation
/// steady-state contract of the `gfs_nn` tape arena), flag heap
/// allocation: `Box::new`/`Rc::new`/`Vec::new` calls, `vec![…]`, and
/// `.clone()` (tensor clones allocate unless the copy-on-write share was
/// taken outside the hot path). Suppress justified cases with
/// `allow(tape-alloc, "reason")`.
fn tape_alloc(path: &str, f: &LexFile<'_>, tests: &[(usize, usize)], out: &mut Vec<Finding>) {
    let fns = fn_items(f);
    // each marker opts in the next fn item at or below it
    let mut spans: Vec<(usize, String, usize, usize)> = Vec::new();
    for m in &f.markers {
        if m.zone != "tape" {
            continue;
        }
        let Some((idx, it)) = fns
            .iter()
            .enumerate()
            .filter(|(_, it)| it.line >= m.line)
            .min_by_key(|(_, it)| it.line)
        else {
            continue;
        };
        let Some((a, b)) = it.body else { continue };
        if !spans.iter().any(|&(i, ..)| i == idx) {
            spans.push((idx, it.name.clone(), a, b));
        }
    }
    for (_, name, a, b) in spans {
        if in_test(tests, a) {
            continue;
        }
        for i in a..b.min(f.toks.len()) {
            if ALLOC_CTORS.iter().any(|c| f.is_ident(i, c))
                && f.is_punct(i + 1, ':')
                && f.is_punct(i + 2, ':')
                && f.is_ident(i + 3, "new")
                && f.is_punct(i + 4, '(')
            {
                out.push(Finding {
                    path: path.to_string(),
                    line: f.line(i),
                    rule: RuleId::TapeAlloc,
                    message: format!(
                        "`{}::new` in tape-hot fn `{}`: heap allocation on the zero-alloc steady-state path — reuse a preallocated arena slot or scratch buffer, or pragma with a reason",
                        f.text(i), name,
                    ),
                });
            }
            if f.is_ident(i, "vec") && f.is_punct(i + 1, '!') {
                out.push(Finding {
                    path: path.to_string(),
                    line: f.line(i),
                    rule: RuleId::TapeAlloc,
                    message: format!(
                        "`vec![…]` in tape-hot fn `{name}`: heap allocation on the zero-alloc steady-state path — reuse a preallocated scratch buffer, or pragma with a reason",
                    ),
                });
            }
            if f.is_punct(i, '.') && f.is_ident(i + 1, "clone") && f.is_punct(i + 2, '(') {
                out.push(Finding {
                    path: path.to_string(),
                    line: f.line(i + 1),
                    rule: RuleId::TapeAlloc,
                    message: format!(
                        "`.clone()` in tape-hot fn `{name}`: cloning a tensor buffer allocates — take the copy-on-write share outside the hot path or write through `copy_from`, or pragma with a reason",
                    ),
                });
            }
        }
    }
}

// -------------------------------------------------------------------
// pragmas
// -------------------------------------------------------------------

/// Applies `// gfs-lint: allow(rule, "reason")` pragmas: a standalone
/// pragma suppresses matching findings on the next token-bearing line, an
/// inline one on its own line. Malformed pragmas and unknown rule names
/// become `bad-pragma` findings (which no pragma can suppress).
fn apply_pragmas(path: &str, f: &LexFile<'_>, findings: &mut Vec<Finding>) {
    for m in &f.markers {
        if m.zone != "tape" {
            findings.push(Finding {
                path: path.to_string(),
                line: m.line,
                rule: RuleId::BadPragma,
                message: format!("gfs-lint marker names unknown hot zone `{}`", m.zone),
            });
        }
    }
    let mut allowed: Vec<(u32, RuleId)> = Vec::new();
    for p in &f.pragmas {
        if let Some(msg) = &p.malformed {
            findings.push(Finding {
                path: path.to_string(),
                line: p.line,
                rule: RuleId::BadPragma,
                message: format!("malformed gfs-lint pragma: {msg}"),
            });
            continue;
        }
        let Some(rule) = RuleId::parse(&p.rule) else {
            findings.push(Finding {
                path: path.to_string(),
                line: p.line,
                rule: RuleId::BadPragma,
                message: format!("gfs-lint pragma names unknown rule `{}`", p.rule),
            });
            continue;
        };
        let target = if p.standalone {
            f.toks
                .iter()
                .map(|t| t.line)
                .find(|&l| l > p.line)
                .unwrap_or(p.line)
        } else {
            p.line
        };
        allowed.push((target, rule));
    }
    findings.retain(|fi| {
        fi.rule == RuleId::BadPragma || !allowed.iter().any(|&(l, r)| l == fi.line && r == fi.rule)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_names_cover_bindings_fields_and_params() {
        let src = "
            struct S { counts: HashMap<u64, u32>, other: Vec<u32> }
            fn f(id_to_idx: &HashMap<TaskId, u32>, v: &[u32]) {
                let mut budget: HashMap<NodeId, u32> = HashMap::new();
                let inline = HashMap::new();
                let opt: Option<HashMap<u32, u32>> = None;
            }
        ";
        let f = lex(src);
        let names = hash_names(&f);
        assert_eq!(
            names,
            vec!["budget", "counts", "id_to_idx", "inline", "opt"]
        );
    }

    #[test]
    fn det_iter_flags_iteration_not_lookup() {
        let src = "
            fn decide(m: &HashMap<u32, u32>) -> u32 {
                let keyed = m.get(&1).copied().unwrap_or(0); // fine
                let bad: u32 = m.values().sum();
                for (k, v) in m {
                    let _ = (k, v);
                }
                keyed
            }
        ";
        let out = scan_source("crates/core/src/x.rs", src);
        let iters: Vec<u32> = out
            .iter()
            .filter(|f| f.rule == RuleId::DetIter)
            .map(|f| f.line)
            .collect();
        assert_eq!(iters, vec![4, 5]);
        // out of scope: no findings
        assert!(scan_source("crates/lab/src/x.rs", src)
            .iter()
            .all(|f| f.rule != RuleId::DetIter));
    }

    #[test]
    fn det_iter_ignores_test_modules() {
        let src = "
            struct S { m: HashMap<u32, u32> }
            #[cfg(test)]
            mod tests {
                fn t(m: &HashMap<u32, u32>) { for x in m {} }
            }
        ";
        assert!(scan_source("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn det_clock_scopes_and_allowlists() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(scan_source("crates/market/src/price.rs", src).len(), 1);
        assert!(scan_source("crates/bench/src/harness.rs", src).is_empty());
        assert!(scan_source("crates/forecast/src/timing.rs", src).is_empty());
        let import_only = "use std::time::Instant;\nuse std::time::SystemTime;";
        assert!(scan_source("crates/market/src/price.rs", import_only).is_empty());
        let sys = "fn f() { let t = SystemTime::now(); }";
        assert_eq!(scan_source("crates/sim/src/x.rs", sys).len(), 1);
    }

    #[test]
    fn golden_serde_requires_default() {
        let src = "
            struct R {
                #[serde(skip_serializing_if = \"is_zero\", default)]
                ok: u32,
                #[serde(skip_serializing_if = \"is_zero\")]
                bad: u32,
                #[serde(skip_serializing_if = \"is_zero\")]
                #[serde(default)]
                split_ok: u32,
            }
        ";
        let out = scan_source("crates/lab/src/r.rs", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, RuleId::GoldenSerde);
        assert_eq!(out[0].line, 5);
    }

    #[test]
    fn changelog_local_fixpoint_covers_delegation() {
        let src = "
            impl Cluster {
                fn logged(&mut self, id: NodeId) {
                    self.index.refresh(node);
                    self.changes.note(id.raw());
                }
                fn delegates(&mut self, id: NodeId) {
                    self.nodes[0].set_up(false);
                    self.logged(id);
                }
                fn naked(&mut self, id: NodeId) {
                    self.index.remove_node(&self.nodes[0]);
                }
                fn reader(&self) -> usize { self.nodes.len() }
            }
        ";
        let out = scan_source("crates/cluster/src/cluster.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`naked`"));
    }

    #[test]
    fn changelog_foreign_flags_raw_node_mutation() {
        let src = "fn hack(n: &mut Node) { n.set_up(false); }";
        let out = scan_source("crates/sim/src/x.rs", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, RuleId::ChangelogCoverage);
        // record_eviction is deliberately not foreign-flagged (SQA method)
        let sqa = "fn f(sqa: &mut Sqa) { sqa.record_eviction(t, at); }";
        assert!(scan_source("crates/core/src/gfs.rs", sqa).is_empty());
    }

    #[test]
    fn service_unwrap_scopes_to_journal_fns() {
        let src = "
            impl ClusterService {
                pub fn replay_journal(&mut self) { self.x.unwrap(); }
                fn step(&mut self) { self.y.expect(\"invariant\"); }
            }
        ";
        let out = scan_source("crates/sim/src/service.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("replay_journal"));
        assert!(scan_source("crates/sim/src/engine.rs", src).is_empty());
    }

    #[test]
    fn pragmas_suppress_and_malformed_ones_report() {
        let src = "
            fn f(m: &HashMap<u32, u32>) -> u32 {
                // gfs-lint: allow(det-iter, \"max over u64s is order-free\")
                let a: u32 = m.values().copied().max().unwrap_or(0);
                let b: u32 = m.values().sum(); // gfs-lint: allow(det-iter, \"sum of u32s is order-free\")
                // gfs-lint: allow(det-iter)
                // gfs-lint: allow(not-a-rule, \"x\")
                a + b
            }
        ";
        let out = scan_source("crates/core/src/x.rs", src);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|f| f.rule == RuleId::BadPragma));
    }
}
