//! Fixture-driven rule tests, the report-encoding pin, and the workspace
//! self-scan gate (so `cargo test` enforces the same ratchet CI does).

use std::path::Path;

use gfs_lint::{
    parse_report, ratchet, render_json, render_table, scan_source, scan_workspace, Finding, RuleId,
};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `(line, rule)` pairs of the findings, in report order.
fn keys(findings: &[Finding]) -> Vec<(u32, RuleId)> {
    findings.iter().map(|f| (f.line, f.rule)).collect()
}

#[test]
fn det_iter_fixture_findings() {
    let src = fixture("det_iter_bad.rs");
    let out = scan_source("crates/sched/src/fixture.rs", &src);
    assert_eq!(
        keys(&out),
        vec![
            (11, RuleId::DetIter),
            (15, RuleId::DetIter),
            (22, RuleId::DetIter),
        ],
        "{out:#?}"
    );
    // same source outside a decision path: clean
    assert!(scan_source("crates/lab/src/fixture.rs", &src).is_empty());
}

#[test]
fn det_iter_clean_fixture_is_clean() {
    let src = fixture("det_iter_good.rs");
    let out = scan_source("crates/sched/src/fixture_good.rs", &src);
    assert!(out.is_empty(), "{out:#?}");
}

#[test]
fn det_clock_fixture_findings() {
    let src = fixture("det_clock_bad.rs");
    let out = scan_source("crates/market/src/fixture.rs", &src);
    assert_eq!(
        keys(&out),
        vec![(5, RuleId::DetClock), (6, RuleId::DetClock)],
        "{out:#?}"
    );
    // the allowlisted locations stay clean
    assert!(scan_source("crates/bench/src/fixture.rs", &src).is_empty());
    assert!(scan_source("crates/forecast/src/timing.rs", &src).is_empty());
}

#[test]
fn golden_serde_fixture_findings() {
    let src = fixture("golden_serde_bad.rs");
    let out = scan_source("crates/lab/src/fixture.rs", &src);
    assert_eq!(keys(&out), vec![(6, RuleId::GoldenSerde)], "{out:#?}");
}

#[test]
fn changelog_fixture_findings() {
    let src = fixture("changelog_bad.rs");
    let out = scan_source("crates/cluster/src/cluster.rs", &src);
    assert_eq!(
        keys(&out),
        vec![(17, RuleId::ChangelogCoverage)],
        "{out:#?}"
    );
    assert!(out[0].message.contains("quiet_drain"), "{out:#?}");
}

#[test]
fn service_unwrap_fixture_findings() {
    let src = fixture("service_unwrap_bad.rs");
    let out = scan_source("crates/sim/src/service.rs", &src);
    assert_eq!(
        keys(&out),
        vec![(6, RuleId::ServiceUnwrap), (7, RuleId::ServiceUnwrap)],
        "{out:#?}"
    );
    // any other file, even in gfs_sim, is out of scope
    assert!(scan_source("crates/sim/src/engine.rs", &src).is_empty());
}

#[test]
fn tape_alloc_fixture_findings() {
    let src = fixture("tape_alloc_bad.rs");
    let out = scan_source("crates/nn/src/fixture.rs", &src);
    assert_eq!(
        keys(&out),
        vec![
            (7, RuleId::TapeAlloc),
            (9, RuleId::TapeAlloc),
            (10, RuleId::TapeAlloc),
            (11, RuleId::TapeAlloc),
            (12, RuleId::TapeAlloc),
            (26, RuleId::BadPragma),
        ],
        "{out:#?}"
    );
    // outside crates/nn the zone rule does not run, but an unknown hot
    // zone is still a bad pragma everywhere
    let foreign = scan_source("crates/core/src/fixture.rs", &src);
    assert_eq!(
        keys(&foreign),
        vec![(26, RuleId::BadPragma)],
        "{foreign:#?}"
    );
}

#[test]
fn pragma_fixture_suppresses_with_reason_only() {
    let src = fixture("pragma.rs");
    let out = scan_source("crates/core/src/fixture.rs", &src);
    assert_eq!(
        keys(&out),
        vec![
            (10, RuleId::DetIter),
            (14, RuleId::BadPragma),
            (15, RuleId::BadPragma),
        ],
        "{out:#?}"
    );
}

#[test]
fn report_encoding_is_pinned() {
    let findings = vec![
        Finding {
            path: "crates/sim/src/engine.rs".to_string(),
            line: 42,
            rule: RuleId::DetIter,
            message: "iteration over `m`".to_string(),
        },
        Finding {
            path: "crates/core/src/sqa.rs".to_string(),
            line: 7,
            rule: RuleId::DetClock,
            message: "quote \" and backslash \\".to_string(),
        },
    ];
    let json = render_json(&findings);
    // byte-for-byte pin of the machine-readable encoding (sorted by path)
    let expected = "{\n  \"version\": 1,\n  \"findings\": [\n    {\"path\": \"crates/core/src/sqa.rs\", \"line\": 7, \"rule\": \"det-clock\", \"message\": \"quote \\\" and backslash \\\\\"},\n    {\"path\": \"crates/sim/src/engine.rs\", \"line\": 42, \"rule\": \"det-iter\", \"message\": \"iteration over `m`\"}\n  ]\n}\n";
    assert_eq!(json, expected);
    // round-trips through the reader
    let back = parse_report(&json).unwrap();
    assert_eq!(back.len(), 2);
    assert_eq!(back[0].path, "crates/core/src/sqa.rs");
    // empty report is also pinned
    assert_eq!(
        render_json(&[]),
        "{\n  \"version\": 1,\n  \"findings\": []\n}\n"
    );
    // the human table lists both rows in the same order
    let table = render_table(&findings);
    let lines: Vec<&str> = table.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].starts_with("crates/core/src/sqa.rs:7"));
    assert!(lines[1].starts_with("crates/sim/src/engine.rs:42"));
}

/// The `lint_self` gate, as a test: the workspace must never exceed the
/// committed baseline. This is the same check `just lint` / CI runs.
#[test]
fn workspace_self_scan_matches_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = scan_workspace(&root).expect("workspace scan");
    let baseline_path = root.join("LINT_BASELINE.json");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => parse_report(&text).expect("parse LINT_BASELINE.json"),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => panic!("read {}: {e}", baseline_path.display()),
    };
    let diff = ratchet(&findings, &baseline);
    assert!(
        diff.ok(),
        "lint regressions vs LINT_BASELINE.json:\n{}\nfull report:\n{}",
        diff.regressed
            .iter()
            .map(|(p, r, c, b)| format!("  {p} {}: {c} > {b}", r.name()))
            .collect::<Vec<_>>()
            .join("\n"),
        render_table(&findings)
    );
}
