//! Deliberate `tape-alloc` violations plus clean and suppressed cases.

pub struct Tensor;

// gfs-lint: hot(tape)
fn hot_bad(xs: &[f64], t: &Tensor) -> Vec<f64> {
    let mut buf = Vec::new();
    buf.extend_from_slice(xs);
    let spare = vec![0.0; 4];
    let copy = t.clone();
    let boxed = Box::new(copy);
    let rc = std::rc::Rc::new(boxed);
    let _ = (spare, rc);
    buf
}

// gfs-lint: hot(tape)
fn hot_suppressed(t: &Tensor) -> Tensor {
    t.clone() // gfs-lint: allow(tape-alloc, "cold-path share: Rc bump only")
}

fn cold(t: &Tensor) -> Tensor {
    t.clone()
}

// gfs-lint: hot(bogus)
fn typo() {}
