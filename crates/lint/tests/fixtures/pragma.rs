// Fixture: pragma handling. Two suppressed det-iter findings (standalone
// and inline form), one unsuppressed, one malformed pragma and one naming
// an unknown rule.
use std::collections::HashMap;

fn stats(m: &HashMap<u64, u64>) -> (u64, u64, u64) {
    // gfs-lint: allow(det-iter, "max over u64 keys is order-independent")
    let hi = m.keys().copied().max().unwrap_or(0);
    let sum: u64 = m.values().sum(); // gfs-lint: allow(det-iter, "sum of u64s is order-independent")
    let lo = m.keys().copied().min().unwrap_or(0);
    (hi, sum, lo)
}

// gfs-lint: allow(det-iter)
// gfs-lint: allow(no-such-rule, "typo in the rule name")
fn tail() {}
