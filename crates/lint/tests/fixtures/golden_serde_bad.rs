// Fixture: golden-serde — one paired field (clean), one unpaired (bad),
// one paired across split attributes (clean).
struct Report {
    #[serde(skip_serializing_if = "is_zero", default)]
    paired: u64,
    #[serde(skip_serializing_if = "is_zero")]
    unpaired: u64,
    #[serde(skip_serializing_if = "is_zero")]
    #[serde(default)]
    split_paired: u64,
}
