// Fixture: service-unwrap. Scanned under the pseudo-path
// `crates/sim/src/service.rs`: panics inside journal/recovery functions
// are findings; the same calls elsewhere are not.
impl ClusterService {
    pub fn replay_journal(&mut self, text: &str) {
        let first = text.lines().next().unwrap();
        let seq: u64 = first.parse().expect("seq");
        self.seq = seq;
    }

    pub fn step(&mut self) {
        self.heap.peek().unwrap();
    }
}
