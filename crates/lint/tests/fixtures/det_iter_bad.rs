// Fixture: det-iter violations. Scanned under the pseudo-path
// `crates/sched/src/fixture.rs`; never compiled.
use std::collections::{HashMap, HashSet};

struct Scores {
    per_node: HashMap<u64, f64>,
}

fn pick(scores: &Scores, live: &HashSet<u64>) -> u64 {
    let mut best = 0u64;
    for (node, score) in scores.per_node.iter() {
        let _ = score;
        best = best.max(*node);
    }
    for id in live {
        best = best.min(*id);
    }
    best
}

fn drain_all(m: &mut HashMap<u64, f64>) -> Vec<(u64, f64)> {
    m.drain().collect()
}
