// Fixture: changelog-coverage. Scanned under the pseudo-path
// `crates/cluster/src/cluster.rs`: `quiet_drain` mutates score-relevant
// state without reaching `changes.note`; the others are covered directly
// or by delegating to a logged helper.
impl Cluster {
    fn bring_up(&mut self, id: NodeId) {
        self.nodes[0].set_up(true);
        self.index.restore_node(&self.nodes[0]);
        self.changes.note(id.raw());
    }

    fn restore(&mut self, id: NodeId) {
        self.nodes[0].clear_eviction_history();
        self.bring_up(id);
    }

    fn quiet_drain(&mut self, id: NodeId) {
        self.nodes[0].record_drain();
        self.index.remove_node(&self.nodes[0]);
    }

    fn audit(&self) -> usize {
        self.nodes.len()
    }
}
