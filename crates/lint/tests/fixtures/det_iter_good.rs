// Fixture: det-iter clean patterns — keyed access only, BTreeMap
// iteration, and hash iteration confined to a test module.
use std::collections::{BTreeMap, HashMap};

struct Budget {
    budget: HashMap<u64, u32>,
    ordered: BTreeMap<u64, u32>,
}

fn lookup(b: &mut Budget, node: u64) -> u32 {
    let cached = b.budget.get(&node).copied().unwrap_or(0);
    *b.budget.entry(node).or_insert(cached);
    b.budget.insert(node, cached + 1);
    b.budget.remove(&node);
    b.ordered.iter().map(|(_, v)| v).sum::<u32>() + cached
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order_does_not_matter_here(m: &HashMap<u64, u32>) -> u32 {
        m.values().sum()
    }
}
