// Fixture: det-clock violations — wall-clock reads in a decision path.
use std::time::{Instant, SystemTime};

fn measure() -> f64 {
    let start = Instant::now();
    let _ = SystemTime::now();
    start.elapsed().as_secs_f64()
}
