//! Cost accounting for market-bought capacity.
//!
//! [`CostMeter`] integrates three series over simulated time for every
//! market-owned node (id at or above the fleet origin) that is up and
//! not draining:
//!
//! - **GPU-hours bought** — cards × hours on the books,
//! - **spend (USD)** — the same integral weighted by the spot quote at
//!   each accrual segment's start,
//! - **stranded GPU-hours** — the idle subset of the bought cards:
//!   capacity paid for but not allocated to any task.
//!
//! Accrual happens on the controller's nominal decision grid (multiples
//! of the interval), with the final partial segment closed at the end of
//! the run. Fleet state is observed at accrual time, so the integral is
//! a pure function of the service's (deterministic) state at the
//! boundaries — which is what lets a recovered run resume the meter from
//! the accumulators checkpointed in the report (see
//! [`CostMeter::resume`]) and still land on bit-identical totals.

use gfs_cluster::{Cluster, Node};
use gfs_sim::SimReport;
use gfs_types::{SimDuration, SimTime};

use crate::price::PriceProcess;

/// Running cost integrals of one market run.
#[derive(Debug, Clone, PartialEq)]
pub struct CostMeter {
    interval: SimDuration,
    last: SimTime,
    gpu_hours: f64,
    spend_usd: f64,
    stranded_gpu_hours: f64,
}

impl CostMeter {
    /// A fresh meter accruing from `t = 0` on the given decision grid.
    #[must_use]
    pub fn new(interval_secs: SimDuration) -> Self {
        CostMeter {
            interval: interval_secs.max(1),
            last: SimTime::ZERO,
            gpu_hours: 0.0,
            spend_usd: 0.0,
            stranded_gpu_hours: 0.0,
        }
    }

    /// Resumes a meter from a recovered service: accumulators come from
    /// the cost fields the driver checkpoints into the report at every
    /// boundary, and the accrual cursor restarts at the last nominal
    /// boundary at or before `now` (the driver guarantees snapshots are
    /// only taken with boundaries ≤ `now` fully accrued).
    #[must_use]
    pub fn resume(report: &SimReport, now: SimTime, interval_secs: SimDuration) -> Self {
        let interval = interval_secs.max(1);
        CostMeter {
            interval,
            last: SimTime::from_secs((now.as_secs() / interval) * interval),
            gpu_hours: report.gpu_hours_bought,
            spend_usd: report.market_spend_usd,
            stranded_gpu_hours: report.stranded_gpu_hours,
        }
    }

    /// Accrues all complete nominal segments up to `upto`, plus the final
    /// partial segment when `upto` is off-grid (end of run). Billable
    /// nodes are the market-owned ones currently up and not draining —
    /// released nodes stop billing at the release decision.
    pub fn accrue(
        &mut self,
        cluster: &Cluster,
        fleet_origin: u32,
        prices: &PriceProcess,
        upto: SimTime,
    ) {
        while self.last < upto {
            let next = SimTime::from_secs(
                (self.last.as_secs() + self.interval)
                    .min(upto.as_secs())
                    .min((self.last.as_secs() / self.interval + 1) * self.interval),
            );
            let dt_hours = next.since(self.last) as f64 / 3_600.0;
            for n in billable(cluster, fleet_origin) {
                let gpus = f64::from(n.total_gpus());
                self.gpu_hours += gpus * dt_hours;
                self.spend_usd += gpus * dt_hours * prices.price(n.model(), self.last);
                self.stranded_gpu_hours += f64::from(n.idle_gpus()) * dt_hours;
            }
            self.last = next;
        }
    }

    /// GPU-hours bought so far.
    #[must_use]
    pub fn gpu_hours(&self) -> f64 {
        self.gpu_hours
    }

    /// Spend so far, USD.
    #[must_use]
    pub fn spend_usd(&self) -> f64 {
        self.spend_usd
    }

    /// Stranded (idle bought) GPU-hours so far.
    #[must_use]
    pub fn stranded_gpu_hours(&self) -> f64 {
        self.stranded_gpu_hours
    }

    /// The accrual cursor (last fully-billed instant).
    #[must_use]
    pub fn accrued_to(&self) -> SimTime {
        self.last
    }

    /// Writes the accumulators into a service's report (absolute values,
    /// so re-writing is idempotent).
    pub fn checkpoint(&self, svc: &mut gfs_sim::ClusterService) {
        svc.record_market_costs(self.gpu_hours, self.spend_usd, self.stranded_gpu_hours);
    }
}

fn billable(cluster: &Cluster, fleet_origin: u32) -> impl Iterator<Item = &Node> {
    cluster
        .nodes()
        .iter()
        .filter(move |n| n.id().raw() >= fleet_origin && n.is_up() && !n.is_draining())
}

/// Hours in the §4.3 accounting month (30 days).
pub const HOURS_PER_MONTH: f64 = 720.0;

/// On-demand cost of `gpu_hours` GPU-hours of `model` capacity, USD —
/// the single pricing path shared by the market meter's baseline and the
/// Fig. 9 / §4.3 deployment economics.
#[must_use]
pub fn on_demand_cost_usd(model: gfs_types::GpuModel, gpu_hours: f64) -> f64 {
    gpu_hours * model.hourly_price_usd()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs_types::{GpuModel, HOUR};

    #[test]
    fn meter_bills_only_market_nodes() {
        let mut cluster = Cluster::homogeneous(2, GpuModel::A100, 8);
        cluster.add_node(GpuModel::A100, 8); // node 2: market-owned
        let prices = PriceProcess::fixed();
        let mut meter = CostMeter::new(HOUR);
        meter.accrue(&cluster, 2, &prices, SimTime::from_hours(2));
        assert_eq!(meter.gpu_hours(), 16.0);
        assert_eq!(meter.spend_usd(), 16.0 * GpuModel::A100.hourly_price_usd());
        // the whole bought node is idle → everything is stranded
        assert_eq!(meter.stranded_gpu_hours(), 16.0);
    }

    #[test]
    fn accrual_is_segmented_on_the_nominal_grid() {
        let mut cluster = Cluster::homogeneous(0, GpuModel::A10, 1);
        cluster.add_node(GpuModel::A10, 1);
        // price doubles from hour 1 on
        let prices = PriceProcess::fixed().with_shocks(vec![crate::PriceShock {
            at: SimTime::from_hours(1),
            model: GpuModel::A10,
            factor: 2.0,
            duration_secs: 100 * HOUR,
        }]);
        let mut meter = CostMeter::new(HOUR);
        meter.accrue(&cluster, 0, &prices, SimTime::from_secs(2 * HOUR + 1_800));
        let base = GpuModel::A10.hourly_price_usd();
        // hour 0 at base, hour 1 at 2×, half an hour at 2×
        let expect = base + 2.0 * base + 0.5 * 2.0 * base;
        assert!((meter.spend_usd() - expect).abs() < 1e-9);
        assert!((meter.gpu_hours() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn draining_and_down_nodes_stop_billing() {
        let mut cluster = Cluster::homogeneous(0, GpuModel::A100, 8);
        let a = cluster.add_node(GpuModel::A100, 8);
        cluster.add_node(GpuModel::A100, 8);
        cluster
            .drain_node(a, SimTime::from_hours(5))
            .expect("drains");
        let prices = PriceProcess::fixed();
        let mut meter = CostMeter::new(HOUR);
        meter.accrue(&cluster, 0, &prices, SimTime::from_hours(1));
        assert_eq!(meter.gpu_hours(), 8.0, "only the non-draining node bills");
    }

    #[test]
    fn resume_restores_accumulators_and_cursor() {
        let report = SimReport {
            gpu_hours_bought: 12.0,
            market_spend_usd: 30.0,
            stranded_gpu_hours: 2.0,
            ..SimReport::default()
        };
        let m = CostMeter::resume(&report, SimTime::from_secs(7 * HOUR + 120), HOUR);
        assert_eq!(m.gpu_hours(), 12.0);
        assert_eq!(m.spend_usd(), 30.0);
        assert_eq!(m.stranded_gpu_hours(), 2.0);
        assert_eq!(m.accrued_to(), SimTime::from_hours(7));
    }

    #[test]
    fn on_demand_cost_matches_price_table() {
        assert_eq!(
            on_demand_cost_usd(GpuModel::H800, 10.0),
            10.0 * GpuModel::H800.hourly_price_usd()
        );
    }
}
