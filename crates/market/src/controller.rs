//! Capacity controllers: the decision side of the market loop.
//!
//! A [`CapacityController`] is consulted once per decision interval with
//! a read-only [`MarketView`] of the run — current cluster, demand
//! estimate, spot quotes — and answers with [`MarketAction`]s. The
//! driver translates those into `AddNode`/`Drain` events on a
//! [`gfs_types::DynamicsPlan`] and admits them through the service's
//! journaled admission path, so every decision is crash-recoverable the
//! same way task arrivals are.
//!
//! # Controller contract
//!
//! `decide` must be a *pure function* of its view: no interior state, no
//! clocks, no randomness. The same service state at the same boundary
//! must always produce the same actions — this is what makes a recovered
//! run (snapshot + journal replay) bit-identical to the uninterrupted
//! one without journaling the controller itself.

use gfs_cluster::{Cluster, Node};
use gfs_types::{NodeId, NodeTemplate, SimDuration, SimTime, HOUR};

use crate::price::PriceProcess;

/// Read-only observation handed to a controller at a decision boundary.
pub struct MarketView<'a> {
    /// The decision instant.
    pub now: SimTime,
    /// Live cluster state.
    pub cluster: &'a Cluster,
    /// GPU-demand estimate over the controller's horizon: the scheduler's
    /// upper-quantile forecast when it maintains one
    /// ([`gfs_cluster::Scheduler::demand_forecast`]), otherwise the
    /// windowed-arrival fallback.
    pub demand_gpus: f64,
    /// Whether `demand_gpus` came from a scheduler forecast (`true`) or
    /// the arrival-window fallback (`false`).
    pub forecast_available: bool,
    /// The price process quoting spot prices.
    pub prices: &'a PriceProcess,
    /// Nodes with an id at or above this index were bought on the market
    /// (the initial fleet is never released).
    pub fleet_origin: u32,
}

impl MarketView<'_> {
    /// Market-owned nodes: minted after the initial fleet.
    pub fn market_nodes(&self) -> impl Iterator<Item = &Node> {
        let origin = self.fleet_origin;
        self.cluster
            .nodes()
            .iter()
            .filter(move |n| n.id().raw() >= origin)
    }

    /// Up, non-draining GPU cards currently billed to the market.
    #[must_use]
    pub fn market_gpus(&self) -> u32 {
        self.market_nodes()
            .filter(|n| n.is_up() && !n.is_draining())
            .map(Node::total_gpus)
            .sum()
    }
}

/// One capacity decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MarketAction {
    /// Buy `nodes` fresh nodes of the given template at the current spot
    /// price.
    Buy {
        /// Hardware of every bought node.
        template: NodeTemplate,
        /// Node count.
        nodes: u32,
    },
    /// Release a market-owned node: a maintenance-style drain with
    /// `notice_secs` of warning, after which the node leaves the fleet.
    /// Billing stops at the release decision (the notice window is
    /// operational grace, not billed time).
    Release {
        /// The node to release.
        node: NodeId,
        /// Drain notice, seconds.
        notice_secs: SimDuration,
    },
}

/// A capacity-buying policy stepped once per decision interval.
pub trait CapacityController {
    /// Display name (used by lab tables and reports).
    fn name(&self) -> &str;

    /// Decision cadence, seconds (boundaries sit at multiples of this).
    fn interval_secs(&self) -> SimDuration {
        HOUR
    }

    /// `(p, horizon_hours)` passed to the scheduler's demand forecast.
    fn forecast_query(&self) -> (f64, usize) {
        (0.9, 6)
    }

    /// Produces this boundary's actions. Must be pure (see the module
    /// docs): same view, same answer.
    fn decide(&self, view: &MarketView<'_>) -> Vec<MarketAction>;
}

/// Meter-only controller: never buys or releases. Used to bill a
/// time-driven `DynamicsPlan` autoscale schedule at spot prices so its
/// economics are comparable with a closed-loop controller's.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassiveController;

impl CapacityController for PassiveController {
    fn name(&self) -> &str {
        "passive"
    }

    fn decide(&self, _view: &MarketView<'_>) -> Vec<MarketAction> {
        Vec::new()
    }
}

/// Tuning knobs of [`ForecastController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastParams {
    /// Hardware bought per scale-out step.
    pub template: NodeTemplate,
    /// Capacity target as a multiple of forecast demand (≥ 1 keeps
    /// headroom for forecast error).
    pub headroom: f64,
    /// Buy only while the spot price is at or below this multiple of the
    /// on-demand baseline (don't chase spikes).
    pub max_buy_rel_price: f64,
    /// Upper bound on nodes bought per decision.
    pub max_nodes_per_step: u32,
    /// Drain notice given to released nodes, seconds.
    pub release_notice_secs: SimDuration,
    /// Forecast quantile `p` (Eq. 9 upper quantile).
    pub quantile: f64,
    /// Forecast horizon, hours.
    pub horizon_hours: usize,
    /// Decision cadence, seconds.
    pub interval_secs: SimDuration,
}

impl Default for ForecastParams {
    fn default() -> Self {
        ForecastParams {
            template: NodeTemplate {
                model: gfs_types::GpuModel::A100,
                gpus: 8,
            },
            headroom: 1.1,
            max_buy_rel_price: 1.5,
            max_nodes_per_step: 4,
            release_notice_secs: 1_800,
            quantile: 0.9,
            horizon_hours: 6,
            interval_secs: HOUR,
        }
    }
}

/// The closed-loop policy: follow the demand forecast, gated by price.
///
/// At each boundary it compares the capacity target
/// (`demand × headroom`) against up fleet capacity. Short capacity is
/// bought — but only while spot quotes stay under
/// [`ForecastParams::max_buy_rel_price`] × baseline, so a price shock
/// pauses buying instead of paying the spike. Excess capacity is
/// released one safe node at a time (idle first), never stranding a
/// running gang below its guarantee — see [`release_is_safe`].
#[derive(Debug, Clone)]
pub struct ForecastController {
    /// Tuning knobs.
    pub params: ForecastParams,
}

impl ForecastController {
    /// A controller with the given knobs.
    #[must_use]
    pub fn new(params: ForecastParams) -> Self {
        ForecastController { params }
    }
}

impl CapacityController for ForecastController {
    fn name(&self) -> &str {
        "forecast"
    }

    fn interval_secs(&self) -> SimDuration {
        self.params.interval_secs
    }

    fn forecast_query(&self) -> (f64, usize) {
        (self.params.quantile, self.params.horizon_hours)
    }

    fn decide(&self, view: &MarketView<'_>) -> Vec<MarketAction> {
        let p = &self.params;
        let capacity = view.cluster.capacity(None);
        let target = view.demand_gpus * p.headroom;
        let gap = target - capacity;
        let node_gpus = f64::from(p.template.gpus.max(1));

        if gap >= node_gpus {
            let rel = view.prices.relative_price(p.template.model, view.now);
            if rel <= p.max_buy_rel_price {
                let nodes = ((gap / node_gpus).ceil() as u32).min(p.max_nodes_per_step.max(1));
                return vec![MarketAction::Buy {
                    template: p.template,
                    nodes,
                }];
            }
            return Vec::new(); // short, but the price says wait
        }

        // excess capacity: hand back market nodes, emptiest first, while
        // staying above the target
        let mut excess = capacity - target;
        let mut candidates: Vec<&Node> = view
            .market_nodes()
            .filter(|n| n.is_up() && !n.is_draining())
            .filter(|n| release_is_safe(view.cluster, n.id(), view.now, p.release_notice_secs))
            .collect();
        candidates.sort_by(|a, b| {
            a.allocated()
                .partial_cmp(&b.allocated())
                .expect("allocations are finite")
                .then(a.id().raw().cmp(&b.id().raw()))
        });
        let mut actions = Vec::new();
        for n in candidates {
            let gpus = f64::from(n.total_gpus());
            if excess < gpus {
                break;
            }
            excess -= gpus;
            actions.push(MarketAction::Release {
                node: n.id(),
                notice_secs: p.release_notice_secs,
            });
        }
        actions
    }
}

/// Whether draining `node` with `notice_secs` of warning strands no
/// running gang below its guarantee.
///
/// A gang is safe to disturb when it either finishes inside the notice
/// window (`remaining ≤ notice`) or is a spot gang already past its sold
/// guarantee (evictable by contract; spot gangs without a guarantee are
/// always evictable). An HP gang that cannot finish inside the window
/// blocks the release — HP work is never churned for money — as does a
/// spot gang still inside its guaranteed duration.
#[must_use]
pub fn release_is_safe(
    cluster: &Cluster,
    node: NodeId,
    now: SimTime,
    notice_secs: SimDuration,
) -> bool {
    cluster
        .running()
        .filter(|rt| rt.placements.iter().any(|p| p.node == node))
        .all(|rt| {
            let finishes = rt.remaining(now) <= notice_secs;
            let past_guarantee = rt.spec.priority.is_spot()
                && rt.spec.guarantee_secs.is_none_or(|g| rt.progress(now) >= g);
            finishes || past_guarantee
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs_types::{GpuDemand, GpuModel, Priority, TaskSpec};

    fn cluster_with(tasks: &[(u64, Priority, Option<u64>, u64, u32)]) -> Cluster {
        // (id, priority, guarantee, duration, node)
        let mut c = Cluster::homogeneous(4, GpuModel::A100, 8);
        for &(id, priority, guarantee, duration, node) in tasks {
            let mut b = TaskSpec::builder(id)
                .priority(priority)
                .gpus_per_pod(GpuDemand::whole(2))
                .duration_secs(duration);
            if let Some(g) = guarantee {
                b = b.guarantee_secs(g);
            }
            let spec = b.build().expect("valid");
            c.start_task(spec, &[NodeId::new(node)], SimTime::ZERO, 0)
                .expect("fits");
        }
        c
    }

    #[test]
    fn idle_node_is_safe() {
        let c = cluster_with(&[]);
        assert!(release_is_safe(&c, NodeId::new(0), SimTime::ZERO, 1_800));
    }

    #[test]
    fn hp_gang_that_cannot_finish_blocks_release() {
        let c = cluster_with(&[(1, Priority::Hp, None, 100_000, 0)]);
        assert!(!release_is_safe(&c, NodeId::new(0), SimTime::ZERO, 1_800));
        // a node the gang is not on stays releasable
        assert!(release_is_safe(&c, NodeId::new(1), SimTime::ZERO, 1_800));
    }

    #[test]
    fn gang_finishing_inside_notice_is_safe() {
        let c = cluster_with(&[(1, Priority::Hp, None, 1_000, 0)]);
        assert!(release_is_safe(&c, NodeId::new(0), SimTime::ZERO, 1_800));
    }

    #[test]
    fn spot_below_guarantee_blocks_until_guarantee_met() {
        let c = cluster_with(&[(1, Priority::Spot, Some(7_200), 100_000, 0)]);
        assert!(!release_is_safe(&c, NodeId::new(0), SimTime::ZERO, 1_800));
        // two hours in, the guarantee has been honoured
        assert!(release_is_safe(
            &c,
            NodeId::new(0),
            SimTime::from_hours(2),
            1_800
        ));
    }

    #[test]
    fn spot_without_guarantee_is_always_releasable() {
        let c = cluster_with(&[(1, Priority::Spot, None, 100_000, 0)]);
        assert!(release_is_safe(&c, NodeId::new(0), SimTime::ZERO, 1_800));
    }

    #[test]
    fn forecast_controller_buys_when_short_and_cheap() {
        let c = Cluster::homogeneous(2, GpuModel::A100, 8);
        let prices = PriceProcess::fixed();
        let view = MarketView {
            now: SimTime::from_hours(1),
            cluster: &c,
            demand_gpus: 40.0,
            forecast_available: true,
            prices: &prices,
            fleet_origin: 2,
        };
        let ctrl = ForecastController::new(ForecastParams::default());
        let actions = ctrl.decide(&view);
        assert_eq!(actions.len(), 1);
        match actions[0] {
            MarketAction::Buy { nodes, .. } => assert_eq!(nodes, 4, "capped per step"),
            MarketAction::Release { .. } => panic!("expected a buy"),
        }
    }

    #[test]
    fn forecast_controller_waits_out_a_spike() {
        let c = Cluster::homogeneous(2, GpuModel::A100, 8);
        let prices = PriceProcess::fixed().with_shocks(vec![crate::PriceShock {
            at: SimTime::ZERO,
            model: GpuModel::A100,
            factor: 3.0,
            duration_secs: 10 * HOUR,
        }]);
        let view = MarketView {
            now: SimTime::from_hours(1),
            cluster: &c,
            demand_gpus: 40.0,
            forecast_available: true,
            prices: &prices,
            fleet_origin: 2,
        };
        let ctrl = ForecastController::new(ForecastParams::default());
        assert!(ctrl.decide(&view).is_empty(), "no buying into a 3× spike");
    }

    #[test]
    fn forecast_controller_releases_only_market_nodes_down_to_target() {
        // 4-node fleet, first 2 are the base fleet, all idle
        let c = Cluster::homogeneous(4, GpuModel::A100, 8);
        let prices = PriceProcess::fixed();
        let view = MarketView {
            now: SimTime::from_hours(1),
            cluster: &c,
            demand_gpus: 10.0,
            forecast_available: false,
            prices: &prices,
            fleet_origin: 2,
        };
        let ctrl = ForecastController::new(ForecastParams::default());
        let actions = ctrl.decide(&view);
        // capacity 32, target 11 → excess 21 → release 2 nodes (16 GPUs)
        assert_eq!(actions.len(), 2);
        for a in &actions {
            match a {
                MarketAction::Release { node, .. } => assert!(node.raw() >= 2),
                MarketAction::Buy { .. } => panic!("expected releases"),
            }
        }
    }

    #[test]
    fn passive_controller_never_acts() {
        let c = Cluster::homogeneous(1, GpuModel::A10, 1);
        let prices = PriceProcess::fixed();
        let view = MarketView {
            now: SimTime::ZERO,
            cluster: &c,
            demand_gpus: 1_000.0,
            forecast_available: false,
            prices: &prices,
            fleet_origin: 0,
        };
        assert!(PassiveController.decide(&view).is_empty());
    }
}
