//! `gfs_market` — closed-loop capacity market for the GFS simulator.
//!
//! ROADMAP item 3 turned into a subsystem: instead of a *time-driven*
//! autoscale timeline fixed before the run, capacity decisions close the
//! loop on the scheduler's own demand forecast (the GDE's Eq. 9 upper
//! quantiles, tapped through
//! [`gfs_cluster::Scheduler::demand_forecast`]) and on a spot-price
//! signal, while a cost meter turns the fleet history into the §4.3
//! economics (GPU-hours bought, spend, cost per completed job, stranded
//! capacity).
//!
//! # The loop
//!
//! ```text
//!             quotes                    forecast / arrivals
//!   PriceProcess ──► CapacityController ◄── Scheduler / SimReport
//!                        │ decide (pure, per boundary)
//!                        ▼
//!            Buy / Release  ──►  DynamicsPlan ──► ClusterService::admit_plan
//!                                                  (write-ahead journaled)
//!                        ▲                               │
//!                        └────────── MarketDriver ◄──────┘
//!                                      │ CostMeter accrual
//!                                      ▼
//!                        SimReport cost fields (skip-at-zero)
//! ```
//!
//! [`MarketDriver::drive`] steps the service; at every multiple of the
//! controller's interval it builds a [`MarketView`] (cluster, demand
//! estimate, quotes), asks the controller to [`CapacityController::decide`],
//! and admits the answer as `AddNode`/`Drain` events through the
//! service's journaled admission path. [`CostMeter`] integrates bought
//! capacity, spend and stranded (idle bought) GPU-hours on the same
//! boundary grid and checkpoints the totals into the report.
//!
//! # Price process
//!
//! [`PriceProcess`] quotes per-model spot prices: a mean-reverting walk
//! on an hourly grid around [`gfs_types::GpuModel::hourly_price_usd`],
//! multiplied by any active declarative [`PriceShock`]s. Quotes are a
//! pure function of `(seed, model, time)`.
//!
//! # Determinism rules
//!
//! 1. **One price stream per `(seed, model)`** — streams are derived by
//!    mixing the model index into the run seed with a constant disjoint
//!    from the dynamics generators', so price paths never correlate with
//!    failure schedules.
//! 2. **Controllers are pure** — [`CapacityController::decide`] sees
//!    only its [`MarketView`]; no interior state, clocks or randomness.
//! 3. **Decisions ride the journal** — every action is admitted via
//!    [`gfs_sim::ClusterService::admit_plan`], so a crash recovers as
//!    snapshot + journal replay and [`MarketDriver::resume`] continues
//!    bit-identically (spend metrics included — the meter resumes from
//!    the accumulators checkpointed into the report at every boundary).
//!
//! # Example
//!
//! ```
//! use gfs_cluster::Cluster;
//! use gfs_market::{ForecastParams, MarketSpec};
//! use gfs_sim::SimConfig;
//! use gfs_types::{GpuDemand, GpuModel, Priority, SimTime, TaskSpec, HOUR};
//!
//! let cluster = Cluster::homogeneous(1, GpuModel::A100, 8);
//! let tasks: Vec<TaskSpec> = (0..8)
//!     .map(|i| {
//!         TaskSpec::builder(i + 1)
//!             .priority(Priority::Hp)
//!             .gpus_per_pod(GpuDemand::whole(8))
//!             .duration_secs(2 * HOUR)
//!             .submit_at(SimTime::from_secs(i * 600))
//!             .build()
//!             .unwrap()
//!     })
//!     .collect();
//! let cfg = SimConfig { max_time_secs: Some(48 * HOUR), ..SimConfig::default() };
//! let mut sched = gfs_sched::YarnCs::new();
//! let spec = MarketSpec::forecast(ForecastParams::default());
//! let report = gfs_market::run(cluster, &mut sched, tasks, &cfg, &spec, 7);
//! assert!(report.market_spend_usd > 0.0, "the backlog forces a buy");
//! ```
//!
//! (see `examples/spot_market.rs` in the workspace root for a complete
//! scenario: a 3× A100 price spike mid maintenance wave, comparing
//! schedulers on cost per completed job and stranded capacity).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod driver;
mod meter;
mod price;

pub use controller::{
    release_is_safe, CapacityController, ForecastController, ForecastParams, MarketAction,
    MarketView, PassiveController,
};
pub use driver::{
    run, spike, windowed_arrival_gpus, AppliedAction, ControllerSpec, MarketDriver, MarketSpec,
};
pub use meter::{on_demand_cost_usd, CostMeter, HOURS_PER_MONTH};
pub use price::{PriceProcess, PriceShock};
