//! Deterministic per-model spot-price processes.
//!
//! A [`PriceProcess`] is a *pure function* of `(seed, model, time)`: two
//! processes built from the same seed and shock schedule quote identical
//! prices at every instant, on every thread, in every process. That is
//! what lets market runs share the engine's reproducibility contract —
//! the price path never needs to be journaled or snapshotted, it is
//! recomputed on demand.
//!
//! The base series is a mean-reverting walk on an hourly grid around the
//! on-demand price [`GpuModel::hourly_price_usd`], driven by one
//! SplitMix64 stream per `(seed, model)` pair. Declarative
//! [`PriceShock`]s multiply the quoted price while active, which is how
//! scenarios express "spot prices spike 3× for six hours mid maintenance
//! wave" without touching the walk.

use gfs_types::{GpuModel, SimDuration, SimTime, HOUR};

/// Mixing constant deriving the per-`(seed, model)` stream seed. Distinct
/// from the per-node (`0x9E37…`) and per-domain (`0xA076…`) constants used
/// by the dynamics generators, so a market run never correlates its price
/// path with its failure schedule even under the same run seed.
const MODEL_STREAM: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// One SplitMix64 output (Steele et al.); the standard constants.
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[-1, 1]` from the top 53 bits of a SplitMix64 output.
fn unit_symmetric(z: u64) -> f64 {
    ((z >> 11) as f64 / (1u64 << 53) as f64).mul_add(2.0, -1.0)
}

/// A declarative price shock: while active, the quoted price of `model`
/// is multiplied by `factor`.
///
/// Shocks compose multiplicatively when they overlap; a factor above 1 is
/// a spike (capacity crunch), below 1 a glut.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceShock {
    /// When the shock starts.
    pub at: SimTime,
    /// The affected GPU model.
    pub model: GpuModel,
    /// Price multiplier while active (must be positive).
    pub factor: f64,
    /// Shock length, seconds; active over `[at, at + duration_secs)`.
    pub duration_secs: SimDuration,
}

impl PriceShock {
    /// Whether the shock applies to `model` at instant `t`.
    #[must_use]
    pub fn active(&self, model: GpuModel, t: SimTime) -> bool {
        self.model == model && t >= self.at && t.since(self.at) < self.duration_secs
    }
}

/// Deterministic spot-price series for every GPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceProcess {
    seed: u64,
    /// Per-hour walk amplitude as a fraction of the on-demand price
    /// (0 disables the walk: a fixed-price market).
    vol: f64,
    /// Per-hour pull back toward the on-demand baseline, in `(0, 1]`.
    reversion: f64,
    shocks: Vec<PriceShock>,
}

impl PriceProcess {
    /// A fixed-price market: every model quotes exactly its on-demand
    /// price until a shock multiplies it.
    #[must_use]
    pub fn fixed() -> Self {
        PriceProcess {
            seed: 0,
            vol: 0.0,
            reversion: 1.0,
            shocks: Vec::new(),
        }
    }

    /// A seeded mean-reverting walk with the default ±6%/hour amplitude.
    #[must_use]
    pub fn walk(seed: u64) -> Self {
        PriceProcess {
            seed,
            vol: 0.06,
            reversion: 0.05,
            shocks: Vec::new(),
        }
    }

    /// Overrides the walk amplitude (fraction of baseline per hour).
    #[must_use]
    pub fn with_vol(mut self, vol: f64) -> Self {
        self.vol = vol.max(0.0);
        self
    }

    /// Attaches a shock schedule.
    #[must_use]
    pub fn with_shocks(mut self, shocks: Vec<PriceShock>) -> Self {
        self.shocks = shocks;
        self
    }

    /// The shock schedule.
    #[must_use]
    pub fn shocks(&self) -> &[PriceShock] {
        &self.shocks
    }

    /// Spot price of `model` at instant `at`, USD per GPU-hour.
    ///
    /// Pure: depends only on `(seed, model, at)` and the shock schedule.
    /// The walk advances on an hourly grid (prices are constant within an
    /// hour), stays inside `[0.25×, 4×]` of the on-demand baseline, and
    /// active shocks multiply on top (floored at 5% of baseline).
    #[must_use]
    pub fn price(&self, model: GpuModel, at: SimTime) -> f64 {
        let base = model.hourly_price_usd();
        let mut rel = 1.0;
        if self.vol > 0.0 {
            let idx = GpuModel::ALL
                .iter()
                .position(|&m| m == model)
                .expect("model in ALL") as u64;
            let mut state = self.seed.wrapping_add((idx + 1).wrapping_mul(MODEL_STREAM));
            // deviation from baseline, mean-reverting toward 0
            let mut x = 0.0f64;
            for _ in 0..at.as_secs() / HOUR {
                let u = unit_symmetric(splitmix_next(&mut state));
                x += self.reversion * (0.0 - x) + self.vol * u;
            }
            rel = (1.0 + x).clamp(0.25, 4.0);
        }
        let mut price = base * rel;
        for s in &self.shocks {
            if s.active(model, at) {
                price *= s.factor.max(0.0);
            }
        }
        price.max(0.05 * base)
    }

    /// Quotes for every model in [`GpuModel::ALL`] order.
    #[must_use]
    pub fn quotes(&self, at: SimTime) -> [f64; 4] {
        let mut q = [0.0; 4];
        for (i, m) in GpuModel::ALL.iter().enumerate() {
            q[i] = self.price(*m, at);
        }
        q
    }

    /// Quoted price over the on-demand baseline: `1.0` means at parity,
    /// `>1` spot is expensive, `<1` spot is cheap.
    #[must_use]
    pub fn relative_price(&self, model: GpuModel, at: SimTime) -> f64 {
        self.price(model, at) / model.hourly_price_usd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_process_quotes_baseline() {
        let p = PriceProcess::fixed();
        for m in GpuModel::ALL {
            assert_eq!(p.price(m, SimTime::ZERO), m.hourly_price_usd());
            assert_eq!(p.price(m, SimTime::from_hours(1000)), m.hourly_price_usd());
        }
    }

    #[test]
    fn walk_is_deterministic_and_seed_sensitive() {
        let a = PriceProcess::walk(7);
        let b = PriceProcess::walk(7);
        let c = PriceProcess::walk(8);
        let t = SimTime::from_hours(72);
        for m in GpuModel::ALL {
            assert_eq!(a.price(m, t), b.price(m, t), "same seed, same quote");
        }
        assert!(
            GpuModel::ALL
                .iter()
                .any(|&m| a.price(m, t) != c.price(m, t)),
            "different seeds should diverge somewhere"
        );
    }

    #[test]
    fn walk_is_constant_within_an_hour_and_bounded() {
        let p = PriceProcess::walk(3).with_vol(0.5);
        for m in GpuModel::ALL {
            let q = p.price(m, SimTime::from_hours(5));
            assert_eq!(p.price(m, SimTime::from_secs(5 * HOUR + 1_799)), q);
            for h in 0..200 {
                let rel = p.relative_price(m, SimTime::from_hours(h));
                assert!((0.25..=4.0).contains(&rel), "rel={rel}");
            }
        }
    }

    #[test]
    fn streams_differ_per_model() {
        let p = PriceProcess::walk(11);
        let t = SimTime::from_hours(48);
        let rels: Vec<f64> = GpuModel::ALL
            .iter()
            .map(|&m| p.relative_price(m, t))
            .collect();
        assert!(
            rels.windows(2).any(|w| w[0] != w[1]),
            "per-model streams must not be identical: {rels:?}"
        );
    }

    #[test]
    fn shock_multiplies_only_its_window_and_model() {
        let shock = PriceShock {
            at: SimTime::from_hours(10),
            model: GpuModel::A100,
            factor: 3.0,
            duration_secs: 2 * HOUR,
        };
        let p = PriceProcess::fixed().with_shocks(vec![shock]);
        let base = GpuModel::A100.hourly_price_usd();
        assert_eq!(p.price(GpuModel::A100, SimTime::from_hours(9)), base);
        assert_eq!(p.price(GpuModel::A100, SimTime::from_hours(10)), 3.0 * base);
        assert_eq!(p.price(GpuModel::A100, SimTime::from_hours(11)), 3.0 * base);
        assert_eq!(p.price(GpuModel::A100, SimTime::from_hours(12)), base);
        assert_eq!(
            p.price(GpuModel::H800, SimTime::from_hours(11)),
            GpuModel::H800.hourly_price_usd(),
            "other models unaffected"
        );
    }

    #[test]
    fn overlapping_shocks_compose_multiplicatively() {
        let mk = |factor| PriceShock {
            at: SimTime::ZERO,
            model: GpuModel::A10,
            factor,
            duration_secs: HOUR,
        };
        let p = PriceProcess::fixed().with_shocks(vec![mk(2.0), mk(0.5)]);
        assert_eq!(
            p.price(GpuModel::A10, SimTime::ZERO),
            GpuModel::A10.hourly_price_usd()
        );
    }
}
