//! The market loop: steps a [`ClusterService`] while consulting a
//! [`CapacityController`] at every decision boundary.
//!
//! # Determinism and crash recovery
//!
//! Boundaries sit at multiples of the controller interval. The driver
//! decides *before* stepping whenever the service clock has reached the
//! next boundary, and every decision is admitted through
//! [`ClusterService::admit_plan`] — the same write-ahead-journaled path
//! task arrivals use. Combined with the controller purity contract and
//! the pure price process, a crashed market run recovers exactly like
//! any other service run: restore the last snapshot, replay the journal
//! suffix (which re-admits every already-decided plan), then
//! [`MarketDriver::resume`] a fresh driver — it skips boundaries at or
//! before the recovered clock and picks the meter up from the cost
//! accumulators the driver checkpoints into the report at every
//! boundary. The continuation is bit-identical to the uninterrupted run.

use gfs_cluster::{Cluster, Scheduler};
use gfs_sim::{ClusterService, SimConfig, SimReport};
use gfs_types::{ClusterEvent, DynamicsPlan, GpuModel, SimDuration, SimTime, TaskSpec, HOUR};

use crate::controller::{
    CapacityController, ForecastController, ForecastParams, MarketAction, MarketView,
    PassiveController,
};
use crate::meter::CostMeter;
use crate::price::{PriceProcess, PriceShock};

/// One action the driver actually admitted, for audit and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppliedAction {
    /// Decision instant.
    pub at: SimTime,
    /// The action.
    pub action: MarketAction,
}

/// Drives a service to completion under a capacity controller.
pub struct MarketDriver {
    controller: Box<dyn CapacityController>,
    prices: PriceProcess,
    fleet_origin: u32,
    interval: SimDuration,
    next_boundary: SimTime,
    meter: CostMeter,
    actions: Vec<AppliedAction>,
}

impl MarketDriver {
    /// A driver for a fresh (not yet crashed) run. Must be built before
    /// the service applies any scale-out so the initial fleet size is
    /// the market's ownership origin.
    #[must_use]
    pub fn new(
        controller: Box<dyn CapacityController>,
        prices: PriceProcess,
        svc: &ClusterService,
    ) -> Self {
        let interval = controller.interval_secs().max(1);
        MarketDriver {
            fleet_origin: svc.cluster().nodes().len() as u32,
            interval,
            next_boundary: SimTime::from_secs(interval),
            meter: CostMeter::new(interval),
            controller,
            prices,
            actions: Vec::new(),
        }
    }

    /// A driver resuming a *recovered* service (snapshot restored and
    /// journal suffix replayed). `fleet_origin` is the initial fleet
    /// size of the original run — it cannot be observed from the
    /// recovered cluster, which already contains bought nodes. Boundaries
    /// at or before the recovered clock are skipped (their plans came
    /// back with the journal) and the meter resumes from the cost
    /// accumulators checkpointed in the report.
    #[must_use]
    pub fn resume(
        controller: Box<dyn CapacityController>,
        prices: PriceProcess,
        svc: &ClusterService,
        fleet_origin: u32,
    ) -> Self {
        let interval = controller.interval_secs().max(1);
        let k = svc.now().as_secs() / interval;
        MarketDriver {
            fleet_origin,
            interval,
            next_boundary: SimTime::from_secs((k + 1) * interval),
            meter: CostMeter::resume(svc.report(), svc.now(), interval),
            controller,
            prices,
            actions: Vec::new(),
        }
    }

    /// The market's ownership origin: nodes with an id at or above this
    /// were bought by the market.
    #[must_use]
    pub fn fleet_origin(&self) -> u32 {
        self.fleet_origin
    }

    /// Every action admitted so far, in decision order.
    #[must_use]
    pub fn actions(&self) -> &[AppliedAction] {
        &self.actions
    }

    /// The running cost meter.
    #[must_use]
    pub fn meter(&self) -> &CostMeter {
        &self.meter
    }

    /// Demand estimate for a boundary: the scheduler's upper-quantile
    /// forecast where available, floored by the windowed-arrival
    /// estimate (a forecast trained on a short history must not argue
    /// the observed backlog away); the window estimate alone otherwise.
    fn demand(&self, svc: &ClusterService, scheduler: &dyn Scheduler) -> (f64, bool) {
        let (p, h) = self.controller.forecast_query();
        let window = windowed_arrival_gpus(svc.report(), svc.now(), h as u64 * HOUR);
        match scheduler.demand_forecast(p, h) {
            Some(f) => (f.max(window), true),
            None => (window, false),
        }
    }

    /// Processes one decision boundary: accrue costs up to the nominal
    /// boundary, consult the controller, admit its actions as a
    /// journaled plan, checkpoint the meter, and arm the next boundary.
    fn on_boundary(&mut self, svc: &mut ClusterService, scheduler: &mut dyn Scheduler) {
        let now = svc.now();
        let k = now.as_secs() / self.interval;
        let nominal = SimTime::from_secs(k * self.interval);
        self.meter
            .accrue(svc.cluster(), self.fleet_origin, &self.prices, nominal);

        if svc.unfinished() > 0 {
            let (demand_gpus, forecast_available) = self.demand(svc, scheduler);
            let view = MarketView {
                now,
                cluster: svc.cluster(),
                demand_gpus,
                forecast_available,
                prices: &self.prices,
                fleet_origin: self.fleet_origin,
            };
            let actions = self.controller.decide(&view);
            if !actions.is_empty() {
                let mut events = Vec::with_capacity(actions.len());
                for a in &actions {
                    match *a {
                        MarketAction::Buy { template, nodes } => {
                            for _ in 0..nodes {
                                events.push(ClusterEvent::add(now, template));
                            }
                        }
                        MarketAction::Release { node, notice_secs } => {
                            events.push(ClusterEvent::drain(node, now, notice_secs));
                        }
                    }
                    self.actions.push(AppliedAction {
                        at: now,
                        action: *a,
                    });
                }
                // per-node histories inside one boundary are trivially
                // consistent (adds target fresh nodes, releases are
                // unique non-draining nodes), so skip cross-plan
                // validation — earlier admissions already own those ids
                svc.admit_plan(&DynamicsPlan::new_unchecked(events));
            }
        }

        self.meter.checkpoint(svc);
        self.next_boundary = SimTime::from_secs((k + 1) * self.interval);
    }

    /// Runs the service to completion under the controller, then closes
    /// the final partial billing segment and writes the cost totals into
    /// the report (read them from [`ClusterService::finish`]'s
    /// [`SimReport`]).
    pub fn drive(&mut self, svc: &mut ClusterService, scheduler: &mut dyn Scheduler) {
        assert!(svc.is_started(), "start the service before driving");
        loop {
            if svc.now() >= self.next_boundary {
                self.on_boundary(svc, scheduler);
                continue;
            }
            if !svc.step(scheduler) {
                break;
            }
        }
        self.meter
            .accrue(svc.cluster(), self.fleet_origin, &self.prices, svc.now());
        self.meter.checkpoint(svc);
    }

    /// Like [`MarketDriver::drive`], but stops (returning `true`) once
    /// `svc.steps()` reaches `max_steps` — the hook crash-injection
    /// tests use to park a run mid-flight at a deterministic point with
    /// all due boundaries processed. Returns `false` when the run ended
    /// before the step budget.
    pub fn drive_until_step(
        &mut self,
        svc: &mut ClusterService,
        scheduler: &mut dyn Scheduler,
        max_steps: u64,
    ) -> bool {
        assert!(svc.is_started(), "start the service before driving");
        loop {
            if svc.now() >= self.next_boundary {
                self.on_boundary(svc, scheduler);
                continue;
            }
            if svc.steps() >= max_steps {
                return true;
            }
            if !svc.step(scheduler) {
                break;
            }
        }
        self.meter
            .accrue(svc.cluster(), self.fleet_origin, &self.prices, svc.now());
        self.meter.checkpoint(svc);
        false
    }
}

/// GPU mass the cluster is being asked for, estimated from the task
/// record stream alone: cards of every unfinished task (queued or
/// running) plus cards of tasks submitted inside the trailing window
/// (recently-arrived work that may already have finished). This is the
/// fallback demand signal for schedulers without a forecasting loop.
#[must_use]
pub fn windowed_arrival_gpus(report: &SimReport, now: SimTime, window_secs: u64) -> f64 {
    let cutoff = SimTime::from_secs(now.as_secs().saturating_sub(window_secs));
    report
        .tasks
        .iter()
        .filter(|t| t.finish.is_none() || t.submit >= cutoff)
        .map(|t| t.total_gpus)
        .sum()
}

/// Declarative market configuration: what the lab's `MarketAxis` (and
/// anything else that wants "a market" without hand-wiring the parts)
/// expands into a price process + controller per run.
#[derive(Debug, Clone)]
pub struct MarketSpec {
    /// Walk amplitude per hour as a fraction of baseline (0 = fixed
    /// prices).
    pub vol: f64,
    /// Shock schedule applied on top of the walk.
    pub shocks: Vec<PriceShock>,
    /// The capacity policy.
    pub controller: ControllerSpec,
}

/// Which controller a [`MarketSpec`] builds.
#[derive(Debug, Clone)]
pub enum ControllerSpec {
    /// Meter-only: bill whatever the dynamics plan does, decide nothing.
    Passive,
    /// The closed-loop forecast follower.
    Forecast(ForecastParams),
}

impl MarketSpec {
    /// Fixed-price passive market: pure cost accounting at on-demand
    /// rates (plus any shocks added later).
    #[must_use]
    pub fn fixed_price() -> Self {
        MarketSpec {
            vol: 0.0,
            shocks: Vec::new(),
            controller: ControllerSpec::Passive,
        }
    }

    /// Fixed-price market run by the forecast controller.
    #[must_use]
    pub fn forecast(params: ForecastParams) -> Self {
        MarketSpec {
            vol: 0.0,
            shocks: Vec::new(),
            controller: ControllerSpec::Forecast(params),
        }
    }

    /// Enables the seeded mean-reverting walk at amplitude `vol`.
    #[must_use]
    pub fn with_vol(mut self, vol: f64) -> Self {
        self.vol = vol.max(0.0);
        self
    }

    /// Attaches a shock schedule.
    #[must_use]
    pub fn with_shocks(mut self, shocks: Vec<PriceShock>) -> Self {
        self.shocks = shocks;
        self
    }

    /// The price process for one run: one walk stream per
    /// `(seed, model)`.
    #[must_use]
    pub fn build_prices(&self, seed: u64) -> PriceProcess {
        let p = if self.vol > 0.0 {
            PriceProcess::walk(seed).with_vol(self.vol)
        } else {
            PriceProcess::fixed()
        };
        p.with_shocks(self.shocks.clone())
    }

    /// The controller for one run.
    #[must_use]
    pub fn build_controller(&self) -> Box<dyn CapacityController> {
        match &self.controller {
            ControllerSpec::Passive => Box::new(PassiveController),
            ControllerSpec::Forecast(params) => Box::new(ForecastController::new(*params)),
        }
    }
}

/// Runs a trace against a scheduler on a cluster *under a market*: the
/// market analogue of `gfs_sim::run`. Deterministic: identical inputs
/// (including `seed`, which seeds the price walk) produce identical
/// reports, with the cost fields filled in.
pub fn run(
    cluster: Cluster,
    scheduler: &mut dyn Scheduler,
    tasks: Vec<TaskSpec>,
    cfg: &SimConfig,
    spec: &MarketSpec,
    seed: u64,
) -> SimReport {
    let mut svc = ClusterService::new(cluster, cfg.clone());
    let mut driver = MarketDriver::new(spec.build_controller(), spec.build_prices(seed), &svc);
    svc.admit_tasks(tasks);
    svc.start();
    driver.drive(&mut svc, scheduler);
    svc.finish()
}

/// A shock schedule for the canonical "spike mid-run" scenario: `model`
/// costs `factor`× between `from_hour` and `from_hour + hours`.
#[must_use]
pub fn spike(model: GpuModel, from_hour: u64, hours: u64, factor: f64) -> Vec<PriceShock> {
    vec![PriceShock {
        at: SimTime::from_hours(from_hour),
        model,
        factor,
        duration_secs: hours * HOUR,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs_sched::YarnCs;
    use gfs_types::{GpuDemand, NodeTemplate, Priority};

    fn tasks(n: u64, gpus: u32, dur: u64, stagger: u64) -> Vec<TaskSpec> {
        (0..n)
            .map(|i| {
                TaskSpec::builder(i + 1)
                    .priority(Priority::Hp)
                    .gpus_per_pod(GpuDemand::whole(gpus))
                    .duration_secs(dur)
                    .submit_at(SimTime::from_secs(i * stagger))
                    .build()
                    .expect("valid")
            })
            .collect()
    }

    fn small_cfg() -> SimConfig {
        SimConfig {
            max_time_secs: Some(48 * HOUR),
            ..SimConfig::default()
        }
    }

    #[test]
    fn passive_market_changes_no_scheduling_but_reports_zero_costs() {
        // no bought nodes → nothing billed, and the report matches the
        // plain engine byte for byte
        let cluster = Cluster::homogeneous(4, GpuModel::A100, 8);
        let t = tasks(12, 4, 2 * HOUR, 600);
        let mut a = YarnCs::new();
        let plain = gfs_sim::run(cluster.clone(), &mut a, t.clone(), &small_cfg());
        let mut b = YarnCs::new();
        let market = run(
            cluster,
            &mut b,
            t,
            &small_cfg(),
            &MarketSpec::fixed_price(),
            1,
        );
        assert_eq!(gfs_sim::report_hash(&plain), gfs_sim::report_hash(&market));
        assert_eq!(market.market_spend_usd, 0.0);
        assert_eq!(market.gpu_hours_bought, 0.0);
    }

    #[test]
    fn forecast_market_buys_under_load_and_meters_spend() {
        // 1 node, heavy backlog → the controller must buy
        let cluster = Cluster::homogeneous(1, GpuModel::A100, 8);
        let t = tasks(24, 8, 4 * HOUR, 300);
        let mut sched = YarnCs::new();
        let spec = MarketSpec::forecast(ForecastParams {
            template: NodeTemplate {
                model: GpuModel::A100,
                gpus: 8,
            },
            ..ForecastParams::default()
        });
        let report = run(cluster, &mut sched, t, &small_cfg(), &spec, 3);
        assert!(report.nodes_added > 0, "controller bought nothing");
        assert!(report.gpu_hours_bought > 0.0);
        assert!(report.market_spend_usd > 0.0);
        assert!(report.summary().cost_per_completed_usd > 0.0);
    }

    #[test]
    fn market_runs_are_deterministic() {
        let cluster = Cluster::homogeneous(2, GpuModel::A100, 8);
        let t = tasks(16, 8, 3 * HOUR, 900);
        let spec = MarketSpec::forecast(ForecastParams::default()).with_vol(0.1);
        let mut s1 = YarnCs::new();
        let r1 = run(cluster.clone(), &mut s1, t.clone(), &small_cfg(), &spec, 42);
        let mut s2 = YarnCs::new();
        let r2 = run(cluster, &mut s2, t, &small_cfg(), &spec, 42);
        assert_eq!(gfs_sim::report_hash(&r1), gfs_sim::report_hash(&r2));
    }

    #[test]
    fn windowed_arrivals_cover_backlog_and_recent_work() {
        let mut report = SimReport::default();
        let mut rec = |id: u64, submit: u64, finish: Option<u64>| {
            report.tasks.push(gfs_sim::TaskRecord {
                id: gfs_types::TaskId::new(id),
                priority: Priority::Hp,
                org: gfs_types::OrgId::new(0),
                total_gpus: 8.0,
                pods: 1,
                work_secs: HOUR,
                submit: SimTime::from_secs(submit),
                first_start: None,
                finish: finish.map(SimTime::from_secs),
                queued_secs: 0,
                runs: 0,
                evictions: 0,
                displacements: 0,
                migrations: 0,
            });
        };
        rec(1, 0, Some(HOUR)); // old, finished → not counted
        rec(2, 0, None); // old backlog → counted
        rec(3, 9 * HOUR, Some(10 * HOUR)); // recent, finished → counted
        let demand = windowed_arrival_gpus(&report, SimTime::from_hours(10), 2 * HOUR);
        assert_eq!(demand, 16.0);
    }
}
