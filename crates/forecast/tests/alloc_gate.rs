//! The `forecast-alloc-gate` lane: proves the tape-arena training step
//! allocates **nothing** once warm, and pins the exact per-epoch
//! allocation count in `ALLOC_BASELINE.json`.
//!
//! Method: a counting [`GlobalAlloc`] wrapper around [`System`] increments
//! a thread-local counter on every `alloc`/`realloc`/`alloc_zeroed` (the
//! thread-local keeps other test threads from polluting the measurement).
//! For each tape-arena model we train twice from identical seeds — once
//! for 2 epochs, once for 3 — and take the difference: everything the two
//! runs share (dataset split, optimizer setup, first-epoch arena growth)
//! cancels, leaving exactly what one *warm* epoch allocates. That delta
//! must equal what the standalone [`minibatches`] call for the extra
//! epoch allocates on its own: the training step itself — forward, loss,
//! backward, Adam — contributes zero.
//!
//! The counts are additionally pinned byte-exact against the committed
//! `ALLOC_BASELINE.json` so a regression in the batching plumbing is
//! caught too. Re-record intentionally with:
//!
//! ```text
//! GFS_ALLOC_RECORD=1 cargo test --test alloc_gate
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::path::Path;

use gfs_forecast::dataset::{OrgDataset, OrgInfo};
use gfs_forecast::{minibatches, DLinear, DeepAr, Forecaster, OrgLinear, TrainConfig};

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    ALLOCS.with(|c| c.set(c.get() + 1));
}

// SAFETY: delegates every operation to `System` unchanged; the counter
// update is a plain thread-local store and never allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation count of `f` on this thread.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.with(Cell::get);
    let out = f();
    (ALLOCS.with(Cell::get) - before, out)
}

/// Two-org dataset with business attrs so OrgLinear exercises the full
/// embedding + attention path.
fn dataset() -> OrgDataset {
    let series: Vec<Vec<f64>> = (0..2)
        .map(|o| {
            (0..400)
                .map(|i| {
                    let day = (i % 24) as f64 / 24.0 * std::f64::consts::TAU;
                    60.0 + 10.0 * (o as f64 + 1.0) * day.sin()
                })
                .collect()
        })
        .collect();
    let infos = (0..2)
        .map(|o| OrgInfo {
            name: format!("org{o}"),
            attrs: vec![o % 2, o % 3],
        })
        .collect();
    OrgDataset::new(series, infos, vec![2, 3], vec![], 96, 12).unwrap()
}

struct Measurement {
    model: &'static str,
    /// Allocations of the third (fully warm) training epoch.
    warm_epoch_allocs: u64,
    /// Allocations of that epoch's standalone `minibatches` call — the
    /// shuffle/chunk plumbing outside the training step proper.
    minibatch_allocs: u64,
}

/// `fit(3 epochs) − fit(2 epochs)` on fresh same-seed models = the cost
/// of one warm epoch.
fn measure<M: Forecaster>(
    name: &'static str,
    data: &OrgDataset,
    make: impl Fn() -> M,
) -> Measurement {
    let mut cfg2 = TrainConfig::fast();
    cfg2.epochs = 2;
    let mut cfg3 = TrainConfig::fast();
    cfg3.epochs = 3;

    let mut m2 = make();
    let (a2, _) = count_allocs(|| m2.fit(data, &cfg2));
    let mut m3 = make();
    let (a3, _) = count_allocs(|| m3.fit(data, &cfg3));
    assert!(a3 >= a2, "{name}: epoch count cannot reduce allocations");

    let (train, _) = data.split(cfg3.stride, cfg3.train_frac);
    // warm the measurement itself once (lazy TLS/format machinery), then
    // count the exact call the third epoch makes
    let _ = minibatches(&train, cfg3.batch_size, cfg3.seed, 2);
    let (mb, batches) = count_allocs(|| minibatches(&train, cfg3.batch_size, cfg3.seed, 2));
    assert!(!batches.is_empty());

    Measurement {
        model: name,
        warm_epoch_allocs: a3 - a2,
        minibatch_allocs: mb,
    }
}

fn baseline_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../ALLOC_BASELINE.json")
}

fn render(measurements: &[Measurement]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"models\": {\n");
    for (i, m) in measurements.iter().enumerate() {
        let sep = if i + 1 == measurements.len() { "" } else { "," };
        out.push_str(&format!(
            "    \"{}\": {{\"warm_epoch_allocs\": {}, \"minibatch_allocs\": {}}}{}\n",
            m.model, m.warm_epoch_allocs, m.minibatch_allocs, sep
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Pulls `"<model>": {"warm_epoch_allocs": N, "minibatch_allocs": M}` out
/// of the committed baseline.
fn parse_entry(text: &str, model: &str) -> Option<(u64, u64)> {
    let key = format!("\"{model}\": {{\"warm_epoch_allocs\": ");
    let start = text.find(&key)? + key.len();
    let rest = &text[start..];
    let warm: u64 = rest[..rest.find(',')?].trim().parse().ok()?;
    let key2 = "\"minibatch_allocs\": ";
    let s2 = rest.find(key2)? + key2.len();
    let rest2 = &rest[s2..];
    let end = rest2.find('}')?;
    let mb: u64 = rest2[..end].trim().parse().ok()?;
    Some((warm, mb))
}

#[test]
fn warm_training_step_allocates_nothing() {
    let data = dataset();
    let measurements = vec![
        measure("DLinear", &data, || DLinear::new(&data, 1)),
        measure("DeepAR", &data, || DeepAr::new(&data, 5)),
        measure("OrgLinear", &data, || OrgLinear::new(&data, 3)),
    ];

    // The core contract: a warm epoch allocates exactly what its
    // minibatch assembly allocates — the training step itself (forward,
    // loss, backward, optimizer) is allocation-free on the tape arena.
    for m in &measurements {
        assert_eq!(
            m.warm_epoch_allocs,
            m.minibatch_allocs,
            "{}: warm epoch allocated {} but its minibatch plumbing only accounts for {} — \
             the training step leaked {} steady-state allocation(s)",
            m.model,
            m.warm_epoch_allocs,
            m.minibatch_allocs,
            m.warm_epoch_allocs - m.minibatch_allocs.min(m.warm_epoch_allocs)
        );
    }

    let path = baseline_path();
    if std::env::var("GFS_ALLOC_RECORD").is_ok() {
        std::fs::write(&path, render(&measurements)).expect("write ALLOC_BASELINE.json");
        eprintln!("recorded {}", path.display());
        return;
    }

    // The ratchet: byte-exact pin of the counts, so regressions in the
    // batching plumbing (or silent growth anywhere in fit) fail CI.
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {} ({e}); record with GFS_ALLOC_RECORD=1",
            path.display()
        )
    });
    for m in &measurements {
        let (warm, mb) = parse_entry(&text, m.model)
            .unwrap_or_else(|| panic!("{} missing from ALLOC_BASELINE.json", m.model));
        assert_eq!(
            (m.warm_epoch_allocs, m.minibatch_allocs),
            (warm, mb),
            "{}: allocation profile drifted from ALLOC_BASELINE.json \
             (got warm={} minibatch={}); re-record intentionally with GFS_ALLOC_RECORD=1",
            m.model,
            m.warm_epoch_allocs,
            m.minibatch_allocs
        );
    }
}
