//! The forecast crate's single wall-clock choke point.
//!
//! Model training reports `train_time_secs` — a measurement *about* the
//! run, never an input to any forecast or scheduling decision. All four
//! trainers take their clock from [`TrainTimer`] so that this file is the
//! only place in the crate that touches `std::time::Instant`; the
//! `det-clock` rule of `gfs_lint` allowlists exactly this path and flags
//! wall-clock reads anywhere else.

use std::time::Instant;

/// Measures one training run's wall-clock duration.
pub(crate) struct TrainTimer(Instant);

impl TrainTimer {
    /// Starts the timer.
    pub(crate) fn start() -> Self {
        TrainTimer(Instant::now())
    }

    /// Seconds elapsed since [`TrainTimer::start`].
    pub(crate) fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}
