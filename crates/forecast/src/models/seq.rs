//! Shared training/prediction plumbing for the per-sample sequence
//! baselines (Transformer, Informer, Autoformer, FEDformer).
//!
//! These models build one graph per sample (attention is quadratic in the
//! window length), so the fit loop accumulates per-sample MSE losses inside
//! a shared graph per mini-batch.

use gfs_nn::{loss, Adam, Graph, Optimizer, Param, Tensor, Var};

use crate::dataset::{Normalizer, OrgDataset, Sample};
use crate::models::{minibatches, FitReport, Forecast, TrainConfig};
use crate::timing::TrainTimer;

/// Internal interface of a point sequence model.
pub(crate) trait SeqModel {
    /// Builds the normalized `1 × H` prediction for one sample.
    fn forward_sample(&self, g: &mut Graph, data: &OrgDataset, s: Sample) -> Var;
    /// All trainable parameters.
    fn params(&self) -> Vec<Param>;
    /// The fitted normalizer.
    fn norm(&self) -> &Normalizer;
    /// Replaces the normalizer (called at the start of `fit`).
    fn set_norm(&mut self, norm: Normalizer);
}

/// Generic MSE training loop over the chronological train split.
pub(crate) fn fit_seq<M: SeqModel>(
    model: &mut M,
    data: &OrgDataset,
    cfg: &TrainConfig,
) -> FitReport {
    let start = TrainTimer::start();
    model.set_norm(data.normalizer(cfg.train_frac));
    let (train, _) = data.split(cfg.stride, cfg.train_frac);
    let mut opt = Adam::new(model.params(), cfg.lr);
    let mut final_loss = f64::NAN;
    // one arena for the whole fit: reset() rewinds the tape per batch and
    // reuses its buffers instead of reallocating the graph
    let mut g = Graph::new();
    for epoch in 0..cfg.epochs {
        let mut total = 0.0;
        let mut n = 0usize;
        for batch in minibatches(&train, cfg.batch_size, cfg.seed, epoch) {
            g.reset();
            let mut batch_loss: Option<Var> = None;
            for s in &batch {
                let pred = model.forward_sample(&mut g, data, *s);
                let target: Vec<f64> = data
                    .target(*s)
                    .iter()
                    .map(|&y| model.norm().norm(s.org, y))
                    .collect();
                let t = g.constant(Tensor::row(&target));
                let l = loss::mse(&mut g, pred, t);
                batch_loss = Some(match batch_loss {
                    None => l,
                    Some(acc) => g.add(acc, l),
                });
            }
            if let Some(acc) = batch_loss {
                let mean = g.scale(acc, 1.0 / batch.len() as f64);
                total += g.value(mean).item();
                n += 1;
                g.backward(mean);
                opt.step();
            }
        }
        final_loss = total / n.max(1) as f64;
    }
    FitReport {
        train_time_secs: start.elapsed_secs(),
        final_loss,
        samples: train.len(),
    }
}

/// Generic denormalizing point prediction.
pub(crate) fn predict_seq<M: SeqModel>(model: &M, data: &OrgDataset, sample: Sample) -> Forecast {
    let mut g = Graph::new();
    let pred = model.forward_sample(&mut g, data, sample);
    Forecast::point(
        g.value(pred)
            .as_slice()
            .iter()
            .map(|&z| model.norm().denorm(sample.org, z))
            .collect(),
    )
}

/// Normalized input window of one sample as an `L × 1` column tensor.
pub(crate) fn window_column(data: &OrgDataset, norm: &Normalizer, s: Sample) -> Tensor {
    let w: Vec<f64> = data.input(s).iter().map(|&x| norm.norm(s.org, x)).collect();
    Tensor::col(&w)
}

/// Average-pooling matrix halving a length-`l` sequence
/// (`⌈l/2⌉ × l`), used by Informer's distillation stage.
pub(crate) fn halving_pool_matrix(l: usize) -> Tensor {
    let out = l.div_ceil(2);
    let mut m = Tensor::zeros(out, l);
    for i in 0..out {
        let a = 2 * i;
        let b = (2 * i + 1).min(l - 1);
        if a == b {
            m[(i, a)] = 1.0;
        } else {
            m[(i, a)] = 0.5;
            m[(i, b)] = 0.5;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halving_pool_rows_sum_to_one() {
        for l in [4usize, 5, 9, 168] {
            let m = halving_pool_matrix(l);
            assert_eq!(m.rows(), l.div_ceil(2));
            for r in 0..m.rows() {
                let s: f64 = m.row_slice(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "row {r} of l={l}");
            }
        }
    }

    #[test]
    fn halving_pool_averages_pairs() {
        let m = halving_pool_matrix(4);
        let x = Tensor::col(&[1.0, 3.0, 5.0, 7.0]);
        let y = m.matmul(&x);
        assert_eq!(y.as_slice(), &[2.0, 6.0]);
    }
}
