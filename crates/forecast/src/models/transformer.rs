//! Vanilla Transformer baseline (Vaswani et al.): value embedding +
//! sinusoidal positions, one self-attention block with residuals, a
//! position-wise feed-forward layer, mean pooling and a linear head.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use gfs_nn::{Attention, Graph, Linear, Param, Var};

use crate::dataset::{Normalizer, OrgDataset, Sample};
use crate::models::seq::{fit_seq, predict_seq, window_column, SeqModel};
use crate::models::{
    mean_pool_matrix, positional_encoding, FitReport, Forecast, Forecaster, TrainConfig,
};

const MODEL_DIM: usize = 8;

/// Single-block Transformer point forecaster.
#[derive(Debug)]
pub struct TransformerForecaster {
    proj: Linear,
    attn: Attention,
    ffn1: Linear,
    ffn2: Linear,
    head: Linear,
    norm: Normalizer,
}

impl TransformerForecaster {
    /// Creates a model shaped for `data`.
    #[must_use]
    pub fn new(data: &OrgDataset, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        TransformerForecaster {
            proj: Linear::new(1, MODEL_DIM, &mut rng),
            attn: Attention::new(MODEL_DIM, &mut rng),
            ffn1: Linear::new(MODEL_DIM, MODEL_DIM, &mut rng),
            ffn2: Linear::new(MODEL_DIM, MODEL_DIM, &mut rng),
            head: Linear::new(MODEL_DIM, data.horizon(), &mut rng),
            norm: data.normalizer(0.8),
        }
    }
}

impl SeqModel for TransformerForecaster {
    fn forward_sample(&self, g: &mut Graph, data: &OrgDataset, s: Sample) -> Var {
        let x = g.constant(window_column(data, &self.norm, s)); // L × 1
        let l = data.input_len();
        let tokens = self.proj.forward(g, x); // L × d
        let pe = g.constant(positional_encoding(l, MODEL_DIM));
        let tokens = g.add(tokens, pe);
        let att = self.attn.forward(g, tokens);
        let res1 = g.add(tokens, att);
        let h = self.ffn1.forward(g, res1);
        let h = g.relu(h);
        let h = self.ffn2.forward(g, h);
        let res2 = g.add(res1, h);
        let pool = g.constant(mean_pool_matrix(l));
        let pooled = g.matmul(pool, res2); // 1 × d
        self.head.forward(g, pooled) // 1 × H
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.proj.params();
        p.extend(self.attn.params());
        p.extend(self.ffn1.params());
        p.extend(self.ffn2.params());
        p.extend(self.head.params());
        p
    }

    fn norm(&self) -> &Normalizer {
        &self.norm
    }

    fn set_norm(&mut self, norm: Normalizer) {
        self.norm = norm;
    }
}

impl Forecaster for TransformerForecaster {
    fn name(&self) -> &'static str {
        "Transformer"
    }

    fn fit(&mut self, data: &OrgDataset, cfg: &TrainConfig) -> FitReport {
        fit_seq(self, data, cfg)
    }

    fn predict(&self, data: &OrgDataset, sample: Sample) -> Forecast {
        predict_seq(self, data, sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::OrgInfo;

    #[test]
    fn fit_and_predict_shapes() {
        let series = vec![(0..260)
            .map(|i| 30.0 + 5.0 * ((i % 12) as f64 / 12.0 * std::f64::consts::TAU).sin())
            .collect::<Vec<_>>()];
        let orgs = vec![OrgInfo {
            name: "A".into(),
            attrs: vec![],
        }];
        let data = OrgDataset::new(series, orgs, vec![], vec![], 48, 6).unwrap();
        let mut m = TransformerForecaster::new(&data, 4);
        let mut cfg = TrainConfig::fast();
        cfg.epochs = 2;
        let r = m.fit(&data, &cfg);
        assert!(r.final_loss.is_finite());
        let f = m.predict(&data, Sample { org: 0, start: 190 });
        assert_eq!(f.mean.len(), 6);
        assert!(f.std.is_none());
    }
}
