//! Training-free reference predictors.
//!
//! [`LastWeekPeak`] reproduces the production heuristic that the GDE
//! ablation (`GFS-e`, Table 8) compares against: "take the peak GPU demand
//! of the previous week as the forecast". [`SeasonalNaive`] repeats the
//! value observed one season (24 h by default) earlier.

use crate::dataset::{OrgDataset, Sample};
use crate::models::{FitReport, Forecast, Forecaster, TrainConfig};

/// Predicts the maximum of the input window for every horizon step —
/// the conservative production baseline replaced by OrgLinear.
#[derive(Debug, Clone, Copy, Default)]
pub struct LastWeekPeak;

impl LastWeekPeak {
    /// Creates the predictor.
    #[must_use]
    pub fn new() -> Self {
        LastWeekPeak
    }
}

impl Forecaster for LastWeekPeak {
    fn name(&self) -> &'static str {
        "LastWeekPeak"
    }

    fn fit(&mut self, data: &OrgDataset, _cfg: &TrainConfig) -> FitReport {
        FitReport {
            train_time_secs: 0.0,
            final_loss: 0.0,
            samples: data.num_orgs(),
        }
    }

    fn predict(&self, data: &OrgDataset, sample: Sample) -> Forecast {
        let peak = data
            .input(sample)
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        Forecast::point(vec![peak; data.horizon()])
    }
}

/// Repeats the value observed `season` hours earlier.
#[derive(Debug, Clone, Copy)]
pub struct SeasonalNaive {
    season: usize,
}

impl SeasonalNaive {
    /// Creates a predictor with the given season length in hours
    /// (24 = daily, 168 = weekly).
    #[must_use]
    pub fn new(season: usize) -> Self {
        SeasonalNaive {
            season: season.max(1),
        }
    }
}

impl Default for SeasonalNaive {
    fn default() -> Self {
        SeasonalNaive::new(24)
    }
}

impl Forecaster for SeasonalNaive {
    fn name(&self) -> &'static str {
        "SeasonalNaive"
    }

    fn fit(&mut self, data: &OrgDataset, _cfg: &TrainConfig) -> FitReport {
        FitReport {
            train_time_secs: 0.0,
            final_loss: 0.0,
            samples: data.num_orgs(),
        }
    }

    fn predict(&self, data: &OrgDataset, sample: Sample) -> Forecast {
        let window = data.input(sample);
        let l = window.len();
        let mean = (0..data.horizon())
            .map(|h| {
                // value one season before the horizon step, read from the window
                let mut back = self.season;
                while back <= h {
                    back += self.season;
                }
                let idx = l + h - back;
                window[idx.min(l - 1)]
            })
            .collect();
        Forecast::point(mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::OrgInfo;

    fn data() -> OrgDataset {
        let series = vec![(0..300).map(|i| (i % 24) as f64).collect::<Vec<_>>()];
        let orgs = vec![OrgInfo {
            name: "A".into(),
            attrs: vec![],
        }];
        OrgDataset::new(series, orgs, vec![], vec![], 168, 24).unwrap()
    }

    #[test]
    fn peak_is_window_max() {
        let d = data();
        let f = LastWeekPeak::new().predict(&d, Sample { org: 0, start: 0 });
        assert_eq!(f.mean, vec![23.0; 24]);
    }

    #[test]
    fn seasonal_naive_is_exact_on_pure_seasonality() {
        let d = data();
        let m = SeasonalNaive::new(24);
        let s = Sample { org: 0, start: 48 };
        let f = m.predict(&d, s);
        assert_eq!(f.mean, d.target(s), "period-24 series repeats exactly");
    }

    #[test]
    fn fit_is_free() {
        let d = data();
        let mut m = LastWeekPeak::new();
        let r = m.fit(&d, &TrainConfig::fast());
        assert_eq!(r.train_time_secs, 0.0);
    }

    #[test]
    fn seasonal_naive_handles_long_horizon() {
        // horizon longer than one season wraps to further-back values
        let series = vec![(0..300).map(|i| (i % 6) as f64).collect::<Vec<_>>()];
        let orgs = vec![OrgInfo {
            name: "A".into(),
            attrs: vec![],
        }];
        let d = OrgDataset::new(series, orgs, vec![], vec![], 24, 18).unwrap();
        let f = SeasonalNaive::new(6).predict(&d, Sample { org: 0, start: 0 });
        let s = Sample { org: 0, start: 0 };
        assert_eq!(f.mean, d.target(s));
    }
}
