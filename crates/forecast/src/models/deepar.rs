//! DeepAR baseline (Salinas et al.): an autoregressive RNN producing a
//! Gaussian distribution per horizon step. The encoder GRU consumes the
//! window step by step (with diurnal phase features), and linear heads map
//! the final state to `(μ, σ)` sequences, trained by NLL — the strongest
//! probabilistic baseline of Table 7.
//!
//! The whole unrolled encoder is one fused [`GruCell::scan`] tape entry
//! over a persistent [`Graph`] arena: after the first batch warms the
//! arena, a training step allocates nothing (see the `forecast-alloc-gate`
//! test lane).

use std::cell::RefCell;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use gfs_nn::{Adam, Graph, GruCell, Linear, Optimizer, Param, Var};

use crate::dataset::{Normalizer, OrgDataset, Sample};
use crate::models::{minibatches, FitReport, Forecast, Forecaster, TrainConfig};
use crate::timing::TrainTimer;

const HIDDEN: usize = 24;
const SIGMA_FLOOR: f64 = 1e-3;

/// DeepAR-style probabilistic RNN forecaster.
#[derive(Debug)]
pub struct DeepAr {
    cell: GruCell,
    head_mu: Linear,
    head_sigma: Linear,
    norm: Normalizer,
    horizon: usize,
    graph: RefCell<Graph>,
}

impl DeepAr {
    /// Creates a model shaped for `data`.
    #[must_use]
    pub fn new(data: &OrgDataset, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        DeepAr {
            cell: GruCell::new(3, HIDDEN, &mut rng),
            head_mu: Linear::new(HIDDEN, data.horizon(), &mut rng),
            head_sigma: Linear::new(HIDDEN, data.horizon(), &mut rng),
            norm: data.normalizer(0.8),
            horizon: data.horizon(),
            graph: RefCell::new(Graph::new()),
        }
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.cell.params();
        p.extend(self.head_mu.params());
        p.extend(self.head_sigma.params());
        p
    }

    /// Encodes a batch of windows with one fused GRU scan and emits
    /// `(mu, pre)`, where `pre` is the *pre-activation* of the variance
    /// head: apply `softplus(pre) + SIGMA_FLOOR` to obtain σ (training
    /// fuses that map into the loss; `predict` applies it explicitly)
    /// in normalized space (`B × H` each).
    fn forward(&self, g: &mut Graph, data: &OrgDataset, batch: &[Sample]) -> (Var, Var) {
        let b = batch.len();
        let l = data.input_len();
        // time-major scan input: rows [t·b, (t+1)·b) hold step t
        let xs = g.constant_slot(l * b, 3);
        let buf = g.slot_mut(xs);
        for t in 0..l {
            for (r, s) in batch.iter().enumerate() {
                let abs_hour = (s.start + t) % 24;
                let phase = abs_hour as f64 / 24.0 * std::f64::consts::TAU;
                let base = (t * b + r) * 3;
                buf[base] = self.norm.norm(s.org, data.input(*s)[t]);
                buf[base + 1] = phase.sin();
                buf[base + 2] = phase.cos();
            }
        }
        let h = self.cell.scan(g, xs, l);
        let mu = self.head_mu.forward(g, h);
        // pre-activation variance head; σ = softplus(·) + floor is fused
        // into the NLL during training and applied directly in predict
        let pre = self.head_sigma.forward(g, h);
        (mu, pre)
    }
}

impl Forecaster for DeepAr {
    fn name(&self) -> &'static str {
        "DeepAR"
    }

    fn is_probabilistic(&self) -> bool {
        true
    }

    fn fit(&mut self, data: &OrgDataset, cfg: &TrainConfig) -> FitReport {
        let start = TrainTimer::start();
        self.norm = data.normalizer(cfg.train_frac);
        let (train, _) = data.split(cfg.stride, cfg.train_frac);
        let mut opt = Adam::new(self.params(), cfg.lr);
        let mut final_loss = f64::NAN;
        for epoch in 0..cfg.epochs {
            let mut total = 0.0;
            let mut n = 0usize;
            for batch in minibatches(&train, cfg.batch_size, cfg.seed, epoch) {
                let mut g = self.graph.borrow_mut();
                g.reset();
                let (mu, sigma_pre) = self.forward(&mut g, data, &batch);
                let t = g.constant_slot(batch.len(), self.horizon);
                let tgt = g.slot_mut(t);
                for (r, s) in batch.iter().enumerate() {
                    for (c, &y) in data.target(*s).iter().enumerate() {
                        tgt[r * self.horizon + c] = self.norm.norm(s.org, y);
                    }
                }
                let l = g.gaussian_nll_softplus(mu, sigma_pre, t, SIGMA_FLOOR);
                total += g.value(l).item();
                n += 1;
                g.backward(l);
                opt.step();
            }
            final_loss = total / n.max(1) as f64;
        }
        FitReport {
            train_time_secs: start.elapsed_secs(),
            final_loss,
            samples: train.len(),
        }
    }

    fn predict(&self, data: &OrgDataset, sample: Sample) -> Forecast {
        let mut g = self.graph.borrow_mut();
        g.reset();
        let (mu, sigma_pre) = self.forward(&mut g, data, &[sample]);
        g.finish();
        Forecast {
            mean: g
                .value(mu)
                .as_slice()
                .iter()
                .map(|&z| self.norm.denorm(sample.org, z))
                .collect(),
            std: Some(
                g.value(sigma_pre)
                    .as_slice()
                    .iter()
                    .map(|&z| {
                        self.norm
                            .denorm_std(sample.org, gfs_nn::softplus(z) + SIGMA_FLOOR)
                    })
                    .collect(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::OrgInfo;

    #[test]
    fn fit_and_predict_probabilistic() {
        let series = vec![(0..220)
            .map(|i| 15.0 + 4.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect::<Vec<_>>()];
        let orgs = vec![OrgInfo {
            name: "A".into(),
            attrs: vec![],
        }];
        let data = OrgDataset::new(series, orgs, vec![], vec![], 48, 6).unwrap();
        let mut m = DeepAr::new(&data, 5);
        assert!(m.is_probabilistic());
        let mut cfg = TrainConfig::fast();
        cfg.epochs = 2;
        let r = m.fit(&data, &cfg);
        assert!(r.final_loss.is_finite());
        let f = m.predict(&data, Sample { org: 0, start: 130 });
        assert_eq!(f.mean.len(), 6);
        assert!(f.std.unwrap().iter().all(|&s| s > 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let series = vec![(0..220)
            .map(|i| 15.0 + 4.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect::<Vec<_>>()];
        let orgs = vec![OrgInfo {
            name: "A".into(),
            attrs: vec![],
        }];
        let data = OrgDataset::new(series, orgs, vec![], vec![], 48, 6).unwrap();
        let run = || {
            let mut m = DeepAr::new(&data, 5);
            let mut cfg = TrainConfig::fast();
            cfg.epochs = 2;
            m.fit(&data, &cfg);
            m.predict(&data, Sample { org: 0, start: 130 }).mean
        };
        assert_eq!(run(), run());
    }
}
