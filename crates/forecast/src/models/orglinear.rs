//! OrgLinear — the paper's hierarchical probabilistic forecaster (§3.2).
//!
//! The model combines:
//! * adaptive trend/cyclical decomposition with reflection-padded moving
//!   average (Eq. 1–2),
//! * temporal embeddings of hour / weekday / holiday (Eq. 3),
//! * business-attribute embeddings fused with a learned attention pool
//!   (Eq. 4),
//! * two parallel linear heads for the cyclical and trend components whose
//!   sum is the mean forecast (Eq. 5–6),
//! * a softplus variance head for heteroscedastic uncertainty (Eq. 7),
//! * maximum-likelihood training under a Gaussian NLL (Eq. 8).
//!
//! Both training and prediction run over persistent [`Graph`] arenas with
//! pooled index/window scratch, so a warm training step and a warm
//! [`Forecaster::predict_many`] call allocate nothing (see the
//! `forecast-alloc-gate` test lane). `predict_many` builds the whole org
//! batch as one forward pass — the GDE aggregation path (`gfs_core`)
//! depends on this for its per-tick latency budget.

use std::cell::RefCell;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use gfs_nn::{Adam, Embedding, Graph, Linear, Optimizer, Param, Var};

use crate::dataset::{Normalizer, OrgDataset, Sample};
use crate::decompose::DecomposeScratch;
use crate::models::{minibatches, FitReport, Forecast, Forecaster, TrainConfig};
use crate::timing::TrainTimer;

/// Embedding width per temporal component (hour / weekday / holiday).
const TEMPORAL_DIM: usize = 4;
/// Embedding width per business attribute.
const BUSINESS_DIM: usize = 6;
/// Moving-average window of the decomposition kernel (hours).
const MA_WINDOW: usize = 25;
/// Floor added to the softplus variance head for numerical safety.
const SIGMA_FLOOR: f64 = 1e-3;
/// Inputs are winsorized at ±`Z_CLIP` standard deviations. Online demand
/// windows can contain saturation spikes far outside the training
/// distribution (the cluster pinned at capacity); without clipping, the
/// linear heads extrapolate them into forecasts above cluster capacity and
/// the SQA inventory (Eq. 9) collapses to zero for hours.
const Z_CLIP: f64 = 3.0;

/// Reusable per-batch staging buffers; pooled so warm steps don't allocate.
#[derive(Debug, Default)]
struct Scratch {
    window: Vec<f64>,
    decomp: DecomposeScratch,
    hours: Vec<usize>,
    weekdays: Vec<usize>,
    holidays: Vec<usize>,
    idx: Vec<usize>,
    embs: Vec<Var>,
    scores: Vec<Var>,
}

/// The OrgLinear forecaster.
///
/// # Examples
///
/// ```
/// use gfs_forecast::dataset::{OrgDataset, OrgInfo, Sample};
/// use gfs_forecast::{Forecaster, OrgLinear, TrainConfig};
///
/// let series = vec![(0..700)
///     .map(|i| 50.0 + 10.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
///     .collect::<Vec<_>>()];
/// let orgs = vec![OrgInfo { name: "A".into(), attrs: vec![0] }];
/// let data = OrgDataset::new(series, orgs, vec![1], vec![], 168, 24).unwrap();
/// let mut model = OrgLinear::new(&data, 7);
/// model.fit(&data, &TrainConfig::fast());
/// let f = model.predict(&data, Sample { org: 0, start: 400 });
/// assert_eq!(f.mean.len(), 24);
/// assert!(f.std.is_some());
/// ```
#[derive(Debug)]
pub struct OrgLinear {
    emb_hour: Embedding,
    emb_weekday: Embedding,
    emb_holiday: Embedding,
    attr_embs: Vec<Embedding>,
    attn_query: Param,
    head_cyclical: Linear,
    head_trend: Linear,
    head_variance: Linear,
    norm: Normalizer,
    input_len: usize,
    horizon: usize,
    graph: RefCell<Graph>,
    scratch: RefCell<Scratch>,
}

impl OrgLinear {
    /// Creates a model shaped for `data`, seeding all weights from `seed`.
    #[must_use]
    pub fn new(data: &OrgDataset, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let l = data.input_len();
        let h = data.horizon();
        let ctx = Self::context_dim(data);
        let attr_embs = data
            .attr_vocab()
            .iter()
            .map(|&v| Embedding::new(v.max(1), BUSINESS_DIM, &mut rng))
            .collect();
        OrgLinear {
            emb_hour: Embedding::new(24, TEMPORAL_DIM, &mut rng),
            emb_weekday: Embedding::new(7, TEMPORAL_DIM, &mut rng),
            emb_holiday: Embedding::new(2, TEMPORAL_DIM, &mut rng),
            attr_embs,
            attn_query: Param::new(gfs_nn::init::xavier(BUSINESS_DIM, 1, &mut rng)),
            head_cyclical: Linear::new(l + ctx, h, &mut rng),
            head_trend: Linear::new(l + ctx, h, &mut rng),
            head_variance: Linear::new(l + ctx, h, &mut rng),
            norm: data.normalizer(0.8),
            input_len: l,
            horizon: h,
            graph: RefCell::new(Graph::new()),
            scratch: RefCell::new(Scratch {
                window: vec![0.0; l],
                ..Scratch::default()
            }),
        }
    }

    fn context_dim(data: &OrgDataset) -> usize {
        let business = if data.attr_vocab().is_empty() {
            0
        } else {
            BUSINESS_DIM
        };
        business + 3 * TEMPORAL_DIM
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.emb_hour.params();
        p.extend(self.emb_weekday.params());
        p.extend(self.emb_holiday.params());
        for e in &self.attr_embs {
            p.extend(e.params());
        }
        p.push(self.attn_query.clone());
        p.extend(self.head_cyclical.params());
        p.extend(self.head_trend.params());
        p.extend(self.head_variance.params());
        p
    }

    /// Business context `c_o` for a batch (Eq. 4): per-slot embeddings are
    /// scored against a learned query, softmax-weighted and summed.
    fn business_context(&self, g: &mut Graph, data: &OrgDataset, batch: &[Sample]) -> Option<Var> {
        if self.attr_embs.is_empty() {
            return None;
        }
        let mut sc = self.scratch.borrow_mut();
        let sc = &mut *sc;
        sc.embs.clear();
        for (slot, emb) in self.attr_embs.iter().enumerate() {
            sc.idx.clear();
            sc.idx
                .extend(batch.iter().map(|s| data.org(s.org).attrs[slot]));
            let e = emb.forward(g, &sc.idx);
            sc.embs.push(e);
        }
        if sc.embs.len() == 1 {
            return Some(sc.embs[0]);
        }
        let q = g.param(&self.attn_query);
        sc.scores.clear();
        for &e in &sc.embs {
            sc.scores.push(g.matmul(e, q));
        }
        let score_mat = g.concat_cols(&sc.scores); // B × j
        let weights = g.softmax_rows(score_mat);
        let mut acc: Option<Var> = None;
        for (k, &e) in sc.embs.iter().enumerate() {
            let w_k = g.slice_cols(weights, k, 1); // B × 1
            let contrib = g.scale_rows(e, w_k);
            acc = Some(match acc {
                None => contrib,
                Some(a) => g.add(a, contrib),
            });
        }
        acc
    }

    /// Temporal context `c_t` for a batch (Eq. 3).
    fn temporal_context(&self, g: &mut Graph, data: &OrgDataset, batch: &[Sample]) -> Var {
        let mut sc = self.scratch.borrow_mut();
        sc.hours.clear();
        sc.weekdays.clear();
        sc.holidays.clear();
        for s in batch {
            let (h, w, hol) = data.temporal_ids(data.forecast_start(*s));
            sc.hours.push(h);
            sc.weekdays.push(w);
            sc.holidays.push(hol);
        }
        let eh = self.emb_hour.forward(g, &sc.hours);
        let ew = self.emb_weekday.forward(g, &sc.weekdays);
        let ehol = self.emb_holiday.forward(g, &sc.holidays);
        g.concat_cols(&[eh, ew, ehol])
    }

    /// Builds `(mu, pre)` for a batch in normalized space, where `pre` is
    /// the *pre-activation* of the variance head: apply
    /// `softplus(pre) + SIGMA_FLOOR` to obtain σ (training fuses that map
    /// into the loss; `predict` applies it explicitly).
    fn forward(&self, g: &mut Graph, data: &OrgDataset, batch: &[Sample]) -> (Var, Var) {
        let b = batch.len();
        let l = self.input_len;
        let full_v = g.constant_slot(b, l);
        let trend_v = g.constant_slot(b, l);
        let cyc_v = g.constant_slot(b, l);
        {
            let mut sc = self.scratch.borrow_mut();
            let sc = &mut *sc;
            for (r, s) in batch.iter().enumerate() {
                // normalize into the pooled window, then stage the batch
                // row and its decomposition — no per-sample temporaries
                for (slot, &x) in sc.window.iter_mut().zip(data.input(*s)) {
                    *slot = self.norm.norm(s.org, x).clamp(-Z_CLIP, Z_CLIP);
                }
                g.slot_mut(full_v)[r * l..(r + 1) * l].copy_from_slice(&sc.window);
                let (trend_m, cyc_m) = g.two_slots_mut(trend_v, cyc_v);
                sc.decomp.decompose_into(
                    &sc.window,
                    MA_WINDOW,
                    &mut trend_m[r * l..(r + 1) * l],
                    &mut cyc_m[r * l..(r + 1) * l],
                );
            }
        }

        let c_t = self.temporal_context(g, data, batch);
        let c_o = self.business_context(g, data, batch);

        let with_ctx = |g: &mut Graph, x: Var| -> Var {
            match c_o {
                Some(co) => g.concat_cols(&[x, co, c_t]),
                None => g.concat_cols(&[x, c_t]),
            }
        };

        let in_c = with_ctx(g, cyc_v);
        let y_c = self.head_cyclical.forward(g, in_c);
        let in_t = with_ctx(g, trend_v);
        let y_t = self.head_trend.forward(g, in_t);
        let mu = g.add(y_c, y_t); // Eq. 6

        let in_v = with_ctx(g, full_v);
        let h_v = self.head_variance.forward(g, in_v);
        // pre-activation of Eq. 7; the σ = softplus(·) + floor map is fused
        // into the NLL during training and applied directly in predict
        (mu, h_v)
    }
}

impl Forecaster for OrgLinear {
    fn name(&self) -> &'static str {
        "OrgLinear"
    }

    fn is_probabilistic(&self) -> bool {
        true
    }

    fn fit(&mut self, data: &OrgDataset, cfg: &TrainConfig) -> FitReport {
        let start = TrainTimer::start();
        self.norm = data.normalizer(cfg.train_frac);
        let (train, _) = data.split(cfg.stride, cfg.train_frac);
        let mut opt = Adam::new(self.params(), cfg.lr);
        let mut final_loss = f64::NAN;
        for epoch in 0..cfg.epochs {
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for batch in minibatches(&train, cfg.batch_size, cfg.seed, epoch) {
                let mut g = self.graph.borrow_mut();
                g.reset();
                let (mu, sigma_pre) = self.forward(&mut g, data, &batch);
                let t = g.constant_slot(batch.len(), self.horizon);
                let tgt = g.slot_mut(t);
                for (r, s) in batch.iter().enumerate() {
                    for (c, &y) in data.target(*s).iter().enumerate() {
                        tgt[r * self.horizon + c] = self.norm.norm(s.org, y);
                    }
                }
                let l = g.gaussian_nll_softplus(mu, sigma_pre, t, SIGMA_FLOOR); // Eq. 7–8 fused
                epoch_loss += g.value(l).item();
                batches += 1;
                g.backward(l);
                opt.step();
            }
            final_loss = epoch_loss / batches.max(1) as f64;
        }
        FitReport {
            train_time_secs: start.elapsed_secs(),
            final_loss,
            samples: train.len(),
        }
    }

    fn predict(&self, data: &OrgDataset, sample: Sample) -> Forecast {
        let mut g = self.graph.borrow_mut();
        g.reset();
        let (mu, sigma_pre) = self.forward(&mut g, data, &[sample]);
        g.finish();
        let mean = g
            .value(mu)
            .as_slice()
            .iter()
            .map(|&z| self.norm.denorm(sample.org, z))
            .collect();
        let std = g
            .value(sigma_pre)
            .as_slice()
            .iter()
            .map(|&z| {
                self.norm
                    .denorm_std(sample.org, gfs_nn::softplus(z) + SIGMA_FLOOR)
            })
            .collect();
        Forecast {
            mean,
            std: Some(std),
        }
    }

    fn predict_many(&self, data: &OrgDataset, samples: &[Sample]) -> Vec<Forecast> {
        if samples.is_empty() {
            return Vec::new();
        }
        let mut g = self.graph.borrow_mut();
        g.reset();
        let (mu, sigma_pre) = self.forward(&mut g, data, samples);
        g.finish();
        let h = self.horizon;
        let mu_t = g.value(mu);
        let pre_t = g.value(sigma_pre);
        samples
            .iter()
            .enumerate()
            .map(|(r, s)| {
                let mean = mu_t.as_slice()[r * h..(r + 1) * h]
                    .iter()
                    .map(|&z| self.norm.denorm(s.org, z))
                    .collect();
                let std = pre_t.as_slice()[r * h..(r + 1) * h]
                    .iter()
                    .map(|&z| {
                        self.norm
                            .denorm_std(s.org, gfs_nn::softplus(z) + SIGMA_FLOOR)
                    })
                    .collect();
                Forecast {
                    mean,
                    std: Some(std),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::OrgInfo;

    fn sine_dataset(orgs: usize, hours: usize) -> OrgDataset {
        let series: Vec<Vec<f64>> = (0..orgs)
            .map(|o| {
                (0..hours)
                    .map(|i| {
                        let day = (i % 24) as f64 / 24.0 * std::f64::consts::TAU;
                        60.0 + 10.0 * (o as f64 + 1.0) * day.sin()
                    })
                    .collect()
            })
            .collect();
        let infos = (0..orgs)
            .map(|o| OrgInfo {
                name: format!("org{o}"),
                attrs: vec![o % 2, o % 3],
            })
            .collect();
        OrgDataset::new(series, infos, vec![2, 3], vec![], 96, 12).unwrap()
    }

    #[test]
    fn fit_reduces_loss_and_predicts_shape() {
        let data = sine_dataset(2, 400);
        let mut m = OrgLinear::new(&data, 3);
        let report = m.fit(&data, &TrainConfig::fast());
        assert!(report.final_loss.is_finite());
        assert!(report.samples > 0);
        let f = m.predict(&data, Sample { org: 1, start: 250 });
        assert_eq!(f.mean.len(), 12);
        let std = f.std.expect("probabilistic");
        assert!(std.iter().all(|&s| s > 0.0), "sigma strictly positive");
    }

    #[test]
    fn learns_periodic_signal_better_than_mean_guess() {
        let data = sine_dataset(1, 600);
        let mut cfg = TrainConfig::fast();
        cfg.epochs = 25;
        cfg.lr = 0.02;
        // phase-diverse windows (stride coprime with the 24 h period)
        cfg.stride = 5;
        let mut m = OrgLinear::new(&data, 5);
        m.fit(&data, &cfg);
        let (_, test) = data.split(cfg.stride, cfg.train_frac);
        let mut err_model = 0.0;
        let mut err_mean = 0.0;
        for s in &test {
            let f = m.predict(&data, *s);
            let y = data.target(*s);
            let base = data.input(*s).iter().sum::<f64>() / data.input_len() as f64;
            err_model += crate::metrics::mae(&f.mean, y);
            err_mean += crate::metrics::mae(&vec![base; y.len()], y);
        }
        assert!(
            err_model < err_mean,
            "OrgLinear ({err_model:.2}) must beat the window-mean baseline ({err_mean:.2})"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let data = sine_dataset(1, 400);
        let run = || {
            let mut m = OrgLinear::new(&data, 11);
            m.fit(&data, &TrainConfig::fast());
            m.predict(&data, Sample { org: 0, start: 200 }).mean
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn works_without_business_attributes() {
        let series = vec![(0..400).map(|i| (i % 7) as f64).collect::<Vec<_>>()];
        let orgs = vec![OrgInfo {
            name: "solo".into(),
            attrs: vec![],
        }];
        let data = OrgDataset::new(series, orgs, vec![], vec![], 96, 12).unwrap();
        let mut m = OrgLinear::new(&data, 1);
        m.fit(&data, &TrainConfig::fast());
        let f = m.predict(&data, Sample { org: 0, start: 100 });
        assert_eq!(f.mean.len(), 12);
    }

    #[test]
    fn predict_many_matches_per_sample_predict_bitwise() {
        let data = sine_dataset(2, 400);
        let mut m = OrgLinear::new(&data, 3);
        m.fit(&data, &TrainConfig::fast());
        let samples = [
            Sample { org: 0, start: 210 },
            Sample { org: 1, start: 250 },
            Sample { org: 0, start: 260 },
        ];
        let batched = m.predict_many(&data, &samples);
        for (s, f) in samples.iter().zip(&batched) {
            let single = m.predict(&data, *s);
            assert_eq!(single.mean, f.mean, "{s:?}");
            assert_eq!(single.std, f.std, "{s:?}");
        }
    }
}
