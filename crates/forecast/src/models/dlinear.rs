//! DLinear baseline (Zeng et al., AAAI'23): trend/cyclical decomposition
//! followed by two independent linear projections — no context features, no
//! uncertainty head.
//!
//! Training runs over a persistent [`Graph`] arena: the decomposed batch is
//! written straight into reusable constant slots, so a warm training step
//! allocates nothing (see the `forecast-alloc-gate` test lane).

use std::cell::RefCell;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use gfs_nn::{loss, Adam, Graph, Linear, Optimizer, Param, Var};

use crate::dataset::{Normalizer, OrgDataset, Sample};
use crate::decompose::DecomposeScratch;
use crate::models::{minibatches, FitReport, Forecast, Forecaster, TrainConfig};
use crate::timing::TrainTimer;

const MA_WINDOW: usize = 25;

/// The DLinear point forecaster.
#[derive(Debug)]
pub struct DLinear {
    head_trend: Linear,
    head_cyclical: Linear,
    norm: Normalizer,
    input_len: usize,
    horizon: usize,
    graph: RefCell<Graph>,
    scratch: RefCell<(Vec<f64>, DecomposeScratch)>,
}

impl DLinear {
    /// Creates a model shaped for `data`.
    #[must_use]
    pub fn new(data: &OrgDataset, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        DLinear {
            head_trend: Linear::new(data.input_len(), data.horizon(), &mut rng),
            head_cyclical: Linear::new(data.input_len(), data.horizon(), &mut rng),
            norm: data.normalizer(0.8),
            input_len: data.input_len(),
            horizon: data.horizon(),
            graph: RefCell::new(Graph::new()),
            scratch: RefCell::new((vec![0.0; data.input_len()], DecomposeScratch::default())),
        }
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.head_trend.params();
        p.extend(self.head_cyclical.params());
        p
    }

    fn forward(&self, g: &mut Graph, data: &OrgDataset, batch: &[Sample]) -> Var {
        let b = batch.len();
        let l = self.input_len;
        let tv = g.constant_slot(b, l);
        let cv = g.constant_slot(b, l);
        {
            let (trend_m, cyc_m) = g.two_slots_mut(tv, cv);
            let mut scratch = self.scratch.borrow_mut();
            let (window, decomp) = &mut *scratch;
            for (r, s) in batch.iter().enumerate() {
                for (slot, &x) in window.iter_mut().zip(data.input(*s)) {
                    *slot = self.norm.norm(s.org, x);
                }
                decomp.decompose_into(
                    window,
                    MA_WINDOW,
                    &mut trend_m[r * l..(r + 1) * l],
                    &mut cyc_m[r * l..(r + 1) * l],
                );
            }
        }
        let yt = self.head_trend.forward(g, tv);
        let yc = self.head_cyclical.forward(g, cv);
        g.add(yt, yc)
    }
}

impl Forecaster for DLinear {
    fn name(&self) -> &'static str {
        "DLinear"
    }

    fn fit(&mut self, data: &OrgDataset, cfg: &TrainConfig) -> FitReport {
        let start = TrainTimer::start();
        self.norm = data.normalizer(cfg.train_frac);
        let (train, _) = data.split(cfg.stride, cfg.train_frac);
        let mut opt = Adam::new(self.params(), cfg.lr);
        let mut final_loss = f64::NAN;
        for epoch in 0..cfg.epochs {
            let mut total = 0.0;
            let mut n = 0usize;
            for batch in minibatches(&train, cfg.batch_size, cfg.seed, epoch) {
                let mut g = self.graph.borrow_mut();
                g.reset();
                let pred = self.forward(&mut g, data, &batch);
                let t = g.constant_slot(batch.len(), self.horizon);
                let tgt = g.slot_mut(t);
                for (r, s) in batch.iter().enumerate() {
                    for (c, &y) in data.target(*s).iter().enumerate() {
                        tgt[r * self.horizon + c] = self.norm.norm(s.org, y);
                    }
                }
                let l = loss::mse(&mut g, pred, t);
                total += g.value(l).item();
                n += 1;
                g.backward(l);
                opt.step();
            }
            final_loss = total / n.max(1) as f64;
        }
        FitReport {
            train_time_secs: start.elapsed_secs(),
            final_loss,
            samples: train.len(),
        }
    }

    fn predict(&self, data: &OrgDataset, sample: Sample) -> Forecast {
        let mut g = self.graph.borrow_mut();
        g.reset();
        let pred = self.forward(&mut g, data, &[sample]);
        g.finish();
        Forecast::point(
            g.value(pred)
                .as_slice()
                .iter()
                .map(|&z| self.norm.denorm(sample.org, z))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::OrgInfo;

    fn data() -> OrgDataset {
        let series = vec![(0..500)
            .map(|i| 40.0 + 8.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).cos())
            .collect::<Vec<_>>()];
        let orgs = vec![OrgInfo {
            name: "A".into(),
            attrs: vec![],
        }];
        OrgDataset::new(series, orgs, vec![], vec![], 96, 12).unwrap()
    }

    #[test]
    fn fit_and_predict() {
        let d = data();
        let mut m = DLinear::new(&d, 1);
        let r = m.fit(&d, &TrainConfig::fast());
        assert!(r.final_loss.is_finite());
        let f = m.predict(&d, Sample { org: 0, start: 300 });
        assert_eq!(f.mean.len(), 12);
        assert!(f.std.is_none(), "DLinear is a point model");
        assert!(!m.is_probabilistic());
    }

    #[test]
    fn captures_diurnal_cycle() {
        let d = data();
        let mut cfg = TrainConfig::fast();
        cfg.epochs = 30;
        // stride must be coprime with the 24 h period so training windows
        // cover every phase; otherwise the head memorises two inputs
        cfg.stride = 5;
        let mut m = DLinear::new(&d, 2);
        m.fit(&d, &cfg);
        let s = Sample { org: 0, start: 320 };
        let f = m.predict(&d, s);
        let err = crate::metrics::mae(&f.mean, d.target(s));
        assert!(
            err < 3.0,
            "diurnal sine should be near-exactly linear-predictable, got {err}"
        );
    }
}
