//! FEDformer baseline (Zhou et al., ICML'22): frequency-enhanced
//! decomposition. The cyclical component is projected onto the `K` lowest
//! Fourier modes with fixed DFT matrices, mixed by a learnable MLP in the
//! frequency domain, and mapped to the horizon; the trend takes a direct
//! linear path.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use gfs_nn::{Graph, Linear, Param, Tensor, Var};

use crate::dataset::{Normalizer, OrgDataset, Sample};
use crate::decompose::decompose;
use crate::models::seq::{fit_seq, predict_seq, SeqModel};
use crate::models::{FitReport, Forecast, Forecaster, TrainConfig};

const MA_WINDOW: usize = 25;

/// Builds the `K × L` cosine and sine DFT analysis matrices.
fn dft_matrices(l: usize, k: usize) -> (Tensor, Tensor) {
    let mut cos_m = Tensor::zeros(k, l);
    let mut sin_m = Tensor::zeros(k, l);
    for f in 0..k {
        for t in 0..l {
            let angle = std::f64::consts::TAU * f as f64 * t as f64 / l as f64;
            cos_m[(f, t)] = angle.cos() / l as f64;
            sin_m[(f, t)] = angle.sin() / l as f64;
        }
    }
    (cos_m, sin_m)
}

/// FEDformer-style frequency-domain point forecaster.
#[derive(Debug)]
pub struct FedformerForecaster {
    freq_mix: Linear,
    head_freq: Linear,
    head_trend: Linear,
    cos_m: Tensor,
    sin_m: Tensor,
    modes: usize,
    norm: Normalizer,
}

impl FedformerForecaster {
    /// Creates a model shaped for `data`, retaining the
    /// `K = min(16, L/2)` lowest frequency modes.
    #[must_use]
    pub fn new(data: &OrgDataset, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let l = data.input_len();
        let modes = 16.min(l / 2).max(2);
        let (cos_m, sin_m) = dft_matrices(l, modes);
        FedformerForecaster {
            freq_mix: Linear::new(2 * modes, 2 * modes, &mut rng),
            head_freq: Linear::new(2 * modes, data.horizon(), &mut rng),
            head_trend: Linear::new(l, data.horizon(), &mut rng),
            cos_m,
            sin_m,
            modes,
            norm: data.normalizer(0.8),
        }
    }

    /// Number of retained Fourier modes `K`.
    #[must_use]
    pub fn modes(&self) -> usize {
        self.modes
    }
}

impl SeqModel for FedformerForecaster {
    fn forward_sample(&self, g: &mut Graph, data: &OrgDataset, s: Sample) -> Var {
        let window: Vec<f64> = data
            .input(s)
            .iter()
            .map(|&x| self.norm.norm(s.org, x))
            .collect();
        let (trend, cyc) = decompose(&window, MA_WINDOW);

        // frequency path over the cyclical component
        let x = g.constant(Tensor::col(&cyc)); // L × 1
        let cm = g.constant(self.cos_m.clone());
        let sm = g.constant(self.sin_m.clone());
        let fc = g.matmul(cm, x); // K × 1
        let fs = g.matmul(sm, x); // K × 1
        let fc_row = g.transpose(fc);
        let fs_row = g.transpose(fs);
        let coeffs = g.concat_cols(&[fc_row, fs_row]); // 1 × 2K
        let mixed = self.freq_mix.forward(g, coeffs);
        let mixed = g.relu(mixed);
        let y_freq = self.head_freq.forward(g, mixed);

        // trend path
        let trend_row = g.constant(Tensor::row(&trend));
        let y_trend = self.head_trend.forward(g, trend_row);

        g.add(y_freq, y_trend)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.freq_mix.params();
        p.extend(self.head_freq.params());
        p.extend(self.head_trend.params());
        p
    }

    fn norm(&self) -> &Normalizer {
        &self.norm
    }

    fn set_norm(&mut self, norm: Normalizer) {
        self.norm = norm;
    }
}

impl Forecaster for FedformerForecaster {
    fn name(&self) -> &'static str {
        "FEDformer"
    }

    fn fit(&mut self, data: &OrgDataset, cfg: &TrainConfig) -> FitReport {
        fit_seq(self, data, cfg)
    }

    fn predict(&self, data: &OrgDataset, sample: Sample) -> Forecast {
        predict_seq(self, data, sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::OrgInfo;

    #[test]
    fn dft_dc_mode_is_mean() {
        let (cos_m, _) = dft_matrices(8, 2);
        let x = Tensor::col(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let c = cos_m.matmul(&x);
        assert!((c[(0, 0)] - 4.5).abs() < 1e-12, "mode 0 is the series mean");
    }

    #[test]
    fn fit_and_predict_shapes() {
        let series = vec![(0..300)
            .map(|i| 10.0 + ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect::<Vec<_>>()];
        let orgs = vec![OrgInfo {
            name: "A".into(),
            attrs: vec![],
        }];
        let data = OrgDataset::new(series, orgs, vec![], vec![], 48, 6).unwrap();
        let mut m = FedformerForecaster::new(&data, 9);
        assert_eq!(m.modes(), 16);
        let mut cfg = TrainConfig::fast();
        cfg.epochs = 3;
        let r = m.fit(&data, &cfg);
        assert!(r.final_loss.is_finite());
        let f = m.predict(&data, Sample { org: 0, start: 200 });
        assert_eq!(f.mean.len(), 6);
    }
}
