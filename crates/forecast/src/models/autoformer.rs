//! Autoformer baseline (Wu et al., NeurIPS'21): series decomposition inside
//! the architecture — attention operates on the cyclical (seasonal)
//! component while the trend takes a direct linear path, and the two heads
//! are summed.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use gfs_nn::{Attention, Graph, Linear, Param, Tensor, Var};

use crate::dataset::{Normalizer, OrgDataset, Sample};
use crate::decompose::decompose;
use crate::models::seq::{fit_seq, predict_seq, SeqModel};
use crate::models::{
    mean_pool_matrix, positional_encoding, FitReport, Forecast, Forecaster, TrainConfig,
};

const MODEL_DIM: usize = 8;
const MA_WINDOW: usize = 25;

/// Autoformer-style decomposition-attention point forecaster.
#[derive(Debug)]
pub struct AutoformerForecaster {
    proj: Linear,
    attn: Attention,
    head_seasonal: Linear,
    head_trend: Linear,
    norm: Normalizer,
}

impl AutoformerForecaster {
    /// Creates a model shaped for `data`.
    #[must_use]
    pub fn new(data: &OrgDataset, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        AutoformerForecaster {
            proj: Linear::new(1, MODEL_DIM, &mut rng),
            attn: Attention::new(MODEL_DIM, &mut rng),
            head_seasonal: Linear::new(MODEL_DIM, data.horizon(), &mut rng),
            head_trend: Linear::new(data.input_len(), data.horizon(), &mut rng),
            norm: data.normalizer(0.8),
        }
    }
}

impl SeqModel for AutoformerForecaster {
    fn forward_sample(&self, g: &mut Graph, data: &OrgDataset, s: Sample) -> Var {
        let l = data.input_len();
        let window: Vec<f64> = data
            .input(s)
            .iter()
            .map(|&x| self.norm.norm(s.org, x))
            .collect();
        let (trend, cyc) = decompose(&window, MA_WINDOW);

        // seasonal path: attention over the cyclical tokens
        let cyc_col = g.constant(Tensor::col(&cyc));
        let tokens = self.proj.forward(g, cyc_col);
        let pe = g.constant(positional_encoding(l, MODEL_DIM));
        let tokens = g.add(tokens, pe);
        let att = self.attn.forward(g, tokens);
        let res = g.add(tokens, att);
        let pool = g.constant(mean_pool_matrix(l));
        let pooled = g.matmul(pool, res);
        let y_seasonal = self.head_seasonal.forward(g, pooled);

        // trend path: direct linear extrapolation
        let trend_row = g.constant(Tensor::row(&trend));
        let y_trend = self.head_trend.forward(g, trend_row);

        g.add(y_seasonal, y_trend)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.proj.params();
        p.extend(self.attn.params());
        p.extend(self.head_seasonal.params());
        p.extend(self.head_trend.params());
        p
    }

    fn norm(&self) -> &Normalizer {
        &self.norm
    }

    fn set_norm(&mut self, norm: Normalizer) {
        self.norm = norm;
    }
}

impl Forecaster for AutoformerForecaster {
    fn name(&self) -> &'static str {
        "Autoformer"
    }

    fn fit(&mut self, data: &OrgDataset, cfg: &TrainConfig) -> FitReport {
        fit_seq(self, data, cfg)
    }

    fn predict(&self, data: &OrgDataset, sample: Sample) -> Forecast {
        predict_seq(self, data, sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::OrgInfo;

    #[test]
    fn fit_and_predict_shapes() {
        let series = vec![(0..240)
            .map(|i| 20.0 + 0.05 * i as f64 + 3.0 * ((i % 24) as f64).sin())
            .collect::<Vec<_>>()];
        let orgs = vec![OrgInfo {
            name: "A".into(),
            attrs: vec![],
        }];
        let data = OrgDataset::new(series, orgs, vec![], vec![], 48, 6).unwrap();
        let mut m = AutoformerForecaster::new(&data, 3);
        let mut cfg = TrainConfig::fast();
        cfg.epochs = 2;
        let r = m.fit(&data, &cfg);
        assert!(r.final_loss.is_finite());
        let f = m.predict(&data, Sample { org: 0, start: 140 });
        assert_eq!(f.mean.len(), 6);
    }
}
