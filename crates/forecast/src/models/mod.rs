//! Forecasting models: OrgLinear (§3.2) and the six baselines of §4.6.1.

mod autoformer;
mod deepar;
mod dlinear;
mod fedformer;
mod informer;
mod naive;
mod orglinear;
mod seq;
mod transformer;

pub use autoformer::AutoformerForecaster;
pub use deepar::DeepAr;
pub use dlinear::DLinear;
pub use fedformer::FedformerForecaster;
pub use informer::InformerForecaster;
pub use naive::{LastWeekPeak, SeasonalNaive};
pub use orglinear::OrgLinear;
pub use transformer::TransformerForecaster;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::dataset::{OrgDataset, Sample};

/// A (possibly probabilistic) multi-step forecast in GPU units.
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast {
    /// Predicted mean per horizon step (`μ̂` of Eq. 6).
    pub mean: Vec<f64>,
    /// Predicted standard deviation per step (`σ̂` of Eq. 7), when the
    /// model is probabilistic.
    pub std: Option<Vec<f64>>,
}

impl Forecast {
    /// A point forecast with no uncertainty estimate.
    #[must_use]
    pub fn point(mean: Vec<f64>) -> Self {
        Forecast { mean, std: None }
    }

    /// Upper bound of the forecast at guarantee rate `p` per step; for
    /// point forecasts this is the mean itself.
    #[must_use]
    pub fn quantile(&self, p: f64) -> Vec<f64> {
        match &self.std {
            None => self.mean.clone(),
            Some(stds) => self
                .mean
                .iter()
                .zip(stds)
                .map(|(&m, &s)| crate::stats::gaussian_quantile(p, m, s))
                .collect(),
        }
    }
}

/// Hyper-parameters shared by every trainable model.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training windows.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG seed controlling init and shuffling.
    pub seed: u64,
    /// Sample stride in hours when cutting windows.
    pub stride: usize,
    /// Fraction of the timeline used for training.
    pub train_frac: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 32,
            lr: 0.01,
            seed: 7,
            stride: 6,
            train_frac: 0.8,
        }
    }
}

impl TrainConfig {
    /// A deliberately tiny configuration for unit tests.
    #[must_use]
    pub fn fast() -> Self {
        TrainConfig {
            epochs: 3,
            batch_size: 16,
            lr: 0.02,
            seed: 7,
            stride: 12,
            train_frac: 0.8,
        }
    }
}

/// Outcome of a [`Forecaster::fit`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Wall-clock training time, seconds.
    pub train_time_secs: f64,
    /// Final epoch's mean training loss.
    pub final_loss: f64,
    /// Number of training windows used.
    pub samples: usize,
}

/// A demand forecasting model over an [`OrgDataset`].
pub trait Forecaster {
    /// Display name used in reports.
    fn name(&self) -> &'static str;

    /// Whether [`Forecaster::predict`] produces calibrated standard
    /// deviations.
    fn is_probabilistic(&self) -> bool {
        false
    }

    /// Trains on the chronological training split of `data`.
    fn fit(&mut self, data: &OrgDataset, cfg: &TrainConfig) -> FitReport;

    /// Forecasts the horizon of one sample window.
    fn predict(&self, data: &OrgDataset, sample: Sample) -> Forecast;

    /// Forecasts a batch of sample windows.
    ///
    /// The default loops [`Forecaster::predict`]; models whose forward
    /// pass is batched (e.g. `OrgLinear`) override this with a single
    /// graph pass whose per-row results are bit-identical to the
    /// one-at-a-time path. The GDE aggregation loop in `gfs_core` calls
    /// this once per tick with every org's window.
    fn predict_many(&self, data: &OrgDataset, samples: &[Sample]) -> Vec<Forecast> {
        samples.iter().map(|&s| self.predict(data, s)).collect()
    }
}

/// Shuffles `samples` into mini-batches, deterministic in `(seed, epoch)`.
///
/// Public so the `forecast-alloc-gate` test lane can price the per-step
/// batching overhead separately from the training step itself.
#[must_use]
pub fn minibatches(
    samples: &[Sample],
    batch_size: usize,
    seed: u64,
    epoch: usize,
) -> Vec<Vec<Sample>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9));
    let mut order: Vec<Sample> = samples.to_vec();
    order.shuffle(&mut rng);
    order
        .chunks(batch_size.max(1))
        .map(<[Sample]>::to_vec)
        .collect()
}

/// Sinusoidal positional encoding table (`L × d`), shared by the
/// attention-based baselines.
#[must_use]
pub(crate) fn positional_encoding(len: usize, dim: usize) -> gfs_nn::Tensor {
    let mut t = gfs_nn::Tensor::zeros(len, dim);
    for pos in 0..len {
        for i in 0..dim {
            let angle = pos as f64 / 10_000f64.powf(2.0 * (i / 2) as f64 / dim as f64);
            t[(pos, i)] = if i % 2 == 0 { angle.sin() } else { angle.cos() };
        }
    }
    t
}

/// `1 × L` averaging matrix for mean-pooling a sequence representation.
#[must_use]
pub(crate) fn mean_pool_matrix(len: usize) -> gfs_nn::Tensor {
    gfs_nn::Tensor::full(1, len, 1.0 / len as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forecast_quantile_point_is_mean() {
        let f = Forecast::point(vec![1.0, 2.0]);
        assert_eq!(f.quantile(0.95), vec![1.0, 2.0]);
    }

    #[test]
    fn forecast_quantile_probabilistic_exceeds_mean() {
        let f = Forecast {
            mean: vec![10.0],
            std: Some(vec![2.0]),
        };
        assert!(f.quantile(0.95)[0] > 10.0);
        assert!(f.quantile(0.05)[0] < 10.0);
    }

    #[test]
    fn minibatches_cover_all_samples() {
        let samples: Vec<Sample> = (0..25).map(|i| Sample { org: 0, start: i }).collect();
        let batches = minibatches(&samples, 8, 1, 0);
        let total: usize = batches.iter().map(Vec::len).sum();
        assert_eq!(total, 25);
        assert_eq!(batches.len(), 4);
    }

    #[test]
    fn minibatches_deterministic_per_epoch() {
        let samples: Vec<Sample> = (0..10).map(|i| Sample { org: 0, start: i }).collect();
        assert_eq!(
            minibatches(&samples, 4, 9, 3),
            minibatches(&samples, 4, 9, 3)
        );
        assert_ne!(
            minibatches(&samples, 4, 9, 3),
            minibatches(&samples, 4, 9, 4)
        );
    }

    #[test]
    fn positional_encoding_shape_and_range() {
        let pe = positional_encoding(16, 8);
        assert_eq!(pe.shape(), (16, 8));
        assert!(pe.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn mean_pool_matrix_sums_to_one() {
        let m = mean_pool_matrix(10);
        assert!((m.sum() - 1.0).abs() < 1e-12);
    }
}
