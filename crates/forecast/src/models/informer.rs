//! Informer baseline (Zhou et al., AAAI'21). The hallmark of Informer is
//! cheaper attention over long windows via sparsity + self-attention
//! *distilling* (halving the sequence between blocks); we reproduce the
//! distilling pyramid: embed → attend → halve → attend → pool → head.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use gfs_nn::{Attention, Graph, Linear, Param, Var};

use crate::dataset::{Normalizer, OrgDataset, Sample};
use crate::models::seq::{fit_seq, halving_pool_matrix, predict_seq, window_column, SeqModel};
use crate::models::{
    mean_pool_matrix, positional_encoding, FitReport, Forecast, Forecaster, TrainConfig,
};

const MODEL_DIM: usize = 8;

/// Informer-style distilled-attention point forecaster.
#[derive(Debug)]
pub struct InformerForecaster {
    proj: Linear,
    attn1: Attention,
    attn2: Attention,
    head: Linear,
    norm: Normalizer,
}

impl InformerForecaster {
    /// Creates a model shaped for `data`.
    #[must_use]
    pub fn new(data: &OrgDataset, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        InformerForecaster {
            proj: Linear::new(1, MODEL_DIM, &mut rng),
            attn1: Attention::new(MODEL_DIM, &mut rng),
            attn2: Attention::new(MODEL_DIM, &mut rng),
            head: Linear::new(MODEL_DIM, data.horizon(), &mut rng),
            norm: data.normalizer(0.8),
        }
    }
}

impl SeqModel for InformerForecaster {
    fn forward_sample(&self, g: &mut Graph, data: &OrgDataset, s: Sample) -> Var {
        let l = data.input_len();
        let x = g.constant(window_column(data, &self.norm, s));
        let tokens = self.proj.forward(g, x);
        let pe = g.constant(positional_encoding(l, MODEL_DIM));
        let tokens = g.add(tokens, pe);
        let a1 = self.attn1.forward(g, tokens);
        let r1 = g.add(tokens, a1);
        // distilling: halve the sequence
        let pool_half = g.constant(halving_pool_matrix(l));
        let distilled = g.matmul(pool_half, r1); // ⌈L/2⌉ × d
        let a2 = self.attn2.forward(g, distilled);
        let r2 = g.add(distilled, a2);
        let pool = g.constant(mean_pool_matrix(l.div_ceil(2)));
        let pooled = g.matmul(pool, r2);
        self.head.forward(g, pooled)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.proj.params();
        p.extend(self.attn1.params());
        p.extend(self.attn2.params());
        p.extend(self.head.params());
        p
    }

    fn norm(&self) -> &Normalizer {
        &self.norm
    }

    fn set_norm(&mut self, norm: Normalizer) {
        self.norm = norm;
    }
}

impl Forecaster for InformerForecaster {
    fn name(&self) -> &'static str {
        "Informer"
    }

    fn fit(&mut self, data: &OrgDataset, cfg: &TrainConfig) -> FitReport {
        fit_seq(self, data, cfg)
    }

    fn predict(&self, data: &OrgDataset, sample: Sample) -> Forecast {
        predict_seq(self, data, sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::OrgInfo;

    #[test]
    fn fit_and_predict_shapes() {
        let series = vec![(0..240).map(|i| (i % 24) as f64).collect::<Vec<_>>()];
        let orgs = vec![OrgInfo {
            name: "A".into(),
            attrs: vec![],
        }];
        let data = OrgDataset::new(series, orgs, vec![], vec![], 48, 6).unwrap();
        let mut m = InformerForecaster::new(&data, 2);
        let mut cfg = TrainConfig::fast();
        cfg.epochs = 2;
        let r = m.fit(&data, &cfg);
        assert!(r.final_loss.is_finite());
        let f = m.predict(&data, Sample { org: 0, start: 150 });
        assert_eq!(f.mean.len(), 6);
    }

    #[test]
    fn odd_window_length_supported() {
        let series = vec![(0..200).map(|i| (i % 5) as f64).collect::<Vec<_>>()];
        let orgs = vec![OrgInfo {
            name: "A".into(),
            attrs: vec![],
        }];
        let data = OrgDataset::new(series, orgs, vec![], vec![], 49, 4).unwrap();
        let m = InformerForecaster::new(&data, 2);
        let mut g = Graph::new();
        let y = m.forward_sample(&mut g, &data, Sample { org: 0, start: 3 });
        assert_eq!(g.value(y).shape(), (1, 4));
    }
}
