//! Gaussian distribution utilities.
//!
//! The SQA converts OrgLinear's `(μ, σ)` forecasts into high-guarantee
//! demand upper bounds with the inverse CDF at the target guarantee rate
//! `p` (Eq. 9); this module provides that ICDF plus the forward CDF used by
//! tests and calibration checks.

/// Standard normal cumulative distribution function `Φ(x)`.
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function, Numerical-Recipes rational approximation
/// (absolute error < 1.2e-7, ample for quota decisions on integer GPUs).
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal inverse CDF `Φ⁻¹(p)` via Acklam's algorithm
/// (relative error < 1.15e-9 over `(0, 1)`).
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
#[must_use]
pub fn normal_icdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "quantile level must lie in (0, 1), got {p}"
    );

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Quantile of `N(mu, sigma²)` at level `p`: the
/// `ICDF(p, μ̂, σ̂)` of §3.3.1.
#[must_use]
pub fn gaussian_quantile(p: f64, mu: f64, sigma: f64) -> f64 {
    mu + sigma * normal_icdf(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icdf_known_values() {
        assert!(normal_icdf(0.5).abs() < 1e-9);
        assert!((normal_icdf(0.975) - 1.959_964).abs() < 1e-4);
        assert!((normal_icdf(0.9) - 1.281_552).abs() < 1e-4);
        assert!((normal_icdf(0.95) - 1.644_854).abs() < 1e-4);
    }

    #[test]
    fn icdf_is_antisymmetric() {
        for p in [0.01, 0.2, 0.3, 0.45] {
            assert!((normal_icdf(p) + normal_icdf(1.0 - p)).abs() < 1e-8);
        }
    }

    #[test]
    fn cdf_inverts_icdf() {
        for p in [0.001, 0.05, 0.3, 0.5, 0.77, 0.99, 0.9999] {
            let x = normal_icdf(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p = {p}");
        }
    }

    #[test]
    fn gaussian_quantile_scales() {
        let q = gaussian_quantile(0.9, 100.0, 10.0);
        assert!((q - 112.815_52).abs() < 1e-2);
        // the median is the mean
        assert!((gaussian_quantile(0.5, 42.0, 7.0) - 42.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "quantile level")]
    fn icdf_rejects_unit_bounds() {
        let _ = normal_icdf(1.0);
    }

    #[test]
    fn erfc_endpoints() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!(erfc(5.0) < 1e-10);
        assert!((erfc(-5.0) - 2.0).abs() < 1e-10);
    }
}
