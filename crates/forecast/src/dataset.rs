//! Per-organization demand dataset: hourly series, business attributes,
//! temporal features and sliding-window supervision.

use gfs_types::{Error, Result};

/// Static description of one organization in the dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrgInfo {
    /// Human-readable name ("Organization A", …).
    pub name: String,
    /// Business attribute ids, one per attribute slot (cluster affiliation,
    /// preferred GPU model, business unit…), as modelled by Eq. 4.
    pub attrs: Vec<usize>,
}

/// A supervised window: the model reads
/// `series[org][start .. start + input_len]` and predicts the following
/// `horizon` hours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Organization index.
    pub org: usize,
    /// Index of the first input hour.
    pub start: usize,
}

/// Per-organization z-score normalizer.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Normalizer {
    /// Normalizes a raw value for organization `org`.
    #[must_use]
    pub fn norm(&self, org: usize, x: f64) -> f64 {
        (x - self.mean[org]) / self.std[org]
    }

    /// Restores a normalized mean prediction to GPU units.
    #[must_use]
    pub fn denorm(&self, org: usize, z: f64) -> f64 {
        z * self.std[org] + self.mean[org]
    }

    /// Restores a normalized standard deviation to GPU units.
    #[must_use]
    pub fn denorm_std(&self, org: usize, z: f64) -> f64 {
        z * self.std[org]
    }

    /// The per-org standard deviation used for scaling.
    #[must_use]
    pub fn std(&self, org: usize) -> f64 {
        self.std[org]
    }
}

/// The demand-forecasting dataset consumed by every model in this crate.
///
/// # Examples
///
/// ```
/// use gfs_forecast::dataset::{OrgDataset, OrgInfo};
///
/// let series = vec![(0..400).map(|i| (i % 24) as f64).collect::<Vec<_>>()];
/// let orgs = vec![OrgInfo { name: "A".into(), attrs: vec![0, 1] }];
/// let data = OrgDataset::new(series, orgs, vec![2, 3], vec![], 168, 24).unwrap();
/// assert_eq!(data.num_orgs(), 1);
/// assert!(!data.samples(24).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct OrgDataset {
    series: Vec<Vec<f64>>,
    orgs: Vec<OrgInfo>,
    attr_vocab: Vec<usize>,
    holidays: Vec<bool>,
    input_len: usize,
    horizon: usize,
    hour_offset: usize,
}

impl OrgDataset {
    /// Assembles a dataset.
    ///
    /// `holidays` flags each *day* index as a holiday (may be shorter than
    /// the series; missing days default to non-holiday).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Shape`] if series/org counts differ, attribute ids
    /// exceed their vocabulary, series lengths are inconsistent or too short
    /// for one window.
    pub fn new(
        series: Vec<Vec<f64>>,
        orgs: Vec<OrgInfo>,
        attr_vocab: Vec<usize>,
        holidays: Vec<bool>,
        input_len: usize,
        horizon: usize,
    ) -> Result<Self> {
        if series.len() != orgs.len() {
            return Err(Error::Shape(format!(
                "{} series vs {} orgs",
                series.len(),
                orgs.len()
            )));
        }
        if series.is_empty() {
            return Err(Error::Shape(
                "dataset needs at least one organization".into(),
            ));
        }
        let len = series[0].len();
        if series.iter().any(|s| s.len() != len) {
            return Err(Error::Shape("all series must share one length".into()));
        }
        if len < input_len + horizon {
            return Err(Error::Shape(format!(
                "series length {len} shorter than one window ({input_len}+{horizon})"
            )));
        }
        for org in &orgs {
            if org.attrs.len() != attr_vocab.len() {
                return Err(Error::Shape(format!(
                    "org {} has {} attrs, expected {}",
                    org.name,
                    org.attrs.len(),
                    attr_vocab.len()
                )));
            }
            for (slot, (&a, &v)) in org.attrs.iter().zip(&attr_vocab).enumerate() {
                if a >= v {
                    return Err(Error::Shape(format!(
                        "org {} attr slot {slot} id {a} out of vocab {v}",
                        org.name
                    )));
                }
            }
        }
        Ok(OrgDataset {
            series,
            orgs,
            attr_vocab,
            holidays,
            input_len,
            horizon,
            hour_offset: 0,
        })
    }

    /// Shifts the temporal phase: hour index `i` of the series is treated
    /// as absolute hour `i + offset`. Used when forecasting from a rolling
    /// window that does not start at the epoch.
    #[must_use]
    pub fn with_hour_offset(mut self, offset: usize) -> Self {
        self.hour_offset = offset;
        self
    }

    /// In-place variant of [`OrgDataset::with_hour_offset`], for reusable
    /// scratch datasets on hot forecast paths.
    pub fn set_hour_offset(&mut self, offset: usize) {
        self.hour_offset = offset;
    }

    /// Mutable access to one org's hourly series, for reusable scratch
    /// datasets: values may be overwritten, the length is fixed (the shape
    /// invariants were validated at construction).
    pub fn series_mut(&mut self, org: usize) -> &mut [f64] {
        &mut self.series[org]
    }

    /// Number of organizations.
    #[must_use]
    pub fn num_orgs(&self) -> usize {
        self.orgs.len()
    }

    /// Length of each hourly series.
    #[must_use]
    pub fn len_hours(&self) -> usize {
        self.series[0].len()
    }

    /// Input window length `L`.
    #[must_use]
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Forecast horizon `H`.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Vocabulary size per business-attribute slot.
    #[must_use]
    pub fn attr_vocab(&self) -> &[usize] {
        &self.attr_vocab
    }

    /// Metadata of organization `org`.
    #[must_use]
    pub fn org(&self, org: usize) -> &OrgInfo {
        &self.orgs[org]
    }

    /// Full hourly series of organization `org`.
    #[must_use]
    pub fn series(&self, org: usize) -> &[f64] {
        &self.series[org]
    }

    /// Input window of a sample.
    #[must_use]
    pub fn input(&self, s: Sample) -> &[f64] {
        &self.series[s.org][s.start..s.start + self.input_len]
    }

    /// Target horizon of a sample.
    #[must_use]
    pub fn target(&self, s: Sample) -> &[f64] {
        let t0 = s.start + self.input_len;
        &self.series[s.org][t0..t0 + self.horizon]
    }

    /// Absolute hour index at which a sample's forecast starts.
    #[must_use]
    pub fn forecast_start(&self, s: Sample) -> usize {
        s.start + self.input_len
    }

    /// `(hour-of-day, weekday, holiday)` categorical ids for an absolute
    /// hour index — the inputs of the temporal embedding (Eq. 3).
    #[must_use]
    pub fn temporal_ids(&self, hour: usize) -> (usize, usize, usize) {
        let abs = hour + self.hour_offset;
        let day = abs / 24;
        let hod = abs % 24;
        let weekday = day % 7;
        let holiday = usize::from(self.holidays.get(day).copied().unwrap_or(false));
        (hod, weekday, holiday)
    }

    /// All valid samples with the given start stride, ordered by
    /// `(start, org)`.
    #[must_use]
    pub fn samples(&self, stride: usize) -> Vec<Sample> {
        let stride = stride.max(1);
        let mut out = Vec::new();
        let max_start = self.len_hours() - self.input_len - self.horizon;
        let mut start = 0;
        while start <= max_start {
            for org in 0..self.num_orgs() {
                out.push(Sample { org, start });
            }
            start += stride;
        }
        out
    }

    /// Splits samples chronologically: windows whose *forecast* falls in the
    /// first `train_frac` of the timeline train, the rest test.
    #[must_use]
    pub fn split(&self, stride: usize, train_frac: f64) -> (Vec<Sample>, Vec<Sample>) {
        let cut = (self.len_hours() as f64 * train_frac) as usize;
        let all = self.samples(stride);
        let mut train = Vec::new();
        let mut test = Vec::new();
        for s in all {
            if self.forecast_start(s) + self.horizon <= cut {
                train.push(s);
            } else {
                test.push(s);
            }
        }
        (train, test)
    }

    /// Per-org z-score normalizer fitted on the first `frac` of each series.
    #[must_use]
    pub fn normalizer(&self, frac: f64) -> Normalizer {
        let cut = ((self.len_hours() as f64 * frac) as usize).max(2);
        let mut mean = Vec::with_capacity(self.num_orgs());
        let mut std = Vec::with_capacity(self.num_orgs());
        for s in &self.series {
            let head = &s[..cut.min(s.len())];
            let m = head.iter().sum::<f64>() / head.len() as f64;
            let v = head.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / head.len() as f64;
            mean.push(m);
            std.push(v.sqrt().max(1e-6));
        }
        Normalizer { mean, std }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> OrgDataset {
        let series: Vec<Vec<f64>> = (0..2)
            .map(|o| {
                (0..500)
                    .map(|i| (i % 24) as f64 + o as f64 * 10.0)
                    .collect()
            })
            .collect();
        let orgs = vec![
            OrgInfo {
                name: "A".into(),
                attrs: vec![0, 0],
            },
            OrgInfo {
                name: "B".into(),
                attrs: vec![1, 2],
            },
        ];
        OrgDataset::new(series, orgs, vec![2, 3], vec![false, true], 168, 24).unwrap()
    }

    #[test]
    fn windows_line_up() {
        let d = toy();
        let s = Sample { org: 0, start: 10 };
        assert_eq!(d.input(s).len(), 168);
        assert_eq!(d.target(s).len(), 24);
        assert_eq!(d.input(s)[0], 10.0 % 24.0);
        assert_eq!(d.forecast_start(s), 178);
    }

    #[test]
    fn temporal_ids_wrap() {
        let d = toy();
        assert_eq!(d.temporal_ids(0), (0, 0, 0));
        assert_eq!(d.temporal_ids(25), (1, 1, 1), "day 1 is flagged holiday");
        assert_eq!(d.temporal_ids(24 * 7 + 3), (3, 0, 0));
    }

    #[test]
    fn samples_cover_series() {
        let d = toy();
        let samples = d.samples(24);
        assert!(!samples.is_empty());
        let max_start = samples.iter().map(|s| s.start).max().unwrap();
        assert!(max_start + 168 + 24 <= 500);
        // both orgs at each start
        assert_eq!(samples.iter().filter(|s| s.start == 0).count(), 2);
    }

    #[test]
    fn split_is_chronological() {
        let d = toy();
        let (train, test) = d.split(12, 0.7);
        assert!(!train.is_empty() && !test.is_empty());
        let max_train = train.iter().map(|s| d.forecast_start(*s)).max().unwrap();
        let min_test = test.iter().map(|s| d.forecast_start(*s)).min().unwrap();
        assert!(max_train < min_test + d.horizon());
    }

    #[test]
    fn normalizer_round_trips() {
        let d = toy();
        let n = d.normalizer(0.8);
        let x = 17.0;
        let z = n.norm(1, x);
        assert!((n.denorm(1, z) - x).abs() < 1e-9);
        assert!(n.std(1) > 0.0);
    }

    #[test]
    fn new_validates_shapes() {
        let orgs = vec![OrgInfo {
            name: "A".into(),
            attrs: vec![0],
        }];
        // attr id out of vocab
        assert!(
            OrgDataset::new(vec![vec![0.0; 300]], orgs.clone(), vec![0], vec![], 100, 10).is_err()
        );
        // series too short
        assert!(
            OrgDataset::new(vec![vec![0.0; 50]], orgs.clone(), vec![1], vec![], 100, 10).is_err()
        );
        // count mismatch
        assert!(OrgDataset::new(vec![], vec![], vec![], vec![], 10, 1).is_err());
        // ok
        assert!(OrgDataset::new(vec![vec![0.0; 300]], orgs, vec![1], vec![], 100, 10).is_ok());
    }

    #[test]
    fn hour_offset_shifts_phase() {
        let d = toy().with_hour_offset(25);
        // local hour 0 is absolute hour 25: hod 1, weekday 1, holiday (day 1)
        assert_eq!(d.temporal_ids(0), (1, 1, 1));
    }

    #[test]
    fn ragged_series_rejected() {
        let orgs = vec![
            OrgInfo {
                name: "A".into(),
                attrs: vec![],
            },
            OrgInfo {
                name: "B".into(),
                attrs: vec![],
            },
        ];
        let r = OrgDataset::new(
            vec![vec![0.0; 300], vec![0.0; 200]],
            orgs,
            vec![],
            vec![],
            100,
            10,
        );
        assert!(r.is_err());
    }
}
