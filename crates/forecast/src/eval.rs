//! End-to-end model evaluation: fit on the chronological training split,
//! score on the held-out windows (Fig. 10 / Table 7).

use crate::dataset::OrgDataset;
use crate::metrics::{self, ModelScores};
use crate::models::{Forecaster, TrainConfig};

/// Trains `model` and scores it on the test split of `data`.
///
/// Point metrics are computed over every `(sample, horizon-step)` pair;
/// quantile metrics only when the model is probabilistic.
pub fn evaluate(model: &mut dyn Forecaster, data: &OrgDataset, cfg: &TrainConfig) -> ModelScores {
    let report = model.fit(data, cfg);
    let (_, test) = data.split(cfg.stride, cfg.train_frac);

    let mut pred = Vec::new();
    let mut actual = Vec::new();
    let mut sigma = Vec::new();
    for s in &test {
        let f = model.predict(data, *s);
        let y = data.target(*s);
        pred.extend_from_slice(&f.mean);
        actual.extend_from_slice(y);
        match &f.std {
            Some(stds) => sigma.extend_from_slice(stds),
            None => sigma.extend(std::iter::repeat_n(0.0, y.len())),
        }
    }

    let probabilistic = model.is_probabilistic();
    ModelScores {
        name: model.name().to_string(),
        mae: metrics::mae(&pred, &actual),
        mse: metrics::mse(&pred, &actual),
        rmse: metrics::rmse(&pred, &actual),
        mape: metrics::mape(&pred, &actual),
        maqe90: probabilistic.then(|| metrics::maqe(0.9, &pred, &sigma, &actual)),
        maqe95: probabilistic.then(|| metrics::maqe(0.95, &pred, &sigma, &actual)),
        train_time_secs: report.train_time_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::OrgInfo;
    use crate::models::{DLinear, LastWeekPeak, OrgLinear};

    fn sine_data() -> OrgDataset {
        let series = vec![(0..500)
            .map(|i| 50.0 + 10.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect::<Vec<_>>()];
        let orgs = vec![OrgInfo {
            name: "A".into(),
            attrs: vec![0],
        }];
        OrgDataset::new(series, orgs, vec![1], vec![], 96, 12).unwrap()
    }

    #[test]
    fn evaluate_produces_finite_scores() {
        let data = sine_data();
        let mut m = DLinear::new(&data, 1);
        let s = evaluate(&mut m, &data, &TrainConfig::fast());
        assert_eq!(s.name, "DLinear");
        assert!(s.mae.is_finite() && s.mse.is_finite() && s.rmse.is_finite());
        assert!(s.maqe90.is_none(), "point model has no quantile score");
    }

    #[test]
    fn orglinear_reports_quantile_scores() {
        let data = sine_data();
        let mut m = OrgLinear::new(&data, 2);
        let s = evaluate(&mut m, &data, &TrainConfig::fast());
        assert!(s.maqe90.is_some() && s.maqe95.is_some());
    }

    #[test]
    fn trained_linear_beats_peak_heuristic() {
        let data = sine_data();
        let mut cfg = TrainConfig::fast();
        cfg.epochs = 25;
        let mut dl = DLinear::new(&data, 3);
        let dl_scores = evaluate(&mut dl, &data, &cfg);
        let mut peak = LastWeekPeak::new();
        let peak_scores = evaluate(&mut peak, &data, &cfg);
        assert!(
            dl_scores.mae < peak_scores.mae,
            "DLinear ({:.2}) must beat LastWeekPeak ({:.2}) on a sine",
            dl_scores.mae,
            peak_scores.mae
        );
    }
}
