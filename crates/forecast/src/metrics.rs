//! Forecast accuracy metrics (§4.6.1): MAE, MSE, RMSE, MAPE and the
//! quantile metric p-MAQE introduced by the paper.

use crate::stats::gaussian_quantile;

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn mae(pred: &[f64], actual: &[f64]) -> f64 {
    check(pred, actual);
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Mean squared error.
#[must_use]
pub fn mse(pred: &[f64], actual: &[f64]) -> f64 {
    check(pred, actual);
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(actual)
        .map(|(p, a)| (p - a) * (p - a))
        .sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error.
#[must_use]
pub fn rmse(pred: &[f64], actual: &[f64]) -> f64 {
    mse(pred, actual).sqrt()
}

/// Mean absolute percentage error. Pairs with `|actual| < 1e-9` are skipped
/// to avoid division blow-ups on idle hours.
#[must_use]
pub fn mape(pred: &[f64], actual: &[f64]) -> f64 {
    check(pred, actual);
    let mut total = 0.0;
    let mut count = 0usize;
    for (p, a) in pred.iter().zip(actual) {
        if a.abs() > 1e-9 {
            total += ((p - a) / a).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Mean absolute quantile error at level `p` (the paper's `p-MAQE`):
/// the mean absolute *relative* gap between the predicted `p`-quantile
/// `μ + σ·Φ⁻¹(p)` and the realised value, counting only realisations that
/// exceed the predicted quantile (coverage misses), normalised by the
/// actual value — small is better.
#[must_use]
pub fn maqe(p: f64, mu: &[f64], sigma: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(mu.len(), sigma.len(), "mu/sigma length mismatch");
    assert_eq!(mu.len(), actual.len(), "mu/actual length mismatch");
    let mut total = 0.0;
    let mut count = 0usize;
    for i in 0..mu.len() {
        let q = gaussian_quantile(p, mu[i], sigma[i]);
        if actual[i].abs() > 1e-9 {
            // quantile loss (pinball), normalised
            let diff = actual[i] - q;
            let loss = if diff >= 0.0 {
                p * diff
            } else {
                (p - 1.0) * diff
            };
            total += loss / actual[i].abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// A bundle of the four point metrics of Fig. 10 plus quantile metrics and
/// training time (Table 7).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelScores {
    /// Model display name.
    pub name: String,
    /// Mean absolute error.
    pub mae: f64,
    /// Mean squared error.
    pub mse: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Mean absolute percentage error.
    pub mape: f64,
    /// 0.9-MAQE, when the model is probabilistic.
    pub maqe90: Option<f64>,
    /// 0.95-MAQE, when the model is probabilistic.
    pub maqe95: Option<f64>,
    /// Wall-clock training time in seconds.
    pub train_time_secs: f64,
}

fn check(pred: &[f64], actual: &[f64]) {
    assert_eq!(
        pred.len(),
        actual.len(),
        "prediction/actual length mismatch"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_forecast_scores_zero() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(mae(&y, &y), 0.0);
        assert_eq!(mse(&y, &y), 0.0);
        assert_eq!(rmse(&y, &y), 0.0);
        assert_eq!(mape(&y, &y), 0.0);
    }

    #[test]
    fn known_values() {
        let pred = [2.0, 4.0];
        let actual = [1.0, 2.0];
        assert_eq!(mae(&pred, &actual), 1.5);
        assert_eq!(mse(&pred, &actual), 2.5);
        assert!((rmse(&pred, &actual) - 2.5f64.sqrt()).abs() < 1e-12);
        assert_eq!(mape(&pred, &actual), 1.0);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let pred = [5.0, 2.0];
        let actual = [0.0, 1.0];
        assert_eq!(mape(&pred, &actual), 1.0);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mae(&[], &[]), 0.0);
        assert_eq!(mape(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = mae(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn maqe_rewards_calibrated_quantiles() {
        // Wider (honest) sigma around the truth scores better than a
        // confidently-wrong narrow one when actuals exceed the mean.
        let actual = [110.0, 112.0, 108.0, 115.0];
        let mu = [100.0; 4];
        let honest = [8.0; 4];
        let overconfident = [0.5; 4];
        let good = maqe(0.95, &mu, &honest, &actual);
        let bad = maqe(0.95, &mu, &overconfident, &actual);
        assert!(good < bad, "honest {good} must beat overconfident {bad}");
    }

    #[test]
    fn maqe_zero_sigma_reduces_to_pinball_on_mean() {
        let actual = [10.0];
        let v = maqe(0.9, &[10.0], &[0.0], &actual);
        assert!(v.abs() < 1e-12);
    }
}
