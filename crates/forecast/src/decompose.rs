//! Adaptive temporal pattern decomposition (Eq. 1–2).
//!
//! OrgLinear separates a demand series into a slow *trend* component and the
//! residual *cyclical* component with a moving-average kernel that uses
//! **reflection padding** to avoid boundary artefacts — the
//! `K_MA` operator of Eq. 1.

/// Moving average of `xs` with an odd window, using reflection padding at
/// both ends (`x[-1] = x[1]`, etc.), so the output has the same length.
///
/// # Panics
///
/// Panics if `window` is zero or even.
///
/// # Examples
///
/// ```
/// use gfs_forecast::decompose::moving_average;
///
/// let trend = moving_average(&[1.0, 2.0, 3.0, 4.0, 5.0], 3);
/// assert_eq!(trend.len(), 5);
/// assert!((trend[2] - 3.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn moving_average(xs: &[f64], window: usize) -> Vec<f64> {
    assert!(
        window % 2 == 1 && window > 0,
        "window must be odd and positive"
    );
    if xs.is_empty() {
        return Vec::new();
    }
    let half = window / 2;
    let n = xs.len();
    // materialize the reflection-padded series once, then compute all
    // window means in O(n) via prefix sums (see `windowed_means` for the
    // rounding caveat) instead of per-element modular index arithmetic
    let reflect = |i: isize| -> usize {
        let idx = if i < 0 {
            (-i) as usize % (2 * n.max(1))
        } else if (i as usize) >= n {
            let over = i as usize - n + 1;
            n.saturating_sub(1 + over % n.max(1))
        } else {
            i as usize
        };
        idx.min(n - 1)
    };
    let mut padded = Vec::with_capacity(n + 2 * half);
    for i in -(half as isize)..(n + half) as isize {
        padded.push(xs[reflect(i)]);
    }
    windowed_means(&padded, window)
}

/// O(len) windowed means over `padded` via a prefix-sum: each window is a
/// difference of two partial sums instead of a fresh `window`-term sum,
/// turning the decomposition from O(len · window) into O(len). Rounding
/// differs from per-window summation by at most a few ulps, far below the
/// noise floor of the demand series being smoothed.
fn windowed_means(padded: &[f64], window: usize) -> Vec<f64> {
    let n = padded.len() + 1 - window;
    let mut prefix = Vec::with_capacity(padded.len() + 1);
    let mut acc = 0.0;
    prefix.push(0.0);
    for &v in padded {
        acc += v;
        prefix.push(acc);
    }
    (0..n)
        .map(|c| (prefix[c + window] - prefix[c]) / window as f64)
        .collect()
}

/// Splits `xs` into `(trend, cyclical)` with `cyclical = xs − trend`
/// (Eq. 1–2).
#[must_use]
pub fn decompose(xs: &[f64], window: usize) -> (Vec<f64>, Vec<f64>) {
    let trend = moving_average(xs, window);
    let cyclical = xs.iter().zip(&trend).map(|(x, t)| x - t).collect();
    (trend, cyclical)
}

/// [`decompose`] writing its results into caller buffers of length
/// `xs.len()` — the per-sample form used in tests and one-off callers.
/// Training loops use [`DecomposeScratch::decompose_into`] instead, which
/// produces bit-identical output from pooled scratch.
///
/// # Panics
///
/// Panics if the output slices are not the same length as `xs`.
pub fn decompose_into(xs: &[f64], window: usize, trend: &mut [f64], cyclical: &mut [f64]) {
    DecomposeScratch::default().decompose_into(xs, window, trend, cyclical);
}

/// Reusable padded/prefix buffers for the decomposition kernel. The
/// allocating [`decompose`]/[`decompose_into`] forms cost three heap
/// allocations per call; inside a training loop that is three per sample
/// per batch, which violates the tape arena's zero-allocation
/// steady-state contract (see the `forecast-alloc-gate` lane). Holding
/// one of these per model makes every warm call allocation-free while
/// producing **bit-identical** floats: the padded series, the prefix
/// sums, and the windowed-mean expression are exactly those of
/// [`moving_average`].
#[derive(Debug, Default, Clone)]
pub struct DecomposeScratch {
    padded: Vec<f64>,
    prefix: Vec<f64>,
}

impl DecomposeScratch {
    /// [`decompose_into`] from pooled scratch; same contract, same
    /// output bits, zero allocations once the buffers are warm.
    ///
    /// # Panics
    ///
    /// Panics if `window` is even or zero, or the output slices are not
    /// the same length as `xs`.
    pub fn decompose_into(
        &mut self,
        xs: &[f64],
        window: usize,
        trend: &mut [f64],
        cyclical: &mut [f64],
    ) {
        assert_eq!(trend.len(), xs.len(), "trend buffer length mismatch");
        assert_eq!(cyclical.len(), xs.len(), "cyclical buffer length mismatch");
        assert!(
            window % 2 == 1 && window > 0,
            "window must be odd and positive"
        );
        if xs.is_empty() {
            return;
        }
        let half = window / 2;
        let n = xs.len();
        // identical reflection rule to `moving_average`
        let reflect = |i: isize| -> usize {
            let idx = if i < 0 {
                (-i) as usize % (2 * n.max(1))
            } else if (i as usize) >= n {
                let over = i as usize - n + 1;
                n.saturating_sub(1 + over % n.max(1))
            } else {
                i as usize
            };
            idx.min(n - 1)
        };
        self.padded.clear();
        for i in -(half as isize)..(n + half) as isize {
            self.padded.push(xs[reflect(i)]);
        }
        // identical prefix-sum accumulation to `windowed_means`
        self.prefix.clear();
        let mut acc = 0.0;
        self.prefix.push(0.0);
        for &v in &self.padded {
            acc += v;
            self.prefix.push(acc);
        }
        for (c, t) in trend.iter_mut().enumerate() {
            *t = (self.prefix[c + window] - self.prefix[c]) / window as f64;
        }
        for ((c, x), tv) in cyclical.iter_mut().zip(xs).zip(trend.iter()) {
            *c = x - tv;
        }
    }
}

/// Zero-padding variant of [`moving_average`], kept for the ablation bench
/// comparing reflection vs zero padding at series boundaries.
#[must_use]
pub fn moving_average_zero_pad(xs: &[f64], window: usize) -> Vec<f64> {
    assert!(
        window % 2 == 1 && window > 0,
        "window must be odd and positive"
    );
    let half = window / 2;
    let mut padded = vec![0.0; xs.len() + 2 * half];
    padded[half..half + xs.len()].copy_from_slice(xs);
    windowed_means(&padded, window)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_is_its_own_trend() {
        let xs = vec![5.0; 20];
        let trend = moving_average(&xs, 5);
        for t in trend {
            assert!((t - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn decompose_sums_back() {
        let xs: Vec<f64> = (0..50)
            .map(|i| (i as f64 * 0.3).sin() + i as f64 * 0.1)
            .collect();
        let (trend, cyc) = decompose(&xs, 7);
        for i in 0..xs.len() {
            assert!((trend[i] + cyc[i] - xs[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn window_one_is_identity() {
        let xs = vec![1.0, 9.0, 4.0];
        assert_eq!(moving_average(&xs, 1), xs);
    }

    #[test]
    #[should_panic(expected = "window must be odd")]
    fn even_window_rejected() {
        let _ = moving_average(&[1.0, 2.0], 2);
    }

    #[test]
    fn reflection_beats_zero_padding_at_boundaries() {
        // on a constant series, zero padding biases the edges toward 0
        let xs = vec![10.0; 11];
        let refl = moving_average(&xs, 5);
        let zero = moving_average_zero_pad(&xs, 5);
        assert!((refl[0] - 10.0).abs() < 1e-12);
        assert!(zero[0] < 10.0);
    }

    #[test]
    fn empty_input() {
        assert!(moving_average(&[], 3).is_empty());
    }

    #[test]
    fn scratch_form_is_bit_identical_and_reusable() {
        let mut sc = DecomposeScratch::default();
        for (len, window) in [(20usize, 5usize), (96, 25), (7, 3), (96, 25)] {
            let xs: Vec<f64> = (0..len)
                .map(|i| (i as f64 * 0.37).sin() * 12.3 + i as f64 * 0.05)
                .collect();
            let (trend, cyc) = decompose(&xs, window);
            let mut t2 = vec![0.0; len];
            let mut c2 = vec![0.0; len];
            // the same scratch across different shapes must still match
            // the allocating form bit-for-bit
            sc.decompose_into(&xs, window, &mut t2, &mut c2);
            assert_eq!(trend, t2, "trend bits drifted (len={len}, w={window})");
            assert_eq!(cyc, c2, "cyclical bits drifted (len={len}, w={window})");
        }
    }

    #[test]
    fn linear_trend_is_preserved_in_interior() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let trend = moving_average(&xs, 5);
        for i in 2..28 {
            assert!(
                (trend[i] - xs[i]).abs() < 1e-9,
                "interior of a line is unchanged"
            );
        }
    }
}
