//! GPU demand forecasting for GFS (§3.2 of the paper).
//!
//! The centrepiece is [`OrgLinear`], the paper's hierarchical probabilistic
//! time-series model; the crate also reimplements the six baselines of the
//! GDE ablation (§4.6.1) — [`TransformerForecaster`], [`InformerForecaster`],
//! [`AutoformerForecaster`], [`FedformerForecaster`], [`DLinear`] and
//! [`DeepAr`] — plus the training-free production heuristics
//! [`LastWeekPeak`] and [`SeasonalNaive`].
//!
//! All models implement the [`Forecaster`] trait over an [`dataset::OrgDataset`]
//! and are trained with the from-scratch autodiff in `gfs-nn`.
//!
//! # Examples
//!
//! ```
//! use gfs_forecast::dataset::{OrgDataset, OrgInfo, Sample};
//! use gfs_forecast::{evaluate, DLinear, Forecaster, TrainConfig};
//!
//! let series = vec![(0..400).map(|i| (i % 24) as f64).collect::<Vec<_>>()];
//! let orgs = vec![OrgInfo { name: "A".into(), attrs: vec![] }];
//! let data = OrgDataset::new(series, orgs, vec![], vec![], 96, 12).unwrap();
//! let mut model = DLinear::new(&data, 7);
//! let scores = evaluate(&mut model, &data, &TrainConfig::fast());
//! assert!(scores.mae.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod decompose;
mod eval;
pub mod metrics;
mod models;
pub mod stats;
mod timing;

pub use eval::evaluate;
pub use metrics::ModelScores;
pub use models::{
    minibatches, AutoformerForecaster, DLinear, DeepAr, FedformerForecaster, FitReport, Forecast,
    Forecaster, InformerForecaster, LastWeekPeak, OrgLinear, SeasonalNaive, TrainConfig,
    TransformerForecaster,
};
