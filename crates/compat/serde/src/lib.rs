//! Offline stand-in for the `serde` crate.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of serde's surface the workspace uses: `#[derive(Serialize,
//! Deserialize)]` (including `#[serde(transparent)]` newtypes, named-field
//! structs, unit enums and externally-tagged data enums) plus trait impls
//! for the primitives, `String`, `Option`, `Vec` and small tuples.
//!
//! Unlike real serde there is no data-model indirection: [`Serialize`]
//! writes JSON text directly and [`Deserialize`] reads it from a
//! [`de::Parser`]. The companion `serde_json` crate is a thin wrapper over
//! these traits, so the two crates must be used together (which is how the
//! workspace always uses them).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Serialization into JSON text.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Deserialization from JSON text.
pub trait Deserialize: Sized {
    /// Reads one JSON value from the parser.
    ///
    /// # Errors
    ///
    /// Returns a [`de::DeError`] describing the first syntax or type
    /// mismatch.
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::DeError>;
}

/// JSON writer helpers shared with the derive macro.
pub mod ser {
    /// Appends `s` as a JSON string literal (quoted, escaped).
    pub fn write_escaped(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

/// JSON reader: a hand-rolled recursive-descent parser.
pub mod de {
    use std::fmt;

    /// Error produced while deserializing.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct DeError(String);

    impl DeError {
        /// Creates an error with the given message.
        #[must_use]
        pub fn msg(m: impl Into<String>) -> Self {
            DeError(m.into())
        }

        /// Error for a missing required field.
        #[must_use]
        pub fn missing(field: &str) -> Self {
            DeError(format!("missing field `{field}`"))
        }
    }

    impl fmt::Display for DeError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "json error: {}", self.0)
        }
    }

    impl std::error::Error for DeError {}

    /// Cursor over JSON text.
    #[derive(Debug)]
    pub struct Parser<'a> {
        bytes: &'a [u8],
        text: &'a str,
        pos: usize,
    }

    impl<'a> Parser<'a> {
        /// Starts parsing `s` from the beginning.
        #[must_use]
        pub fn new(s: &'a str) -> Self {
            Parser {
                bytes: s.as_bytes(),
                text: s,
                pos: 0,
            }
        }

        /// Skips ASCII whitespace.
        pub fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
            {
                self.pos += 1;
            }
        }

        /// The next non-whitespace byte, without consuming it.
        pub fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        /// Whether all remaining input is whitespace.
        pub fn at_end(&mut self) -> bool {
            self.peek().is_none()
        }

        /// Consumes `c` or errors.
        ///
        /// # Errors
        ///
        /// When the next non-whitespace byte is not `c`.
        pub fn expect_char(&mut self, c: char) -> Result<(), DeError> {
            if self.peek() == Some(c as u8) {
                self.pos += 1;
                Ok(())
            } else {
                Err(DeError::msg(format!(
                    "expected '{c}' at byte {} of {:.40}…",
                    self.pos, self.text
                )))
            }
        }

        /// Consumes `c` if present; returns whether it did.
        pub fn consume_char(&mut self, c: char) -> bool {
            if self.peek() == Some(c as u8) {
                self.pos += 1;
                true
            } else {
                false
            }
        }

        /// Consumes a `null` literal if present.
        pub fn consume_null(&mut self) -> bool {
            self.skip_ws();
            if self.bytes[self.pos..].starts_with(b"null") {
                self.pos += 4;
                true
            } else {
                false
            }
        }

        /// Parses a JSON string literal.
        ///
        /// # Errors
        ///
        /// On malformed literals or escapes.
        pub fn parse_string(&mut self) -> Result<String, DeError> {
            self.expect_char('"')?;
            let mut out = String::new();
            loop {
                let rest = &self.text[self.pos..];
                let mut chars = rest.char_indices();
                match chars.next() {
                    None => return Err(DeError::msg("unterminated string")),
                    Some((_, '"')) => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some((_, '\\')) => {
                        self.pos += 1;
                        let esc = self.bytes.get(self.pos).copied();
                        self.pos += 1;
                        match esc {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .text
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| DeError::msg("truncated \\u escape"))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| DeError::msg("bad \\u escape"))?;
                                self.pos += 4;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| DeError::msg("invalid codepoint"))?,
                                );
                            }
                            _ => return Err(DeError::msg("unknown escape")),
                        }
                    }
                    Some((i, c)) => {
                        self.pos += i + c.len_utf8();
                        out.push(c);
                    }
                }
            }
        }

        /// Reads the raw token of a JSON number.
        ///
        /// # Errors
        ///
        /// When the input does not start with a number.
        pub fn parse_number_token(&mut self) -> Result<&'a str, DeError> {
            self.skip_ws();
            let start = self.pos;
            if self.bytes.get(self.pos) == Some(&b'-') {
                self.pos += 1;
            }
            while self.bytes.get(self.pos).is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
            }) {
                self.pos += 1;
            }
            if self.pos == start {
                return Err(DeError::msg(format!("expected number at byte {start}")));
            }
            Ok(&self.text[start..self.pos])
        }

        /// Parses a `true`/`false` literal.
        ///
        /// # Errors
        ///
        /// When neither literal is present.
        pub fn parse_bool(&mut self) -> Result<bool, DeError> {
            self.skip_ws();
            if self.bytes[self.pos..].starts_with(b"true") {
                self.pos += 4;
                Ok(true)
            } else if self.bytes[self.pos..].starts_with(b"false") {
                self.pos += 5;
                Ok(false)
            } else {
                Err(DeError::msg("expected boolean"))
            }
        }

        /// Skips one complete JSON value of any type.
        ///
        /// # Errors
        ///
        /// On malformed input.
        pub fn skip_value(&mut self) -> Result<(), DeError> {
            match self.peek() {
                Some(b'"') => {
                    self.parse_string()?;
                }
                Some(b'{') => {
                    self.expect_char('{')?;
                    if !self.consume_char('}') {
                        loop {
                            self.parse_string()?;
                            self.expect_char(':')?;
                            self.skip_value()?;
                            if self.consume_char(',') {
                                continue;
                            }
                            self.expect_char('}')?;
                            break;
                        }
                    }
                }
                Some(b'[') => {
                    self.expect_char('[')?;
                    if !self.consume_char(']') {
                        loop {
                            self.skip_value()?;
                            if self.consume_char(',') {
                                continue;
                            }
                            self.expect_char(']')?;
                            break;
                        }
                    }
                }
                Some(b't') | Some(b'f') => {
                    self.parse_bool()?;
                }
                Some(b'n') => {
                    if !self.consume_null() {
                        return Err(DeError::msg("expected null"));
                    }
                }
                _ => {
                    self.parse_number_token()?;
                }
            }
            Ok(())
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }

        impl Deserialize for $t {
            fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::DeError> {
                let tok = p.parse_number_token()?;
                tok.parse::<$t>()
                    .map_err(|_| de::DeError::msg(format!("invalid {}: {tok}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            // Debug formatting is the shortest round-trip representation
            out.push_str(&format!("{self:?}"));
        } else {
            out.push_str("null");
        }
    }
}

impl Deserialize for f64 {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::DeError> {
        if p.consume_null() {
            return Ok(f64::NAN);
        }
        let tok = p.parse_number_token()?;
        tok.parse::<f64>()
            .map_err(|_| de::DeError::msg(format!("invalid f64: {tok}")))
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        f64::from(*self).serialize_json(out);
    }
}

impl Deserialize for f32 {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::DeError> {
        f64::deserialize_json(p).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::DeError> {
        p.parse_bool()
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        ser::write_escaped(self, out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        ser::write_escaped(self, out);
    }
}

impl Deserialize for String {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::DeError> {
        p.parse_string()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.serialize_json(out),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::DeError> {
        if p.consume_null() {
            Ok(None)
        } else {
            T::deserialize_json(p).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::DeError> {
        p.expect_char('[')?;
        let mut out = Vec::new();
        if p.consume_char(']') {
            return Ok(out);
        }
        loop {
            out.push(T::deserialize_json(p)?);
            if p.consume_char(',') {
                continue;
            }
            p.expect_char(']')?;
            return Ok(out);
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(']');
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::DeError> {
        p.expect_char('[')?;
        let a = A::deserialize_json(p)?;
        p.expect_char(',')?;
        let b = B::deserialize_json(p)?;
        p.expect_char(']')?;
        Ok((a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T, json: &str) {
        let mut out = String::new();
        v.serialize_json(&mut out);
        assert_eq!(out, json);
        let mut p = de::Parser::new(json);
        let back = T::deserialize_json(&mut p).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitives() {
        round_trip(42u64, "42");
        round_trip(-7i32, "-7");
        round_trip(1.5f64, "1.5");
        round_trip(true, "true");
        round_trip(String::from("a\"b"), "\"a\\\"b\"");
        round_trip(Some(3u32), "3");
        round_trip::<Option<u32>>(None, "null");
        round_trip(vec![1u8, 2, 3], "[1,2,3]");
        round_trip((0.5f64, 2.0f64), "[0.5,2.0]");
    }

    #[test]
    fn skip_value_handles_nesting() {
        let mut p = de::Parser::new("{\"a\":[1,{\"b\":null}],\"c\":2} 7");
        p.skip_value().unwrap();
        assert_eq!(u32::deserialize_json(&mut p).unwrap(), 7);
        assert!(p.at_end());
    }

    #[test]
    fn string_escapes() {
        let mut p = de::Parser::new("\"line\\nbreak \\u0041\"");
        assert_eq!(p.parse_string().unwrap(), "line\nbreak A");
    }
}
