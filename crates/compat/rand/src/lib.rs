//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the small slice of the `rand 0.8` API the workspace actually uses:
//! [`RngCore`], the [`Rng`] extension trait with `gen_range`/`gen_bool`,
//! and [`SeedableRng::seed_from_u64`]. Uniform sampling follows the usual
//! 53-bit-mantissa construction for floats and rejection-free modular
//! reduction for integers (the modulo bias is ≤ `span / 2⁶⁴`, irrelevant at
//! the spans used here).
//!
//! The generated streams are deterministic but are **not** bit-compatible
//! with upstream `rand`; every consumer in this workspace only relies on
//! determinism and distribution quality, never on exact values.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level uniform word generator.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;

    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniform f64 in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 2^-53; the standard "shift out 11 bits" construction
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a uniform sample from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                let draw = (rng.next_u64() as u128) % span;
                ((lo as u128).wrapping_add(draw)) as $t
            }
        }
    )*};
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        let v = lo + (hi - lo) * unit_f64(rng);
        // guard against rounding up to the excluded endpoint
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, f64::from(lo), f64::from(hi)) as f32
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait providing in-place Fisher–Yates shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Lcg(42);
        for _ in 0..1_000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn unit_f64_covers_unit_interval() {
        let mut rng = Lcg(1);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let v = unit_f64(&mut rng);
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(
            lo < 0.01 && hi > 0.99,
            "samples span the interval: [{lo}, {hi}]"
        );
    }
}
