//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha stream cipher (8 double-rounds for
//! [`ChaCha8Rng`]) as a deterministic random generator. Seeding via
//! [`rand::SeedableRng::seed_from_u64`] expands the 64-bit seed with
//! SplitMix64 into the 256-bit key, so distinct seeds give independent
//! streams. Output is deterministic but not bit-compatible with upstream
//! `rand_chacha` (nothing in this workspace depends on exact values).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A deterministic ChaCha8-based random generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    next: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // column rounds
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // diagonal rounds
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buf.iter_mut().zip(state.iter().zip(initial.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.next = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 key expansion
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = next();
            pair[0] = w as u32;
            if pair.len() > 1 {
                pair[1] = (w >> 32) as u32;
            }
        }
        let mut rng = ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            next: 16,
        };
        rng.refill();
        rng.next = 0;
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.next >= 16 {
            self.refill();
        }
        let v = self.buf[self.next];
        self.next += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from distinct seeds must diverge");
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
