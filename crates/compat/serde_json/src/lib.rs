//! Offline stand-in for `serde_json`, backed by the vendored `serde`
//! traits (which serialize JSON text directly).

#![forbid(unsafe_code)]

use std::fmt;
use std::io::{Read, Write};

use serde::{de, Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug)]
pub enum Error {
    /// Malformed or mismatching JSON.
    Json(de::DeError),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Json(e) => write!(f, "{e}"),
            Error::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<de::DeError> for Error {
    fn from(e: de::DeError) -> Self {
        Error::Json(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Serializes `value` to a JSON string.
///
/// # Errors
///
/// Never fails for the types in this workspace; the `Result` mirrors the
/// real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` as JSON into `writer`.
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error::Json`] on malformed input or trailing garbage.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = de::Parser::new(s);
    let v = T::deserialize_json(&mut p)?;
    if !p.at_end() {
        return Err(Error::Json(de::DeError::msg("trailing characters")));
    }
    Ok(v)
}

/// Deserializes a value from a JSON reader.
///
/// # Errors
///
/// Returns [`Error::Io`] on read failures and [`Error::Json`] on malformed
/// input.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_round_trip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u32> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<u32>("3 x").is_err());
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &(1.5f64, 2.5f64)).unwrap();
        let back: (f64, f64) = from_reader(buf.as_slice()).unwrap();
        assert_eq!(back, (1.5, 2.5));
    }
}
