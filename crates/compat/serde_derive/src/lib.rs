//! Derive macros for the offline `serde` stand-in.
//!
//! Supports exactly the item shapes present in this workspace:
//!
//! * `#[serde(transparent)]` single-field tuple structs (newtypes),
//! * named-field structs, whose fields may carry
//!   `#[serde(skip_serializing_if = "pred", default)]` — the field is
//!   omitted from the JSON when `pred(&value)` is true and filled with
//!   `Default::default()` when missing on the wire (this is how report
//!   types grow fields without perturbing historical golden encodings),
//! * enums whose variants are unit, single-field tuple, or named-field
//!   struct variants (externally tagged, matching real serde's default).
//!
//! Generics are not supported; the workspace's serializable types are all
//! concrete. Parsing is hand-rolled over `proc_macro::TokenTree` so no
//! external dependencies (`syn`/`quote`) are needed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    ty: String,
    /// `skip_serializing_if` predicate path, if any.
    skip_if: Option<String>,
    /// Whether a missing field deserializes to `Default::default()`.
    default: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(String),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Item {
    Newtype {
        name: String,
        inner: String,
    },
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives JSON serialization (see the crate docs for supported shapes).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives JSON deserialization (see the crate docs for supported shapes).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // leading attributes (doc comments, #[serde(...)], #[non_exhaustive], …)
    while is_punct(tokens.get(i), '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            let inner = g.stream().to_string();
            if inner.starts_with("serde") && inner.contains("transparent") {
                transparent = true;
            }
        }
        i += 2;
    }
    // visibility
    if is_ident(tokens.get(i), "pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }

    if is_ident(tokens.get(i), "struct") {
        let name = ident_text(&tokens[i + 1]);
        match tokens.get(i + 2) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner_types = split_tuple_types(g.stream());
                assert!(
                    transparent && inner_types.len() == 1,
                    "serde_derive stand-in supports tuple structs only as \
                     #[serde(transparent)] newtypes ({name})"
                );
                Item::Newtype {
                    name,
                    inner: inner_types.into_iter().next().expect("one field"),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            other => panic!("unsupported struct body for {name}: {other:?}"),
        }
    } else if is_ident(tokens.get(i), "enum") {
        let name = ident_text(&tokens[i + 1]);
        let Some(TokenTree::Group(g)) = tokens.get(i + 2) else {
            panic!("missing enum body for {name}");
        };
        Item::Enum {
            name,
            variants: parse_variants(g.stream()),
        }
    } else {
        panic!("serde_derive stand-in supports only structs and enums");
    }
}

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn is_ident(t: Option<&TokenTree>, s: &str) -> bool {
    matches!(t, Some(TokenTree::Ident(id)) if id.to_string() == s)
}

fn ident_text(t: &TokenTree) -> String {
    match t {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected identifier, found {other}"),
    }
}

/// Splits `a, b, c` in a tuple-struct body into type strings, honouring
/// nested groups and angle brackets.
fn split_tuple_types(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut out = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    let mut i = 0;
    while i < tokens.len() {
        // strip per-field attributes and visibility
        if current.is_empty() && is_punct(tokens.get(i), '#') {
            i += 2;
            continue;
        }
        if current.is_empty() && is_ident(tokens.get(i), "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
            continue;
        }
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(tokens_to_string(&current));
                current.clear();
                i += 1;
                continue;
            }
            _ => {}
        }
        current.push(tokens[i].clone());
        i += 1;
    }
    if !current.is_empty() {
        out.push(tokens_to_string(&current));
    }
    out
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let stream: TokenStream = tokens.iter().cloned().collect();
    stream.to_string()
}

/// Extracts `(skip_serializing_if, default)` from one `#[serde(…)]`
/// attribute group's inner stream (`serde (…)`), if it is one.
fn parse_serde_attr(stream: TokenStream) -> (Option<String>, bool) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if !is_ident(tokens.first(), "serde") {
        return (None, false);
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return (None, false);
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut skip_if = None;
    let mut default = false;
    let mut i = 0;
    while i < args.len() {
        if is_ident(args.get(i), "default") {
            default = true;
        } else if is_ident(args.get(i), "skip_serializing_if") && is_punct(args.get(i + 1), '=') {
            if let Some(TokenTree::Literal(lit)) = args.get(i + 2) {
                let text = lit.to_string();
                skip_if = Some(text.trim_matches('"').to_string());
                i += 2;
            }
        }
        i += 1;
    }
    (skip_if, default)
}

/// Parses `name: Type, …` (with optional attributes/visibility per field).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip_if = None;
        let mut default = false;
        while is_punct(tokens.get(i), '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                let (s, d) = parse_serde_attr(g.stream());
                if s.is_some() {
                    skip_if = s;
                }
                default |= d;
            }
            i += 2;
        }
        if is_ident(tokens.get(i), "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let Some(tok) = tokens.get(i) else { break };
        let field = ident_text(tok);
        i += 1;
        assert!(
            is_punct(tokens.get(i), ':'),
            "expected ':' after field {field}"
        );
        i += 1;
        let mut ty: Vec<TokenTree> = Vec::new();
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            ty.push(t.clone());
            i += 1;
        }
        out.push(Field {
            name: field,
            ty: tokens_to_string(&ty),
            skip_if,
            default,
        });
    }
    out
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while is_punct(tokens.get(i), '#') {
            i += 2;
        }
        let Some(tok) = tokens.get(i) else { break };
        let name = ident_text(tok);
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let tys = split_tuple_types(g.stream());
                assert!(
                    tys.len() == 1,
                    "serde_derive stand-in supports exactly one field per tuple variant ({name})"
                );
                i += 1;
                VariantKind::Tuple(tys.into_iter().next().expect("one field"))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // optional discriminant is unsupported; skip trailing comma
        if is_punct(tokens.get(i), ',') {
            i += 1;
        }
        out.push(Variant { name, kind });
    }
    out
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    let mut body = String::new();
    let name = match item {
        Item::Newtype { name, .. } => {
            body.push_str("::serde::Serialize::serialize_json(&self.0, out);");
            name
        }
        Item::Struct { name, fields } => {
            if fields.iter().any(|f| f.skip_if.is_some()) {
                // dynamic comma placement: skippable fields may not emit
                body.push_str("out.push('{'); let mut __first = true;");
                for f in fields {
                    let field = &f.name;
                    let emit = format!(
                        "if !__first {{ out.push(','); }} __first = false;\
                         out.push_str(\"\\\"{field}\\\":\");\
                         ::serde::Serialize::serialize_json(&self.{field}, out);"
                    );
                    match &f.skip_if {
                        Some(pred) => {
                            body.push_str(&format!("if !({pred}(&self.{field})) {{ {emit} }}"))
                        }
                        None => body.push_str(&emit),
                    }
                }
                body.push_str("out.push('}');");
            } else {
                body.push_str("out.push('{');");
                for (i, f) in fields.iter().enumerate() {
                    let field = &f.name;
                    if i > 0 {
                        body.push_str("out.push(',');");
                    }
                    body.push_str(&format!(
                        "out.push_str(\"\\\"{field}\\\":\");\
                         ::serde::Serialize::serialize_json(&self.{field}, out);"
                    ));
                }
                body.push_str("out.push('}');");
            }
            name
        }
        Item::Enum { name, variants } => {
            body.push_str("match self {");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        body.push_str(&format!("{name}::{vn} => out.push_str(\"\\\"{vn}\\\"\"),"))
                    }
                    VariantKind::Tuple(_) => body.push_str(&format!(
                        "{name}::{vn}(v0) => {{\
                             out.push_str(\"{{\\\"{vn}\\\":\");\
                             ::serde::Serialize::serialize_json(v0, out);\
                             out.push('}}');\
                         }},"
                    )),
                    VariantKind::Struct(fields) => {
                        assert!(
                            fields.iter().all(|f| f.skip_if.is_none()),
                            "skip_serializing_if is unsupported on enum variant fields ({name}::{vn})"
                        );
                        let pattern = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut inner = format!("out.push_str(\"{{\\\"{vn}\\\":{{\");");
                        for (i, field) in fields.iter().enumerate() {
                            let f = &field.name;
                            if i > 0 {
                                inner.push_str("out.push(',');");
                            }
                            inner.push_str(&format!(
                                "out.push_str(\"\\\"{f}\\\":\");\
                                 ::serde::Serialize::serialize_json({f}, out);"
                            ));
                        }
                        inner.push_str("out.push_str(\"}}\");");
                        body.push_str(&format!("{name}::{vn} {{ {pattern} }} => {{ {inner} }},"));
                    }
                }
            }
            body.push('}');
            name
        }
    };
    format!(
        "#[automatically_derived] #[allow(unreachable_code, unused_mut, clippy::all)] impl ::serde::Serialize for {name} {{\
             fn serialize_json(&self, out: &mut ::std::string::String) {{ {body} }}\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Newtype { name, inner } => (
            name,
            format!("Ok({name}(<{inner} as ::serde::Deserialize>::deserialize_json(p)?))"),
        ),
        Item::Struct { name, fields } => {
            let body = gen_struct_body(name, "", fields);
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),"))
                    }
                    VariantKind::Tuple(ty) => data_arms.push_str(&format!(
                        "\"{vn}\" => {name}::{vn}(\
                             <{ty} as ::serde::Deserialize>::deserialize_json(p)?\
                         ),"
                    )),
                    VariantKind::Struct(fields) => {
                        let inner = gen_struct_body(name, &format!("::{vn}"), fields);
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __r: ::core::result::Result<{name}, ::serde::de::DeError> = \
                                 (|| {{ {inner} }})(); __r? }},"
                        ));
                    }
                }
            }
            let body = format!(
                "if p.peek() == ::core::option::Option::Some(b'\"') {{\
                     let tag = p.parse_string()?;\
                     match tag.as_str() {{\
                         {unit_arms}\
                         other => Err(::serde::de::DeError::msg(format!(\
                             \"unknown variant {{other}} of {name}\"))),\
                     }}\
                 }} else {{\
                     p.expect_char('{{')?;\
                     let tag = p.parse_string()?;\
                     p.expect_char(':')?;\
                     let value = match tag.as_str() {{\
                         {data_arms}\
                         other => return Err(::serde::de::DeError::msg(format!(\
                             \"unknown variant {{other}} of {name}\"))),\
                     }};\
                     p.expect_char('}}')?;\
                     Ok(value)\
                 }}"
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived] #[allow(unreachable_code, unused_mut, clippy::all)] impl ::serde::Deserialize for {name} {{\
             fn deserialize_json(p: &mut ::serde::de::Parser<'_>) \
                 -> ::core::result::Result<Self, ::serde::de::DeError> {{ {body} }}\
         }}"
    )
}

/// Generates the `{ "field": value, … }` reader producing
/// `Ok(Name<suffix> { field, … })`.
fn gen_struct_body(name: &str, suffix: &str, fields: &[Field]) -> String {
    let mut decls = String::new();
    let mut arms = String::new();
    let mut build = String::new();
    for field in fields {
        let (f, ty) = (&field.name, &field.ty);
        decls.push_str(&format!(
            "let mut __f_{f}: ::core::option::Option<{ty}> = ::core::option::Option::None;"
        ));
        arms.push_str(&format!(
            "\"{f}\" => __f_{f} = ::core::option::Option::Some(<{ty} as ::serde::Deserialize>::deserialize_json(p)?),"
        ));
        if field.default {
            build.push_str(&format!("{f}: __f_{f}.unwrap_or_default(),"));
        } else {
            build.push_str(&format!(
                "{f}: __f_{f}.ok_or_else(|| ::serde::de::DeError::missing(\"{f}\"))?,"
            ));
        }
    }
    format!(
        "p.expect_char('{{')?;\
         {decls}\
         if !p.consume_char('}}') {{\
             loop {{\
                 let __key = p.parse_string()?;\
                 p.expect_char(':')?;\
                 match __key.as_str() {{\
                     {arms}\
                     _ => p.skip_value()?,\
                 }}\
                 if p.consume_char(',') {{ continue; }}\
                 p.expect_char('}}')?;\
                 break;\
             }}\
         }}\
         Ok({name}{suffix} {{ {build} }})"
    )
}
