//! Crash-safe long-running cluster service: the engine's event loop as a
//! resident object with snapshot/restore, a write-ahead admission journal
//! and deterministic replay.
//!
//! # Lifecycle
//!
//! A [`ClusterService`] wraps one simulation run. The batch entry point
//! ([`crate::run`]) is a thin driver over it:
//!
//! ```text
//! new(cluster, cfg) → admit_tasks(...) → start() → step()/run_until()/
//!     run_to_end() ⟲ (admit_tasks / admit_plan between batches)
//!     → finish() → SimReport
//! ```
//!
//! * [`ClusterService::new`] builds an idle service; nothing is scheduled.
//! * [`ClusterService::admit_tasks`] / [`ClusterService::admit_plan`]
//!   admit work: a batch of task arrivals, or a
//!   [`DynamicsPlan`] of cluster events. Admissions are accepted any time
//!   — before `start` (the batch shape) or mid-run between batches (the
//!   live-stream shape); events in an admission's past clamp to the
//!   current simulated instant.
//! * [`ClusterService::start`] arms the periodic sample/tick chains and
//!   the configured dynamics timeline. Event sequence numbers reproduce
//!   the historical batch engine exactly: first every submit, then the
//!   sample, the tick, and the dynamics events last.
//! * [`ClusterService::step`] processes one batch of same-timestamp
//!   events followed by one scheduling pass — the engine loop's body.
//!   [`ClusterService::run_until`] and [`ClusterService::run_to_end`]
//!   drive it. The scheduler stays outside the service (it is restored
//!   separately on recovery), so every driving call borrows it.
//! * [`ClusterService::finish`] consumes the service and closes the
//!   report (tail queueing accrual, availability integral, makespan).
//!
//! # Snapshots
//!
//! [`ClusterService::snapshot`] captures the *entire* dynamic state —
//! cluster (nodes, running registry, capacity totals, failure/drain
//! history), event heap, per-task states, pending queue, availability
//! integrals, and the scheduler's own accumulators via
//! [`Scheduler::save_state`] — as a [`ServiceSnapshot`]. Snapshots are
//! versioned ([`SNAPSHOT_VERSION`]); [`ClusterService::restore`] rejects
//! unknown versions instead of misinterpreting the layout.
//!
//! The JSON encoding ([`ServiceSnapshot::to_json`]) is canonical: maps
//! are serialized as key-sorted pair lists, the heap as a `(time, seq)`
//! sorted list, and incrementally-accumulated floating-point totals are
//! stored verbatim (never recomputed), so
//! `snapshot → restore → snapshot` is byte-identical and
//! [`ServiceSnapshot::state_hash`] (FNV-1a over the JSON) pins a state.
//! A restored service replays the remainder of its run to the same
//! [`SimReport`] as the uninterrupted original.
//!
//! # Write-ahead journal
//!
//! With [`ClusterService::enable_journal`], every admission is appended
//! to an in-memory JSONL journal *before* it is applied. One record per
//! line:
//!
//! ```text
//! {"seq":N,"at":T,"steps":S,"crc":C,"event":{...}}
//! ```
//!
//! `seq` is the strictly-increasing admission number, `at` the simulated
//! time of admission, `steps` the number of event batches the service had
//! processed when the admission happened (the replay anchor — time alone
//! cannot distinguish "before the batch at t" from "after it"), `crc` an
//! FNV-1a checksum over `seq|at|steps|event` (the
//! canonical JSON of the parts), and `event` an [`AdmittedEvent`]
//! (`Start`, `Tasks`, or `Plan`). Records are self-checking: a flipped
//! byte fails the checksum, a chopped line fails to parse, and a
//! non-increasing `seq` is rejected as a duplicate.
//!
//! # Recovery protocol
//!
//! Crash recovery = last good snapshot + journal suffix replay:
//!
//! 1. rebuild the scheduler with its factory, then
//!    [`ClusterService::restore`] the snapshot (this also rehydrates the
//!    scheduler's accumulators through [`Scheduler::restore_state`]);
//! 2. [`ClusterService::replay_journal`] the full journal text: records
//!    with `seq` at or below the snapshot's admission counter are skipped
//!    (already folded into the snapshot), each remaining record first
//!    advances the service to the batch count it was admitted at and then
//!    re-applies the admission;
//! 3. a truncated or corrupted journal tail is detected, *rejected*, and
//!    reported via [`JournalReplay::rejected`] — the valid prefix is
//!    still applied, never the damaged suffix;
//! 4. drive the service to the end as usual. The result is bit-identical
//!    to the uninterrupted run (pinned by the `lab_recovery` grid).
//!
//! Admissions always happen at batch boundaries (between [`step`] calls),
//! and the journal's `steps` anchor reproduces exactly that boundary.
//!
//! [`step`]: ClusterService::step
//! [`DynamicsPlan`]: gfs_types::DynamicsPlan

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use gfs_cluster::{Cluster, ClusterSnapshot, Scheduler, TaskEvent};
use gfs_types::{
    ClusterEventKind, DynamicsPlan, GpuModel, NodeId, SimDuration, SimTime, TaskId, TaskSpec,
};
use serde::{Deserialize, Serialize};

use crate::dynamics::AvailabilityTracker;
use crate::engine::SimConfig;
use crate::report::{AllocSample, SimReport, TaskRecord};

/// Layout version stamped into every [`ServiceSnapshot`];
/// [`ClusterService::restore`] rejects any other value.
pub const SNAPSHOT_VERSION: u32 = 1;

/// FNV-1a over a byte string — the checksum used for snapshot state
/// hashes and journal record CRCs (and by the golden-pin test harness).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// [`fnv1a`] over a report's canonical JSON: the fingerprint the
/// crash-recovery harness compares between a golden uninterrupted run and
/// a crash-recovered one.
#[must_use]
pub fn report_hash(report: &crate::SimReport) -> u64 {
    let mut out = String::new();
    report.serialize_json(&mut out);
    fnv1a(out.as_bytes())
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum EventKind {
    Submit(u32),
    Finish {
        task: u32,
        epoch: u32,
    },
    Requeue(u32),
    Tick,
    Sample,
    NodeDown(NodeId),
    NodeUp(NodeId),
    Drain {
        node: NodeId,
        notice: SimDuration,
    },
    /// Forced shutdown of a drain; fires only if the drain armed at
    /// `now − notice` is still in progress (an interleaved `NodeUp`
    /// cancels it, a later re-drain arms a different deadline).
    DrainDeadline(NodeId),
    AddNode {
        model: GpuModel,
        gpus: u32,
    },
}

/// Dense per-task simulation state, indexed by trace position.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct TaskState {
    /// Index of the task's record in the report (records are appended in
    /// submission-event order, which can differ from trace order).
    rec: u32,
    /// Run-segment epoch; a `Finish` event is stale unless epochs match.
    epoch: u32,
    /// Checkpointed progress carried across evictions; cleared on finish.
    carried: SimDuration,
    /// When the task last entered the pending queue.
    enqueue: SimTime,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we need earliest-first
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Calendar-bucket slot width as a shift: 64-second slots.
const BUCKET_BITS: u64 = 6;
/// Slots in the near window (power of two). `NUM_BUCKETS << BUCKET_BITS`
/// simulated seconds (~18 hours) are bucketed; anything further sits in
/// an overflow heap until the window slides over it.
const NUM_BUCKETS: u64 = 1 << 10;

fn slot_of(at: SimTime) -> u64 {
    at.as_secs() >> BUCKET_BITS
}

/// The event loop's priority queue: a two-level calendar queue that pops
/// events in exactly `(at, seq)` order — globally identical to a binary
/// heap — but touches only the 64-second slot under the cursor on the
/// hot path.
///
/// * `active` holds the slot currently draining, sorted *descending* by
///   `(at, seq)` so the next event pops from the back in O(1);
/// * `near` is a ring of unsorted slot buckets covering the next
///   `NUM_BUCKETS` slots — a push is an O(1) append, and a slot is
///   sorted once, when the cursor reaches it;
/// * `far` is a binary heap for events beyond the window (multi-day
///   drain deadlines, horizon-scale dynamics). The invariant — `far`
///   holds only slots `>= cursor + NUM_BUCKETS` — is restored by
///   [`EventHeap::migrate_far`] after every cursor movement, so an event
///   can never hide in `far` while its slot drains from `near`.
///
/// Pushing an event at or before the cursor's slot (same-instant
/// requeues) falls back to a sorted insert into `active`, which keeps
/// the pop order exact for arbitrary push patterns.
#[derive(Debug)]
pub(crate) struct EventHeap {
    len: usize,
    /// Slot currently draining; meaningful only while `len > 0`.
    cursor: u64,
    /// Events in slots `<= cursor`, sorted descending by `(at, seq)`.
    active: Vec<Event>,
    /// Ring of unsorted buckets for slots in `(cursor, cursor + NUM_BUCKETS)`,
    /// indexed by `slot % NUM_BUCKETS`. Allocated on first use.
    near: Vec<Vec<Event>>,
    near_len: usize,
    /// Events in slots `>= cursor + NUM_BUCKETS` (earliest-first heap).
    far: BinaryHeap<Event>,
}

impl EventHeap {
    fn new() -> Self {
        EventHeap {
            len: 0,
            cursor: 0,
            active: Vec::new(),
            near: Vec::new(),
            near_len: 0,
            far: BinaryHeap::new(),
        }
    }

    fn push(&mut self, ev: Event) {
        if self.len == 0 {
            self.cursor = slot_of(ev.at);
            self.active.push(ev);
        } else {
            self.place(ev);
        }
        self.len += 1;
    }

    /// Routes one event to active/near/far relative to the current
    /// cursor. Does not touch `len` — callers account for it.
    fn place(&mut self, ev: Event) {
        let slot = slot_of(ev.at);
        if slot <= self.cursor {
            let pos = self
                .active
                .partition_point(|x| (x.at, x.seq) > (ev.at, ev.seq));
            self.active.insert(pos, ev);
        } else if slot - self.cursor < NUM_BUCKETS {
            if self.near.is_empty() {
                self.near = std::iter::repeat_with(Vec::new)
                    .take(NUM_BUCKETS as usize)
                    .collect();
            }
            self.near[(slot % NUM_BUCKETS) as usize].push(ev);
            self.near_len += 1;
        } else {
            self.far.push(ev);
        }
    }

    /// Restores the far invariant after a cursor movement: every far
    /// event whose slot entered the window moves to its near bucket (or
    /// straight into `active` when it landed on the cursor).
    fn migrate_far(&mut self) {
        while let Some(e) = self.far.peek() {
            if slot_of(e.at) - self.cursor >= NUM_BUCKETS {
                break;
            }
            let ev = self.far.pop().expect("peeked event exists");
            self.place(ev);
        }
    }

    /// Advances the cursor until `active` is non-empty (or the queue is
    /// empty): slides slot by slot while near buckets remain, jumps the
    /// window when only far events are left.
    fn settle(&mut self) {
        while self.active.is_empty() && self.len > 0 {
            if self.near_len == 0 {
                // everything left lives in `far`: jump the window to it
                let at = self.far.peek().expect("len > 0 with empty near").at;
                self.cursor = slot_of(at);
                self.migrate_far();
            } else {
                self.cursor += 1;
                self.migrate_far();
                let idx = (self.cursor % NUM_BUCKETS) as usize;
                if !self.near[idx].is_empty() {
                    let mut bucket = std::mem::take(&mut self.near[idx]);
                    self.near_len -= bucket.len();
                    bucket.sort_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
                    // swap keeps the drained bucket's allocation for reuse
                    std::mem::swap(&mut self.active, &mut bucket);
                    self.near[idx] = bucket;
                }
            }
        }
    }

    /// The earliest event, in `(at, seq)` order. Takes `&mut self`: the
    /// cursor may need to slide to find it.
    fn peek(&mut self) -> Option<&Event> {
        self.settle();
        self.active.last()
    }

    fn pop(&mut self) -> Option<Event> {
        self.settle();
        let ev = self.active.pop();
        if ev.is_some() {
            self.len -= 1;
        }
        ev
    }

    /// All queued events, in no particular order (snapshots sort).
    fn iter(&self) -> impl Iterator<Item = &Event> {
        self.active
            .iter()
            .chain(self.near.iter().flatten())
            .chain(self.far.iter())
    }
}

impl FromIterator<Event> for EventHeap {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        let mut h = EventHeap::new();
        for ev in iter {
            h.push(ev);
        }
        h
    }
}

fn push(heap: &mut EventHeap, seq: &mut u64, at: SimTime, kind: EventKind) {
    *seq += 1;
    heap.push(Event {
        at,
        seq: *seq,
        kind,
    });
}

/// Inserts trace index `i` into the pending queue, kept sorted under
/// [`Scheduler::queue_cmp`] with FIFO tie-breaks (behind every entry that
/// compares `<=`).
fn enqueue(pending: &mut Vec<u32>, specs: &[Arc<TaskSpec>], s: &dyn Scheduler, i: u32) {
    let spec = &specs[i as usize];
    let pos =
        pending.partition_point(|&e| s.queue_cmp(&specs[e as usize], spec) != Ordering::Greater);
    pending.insert(pos, i);
}

/// Knocks one running task off the cluster (forced displacement or
/// graceful drain migration): stales its pending `Finish` via the epoch,
/// carries the checkpointed progress, records it under the right counter,
/// notifies the scheduler and schedules the requeue after the grace
/// period. The shared tail of every churn path — requeue semantics must
/// never drift between forced and graceful exits.
#[allow(clippy::too_many_arguments)] // internal plumbing of the event loop
fn displace_and_requeue(
    id: TaskId,
    priority: gfs_types::Priority,
    preserved: SimDuration,
    graceful: bool,
    now: SimTime,
    cluster: &Cluster,
    scheduler: &mut dyn Scheduler,
    report: &mut SimReport,
    states: &mut [TaskState],
    id_to_idx: &HashMap<TaskId, u32>,
    heap: &mut EventHeap,
    seq: &mut u64,
    requeue_delay: SimDuration,
) {
    let idx = id_to_idx[&id] as usize;
    let st = &mut states[idx];
    st.epoch += 1; // the pending Finish is now stale
    st.carried = preserved;
    let rec = &mut report.tasks[st.rec as usize];
    if graceful {
        rec.migrations += 1;
        report.migration_times.push(now);
    } else {
        rec.displacements += 1;
        report.displacement_times.push(now);
    }
    scheduler.on_event(
        &TaskEvent::Displaced {
            task: id,
            priority,
            at: now,
        },
        cluster,
    );
    *seq += 1;
    heap.push(Event {
        at: now + requeue_delay,
        seq: *seq,
        kind: EventKind::Requeue(idx as u32),
    });
}

/// Takes `node` out of service (abrupt failure or drain deadline):
/// displaces every pod through [`Cluster::fail_node`], accounts the lost
/// capacity, requeues the victims with their checkpointed progress and
/// notifies the scheduler. Returns `false` (no-op) when the node is down
/// or unknown, so overlapping hand-built schedules degrade gracefully.
#[allow(clippy::too_many_arguments)] // internal plumbing of the event loop
fn apply_node_down(
    node: NodeId,
    now: SimTime,
    cluster: &mut Cluster,
    scheduler: &mut dyn Scheduler,
    report: &mut SimReport,
    states: &mut [TaskState],
    id_to_idx: &HashMap<TaskId, u32>,
    heap: &mut EventHeap,
    seq: &mut u64,
    avail: &mut AvailabilityTracker,
    requeue_delay: SimDuration,
) -> bool {
    let Ok(drained) = cluster.fail_node(node, now) else {
        return false;
    };
    report.node_downs += 1;
    let lost = cluster.nodes()[node.index()].total_gpus();
    avail.change(now, f64::from(lost));
    for d in drained {
        displace_and_requeue(
            d.task.spec.id,
            d.task.spec.priority,
            d.preserved,
            false,
            now,
            cluster,
            scheduler,
            report,
            states,
            id_to_idx,
            heap,
            seq,
            requeue_delay,
        );
    }
    scheduler.on_event(
        &TaskEvent::NodeDown {
            node,
            lost_gpus: lost,
            at: now,
        },
        cluster,
    );
    true
}

/// An admission accepted by the service — the unit the write-ahead
/// journal records *before* the service applies it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdmittedEvent {
    /// [`ClusterService::start`] was called: the sample/tick chains and
    /// the configured dynamics timeline were armed.
    Start,
    /// A batch of task arrivals.
    Tasks(Vec<TaskSpec>),
    /// A cluster-dynamics plan admitted mid-run.
    Plan(DynamicsPlan),
}

/// One write-ahead journal record: an admission, its strictly-increasing
/// sequence number, the position in the run it was admitted at (simulated
/// time plus the processed-batch count — the unambiguous replay anchor),
/// and a self-checking FNV-1a checksum over `seq|at|steps|event`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Strictly-increasing admission number.
    pub seq: u64,
    /// Simulated time of the admission.
    pub at: SimTime,
    /// Event batches the service had processed when the admission
    /// happened. Time alone is ambiguous (an admission "at t" may precede
    /// or follow the batch at t); the batch count pins the interleaving
    /// exactly, so replay is deterministic.
    pub steps: u64,
    /// FNV-1a over the canonical `seq|at|steps|event` encoding.
    pub crc: u64,
    /// The admission itself.
    pub event: AdmittedEvent,
}

fn record_crc(seq: u64, at: SimTime, steps: u64, event: &AdmittedEvent) -> u64 {
    let mut body = String::new();
    seq.serialize_json(&mut body);
    body.push('|');
    at.serialize_json(&mut body);
    body.push('|');
    steps.serialize_json(&mut body);
    body.push('|');
    event.serialize_json(&mut body);
    fnv1a(body.as_bytes())
}

impl JournalRecord {
    /// Builds a record for `event` admitted at `(seq, at, steps)`,
    /// computing the checksum.
    #[must_use]
    pub fn new(seq: u64, at: SimTime, steps: u64, event: AdmittedEvent) -> Self {
        let crc = record_crc(seq, at, steps, &event);
        JournalRecord {
            seq,
            at,
            steps,
            crc,
            event,
        }
    }

    /// Whether the stored checksum matches the record's content.
    #[must_use]
    pub fn checksum_ok(&self) -> bool {
        record_crc(self.seq, self.at, self.steps, &self.event) == self.crc
    }
}

/// Why a journal suffix was rejected during recovery. The valid prefix
/// before the offending line is always applied; nothing at or after it is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The final record does not parse — the classic torn tail of a crash
    /// mid-append.
    Truncated {
        /// 1-based journal line of the torn record.
        line: usize,
    },
    /// A record in the middle fails to parse, or any record fails its
    /// checksum: the journal was damaged, not merely torn.
    Corrupt {
        /// 1-based journal line of the damaged record.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A record's sequence number does not strictly increase — a
    /// duplicated or reordered append.
    DuplicateSeq {
        /// 1-based journal line of the offending record.
        line: usize,
        /// The non-increasing sequence number found there.
        seq: u64,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Truncated { line } => {
                write!(f, "journal truncated at line {line}")
            }
            JournalError::Corrupt { line, reason } => {
                write!(f, "journal corrupt at line {line}: {reason}")
            }
            JournalError::DuplicateSeq { line, seq } => {
                write!(f, "journal line {line} repeats sequence number {seq}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// Parses a JSONL journal into its longest valid prefix. Returns the
/// parsed records plus the error that stopped parsing, if any: a parse
/// failure on the *last* line is [`JournalError::Truncated`] (a torn
/// append), anywhere else — or any checksum mismatch — is
/// [`JournalError::Corrupt`], and a non-increasing sequence number is
/// [`JournalError::DuplicateSeq`].
#[must_use]
pub fn parse_journal(text: &str) -> (Vec<JournalRecord>, Option<JournalError>) {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = Vec::new();
    let mut last_seq = 0u64;
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let line_no = i + 1;
        let mut p = serde::de::Parser::new(line);
        let rec = match JournalRecord::deserialize_json(&mut p) {
            Ok(rec) if p.at_end() => rec,
            Ok(_) | Err(_) => {
                let err = if i + 1 == lines.len() {
                    JournalError::Truncated { line: line_no }
                } else {
                    JournalError::Corrupt {
                        line: line_no,
                        reason: "unparseable record".to_string(),
                    }
                };
                return (out, Some(err));
            }
        };
        if !rec.checksum_ok() {
            return (
                out,
                Some(JournalError::Corrupt {
                    line: line_no,
                    reason: "checksum mismatch".to_string(),
                }),
            );
        }
        if rec.seq <= last_seq {
            return (
                out,
                Some(JournalError::DuplicateSeq {
                    line: line_no,
                    seq: rec.seq,
                }),
            );
        }
        last_seq = rec.seq;
        out.push(rec);
    }
    (out, None)
}

/// The in-memory write-ahead journal: JSONL text plus the last sequence
/// number appended.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Journal {
    text: String,
    seq: u64,
}

impl Journal {
    fn with_seq(seq: u64) -> Self {
        Journal {
            text: String::new(),
            seq,
        }
    }

    fn append(&mut self, at: SimTime, steps: u64, event: &AdmittedEvent) -> u64 {
        self.seq += 1;
        let rec = JournalRecord::new(self.seq, at, steps, event.clone());
        self.append_record(&rec);
        self.seq
    }

    fn append_record(&mut self, rec: &JournalRecord) {
        rec.serialize_json(&mut self.text);
        self.text.push('\n');
        self.seq = rec.seq;
    }

    /// The journal as JSONL text (what would sit on durable storage).
    #[must_use]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The last sequence number appended.
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.seq
    }
}

/// Outcome of [`ClusterService::replay_journal`].
#[derive(Debug, Clone, PartialEq)]
pub struct JournalReplay {
    /// Records applied (suffix records past the snapshot's counter).
    pub applied: usize,
    /// Records skipped because the snapshot already contained them.
    pub skipped: usize,
    /// The tail error that stopped parsing, if the journal was damaged.
    /// Everything before the offending line was still applied.
    pub rejected: Option<JournalError>,
}

/// Why [`ClusterService::restore`] rejected a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The JSON did not parse as a [`ServiceSnapshot`].
    Parse(String),
    /// The snapshot's layout version is not [`SNAPSHOT_VERSION`].
    Version {
        /// The version found in the snapshot.
        found: u32,
    },
    /// The scheduler refused the saved state blob (wrong scheduler kind
    /// for the snapshot, or a corrupted blob), or the snapshot carried a
    /// blob for a scheduler that declares itself stateless (or vice
    /// versa).
    SchedulerState,
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Parse(e) => write!(f, "snapshot does not parse: {e}"),
            RestoreError::Version { found } => write!(
                f,
                "snapshot version {found} unsupported (expected {SNAPSHOT_VERSION})"
            ),
            RestoreError::SchedulerState => {
                write!(f, "scheduler rejected the snapshot's saved state")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// Full serialized state of a [`ClusterService`] at a batch boundary.
///
/// The encoding is canonical (sorted heap, key-sorted maps, verbatim
/// float totals), so `snapshot → restore → snapshot` round-trips byte for
/// byte and [`ServiceSnapshot::state_hash`] pins a service state as a
/// single `u64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSnapshot {
    version: u32,
    cfg: SimConfig,
    cluster: ClusterSnapshot,
    report: SimReport,
    /// Heap events sorted by `(at, seq)` — canonical order.
    events: Vec<Event>,
    seq: u64,
    specs: Vec<TaskSpec>,
    states: Vec<TaskState>,
    pending: Vec<u32>,
    unfinished: u64,
    avail: AvailabilityTracker,
    now: SimTime,
    steps: u64,
    started: bool,
    journal_seq: u64,
    scheduler: Option<String>,
}

impl ServiceSnapshot {
    /// The canonical JSON encoding of the snapshot.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.serialize_json(&mut out);
        out
    }

    /// Parses a snapshot from its JSON encoding.
    ///
    /// # Errors
    ///
    /// [`RestoreError::Parse`] on malformed input or trailing garbage.
    pub fn from_json(s: &str) -> Result<Self, RestoreError> {
        let mut p = serde::de::Parser::new(s);
        let snap = ServiceSnapshot::deserialize_json(&mut p)
            .map_err(|e| RestoreError::Parse(e.to_string()))?;
        if !p.at_end() {
            return Err(RestoreError::Parse("trailing characters".to_string()));
        }
        Ok(snap)
    }

    /// FNV-1a over the canonical JSON: the state fingerprint the
    /// crash-recovery harness compares across crash points.
    #[must_use]
    pub fn state_hash(&self) -> u64 {
        fnv1a(self.to_json().as_bytes())
    }

    /// Simulated time the snapshot was taken at.
    #[must_use]
    pub fn at(&self) -> SimTime {
        self.now
    }

    /// The admission counter folded into this snapshot: journal records
    /// with `seq` at or below this are already part of the state.
    #[must_use]
    pub fn journal_seq(&self) -> u64 {
        self.journal_seq
    }
}

/// The engine's event loop as a long-running, crash-safe object — see
/// the [module docs](self) for the lifecycle, snapshot format, journal
/// layout and recovery protocol.
#[derive(Debug)]
pub struct ClusterService {
    cfg: SimConfig,
    cluster: Cluster,
    report: SimReport,
    heap: EventHeap,
    seq: u64,
    specs: Vec<Arc<TaskSpec>>,
    states: Vec<TaskState>,
    id_to_idx: HashMap<TaskId, u32>,
    pending: Vec<u32>,
    unfinished: usize,
    avail: AvailabilityTracker,
    now: SimTime,
    /// Event batches processed so far — the replay anchor journal records
    /// are pinned to.
    steps: u64,
    started: bool,
    journal: Option<Journal>,
    journal_seq: u64,
    /// Reused same-timestamp batch buffer (always empty between steps).
    batch_scratch: Vec<Event>,
    /// Reused still-pending buffer for the scheduling pass.
    sched_scratch: Vec<u32>,
}

/// Clusters at or above this node count get *bounded* per-node sample
/// series: below it, every sample is retained (small runs keep full
/// fidelity and historical reports stay byte-identical).
const NODE_SAMPLE_BOUND_THRESHOLD: usize = 2048;
/// Target retained samples per node row on bounded clusters. Stride
/// doubling keeps each row within roughly `[CAP/2, CAP]` entries.
const NODE_SAMPLE_CAP: u64 = 256;

/// Downsampling stride for per-node series at sample ordinal `o` (a pure
/// function of serialized state, so bounded sampling survives
/// snapshot/restore): doubles every time the retained count would exceed
/// [`NODE_SAMPLE_CAP`].
fn node_sample_stride(ordinal: u64) -> u64 {
    (ordinal / NODE_SAMPLE_CAP + 1).next_power_of_two()
}

impl ClusterService {
    /// Creates an idle service over `cluster`: nothing admitted, nothing
    /// armed, journal disabled (enable with
    /// [`ClusterService::enable_journal`] before admitting).
    #[must_use]
    pub fn new(cluster: Cluster, cfg: SimConfig) -> Self {
        let report = SimReport {
            node_alloc_samples: if cfg.record_node_alloc {
                vec![Vec::new(); cluster.nodes().len()]
            } else {
                Vec::new()
            },
            ..SimReport::default()
        };
        let avail = AvailabilityTracker::new(cluster.static_capacity(None));
        ClusterService {
            cfg,
            cluster,
            report,
            heap: EventHeap::new(),
            seq: 0,
            specs: Vec::new(),
            states: Vec::new(),
            id_to_idx: HashMap::new(),
            pending: Vec::new(),
            unfinished: 0,
            avail,
            now: SimTime::ZERO,
            steps: 0,
            started: false,
            journal: None,
            journal_seq: 0,
            batch_scratch: Vec::new(),
            sched_scratch: Vec::new(),
        }
    }

    /// Current simulated time (the last processed batch's timestamp).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Whether [`ClusterService::start`] has run.
    #[must_use]
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// Tasks admitted but not yet finished.
    #[must_use]
    pub fn unfinished(&self) -> usize {
        self.unfinished
    }

    /// Event batches processed so far — the monotonic counter journal
    /// records anchor replay to. Harnesses use it to place admissions and
    /// crashes at reproducible batch boundaries.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The live cluster state.
    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The report as accumulated so far (tail accrual happens in
    /// [`ClusterService::finish`]).
    #[must_use]
    pub fn report(&self) -> &SimReport {
        &self.report
    }

    /// Records capacity-market cost totals into the report (absolute
    /// values, so checkpointing the same meter twice is idempotent).
    /// Market drivers (`gfs_market`) call this at every decision
    /// boundary; because the report rides the service snapshot, the
    /// accumulators survive a crash and a recovered driver resumes the
    /// integral instead of restarting it.
    pub fn record_market_costs(
        &mut self,
        gpu_hours_bought: f64,
        spend_usd: f64,
        stranded_gpu_hours: f64,
    ) {
        self.report.gpu_hours_bought = gpu_hours_bought;
        self.report.market_spend_usd = spend_usd;
        self.report.stranded_gpu_hours = stranded_gpu_hours;
    }

    /// Turns on the write-ahead journal; admissions from here on are
    /// journaled before they are applied. On a freshly-restored service
    /// the journal continues from the snapshot's admission counter.
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Journal::with_seq(self.journal_seq));
        }
    }

    /// The write-ahead journal, when enabled.
    #[must_use]
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    fn journal_admission(&mut self, event: &AdmittedEvent) {
        if let Some(j) = &mut self.journal {
            self.journal_seq = j.append(self.now, self.steps, event);
        } else {
            self.journal_seq += 1;
        }
    }

    /// Admits a batch of task arrivals (write-ahead journaled, then
    /// applied). Submissions in the past clamp to the current instant.
    pub fn admit_tasks(&mut self, tasks: Vec<TaskSpec>) {
        let ev = AdmittedEvent::Tasks(tasks);
        self.journal_admission(&ev);
        self.apply_admission(ev);
    }

    /// Admits a cluster-dynamics plan mid-run (write-ahead journaled,
    /// then applied). Events in the past clamp to the current instant.
    pub fn admit_plan(&mut self, plan: &DynamicsPlan) {
        let ev = AdmittedEvent::Plan(plan.clone());
        self.journal_admission(&ev);
        self.apply_admission(ev);
    }

    /// Arms the sample/tick chains and the configured dynamics timeline
    /// (write-ahead journaled, then applied). Call once, after the
    /// initial admissions; sequence numbers then reproduce the batch
    /// engine exactly.
    pub fn start(&mut self) {
        let ev = AdmittedEvent::Start;
        self.journal_admission(&ev);
        self.apply_admission(ev);
    }

    fn apply_admission(&mut self, ev: AdmittedEvent) {
        match ev {
            AdmittedEvent::Start => {
                if self.started {
                    return; // replay tolerance: arming twice is a no-op
                }
                self.started = true;
                push(&mut self.heap, &mut self.seq, self.now, EventKind::Sample);
                push(
                    &mut self.heap,
                    &mut self.seq,
                    self.now + self.cfg.tick_interval_secs,
                    EventKind::Tick,
                );
                // dynamics events enqueue last so an empty plan leaves
                // every sequence number — and therefore every scheduling
                // outcome — untouched
                let plan = std::mem::take(&mut self.cfg.dynamics);
                self.push_plan(&plan);
                self.cfg.dynamics = plan;
            }
            AdmittedEvent::Tasks(tasks) => {
                for t in tasks {
                    let at = t.submit_at.max(self.now);
                    let i = self.specs.len() as u32;
                    let spec = Arc::new(t);
                    self.id_to_idx.insert(spec.id, i);
                    self.specs.push(spec);
                    self.states.push(TaskState::default());
                    self.unfinished += 1;
                    push(&mut self.heap, &mut self.seq, at, EventKind::Submit(i));
                }
            }
            AdmittedEvent::Plan(plan) => self.push_plan(&plan),
        }
    }

    fn push_plan(&mut self, plan: &DynamicsPlan) {
        for ev in plan.events() {
            let kind = match ev.kind {
                ClusterEventKind::NodeDown => EventKind::NodeDown(ev.node),
                ClusterEventKind::NodeUp => EventKind::NodeUp(ev.node),
                ClusterEventKind::Drain { notice_secs } => EventKind::Drain {
                    node: ev.node,
                    notice: notice_secs,
                },
                ClusterEventKind::AddNode { group } => EventKind::AddNode {
                    model: group.model,
                    gpus: group.gpus,
                },
            };
            push(&mut self.heap, &mut self.seq, ev.at.max(self.now), kind);
        }
    }

    /// Processes one batch of same-timestamp events plus the scheduling
    /// pass that follows it. Returns `false` without touching the heap
    /// when there is nothing (or nothing admissible) left: the heap is
    /// empty, every task finished, or the next event lies past the
    /// configured horizon (the clock then parks at the horizon).
    pub fn step(&mut self, scheduler: &mut dyn Scheduler) -> bool {
        let Some(head_at) = self.heap.peek().map(|e| e.at) else {
            return false;
        };
        if self.unfinished == 0 {
            return false;
        }
        if let Some(limit) = self.cfg.max_time_secs.map(SimTime::from_secs) {
            if head_at > limit {
                self.now = limit;
                return false;
            }
        }
        let ev = self.heap.pop().expect("peeked event exists");
        self.now = ev.at;
        let now = self.now;
        let mut dirty = false;

        // process the entire same-timestamp batch before scheduling
        // (scratch buffer: always drained back empty at the end of step)
        let mut batch = std::mem::take(&mut self.batch_scratch);
        batch.push(ev);
        while let Some(next) = self.heap.peek() {
            if next.at == now {
                batch.push(self.heap.pop().expect("peeked event exists"));
            } else {
                break;
            }
        }

        for ev in batch.drain(..) {
            match ev.kind {
                EventKind::Submit(i) => {
                    let spec = &self.specs[i as usize];
                    let id = spec.id;
                    self.states[i as usize].rec = self.report.tasks.len() as u32;
                    self.states[i as usize].enqueue = now;
                    self.report.tasks.push(TaskRecord {
                        id,
                        priority: spec.priority,
                        org: spec.org,
                        total_gpus: spec.total_gpus(),
                        pods: spec.pods,
                        work_secs: spec.duration_secs,
                        submit: now,
                        first_start: None,
                        finish: None,
                        queued_secs: 0,
                        runs: 0,
                        evictions: 0,
                        displacements: 0,
                        migrations: 0,
                    });
                    scheduler.on_event(
                        &TaskEvent::Submitted {
                            task: id,
                            priority: spec.priority,
                            at: now,
                        },
                        &self.cluster,
                    );
                    enqueue(&mut self.pending, &self.specs, scheduler, i);
                    dirty = true;
                }
                EventKind::Finish { task, epoch } => {
                    let st = &mut self.states[task as usize];
                    if st.epoch != epoch {
                        continue; // stale: the run was preempted
                    }
                    let id = self.specs[task as usize].id;
                    if self.cluster.running_task(id).is_none() {
                        continue;
                    }
                    let rt = self
                        .cluster
                        .finish_task(id, now)
                        .expect("task verified running");
                    st.carried = 0; // progress state dies with the task
                    let rec = &mut self.report.tasks[st.rec as usize];
                    rec.finish = Some(now);
                    self.unfinished -= 1;
                    scheduler.on_event(
                        &TaskEvent::Finished {
                            task: id,
                            priority: rt.spec.priority,
                            at: now,
                        },
                        &self.cluster,
                    );
                    dirty = true;
                }
                EventKind::Requeue(task) => {
                    self.states[task as usize].enqueue = now;
                    enqueue(&mut self.pending, &self.specs, scheduler, task);
                    dirty = true;
                }
                EventKind::Tick => {
                    scheduler.on_tick(now, &self.cluster);
                    if self.unfinished > 0 {
                        push(
                            &mut self.heap,
                            &mut self.seq,
                            now + self.cfg.tick_interval_secs,
                            EventKind::Tick,
                        );
                    }
                    dirty = true;
                }
                EventKind::NodeDown(node) => {
                    // a down/unknown node makes the event a no-op, so
                    // overlapping hand-built schedules degrade gracefully
                    dirty |= apply_node_down(
                        node,
                        now,
                        &mut self.cluster,
                        scheduler,
                        &mut self.report,
                        &mut self.states,
                        &self.id_to_idx,
                        &mut self.heap,
                        &mut self.seq,
                        &mut self.avail,
                        self.cfg.requeue_delay_secs,
                    );
                }
                EventKind::NodeUp(node) => {
                    // an Up for a draining node cancels the drain (its
                    // capacity never left the availability accounting)
                    let was_down = self.cluster.node(node).ok().is_some_and(|n| !n.is_up());
                    if self.cluster.restore_node(node, now).is_err() {
                        continue; // already up / unknown: no-op
                    }
                    self.report.node_ups += 1;
                    let restored = self.cluster.nodes()[node.index()].total_gpus();
                    if was_down {
                        self.avail.change(now, -f64::from(restored));
                    }
                    scheduler.on_event(
                        &TaskEvent::NodeUp {
                            node,
                            restored_gpus: restored,
                            at: now,
                        },
                        &self.cluster,
                    );
                    dirty = true;
                }
                EventKind::Drain { node, notice } => {
                    let deadline = now + notice;
                    if self.cluster.drain_node(node, deadline).is_err() {
                        continue; // down / unknown / already draining: no-op
                    }
                    self.report.node_drains += 1;
                    // the scheduler chooses per gang: migrate now —
                    // gracefully, with checkpointed progress — or ride out
                    // the window (finish in place, or checkpoint until the
                    // forced deadline). The default Scheduler::drain_decision
                    // reproduces the historical rule (migrate exactly the
                    // gangs that cannot finish inside the window);
                    // ascending id order via the ordered running registry
                    let to_move: Vec<TaskId> = self
                        .cluster
                        .running()
                        .filter(|rt| rt.placements.iter().any(|p| p.node == node))
                        .filter(|rt| {
                            scheduler.drain_decision(rt, notice, &self.cluster, now)
                                == gfs_cluster::DrainDecision::Migrate
                        })
                        .map(|rt| rt.spec.id)
                        .collect();
                    for id in to_move {
                        let (rt, preserved) = self
                            .cluster
                            .migrate_task(id, now)
                            .expect("collected from the registry");
                        displace_and_requeue(
                            id,
                            rt.spec.priority,
                            preserved,
                            true,
                            now,
                            &self.cluster,
                            scheduler,
                            &mut self.report,
                            &mut self.states,
                            &self.id_to_idx,
                            &mut self.heap,
                            &mut self.seq,
                            self.cfg.requeue_delay_secs,
                        );
                    }
                    scheduler.on_event(
                        &TaskEvent::DrainNotice {
                            node,
                            deadline,
                            at: now,
                        },
                        &self.cluster,
                    );
                    push(
                        &mut self.heap,
                        &mut self.seq,
                        deadline,
                        EventKind::DrainDeadline(node),
                    );
                    dirty = true;
                }
                EventKind::DrainDeadline(node) => {
                    // fires only for a drain still in progress with this
                    // exact deadline: an Up inside the window cancelled
                    // it, a re-drain armed a different deadline
                    let armed = self
                        .cluster
                        .node(node)
                        .ok()
                        .is_some_and(|n| n.drain_deadline() == Some(now));
                    if !armed {
                        continue;
                    }
                    dirty |= apply_node_down(
                        node,
                        now,
                        &mut self.cluster,
                        scheduler,
                        &mut self.report,
                        &mut self.states,
                        &self.id_to_idx,
                        &mut self.heap,
                        &mut self.seq,
                        &mut self.avail,
                        self.cfg.requeue_delay_secs,
                    );
                }
                EventKind::AddNode { model, gpus } => {
                    let node = self.cluster.add_node(model, gpus);
                    self.report.nodes_added += 1;
                    self.report.gpus_added += u64::from(gpus);
                    self.avail.add_static(now, f64::from(gpus));
                    if self.cfg.record_node_alloc {
                        // pad the new node's series so every row shares one
                        // time origin (zero allocated before it existed)
                        let len = self.report.node_alloc_samples.first().map_or(0, Vec::len);
                        self.report.node_alloc_samples.push(vec![0.0; len]);
                    }
                    scheduler.on_event(
                        &TaskEvent::NodeAdded {
                            node,
                            added_gpus: gpus,
                            at: now,
                        },
                        &self.cluster,
                    );
                    dirty = true;
                }
                EventKind::Sample => {
                    let cap = self.cluster.capacity(None).max(1.0);
                    self.report.alloc_samples.push(AllocSample {
                        at: now,
                        total: self.cluster.allocation_rate(None),
                        hp: self.cluster.hp_allocated(None) / cap,
                        spot: self.cluster.spot_allocated(None) / cap,
                    });
                    if self.cfg.record_node_alloc {
                        self.record_node_samples();
                    }
                    if self.unfinished > 0 {
                        push(
                            &mut self.heap,
                            &mut self.seq,
                            now + self.cfg.alloc_sample_interval_secs,
                            EventKind::Sample,
                        );
                    }
                }
            }
        }
        self.batch_scratch = batch;

        if dirty && !self.pending.is_empty() {
            self.scheduling_pass(scheduler);
        }
        self.steps += 1;
        true
    }

    /// Appends one per-node allocation sample per row. Small clusters
    /// retain every sample; at or above [`NODE_SAMPLE_BOUND_THRESHOLD`]
    /// nodes the series is stride-downsampled (and compacted in place
    /// whenever the stride doubles), bounding every row near
    /// [`NODE_SAMPLE_CAP`] entries regardless of run length. The
    /// keep/skip decision depends only on serialized state (the fleet
    /// sample count and the row count), so it is snapshot-safe. A
    /// cluster that *grows past* the threshold mid-run keeps its already
    /// dense prefix and simply samples sparsely from there on.
    fn record_node_samples(&mut self) {
        if self.report.node_alloc_samples.len() >= NODE_SAMPLE_BOUND_THRESHOLD {
            let ordinal = (self.report.alloc_samples.len().max(1) - 1) as u64;
            let stride = node_sample_stride(ordinal);
            if ordinal > 0 && stride != node_sample_stride(ordinal - 1) {
                // stride doubled: keep every other retained sample
                for row in &mut self.report.node_alloc_samples {
                    let mut keep = 0;
                    let mut i = 0;
                    while i < row.len() {
                        row[keep] = row[i];
                        keep += 1;
                        i += 2;
                    }
                    row.truncate(keep);
                }
            }
            if !ordinal.is_multiple_of(stride) {
                return;
            }
        }
        for (i, n) in self.cluster.nodes().iter().enumerate() {
            self.report.node_alloc_samples[i].push(n.allocated());
        }
    }

    /// One scheduling pass over the (incrementally sorted) pending queue.
    fn scheduling_pass(&mut self, scheduler: &mut dyn Scheduler) {
        let now = self.now;
        // scratch recycling: the drained queue becomes next pass's
        // still-pending buffer, so steady state allocates nothing
        let mut still_pending = std::mem::take(&mut self.sched_scratch);
        let pending = std::mem::take(&mut self.pending);
        for &idx in &pending {
            let task = &self.specs[idx as usize];
            let Some(decision) = scheduler.schedule(task, &self.cluster, now) else {
                still_pending.push(idx);
                continue;
            };
            for victim in &decision.preemptions {
                match self.cluster.evict_task(*victim, now) {
                    Ok((_rt, preserved)) => {
                        let vidx = self.id_to_idx[victim] as usize;
                        self.states[vidx].carried = preserved;
                        self.states[vidx].epoch += 1;
                        let rec = &mut self.report.tasks[self.states[vidx].rec as usize];
                        rec.evictions += 1;
                        self.report.eviction_times.push(now);
                        scheduler.on_event(
                            &TaskEvent::Evicted {
                                task: *victim,
                                at: now,
                            },
                            &self.cluster,
                        );
                        push(
                            &mut self.heap,
                            &mut self.seq,
                            now + self.cfg.requeue_delay_secs,
                            EventKind::Requeue(vidx as u32),
                        );
                    }
                    Err(_) => {
                        self.report.failed_commits += 1;
                    }
                }
            }
            let carry = self.states[idx as usize].carried;
            let id = task.id;
            match self
                .cluster
                .start_task(Arc::clone(task), &decision.pod_nodes, now, carry)
            {
                Ok(()) => {
                    let st = &mut self.states[idx as usize];
                    st.epoch += 1;
                    let epoch = st.epoch;
                    let remaining = task.duration_secs.saturating_sub(carry).max(1);
                    push(
                        &mut self.heap,
                        &mut self.seq,
                        now + remaining,
                        EventKind::Finish { task: idx, epoch },
                    );
                    let queued = now.since(st.enqueue);
                    let rec = &mut self.report.tasks[st.rec as usize];
                    rec.queued_secs += queued;
                    rec.runs += 1;
                    if rec.first_start.is_none() {
                        rec.first_start = Some(now);
                    }
                    let priority = self.specs[idx as usize].priority;
                    if priority.is_spot() {
                        self.report.spot_start_times.push(now);
                    }
                    scheduler.on_event(
                        &TaskEvent::Started {
                            task: id,
                            priority,
                            queued_secs: queued,
                            at: now,
                        },
                        &self.cluster,
                    );
                }
                Err(_) => {
                    self.report.failed_commits += 1;
                    still_pending.push(idx);
                }
            }
        }
        self.pending = still_pending;
        let mut scratch = pending;
        scratch.clear();
        self.sched_scratch = scratch;
    }

    /// Steps until the next event lies strictly after `t` (or the run
    /// ends). After this, admissions happen "at `t`" in the journal's
    /// sense — the replay protocol reproduces exactly this call.
    pub fn run_until(&mut self, t: SimTime, scheduler: &mut dyn Scheduler) {
        while self.heap.peek().is_some_and(|e| e.at <= t) {
            if !self.step(scheduler) {
                break;
            }
        }
    }

    /// Steps until nothing remains: every task finished, the heap
    /// drained, or the horizon reached.
    pub fn run_to_end(&mut self, scheduler: &mut dyn Scheduler) {
        while self.step(scheduler) {}
    }

    /// Consumes the service and closes the report: tasks still queued
    /// accrue waiting time up to `now`, the availability integral closes,
    /// and the makespan is stamped.
    #[must_use]
    pub fn finish(self) -> SimReport {
        let mut report = self.report;
        for &idx in &self.pending {
            let st = &self.states[idx as usize];
            report.tasks[st.rec as usize].queued_secs += self.now.since(st.enqueue);
        }
        report.unavailability = self.avail.unavailability(self.now);
        report.makespan = self.now;
        report
    }

    /// Captures the full dynamic state (including the scheduler's, via
    /// [`Scheduler::save_state`]) as a versioned, canonical snapshot.
    #[must_use]
    pub fn snapshot(&self, scheduler: &dyn Scheduler) -> ServiceSnapshot {
        let mut events: Vec<Event> = self.heap.iter().cloned().collect();
        events.sort_by(|a, b| a.at.cmp(&b.at).then(a.seq.cmp(&b.seq)));
        ServiceSnapshot {
            version: SNAPSHOT_VERSION,
            cfg: self.cfg.clone(),
            cluster: self.cluster.snapshot(),
            report: self.report.clone(),
            events,
            seq: self.seq,
            specs: self.specs.iter().map(|s| (**s).clone()).collect(),
            states: self.states.clone(),
            pending: self.pending.clone(),
            unfinished: self.unfinished as u64,
            avail: self.avail.clone(),
            now: self.now,
            steps: self.steps,
            started: self.started,
            journal_seq: self.journal_seq,
            scheduler: scheduler.save_state(),
        }
    }

    /// Streams the canonical snapshot JSON straight off the live state —
    /// byte-identical to `self.snapshot(scheduler).to_json()` but without
    /// materializing a [`ServiceSnapshot`] first, so taking a checkpoint
    /// of a 10k-node service never deep-copies the cluster, the report or
    /// the task table (the dominant cost, and a 2× peak-memory spike, at
    /// fleet scale). The field framing mirrors the `ServiceSnapshot`
    /// derive exactly; the byte-identity is pinned by a test.
    #[must_use]
    pub fn snapshot_json(&self, scheduler: &dyn Scheduler) -> String {
        let mut out = String::new();
        out.push_str("{\"version\":");
        SNAPSHOT_VERSION.serialize_json(&mut out);
        out.push_str(",\"cfg\":");
        self.cfg.serialize_json(&mut out);
        out.push_str(",\"cluster\":");
        self.cluster.snapshot_json_into(&mut out);
        out.push_str(",\"report\":");
        self.report.serialize_json(&mut out);
        out.push_str(",\"events\":");
        let mut events: Vec<&Event> = self.heap.iter().collect();
        events.sort_by(|a, b| a.at.cmp(&b.at).then(a.seq.cmp(&b.seq)));
        events.serialize_json(&mut out);
        out.push_str(",\"seq\":");
        self.seq.serialize_json(&mut out);
        out.push_str(",\"specs\":[");
        for (i, s) in self.specs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            (**s).serialize_json(&mut out);
        }
        out.push_str("],\"states\":");
        self.states.serialize_json(&mut out);
        out.push_str(",\"pending\":");
        self.pending.serialize_json(&mut out);
        out.push_str(",\"unfinished\":");
        (self.unfinished as u64).serialize_json(&mut out);
        out.push_str(",\"avail\":");
        self.avail.serialize_json(&mut out);
        out.push_str(",\"now\":");
        self.now.serialize_json(&mut out);
        out.push_str(",\"steps\":");
        self.steps.serialize_json(&mut out);
        out.push_str(",\"started\":");
        self.started.serialize_json(&mut out);
        out.push_str(",\"journal_seq\":");
        self.journal_seq.serialize_json(&mut out);
        out.push_str(",\"scheduler\":");
        scheduler.save_state().serialize_json(&mut out);
        out.push('}');
        out
    }

    /// Rebuilds a service from a snapshot, rehydrating `scheduler` (a
    /// freshly-constructed instance from the same factory) through
    /// [`Scheduler::restore_state`].
    ///
    /// # Errors
    ///
    /// [`RestoreError::Version`] for an unknown layout version;
    /// [`RestoreError::SchedulerState`] when the scheduler and the
    /// snapshot disagree about saved state (wrong scheduler for the
    /// snapshot, or a corrupted blob).
    pub fn restore(
        snap: ServiceSnapshot,
        scheduler: &mut dyn Scheduler,
    ) -> Result<Self, RestoreError> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(RestoreError::Version {
                found: snap.version,
            });
        }
        match &snap.scheduler {
            Some(blob) => {
                if !scheduler.restore_state(blob) {
                    return Err(RestoreError::SchedulerState);
                }
            }
            None => {
                if scheduler.save_state().is_some() {
                    // a stateful scheduler paired with a stateless
                    // snapshot: the factory and the snapshot disagree
                    return Err(RestoreError::SchedulerState);
                }
            }
        }
        let specs: Vec<Arc<TaskSpec>> = snap.specs.into_iter().map(Arc::new).collect();
        let id_to_idx: HashMap<TaskId, u32> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id, i as u32))
            .collect();
        Ok(ClusterService {
            cfg: snap.cfg,
            cluster: Cluster::from_snapshot(snap.cluster),
            report: snap.report,
            heap: snap.events.into_iter().collect(),
            seq: snap.seq,
            specs,
            states: snap.states,
            id_to_idx,
            pending: snap.pending,
            unfinished: snap.unfinished as usize,
            avail: snap.avail,
            now: snap.now,
            steps: snap.steps,
            started: snap.started,
            journal: None,
            journal_seq: snap.journal_seq,
            batch_scratch: Vec::new(),
            sched_scratch: Vec::new(),
        })
    }

    /// Replays a journal against this service: records already folded
    /// into the restoring snapshot (`seq ≤` the snapshot's counter) are
    /// skipped; each remaining record advances the run to the batch count
    /// it was admitted at and re-applies the admission — reproducing the
    /// original interleaving exactly. A damaged tail is rejected — the
    /// valid prefix is applied, the error is reported in
    /// [`JournalReplay::rejected`]. When this service's own journal is
    /// enabled, applied records are re-appended verbatim so the journal
    /// stays continuous across the recovery.
    pub fn replay_journal(&mut self, text: &str, scheduler: &mut dyn Scheduler) -> JournalReplay {
        let (records, rejected) = parse_journal(text);
        let mut applied = 0;
        let mut skipped = 0;
        for rec in records {
            if rec.seq <= self.journal_seq {
                skipped += 1;
                continue;
            }
            while self.steps < rec.steps {
                if !self.step(scheduler) {
                    break;
                }
            }
            if let Some(j) = &mut self.journal {
                j.append_record(&rec);
            }
            self.journal_seq = rec.seq;
            self.apply_admission(rec.event);
            applied += 1;
        }
        JournalReplay {
            applied,
            skipped,
            rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs_cluster::Decision;
    use gfs_types::{ClusterEvent, GpuDemand, Priority};

    /// Minimal first-fit policy (stateless) to exercise the service.
    struct FirstFit;

    impl Scheduler for FirstFit {
        fn name(&self) -> &str {
            "first-fit"
        }

        fn schedule(
            &mut self,
            task: &TaskSpec,
            cluster: &Cluster,
            _now: SimTime,
        ) -> Option<Decision> {
            let need = task.gpus_per_pod.whole_cards().unwrap_or(1);
            let candidates = cluster.whole_fit_candidates(task.gpu_model, need);
            let mut budget: HashMap<NodeId, u32> = HashMap::new();
            let mut nodes = Vec::with_capacity(task.pods as usize);
            for _ in 0..task.pods {
                let slot = candidates
                    .iter()
                    .map(|&id| (NodeId::new(id), &cluster.nodes()[id as usize]))
                    .find(|(id, n)| {
                        budget.get(id).copied().unwrap_or_else(|| n.idle_gpus()) >= need
                    })
                    .map(|(id, _)| id)?;
                let entry = budget
                    .entry(slot)
                    .or_insert_with(|| cluster.nodes()[slot.index()].idle_gpus());
                *entry -= need;
                nodes.push(slot);
            }
            Some(Decision::place(nodes))
        }
    }

    fn task(id: u64, priority: Priority, gpus: u32, dur: u64, submit: u64) -> TaskSpec {
        TaskSpec::builder(id)
            .priority(priority)
            .gpus_per_pod(GpuDemand::whole(gpus))
            .duration_secs(dur)
            .submit_at(SimTime::from_secs(submit))
            .checkpoint(gfs_types::CheckpointPlan::Periodic { interval: 60 })
            .build()
            .unwrap()
    }

    fn trace(n: u64) -> Vec<TaskSpec> {
        (0..n)
            .map(|i| {
                task(
                    i,
                    if i % 3 == 0 {
                        Priority::Spot
                    } else {
                        Priority::Hp
                    },
                    (i % 4 + 1) as u32,
                    400 + i * 37,
                    i * 55,
                )
            })
            .collect()
    }

    fn churn_cfg() -> SimConfig {
        SimConfig {
            dynamics: DynamicsPlan::new(vec![
                ClusterEvent::down(NodeId::new(0), SimTime::from_secs(700)),
                ClusterEvent::up(NodeId::new(0), SimTime::from_secs(1_900)),
                ClusterEvent::drain(NodeId::new(1), SimTime::from_secs(1_200), 400),
                ClusterEvent::up(NodeId::new(1), SimTime::from_secs(2_500)),
            ])
            .unwrap(),
            ..SimConfig::default()
        }
    }

    fn golden() -> SimReport {
        let mut s = ClusterService::new(Cluster::homogeneous(3, GpuModel::A100, 8), churn_cfg());
        s.admit_tasks(trace(24));
        s.start();
        s.run_to_end(&mut FirstFit);
        s.finish()
    }

    #[test]
    fn service_matches_engine_run() {
        let direct = crate::run(
            Cluster::homogeneous(3, GpuModel::A100, 8),
            &mut FirstFit,
            trace(24),
            &churn_cfg(),
        );
        assert_eq!(golden(), direct);
    }

    #[test]
    fn snapshot_restore_snapshot_is_byte_identical() {
        let mut s = ClusterService::new(Cluster::homogeneous(3, GpuModel::A100, 8), churn_cfg());
        s.admit_tasks(trace(24));
        s.start();
        for _ in 0..40 {
            if !s.step(&mut FirstFit) {
                break;
            }
        }
        let snap = s.snapshot(&FirstFit);
        let json = snap.to_json();
        let mut sched = FirstFit;
        let restored =
            ClusterService::restore(ServiceSnapshot::from_json(&json).unwrap(), &mut sched)
                .unwrap();
        let again = restored.snapshot(&sched);
        assert_eq!(
            json,
            again.to_json(),
            "snapshot round-trip must be canonical"
        );
        assert_eq!(snap.state_hash(), again.state_hash());
    }

    #[test]
    fn crash_at_any_point_replays_to_the_same_report() {
        let golden = golden();
        for crash_after in [1usize, 7, 19, 33, 61] {
            let mut s =
                ClusterService::new(Cluster::homogeneous(3, GpuModel::A100, 8), churn_cfg());
            s.admit_tasks(trace(24));
            s.start();
            for _ in 0..crash_after {
                if !s.step(&mut FirstFit) {
                    break;
                }
            }
            let json = s.snapshot(&FirstFit).to_json();
            drop(s); // the crash
            let mut sched = FirstFit;
            let mut r =
                ClusterService::restore(ServiceSnapshot::from_json(&json).unwrap(), &mut sched)
                    .unwrap();
            r.run_to_end(&mut sched);
            assert_eq!(r.finish(), golden, "crash after {crash_after} steps");
        }
    }

    #[test]
    fn journal_alone_recovers_a_run_from_nothing() {
        // original: journaled admissions, crashes before any snapshot
        let mut s = ClusterService::new(Cluster::homogeneous(3, GpuModel::A100, 8), churn_cfg());
        s.enable_journal();
        s.admit_tasks(trace(24));
        s.start();
        for _ in 0..10 {
            s.step(&mut FirstFit);
        }
        let journal = s.journal().unwrap().text().to_string();
        drop(s); // the crash — no snapshot ever taken

        // recovery: a fresh service + full journal replay
        let mut r = ClusterService::new(Cluster::homogeneous(3, GpuModel::A100, 8), churn_cfg());
        let mut sched = FirstFit;
        let outcome = r.replay_journal(&journal, &mut sched);
        assert_eq!(outcome.applied, 2, "tasks + start");
        assert_eq!(outcome.skipped, 0);
        assert_eq!(outcome.rejected, None);
        r.run_to_end(&mut sched);
        assert_eq!(r.finish(), golden());
    }

    #[test]
    fn snapshot_plus_journal_suffix_recovers_mid_stream_admissions() {
        let seed = trace(16);
        let late: Vec<TaskSpec> = trace(24).split_off(16);
        let late_at = SimTime::from_secs(600);

        // golden: uninterrupted run with a mid-stream admission at 600 s
        let run_golden = || {
            let mut s =
                ClusterService::new(Cluster::homogeneous(3, GpuModel::A100, 8), churn_cfg());
            s.admit_tasks(seed.clone());
            s.start();
            s.run_until(late_at, &mut FirstFit);
            s.admit_tasks(late.clone());
            s.run_to_end(&mut FirstFit);
            s.finish()
        };

        // journaled original: snapshot early, admit late batch, crash
        let mut s = ClusterService::new(Cluster::homogeneous(3, GpuModel::A100, 8), churn_cfg());
        s.enable_journal();
        s.admit_tasks(seed.clone());
        s.start();
        for _ in 0..5 {
            s.step(&mut FirstFit);
        }
        let snap_json = s.snapshot(&FirstFit).to_json();
        s.run_until(late_at, &mut FirstFit);
        s.admit_tasks(late.clone());
        for _ in 0..3 {
            s.step(&mut FirstFit);
        }
        let journal = s.journal().unwrap().text().to_string();
        drop(s); // the crash

        let mut sched = FirstFit;
        let mut r =
            ClusterService::restore(ServiceSnapshot::from_json(&snap_json).unwrap(), &mut sched)
                .unwrap();
        let outcome = r.replay_journal(&journal, &mut sched);
        assert_eq!(
            outcome.skipped, 2,
            "seed tasks + start predate the snapshot"
        );
        assert_eq!(outcome.applied, 1, "the late batch replays");
        assert_eq!(outcome.rejected, None);
        r.run_to_end(&mut sched);
        assert_eq!(r.finish(), run_golden());
    }

    #[test]
    fn truncated_journal_tail_is_detected_and_prefix_applied() {
        let mut s = ClusterService::new(
            Cluster::homogeneous(2, GpuModel::A100, 8),
            SimConfig::default(),
        );
        s.enable_journal();
        s.admit_tasks(trace(4));
        s.start();
        let full = s.journal().unwrap().text().to_string();
        // tear the last record mid-line, as a crash mid-append would
        let torn = &full[..full.len() - 9];
        let (records, err) = parse_journal(torn);
        assert_eq!(records.len(), 1, "the first record survives");
        assert_eq!(err, Some(JournalError::Truncated { line: 2 }));

        // recovery still applies the valid prefix
        let mut r = ClusterService::new(
            Cluster::homogeneous(2, GpuModel::A100, 8),
            SimConfig::default(),
        );
        let outcome = r.replay_journal(torn, &mut FirstFit);
        assert_eq!(outcome.applied, 1);
        assert_eq!(outcome.rejected, Some(JournalError::Truncated { line: 2 }));
        assert!(!r.is_started(), "the torn Start record must not apply");
    }

    #[test]
    fn flipped_byte_fails_the_checksum() {
        let mut s = ClusterService::new(
            Cluster::homogeneous(2, GpuModel::A100, 8),
            SimConfig::default(),
        );
        s.enable_journal();
        s.admit_tasks(trace(4));
        s.start();
        let full = s.journal().unwrap().text().to_string();
        // flip one digit inside the first record's payload (a task id
        // field), keeping the line syntactically valid JSON
        let corrupted = full.replacen("\"pods\":1", "\"pods\":7", 1);
        assert_ne!(corrupted, full, "the pattern must exist to corrupt");
        let (records, err) = parse_journal(&corrupted);
        assert_eq!(records.len(), 0);
        assert_eq!(
            err,
            Some(JournalError::Corrupt {
                line: 1,
                reason: "checksum mismatch".to_string()
            })
        );
    }

    #[test]
    fn duplicate_sequence_numbers_are_rejected() {
        let mut s = ClusterService::new(
            Cluster::homogeneous(2, GpuModel::A100, 8),
            SimConfig::default(),
        );
        s.enable_journal();
        s.admit_tasks(trace(2));
        let line = s.journal().unwrap().text().to_string();
        let doubled = format!("{line}{line}");
        let (records, err) = parse_journal(&doubled);
        assert_eq!(records.len(), 1);
        assert_eq!(err, Some(JournalError::DuplicateSeq { line: 2, seq: 1 }));
    }

    #[test]
    fn restore_rejects_wrong_version_and_garbage() {
        let s = ClusterService::new(
            Cluster::homogeneous(1, GpuModel::A100, 8),
            SimConfig::default(),
        );
        let snap = s.snapshot(&FirstFit);
        let json = snap.to_json();
        let bumped = json.replacen("\"version\":1", "\"version\":99", 1);
        let parsed = ServiceSnapshot::from_json(&bumped).unwrap();
        assert_eq!(
            ClusterService::restore(parsed, &mut FirstFit).err(),
            Some(RestoreError::Version { found: 99 })
        );
        assert!(ServiceSnapshot::from_json("not json").is_err());
        assert!(
            ServiceSnapshot::from_json(&format!("{json}garbage")).is_err(),
            "trailing garbage must be rejected"
        );
    }

    #[test]
    fn event_heap_pops_in_binary_heap_order() {
        // adversarial interleaving of pushes (near / mid / far / past /
        // same-instant) and pops, cross-checked against a plain binary
        // heap; a fixed LCG keeps it deterministic
        let mut lcg: u64 = 0x243F_6A88_85A3_08D3;
        let mut rnd = move |m: u64| {
            lcg = lcg
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (lcg >> 33) % m
        };
        let mut calendar = EventHeap::new();
        let mut reference: BinaryHeap<Event> = BinaryHeap::new();
        let mut base = 0u64;
        for seq in 0..20_000u64 {
            let op = rnd(3);
            if op < 2 {
                let at = match rnd(4) {
                    0 => base + rnd(128),               // active / near slots
                    1 => base + rnd(50_000),            // inside the window
                    2 => base + 70_000 + rnd(1 << 21),  // far heap
                    _ => base.saturating_sub(rnd(200)), // at or before cursor
                };
                let ev = Event {
                    at: SimTime::from_secs(at),
                    seq,
                    kind: EventKind::Tick,
                };
                calendar.push(ev.clone());
                reference.push(ev);
            } else {
                let got = calendar.pop();
                let want = reference.pop();
                assert_eq!(got, want);
                if let Some(e) = got {
                    base = e.at.as_secs();
                }
            }
        }
        loop {
            let got = calendar.pop();
            let want = reference.pop();
            assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn event_heap_iter_round_trips_through_snapshot_order() {
        let mut h = EventHeap::new();
        let mut seq = 0u64;
        for &t in &[5u64, 5, 100_000, 3, 70_000, 0, 1 << 22] {
            push(&mut h, &mut seq, SimTime::from_secs(t), EventKind::Tick);
        }
        let mut events: Vec<Event> = h.iter().cloned().collect();
        events.sort_by(|a, b| a.at.cmp(&b.at).then(a.seq.cmp(&b.seq)));
        let mut rebuilt: EventHeap = events.clone().into_iter().collect();
        for want in events {
            assert_eq!(rebuilt.pop(), Some(want));
        }
        assert_eq!(rebuilt.pop(), None);
    }

    #[test]
    fn node_sample_stride_doubles_and_bounds_the_series() {
        assert_eq!(node_sample_stride(0), 1);
        assert_eq!(node_sample_stride(255), 1);
        assert_eq!(node_sample_stride(256), 2);
        assert_eq!(node_sample_stride(511), 2);
        assert_eq!(node_sample_stride(512), 4);
        assert_eq!(node_sample_stride(2048), 16);
        // simulate the retention loop: the retained count never exceeds
        // CAP + 1, and every transition compacts to exactly half
        let mut row: Vec<u64> = Vec::new();
        for o in 0..100_000u64 {
            let stride = node_sample_stride(o);
            if o > 0 && stride != node_sample_stride(o - 1) {
                let mut keep = 0;
                let mut i = 0;
                while i < row.len() {
                    row[keep] = row[i];
                    keep += 1;
                    i += 2;
                }
                row.truncate(keep);
            }
            if o % stride == 0 {
                row.push(o);
            }
            assert!(row.len() <= NODE_SAMPLE_CAP as usize + 1, "ordinal {o}");
            // retained ordinals stay evenly strided
            for w in row.windows(2) {
                assert_eq!(w[1] - w[0], stride, "ordinal {o}");
            }
        }
    }

    #[test]
    fn streamed_snapshot_json_matches_materialized() {
        let mut s = ClusterService::new(Cluster::homogeneous(3, GpuModel::A100, 8), churn_cfg());
        s.admit_tasks(trace(24));
        s.start();
        let mut stepped = 0usize;
        for checkpoint in [0usize, 3, 9, 17, 40] {
            while stepped < checkpoint && s.step(&mut FirstFit) {
                stepped += 1;
            }
            assert_eq!(
                s.snapshot(&FirstFit).to_json(),
                s.snapshot_json(&FirstFit),
                "streamed snapshot diverged after {stepped} steps"
            );
        }
    }

    #[test]
    fn parked_at_horizon_step_is_idempotent() {
        let mut s = ClusterService::new(
            Cluster::homogeneous(1, GpuModel::A100, 8),
            SimConfig {
                max_time_secs: Some(100),
                ..SimConfig::default()
            },
        );
        s.admit_tasks(vec![task(1, Priority::Hp, 16, 50, 0)]); // never fits
        s.start();
        s.run_to_end(&mut FirstFit);
        assert_eq!(s.now(), SimTime::from_secs(100));
        assert!(!s.step(&mut FirstFit), "parked: stepping stays a no-op");
        assert_eq!(s.now(), SimTime::from_secs(100));
        let report = s.finish();
        assert_eq!(report.makespan, SimTime::from_secs(100));
    }
}
