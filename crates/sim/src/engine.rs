//! The batch entry point of the discrete-event simulation.
//!
//! Events (submissions, completions, requeues after eviction, quota ticks,
//! utilisation samples, and the injected cluster timeline — failures,
//! recoveries, maintenance drains, scale-out; see [`crate::dynamics`])
//! are processed in `(time, sequence)` order; after
//! every batch of same-timestamp events the engine runs one scheduling pass
//! over the pending queue. All state transitions go through
//! [`gfs_cluster::Cluster`], so a scheduler can never corrupt accounting.
//!
//! The event loop itself lives in [`crate::service`] as the long-running,
//! crash-safe [`ClusterService`](crate::ClusterService); [`run`] is a thin
//! driver over it — admit the whole trace, arm the timers, drain the heap,
//! close the report — and is bit-identical to the historical monolithic
//! loop (pinned by `tests/golden_report.rs` at the workspace root).

use gfs_cluster::{Cluster, Scheduler};
use gfs_types::{DynamicsPlan, SimDuration, TaskSpec};
use serde::{Deserialize, Serialize};

use crate::report::SimReport;
use crate::service::ClusterService;

/// Engine configuration.
///
/// Serializable: a [`crate::ServiceSnapshot`] embeds the configuration so
/// a restored service resumes under the exact timers and horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Cadence of [`Scheduler::on_tick`] (the paper's 300 s quota-update
    /// interval).
    pub tick_interval_secs: SimDuration,
    /// Delay between an eviction and the task re-entering the queue (the
    /// preemption grace period, 30 s). Displaced tasks requeue after the
    /// same delay.
    pub requeue_delay_secs: SimDuration,
    /// Cadence of allocation-rate samples.
    pub alloc_sample_interval_secs: SimDuration,
    /// Record per-node allocation series (Fig. 8 heat-maps).
    pub record_node_alloc: bool,
    /// Hard stop, seconds of simulated time (tasks still pending are
    /// reported as unfinished).
    pub max_time_secs: Option<u64>,
    /// Cluster timeline injected alongside the task trace: failures,
    /// recoveries, maintenance drains and scale-out steps (see
    /// [`crate::dynamics`] for the event flow; formerly `faults`). The
    /// default empty plan is a strict no-op.
    pub dynamics: DynamicsPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            tick_interval_secs: 300,
            requeue_delay_secs: 30,
            alloc_sample_interval_secs: 3_600,
            record_node_alloc: false,
            max_time_secs: None,
            dynamics: DynamicsPlan::none(),
        }
    }
}

/// Runs a trace against a scheduler on a cluster.
///
/// Deterministic: identical inputs produce identical reports.
pub fn run(
    cluster: Cluster,
    scheduler: &mut dyn Scheduler,
    tasks: Vec<TaskSpec>,
    cfg: &SimConfig,
) -> SimReport {
    let mut service = ClusterService::new(cluster, cfg.clone());
    service.admit_tasks(tasks);
    service.start();
    service.run_to_end(scheduler);
    service.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    use gfs_cluster::Decision;
    use gfs_types::{GpuDemand, GpuModel, NodeId, Priority, SimTime, TaskId};

    /// Minimal first-fit policy used to exercise the engine.
    struct FirstFit;

    impl Scheduler for FirstFit {
        fn name(&self) -> &str {
            "first-fit"
        }

        fn schedule(
            &mut self,
            task: &TaskSpec,
            cluster: &Cluster,
            _now: SimTime,
        ) -> Option<Decision> {
            let need = match task.gpus_per_pod {
                GpuDemand::Whole(n) => n,
                GpuDemand::Fraction(_) => 1,
            };
            // first-fit over the capacity index: only feasible nodes visited
            let candidates = cluster.whole_fit_candidates(task.gpu_model, need);
            let mut budget: HashMap<NodeId, u32> = HashMap::new();
            let mut nodes = Vec::with_capacity(task.pods as usize);
            for _ in 0..task.pods {
                let slot = candidates
                    .iter()
                    .map(|&id| (NodeId::new(id), &cluster.nodes()[id as usize]))
                    .find(|(id, n)| {
                        budget.get(id).copied().unwrap_or_else(|| n.idle_gpus()) >= need
                    })
                    .map(|(id, _)| id)?;
                let entry = budget
                    .entry(slot)
                    .or_insert_with(|| cluster.nodes()[slot.index()].idle_gpus());
                *entry -= need;
                nodes.push(slot);
            }
            Some(Decision::place(nodes))
        }
    }

    fn task(id: u64, priority: Priority, gpus: u32, dur: u64, submit: u64) -> TaskSpec {
        TaskSpec::builder(id)
            .priority(priority)
            .gpus_per_pod(GpuDemand::whole(gpus))
            .duration_secs(dur)
            .submit_at(SimTime::from_secs(submit))
            .build()
            .unwrap()
    }

    #[test]
    fn single_task_runs_to_completion() {
        let cluster = Cluster::homogeneous(1, GpuModel::A100, 8);
        let report = run(
            cluster,
            &mut FirstFit,
            vec![task(1, Priority::Hp, 4, 600, 0)],
            &SimConfig::default(),
        );
        assert_eq!(report.tasks.len(), 1);
        let t = &report.tasks[0];
        assert_eq!(t.finish, Some(SimTime::from_secs(600)));
        assert_eq!(t.queued_secs, 0);
        assert_eq!(t.runs, 1);
        assert_eq!(report.failed_commits, 0);
    }

    #[test]
    fn queued_task_waits_for_capacity() {
        let cluster = Cluster::homogeneous(1, GpuModel::A100, 8);
        let tasks = vec![
            task(1, Priority::Hp, 8, 1_000, 0),
            task(2, Priority::Hp, 8, 500, 100),
        ];
        let report = run(cluster, &mut FirstFit, tasks, &SimConfig::default());
        let t2 = report
            .tasks
            .iter()
            .find(|t| t.id == TaskId::new(2))
            .unwrap();
        assert_eq!(t2.first_start, Some(SimTime::from_secs(1_000)));
        assert_eq!(t2.queued_secs, 900);
        assert_eq!(t2.finish, Some(SimTime::from_secs(1_500)));
    }

    #[test]
    fn unschedulable_task_reported_unfinished() {
        let cluster = Cluster::homogeneous(1, GpuModel::A100, 8);
        let tasks = vec![task(1, Priority::Hp, 16, 100, 0)]; // cannot ever fit a pod
        let cfg = SimConfig {
            max_time_secs: Some(3_600),
            ..SimConfig::default()
        };
        let report = run(cluster, &mut FirstFit, tasks, &cfg);
        assert!(!report.tasks[0].completed());
        assert!(
            report.tasks[0].queued_secs > 0,
            "queued time accrues to the horizon"
        );
    }

    #[test]
    fn determinism() {
        let tasks: Vec<TaskSpec> = (0..40)
            .map(|i| {
                task(
                    i,
                    if i % 3 == 0 {
                        Priority::Spot
                    } else {
                        Priority::Hp
                    },
                    (i % 4 + 1) as u32,
                    300 + i * 13,
                    i * 7,
                )
            })
            .collect();
        let r1 = run(
            Cluster::homogeneous(2, GpuModel::A100, 8),
            &mut FirstFit,
            tasks.clone(),
            &SimConfig::default(),
        );
        let r2 = run(
            Cluster::homogeneous(2, GpuModel::A100, 8),
            &mut FirstFit,
            tasks,
            &SimConfig::default(),
        );
        assert_eq!(r1.tasks, r2.tasks);
        assert_eq!(r1.makespan, r2.makespan);
    }

    #[test]
    fn alloc_samples_are_recorded() {
        let cluster = Cluster::homogeneous(1, GpuModel::A100, 8);
        let cfg = SimConfig {
            alloc_sample_interval_secs: 600,
            ..SimConfig::default()
        };
        let report = run(
            cluster,
            &mut FirstFit,
            vec![task(1, Priority::Hp, 8, 1_800, 0)],
            &cfg,
        );
        assert!(report.alloc_samples.len() >= 3);
        // while the task runs the cluster is fully allocated
        assert!(report.alloc_samples.iter().any(|s| s.total > 0.99));
    }

    #[test]
    fn node_alloc_recording_optional() {
        let cluster = Cluster::homogeneous(3, GpuModel::A100, 8);
        let cfg = SimConfig {
            record_node_alloc: true,
            ..SimConfig::default()
        };
        let report = run(
            cluster,
            &mut FirstFit,
            vec![task(1, Priority::Hp, 2, 600, 0)],
            &cfg,
        );
        assert_eq!(report.node_alloc_samples.len(), 3);
        assert!(!report.node_alloc_samples[0].is_empty());
    }

    /// A policy that preempts the single running spot task for any HP task.
    struct PreemptAll;

    impl Scheduler for PreemptAll {
        fn name(&self) -> &str {
            "preempt-all"
        }

        fn schedule(
            &mut self,
            task: &TaskSpec,
            cluster: &Cluster,
            _now: SimTime,
        ) -> Option<Decision> {
            let need = task.gpus_per_pod.whole_cards().unwrap_or(1);
            let node = cluster.nodes().first()?.id();
            let idle = cluster.node(node).ok()?.idle_gpus();
            if idle >= need {
                return Some(Decision::place(vec![node; task.pods as usize]));
            }
            if task.priority.is_hp() {
                let victims: Vec<TaskId> = cluster
                    .spot_tasks_on(node)
                    .iter()
                    .map(|rt| rt.spec.id)
                    .collect();
                if victims.is_empty() {
                    return None;
                }
                return Some(Decision {
                    pod_nodes: vec![node; task.pods as usize],
                    preemptions: victims,
                });
            }
            None
        }
    }

    #[test]
    fn preemption_evicts_and_requeues_spot() {
        let cluster = Cluster::homogeneous(1, GpuModel::A100, 8);
        let spot = TaskSpec::builder(1)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::whole(8))
            .duration_secs(10_000)
            .checkpoint(gfs_types::CheckpointPlan::Periodic { interval: 600 })
            .submit_at(SimTime::ZERO)
            .build()
            .unwrap();
        let hp = task(2, Priority::Hp, 8, 1_000, 2_000);
        let report = run(
            cluster,
            &mut PreemptAll,
            vec![spot, hp],
            &SimConfig::default(),
        );
        let spot_rec = report
            .tasks
            .iter()
            .find(|t| t.id == TaskId::new(1))
            .unwrap();
        let hp_rec = report
            .tasks
            .iter()
            .find(|t| t.id == TaskId::new(2))
            .unwrap();
        assert_eq!(spot_rec.evictions, 1);
        assert_eq!(spot_rec.runs, 2, "spot restarted after eviction");
        assert!(spot_rec.completed());
        assert_eq!(
            hp_rec.first_start,
            Some(SimTime::from_secs(2_000)),
            "HP ran immediately"
        );
        // checkpointed progress: 1800s preserved (3 × 600), so the spot task
        // finishes at 3030 (HP done) + (10000 − 1800) r... total work conserved
        let finish = spot_rec.finish.unwrap().as_secs();
        assert!(finish >= 3_000 + (10_000 - 1_800), "finish {finish}");
        assert_eq!(report.eviction_rate(), 0.5, "1 eviction over 2 runs");
        assert_eq!(report.failed_commits, 0);
    }

    /// Regression for carried-progress bookkeeping across long eviction
    /// chains: checkpointed progress must accumulate exactly through ~100
    /// evict/requeue cycles, and a task's progress state dies with it at
    /// finish (it lives in the dense per-task slot, cleared on `Finish` —
    /// the old per-`TaskId` map retained entries forever).
    #[test]
    fn carried_progress_exact_across_many_evictions() {
        let cluster = Cluster::homogeneous(1, GpuModel::A100, 8);
        // checkpoint every second: evictions lose (almost) nothing
        let spot = TaskSpec::builder(1)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::whole(8))
            .duration_secs(100_000)
            .checkpoint(gfs_types::CheckpointPlan::Periodic { interval: 1 })
            .submit_at(SimTime::ZERO)
            .build()
            .unwrap();
        // an 8-GPU HP task every 2000 s keeps evicting the spot task
        let mut tasks = vec![spot];
        for k in 1..120u64 {
            tasks.push(task(1_000 + k, Priority::Hp, 8, 1_000, 2_000 * k));
        }
        let report = run(cluster, &mut PreemptAll, tasks, &SimConfig::default());
        let spot_rec = report
            .tasks
            .iter()
            .find(|t| t.id == TaskId::new(1))
            .unwrap();
        assert!(
            spot_rec.completed(),
            "spot must finish despite the eviction storm"
        );
        assert!(
            spot_rec.evictions >= 90,
            "evictions: {}",
            spot_rec.evictions
        );
        assert_eq!(
            spot_rec.runs,
            spot_rec.evictions + 1,
            "every eviction restarts once"
        );
        // progress conservation: 2000 s in the first segment, 1000 s per
        // later segment, no checkpoint loss -> finish at exactly 198 000 s
        assert_eq!(spot_rec.finish, Some(SimTime::from_secs(198_000)));
        let hp_evictions: u32 = report
            .tasks
            .iter()
            .filter(|t| t.priority.is_hp())
            .map(|t| t.evictions)
            .sum();
        assert_eq!(hp_evictions, 0);
    }

    #[test]
    fn node_failure_displaces_requeues_and_restores() {
        use gfs_types::ClusterEvent;
        let cluster = Cluster::homogeneous(2, GpuModel::A100, 8);
        // an 8-GPU task on (first-fit) node 0 with per-second checkpoints
        let spec = TaskSpec::builder(1)
            .priority(Priority::Hp)
            .gpus_per_pod(GpuDemand::whole(8))
            .duration_secs(10_000)
            .checkpoint(gfs_types::CheckpointPlan::Periodic { interval: 1 })
            .submit_at(SimTime::ZERO)
            .build()
            .unwrap();
        // a second full-node task lands on node 1 and must ride out the
        // failure untouched
        let small = task(2, Priority::Hp, 8, 4_000, 10);
        let cfg = SimConfig {
            dynamics: DynamicsPlan::new(vec![
                ClusterEvent::down(NodeId::new(0), SimTime::from_secs(2_000)),
                ClusterEvent::up(NodeId::new(0), SimTime::from_secs(5_000)),
            ])
            .unwrap(),
            ..SimConfig::default()
        };
        let report = run(cluster, &mut FirstFit, vec![spec, small], &cfg);
        let t1 = report
            .tasks
            .iter()
            .find(|t| t.id == TaskId::new(1))
            .unwrap();
        let t2 = report
            .tasks
            .iter()
            .find(|t| t.id == TaskId::new(2))
            .unwrap();
        assert_eq!(t1.displacements, 1);
        assert_eq!(t1.evictions, 0, "displacement is not eviction");
        assert_eq!(t1.runs, 2, "requeued and restarted");
        assert!(
            t1.completed() && t2.completed(),
            "work survives the failure"
        );
        // per-second checkpoints: no work lost. The restart must wait for
        // node 1 (busy with task 2 until 4 010), then run the remaining
        // 8 000 s: finish at 12 010 with zero duplicated work
        assert_eq!(t1.finish, Some(SimTime::from_secs(12_010)));
        assert_eq!(
            t1.queued_secs,
            4_010 - 2_030,
            "queued from grace end to node-1 free"
        );
        assert_eq!(t2.displacements, 0, "node 1 never failed");
        assert_eq!(report.displacement_times, vec![SimTime::from_secs(2_000)]);
        assert_eq!(report.node_downs, 1);
        assert_eq!(report.node_ups, 1);
        assert!(report.unavailability > 0.0, "downtime must register");
        assert!(report.availability() < 1.0);
        assert_eq!(report.eviction_times, vec![], "no preemptions happened");
    }

    #[test]
    fn displaced_task_waits_for_recovery_when_cluster_too_small() {
        use gfs_types::ClusterEvent;
        let cluster = Cluster::homogeneous(1, GpuModel::A100, 8);
        let spec = TaskSpec::builder(1)
            .priority(Priority::Hp)
            .gpus_per_pod(GpuDemand::whole(8))
            .duration_secs(1_000)
            .checkpoint(gfs_types::CheckpointPlan::Periodic { interval: 100 })
            .submit_at(SimTime::ZERO)
            .build()
            .unwrap();
        let cfg = SimConfig {
            dynamics: DynamicsPlan::new(vec![
                ClusterEvent::down(NodeId::new(0), SimTime::from_secs(500)),
                ClusterEvent::up(NodeId::new(0), SimTime::from_secs(3_000)),
            ])
            .unwrap(),
            max_time_secs: Some(10_000),
            ..SimConfig::default()
        };
        let report = run(cluster, &mut FirstFit, vec![spec], &cfg);
        let t = &report.tasks[0];
        // 500 s progress, checkpointed at 500: the task resumes at 3 000
        // with 500 s left
        assert_eq!(t.finish, Some(SimTime::from_secs(3_500)));
        assert!(
            t.queued_secs >= 2_000,
            "waited out the outage: {}",
            t.queued_secs
        );
        // 8 of 8 cards down for 2 500 s of a 3 500 s run
        let expected = 2_500.0 / 3_500.0;
        assert!((report.unavailability - expected).abs() < 1e-9);
    }

    #[test]
    fn duplicate_fault_events_are_noops() {
        use gfs_types::ClusterEvent;
        let cluster = Cluster::homogeneous(2, GpuModel::A100, 8);
        // the validated constructor rejects these orderings; shape-shared
        // plans use new_unchecked and rely on engine-level no-op handling
        let cfg = SimConfig {
            dynamics: DynamicsPlan::new_unchecked(vec![
                ClusterEvent::down(NodeId::new(1), SimTime::from_secs(100)),
                ClusterEvent::down(NodeId::new(1), SimTime::from_secs(200)), // dup
                ClusterEvent::up(NodeId::new(1), SimTime::from_secs(300)),
                ClusterEvent::up(NodeId::new(1), SimTime::from_secs(400)), // dup
                ClusterEvent::down(NodeId::new(99), SimTime::from_secs(500)), // unknown
            ]),
            ..SimConfig::default()
        };
        let report = run(
            cluster,
            &mut FirstFit,
            vec![task(1, Priority::Hp, 1, 1_000, 0)],
            &cfg,
        );
        assert_eq!(report.node_downs, 1);
        assert_eq!(report.node_ups, 1);
        assert!(report.tasks[0].completed());
    }

    #[test]
    fn empty_fault_plan_is_strict_noop() {
        let tasks: Vec<TaskSpec> = (0..30)
            .map(|i| {
                task(
                    i,
                    if i % 3 == 0 {
                        Priority::Spot
                    } else {
                        Priority::Hp
                    },
                    (i % 4 + 1) as u32,
                    300 + i * 13,
                    i * 7,
                )
            })
            .collect();
        let base = run(
            Cluster::homogeneous(2, GpuModel::A100, 8),
            &mut FirstFit,
            tasks.clone(),
            &SimConfig::default(),
        );
        let with_empty_plan = run(
            Cluster::homogeneous(2, GpuModel::A100, 8),
            &mut FirstFit,
            tasks,
            &SimConfig {
                dynamics: DynamicsPlan::new(Vec::new()).unwrap(),
                ..SimConfig::default()
            },
        );
        assert_eq!(base.tasks, with_empty_plan.tasks);
        assert_eq!(base.makespan, with_empty_plan.makespan);
        assert_eq!(with_empty_plan.unavailability, 0.0);
    }

    #[test]
    fn drained_node_accepts_no_new_placements() {
        use gfs_types::ClusterEvent;
        let cluster = Cluster::homogeneous(1, GpuModel::A100, 8);
        // the node drains before the task submits: with nowhere to go the
        // task stays queued until the node returns
        let cfg = SimConfig {
            dynamics: DynamicsPlan::new(vec![
                ClusterEvent::drain(NodeId::new(0), SimTime::from_secs(100), 1_000),
                ClusterEvent::up(NodeId::new(0), SimTime::from_secs(5_000)),
            ])
            .unwrap(),
            max_time_secs: Some(20_000),
            ..SimConfig::default()
        };
        let report = run(
            cluster,
            &mut FirstFit,
            vec![task(1, Priority::Hp, 8, 600, 200)],
            &cfg,
        );
        let t = &report.tasks[0];
        assert_eq!(
            t.first_start,
            Some(SimTime::from_secs(5_000)),
            "waited out the drain"
        );
        assert_eq!(t.finish, Some(SimTime::from_secs(5_600)));
        assert_eq!(
            t.displacements + t.migrations,
            0,
            "never placed on the draining node"
        );
        assert_eq!(report.node_drains, 1);
        assert_eq!(report.node_downs, 1, "deadline forced the empty node down");
        assert_eq!(report.node_ups, 1);
    }

    #[test]
    fn short_task_finishes_inside_notice_window() {
        use gfs_types::ClusterEvent;
        let cluster = Cluster::homogeneous(1, GpuModel::A100, 8);
        // 1 000 s of work left at drain time, 2 000 s of notice: finish
        let cfg = SimConfig {
            dynamics: DynamicsPlan::new(vec![ClusterEvent::drain(
                NodeId::new(0),
                SimTime::from_secs(500),
                2_000,
            )])
            .unwrap(),
            max_time_secs: Some(10_000),
            ..SimConfig::default()
        };
        let report = run(
            cluster,
            &mut FirstFit,
            vec![task(1, Priority::Hp, 8, 1_500, 0)],
            &cfg,
        );
        let t = &report.tasks[0];
        assert_eq!(
            t.finish,
            Some(SimTime::from_secs(1_500)),
            "ran to completion in place"
        );
        assert_eq!(t.migrations, 0, "fits the window: no migration");
        assert_eq!(t.displacements, 0, "and no forced displacement");
        assert_eq!(report.migration_times, vec![]);
        // the run ends at the last completion (1 500), before the 2 500
        // deadline ever fires
        assert_eq!(report.node_downs, 0);
    }

    #[test]
    fn long_task_migrates_on_drain_notice_and_restarts_elsewhere() {
        use gfs_types::ClusterEvent;
        let cluster = Cluster::homogeneous(2, GpuModel::A100, 8);
        // first-fit puts the task on node 0; 10 000 s of work cannot fit a
        // 1 000 s notice, so the gang migrates at the notice and restarts
        // on node 1 with its checkpointed progress
        let spec = TaskSpec::builder(1)
            .priority(Priority::Hp)
            .gpus_per_pod(GpuDemand::whole(8))
            .duration_secs(10_000)
            .checkpoint(gfs_types::CheckpointPlan::Periodic { interval: 1 })
            .submit_at(SimTime::ZERO)
            .build()
            .unwrap();
        let cfg = SimConfig {
            dynamics: DynamicsPlan::new(vec![ClusterEvent::drain(
                NodeId::new(0),
                SimTime::from_secs(2_000),
                1_000,
            )])
            .unwrap(),
            ..SimConfig::default()
        };
        let report = run(cluster, &mut FirstFit, vec![spec], &cfg);
        let t = &report.tasks[0];
        assert_eq!(t.migrations, 1);
        assert_eq!(t.displacements, 0, "graceful, not forced");
        assert_eq!(t.evictions, 0, "and not an eviction either");
        assert_eq!(t.runs, 2);
        // per-second checkpoints: nothing lost; requeued after the 30 s
        // grace, restarts at 2 030 on node 1 with 8 000 s left
        assert_eq!(t.finish, Some(SimTime::from_secs(10_030)));
        assert_eq!(report.migration_times, vec![SimTime::from_secs(2_000)]);
        assert_eq!(report.displacement_times, vec![]);
        assert_eq!(report.node_drains, 1);
    }

    #[test]
    fn deadline_forces_displacement_with_fail_accounting() {
        use gfs_types::ClusterEvent;
        // single node: the task cannot migrate anywhere, rides out the
        // notice window, and is forcibly displaced at the deadline
        let cluster = Cluster::homogeneous(1, GpuModel::A100, 8);
        let spec = TaskSpec::builder(1)
            .priority(Priority::Hp)
            .gpus_per_pod(GpuDemand::whole(8))
            .duration_secs(10_000)
            .checkpoint(gfs_types::CheckpointPlan::Periodic { interval: 100 })
            .submit_at(SimTime::ZERO)
            .build()
            .unwrap();
        let cfg = SimConfig {
            dynamics: DynamicsPlan::new(vec![
                ClusterEvent::drain(NodeId::new(0), SimTime::from_secs(1_000), 500),
                ClusterEvent::up(NodeId::new(0), SimTime::from_secs(4_000)),
            ])
            .unwrap(),
            max_time_secs: Some(30_000),
            ..SimConfig::default()
        };
        let report = run(cluster, &mut FirstFit, vec![spec], &cfg);
        let t = &report.tasks[0];
        // the migration *attempt* happens (remaining 9 000 > 500 notice)
        // but there is nowhere to go — the task requeues at the notice and
        // waits; displacement never fires because the pod already left
        assert_eq!(t.migrations, 1, "migrated off at the notice");
        assert_eq!(t.displacements, 0);
        // checkpointed at 1 000: resumes at 4 000 with 9 000 s left
        assert_eq!(t.finish, Some(SimTime::from_secs(13_000)));
        assert_eq!(report.node_downs, 1);
        // availability: 8/8 cards down from the 1 500 deadline to 4 000
        let expected = 2_500.0 / 13_000.0;
        assert!(
            (report.unavailability - expected).abs() < 1e-9,
            "{}",
            report.unavailability
        );
    }

    /// First-fit, but answering `Stay` to every drain notice: gangs ride
    /// out the window checkpointing and take the forced displacement.
    struct StayPut(FirstFit);

    impl Scheduler for StayPut {
        fn name(&self) -> &str {
            "stay-put"
        }

        fn schedule(
            &mut self,
            task: &TaskSpec,
            cluster: &Cluster,
            now: SimTime,
        ) -> Option<Decision> {
            self.0.schedule(task, cluster, now)
        }

        fn drain_decision(
            &self,
            _task: &gfs_cluster::RunningTask,
            _notice: SimDuration,
            _cluster: &Cluster,
            _now: SimTime,
        ) -> gfs_cluster::DrainDecision {
            gfs_cluster::DrainDecision::Stay
        }
    }

    #[test]
    fn drain_decision_stay_harvests_checkpoints_until_the_deadline() {
        use gfs_types::ClusterEvent;
        let cluster = Cluster::homogeneous(2, GpuModel::A100, 8);
        // 10 000 s of work cannot fit the 1 000 s notice; the default
        // policy migrates at the notice (see the engine test above), but a
        // Stay answer keeps the gang checkpointing until the deadline
        let spec = TaskSpec::builder(1)
            .priority(Priority::Hp)
            .gpus_per_pod(GpuDemand::whole(8))
            .duration_secs(10_000)
            .checkpoint(gfs_types::CheckpointPlan::Periodic { interval: 1 })
            .submit_at(SimTime::ZERO)
            .build()
            .unwrap();
        let cfg = SimConfig {
            dynamics: DynamicsPlan::new(vec![ClusterEvent::drain(
                NodeId::new(0),
                SimTime::from_secs(2_000),
                1_000,
            )])
            .unwrap(),
            ..SimConfig::default()
        };
        let report = run(cluster, &mut StayPut(FirstFit), vec![spec], &cfg);
        let t = &report.tasks[0];
        assert_eq!(t.migrations, 0, "the policy declined the early migration");
        assert_eq!(
            t.displacements, 1,
            "…and took the forced displacement instead"
        );
        // 3 000 s of per-second-checkpointed progress survived; restart on
        // node 1 after the 30 s grace finishes the remaining 7 000 s
        assert_eq!(t.finish, Some(SimTime::from_secs(10_030)));
        assert_eq!(report.displacement_times, vec![SimTime::from_secs(3_000)]);
        assert_eq!(report.migration_times, vec![]);
        assert_eq!(report.node_downs, 1, "the deadline forced the node down");
    }

    #[test]
    fn up_event_inside_notice_window_cancels_the_drain() {
        use gfs_types::ClusterEvent;
        let cluster = Cluster::homogeneous(1, GpuModel::A100, 8);
        // drain at 1 000 with a 5 000 s notice, cancelled at 2 000: the
        // 4-GPU task fits the window, so it is never disturbed, and the
        // deadline at 6 000 finds the drain cancelled
        let spec = TaskSpec::builder(1)
            .priority(Priority::Hp)
            .gpus_per_pod(GpuDemand::whole(4))
            .duration_secs(4_000)
            .submit_at(SimTime::ZERO)
            .build()
            .unwrap();
        let cfg = SimConfig {
            dynamics: DynamicsPlan::new(vec![
                ClusterEvent::drain(NodeId::new(0), SimTime::from_secs(1_000), 5_000),
                ClusterEvent::up(NodeId::new(0), SimTime::from_secs(2_000)),
            ])
            .unwrap(),
            max_time_secs: Some(30_000),
            ..SimConfig::default()
        };
        let report = run(cluster, &mut FirstFit, vec![spec], &cfg);
        let t = &report.tasks[0];
        assert_eq!(t.finish, Some(SimTime::from_secs(4_000)), "never disturbed");
        assert_eq!(t.migrations, 0);
        assert_eq!(
            report.node_downs, 0,
            "the deadline found the drain cancelled"
        );
        assert_eq!(report.node_drains, 1);
        assert_eq!(report.node_ups, 1);
        assert_eq!(
            report.unavailability, 0.0,
            "a cancelled drain never went down"
        );
    }

    #[test]
    fn add_node_events_grow_capacity_mid_run() {
        use gfs_types::NodeTemplate;
        let cluster = Cluster::homogeneous(1, GpuModel::A100, 8);
        // two full-node tasks on one node: the second waits — until a
        // scale-out step mints node 1 at t = 500
        let tasks = vec![
            task(1, Priority::Hp, 8, 4_000, 0),
            task(2, Priority::Hp, 8, 1_000, 100),
        ];
        let cfg = SimConfig {
            dynamics: DynamicsPlan::scale_out(
                NodeTemplate {
                    model: GpuModel::A100,
                    gpus: 8,
                },
                SimTime::from_secs(500),
                1_000,
                1,
                1,
            ),
            record_node_alloc: true,
            ..SimConfig::default()
        };
        let report = run(cluster, &mut FirstFit, tasks, &cfg);
        let t2 = report
            .tasks
            .iter()
            .find(|t| t.id == TaskId::new(2))
            .unwrap();
        assert_eq!(
            t2.first_start,
            Some(SimTime::from_secs(500)),
            "started on the new node"
        );
        assert_eq!(t2.finish, Some(SimTime::from_secs(1_500)));
        assert_eq!(report.nodes_added, 1);
        assert_eq!(report.gpus_added, 8);
        assert_eq!(
            report.node_alloc_samples.len(),
            2,
            "sample series grew with the fleet"
        );
        assert_eq!(report.unavailability, 0.0);
        let summary = report.summary();
        assert_eq!(summary.added_gpus, 8.0);
        assert_eq!(summary.migration_count, 0);
    }

    #[test]
    fn eviction_timeline_recorded() {
        let cluster = Cluster::homogeneous(1, GpuModel::A100, 8);
        let spot = TaskSpec::builder(1)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::whole(8))
            .duration_secs(5_000)
            .submit_at(SimTime::ZERO)
            .build()
            .unwrap();
        let hp = task(2, Priority::Hp, 8, 500, 1_000);
        let report = run(
            cluster,
            &mut PreemptAll,
            vec![spot, hp],
            &SimConfig::default(),
        );
        assert_eq!(report.eviction_times, vec![SimTime::from_secs(1_000)]);
        assert_eq!(report.spot_start_times.len(), 2);
    }
}
