//! Simulation outputs: per-task records and aggregate metrics (§4.2).

use gfs_types::{OrgId, Priority, SimDuration, SimTime, TaskId};
use serde::{Deserialize, Serialize};

/// Outcome of one task in a simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Task id.
    pub id: TaskId,
    /// Priority class.
    pub priority: Priority,
    /// Submitting organization.
    pub org: OrgId,
    /// Total GPUs requested (pods × per-pod cards).
    pub total_gpus: f64,
    /// Pod count.
    pub pods: u32,
    /// Work duration requested, seconds.
    pub work_secs: SimDuration,
    /// Submission time.
    pub submit: SimTime,
    /// First execution start, if it ever started.
    pub first_start: Option<SimTime>,
    /// Completion time, if it finished.
    pub finish: Option<SimTime>,
    /// Accumulated queuing time across all segments, seconds (JQT).
    pub queued_secs: SimDuration,
    /// Number of run segments started.
    pub runs: u32,
    /// Number of evictions suffered (preemptions only).
    pub evictions: u32,
    /// Number of node-failure displacements suffered (kept apart from
    /// `evictions`: churn is not preemption). Omitted from the JSON when
    /// zero so fault-free reports keep their historical golden encoding.
    #[serde(skip_serializing_if = "is_zero_u32", default)]
    pub displacements: u32,
    /// Number of graceful migrations off draining nodes (the task left
    /// inside the notice window instead of dying at the deadline).
    /// Omitted from the JSON when zero, like the other dynamics fields.
    #[serde(skip_serializing_if = "is_zero_u32", default)]
    pub migrations: u32,
}

impl TaskRecord {
    /// Job completion time: finish − submit (None while unfinished).
    #[must_use]
    pub fn jct(&self) -> Option<SimDuration> {
        self.finish.map(|f| f.since(self.submit))
    }

    /// Whether the task completed.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.finish.is_some()
    }
}

/// Cluster-utilisation sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocSample {
    /// Sample time.
    pub at: SimTime,
    /// Overall allocation rate in `[0, 1]`.
    pub total: f64,
    /// HP share of capacity.
    pub hp: f64,
    /// Spot share of capacity.
    pub spot: f64,
}

/// Full output of a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// One record per submitted task.
    pub tasks: Vec<TaskRecord>,
    /// Hourly (configurable) allocation-rate samples.
    pub alloc_samples: Vec<AllocSample>,
    /// Per-node allocated-card samples (`[node][sample]`), recorded only
    /// when the config enables it (Fig. 8 heat-maps).
    pub node_alloc_samples: Vec<Vec<f64>>,
    /// Timestamps of every eviction event (Fig. 5 timelines).
    pub eviction_times: Vec<SimTime>,
    /// Timestamps of every spot run start.
    pub spot_start_times: Vec<SimTime>,
    /// Simulated time at which the run ended.
    pub makespan: SimTime,
    /// Placements that failed to commit after a preemption (should be 0;
    /// non-zero indicates a scheduler returning invalid decisions).
    pub failed_commits: u64,
    /// One timestamp per task displaced by a node failure. The
    /// fault-metric fields below are omitted from the JSON at their
    /// zero-fault defaults, so fault-free reports keep their historical
    /// golden encoding byte for byte.
    #[serde(skip_serializing_if = "Vec::is_empty", default)]
    pub displacement_times: Vec<SimTime>,
    /// Node-failure events applied.
    #[serde(skip_serializing_if = "is_zero_u64", default)]
    pub node_downs: u64,
    /// Node-recovery events applied.
    #[serde(skip_serializing_if = "is_zero_u64", default)]
    pub node_ups: u64,
    /// Down GPU-seconds over static GPU-seconds of the run, in `[0, 1]`
    /// (0 for a fault-free run); see [`SimReport::availability`].
    #[serde(skip_serializing_if = "is_zero_f64", default)]
    pub unavailability: f64,
    /// One timestamp per task gracefully migrated off a draining node.
    #[serde(skip_serializing_if = "Vec::is_empty", default)]
    pub migration_times: Vec<SimTime>,
    /// Maintenance-drain notices applied (node-level).
    #[serde(skip_serializing_if = "is_zero_u64", default)]
    pub node_drains: u64,
    /// Scale-out events applied (nodes minted mid-run).
    #[serde(skip_serializing_if = "is_zero_u64", default)]
    pub nodes_added: u64,
    /// GPU cards added by scale-out events.
    #[serde(skip_serializing_if = "is_zero_u64", default)]
    pub gpus_added: u64,
    /// GPU-hours purchased on the capacity market (`gfs_market`): the
    /// time-integral of market-bought cards over the run. Like the other
    /// extension fields, the cost metrics below are omitted from the JSON
    /// at their zero defaults so market-free reports keep their
    /// historical golden encoding byte for byte.
    #[serde(skip_serializing_if = "is_zero_f64", default)]
    pub gpu_hours_bought: f64,
    /// Total spend in USD on market capacity (spot price integrated over
    /// the bought GPU-hours).
    #[serde(skip_serializing_if = "is_zero_f64", default)]
    pub market_spend_usd: f64,
    /// Bought GPU-hours that sat idle (stranded capacity): paid for but
    /// never allocated to a task.
    #[serde(skip_serializing_if = "is_zero_f64", default)]
    pub stranded_gpu_hours: f64,
}

fn is_zero_u32(v: &u32) -> bool {
    *v == 0
}

fn is_zero_u64(v: &u64) -> bool {
    *v == 0
}

#[allow(clippy::trivially_copy_pass_by_ref)] // serde predicate signature
fn is_zero_f64(v: &f64) -> bool {
    *v == 0.0
}

impl SimReport {
    fn metric<F: Fn(&TaskRecord) -> Option<f64>>(&self, priority: Priority, f: F) -> Vec<f64> {
        self.tasks
            .iter()
            .filter(|t| t.priority == priority)
            .filter_map(f)
            .collect()
    }

    /// Mean JCT in seconds over completed tasks of a class.
    #[must_use]
    pub fn mean_jct(&self, priority: Priority) -> f64 {
        mean(&self.metric(priority, |t| t.jct().map(|d| d as f64)))
    }

    /// P99 JCT in seconds over completed tasks of a class.
    #[must_use]
    pub fn p99_jct(&self, priority: Priority) -> f64 {
        self.jct_quantile(priority, 0.99)
    }

    /// JCT quantile (nearest-rank) in seconds over completed tasks of a
    /// class; `q` in `(0, 1]`.
    #[must_use]
    pub fn jct_quantile(&self, priority: Priority, q: f64) -> f64 {
        quantile(self.metric(priority, |t| t.jct().map(|d| d as f64)), q)
    }

    /// Queueing-time quantile (nearest-rank) in seconds over all tasks of a
    /// class; `q` in `(0, 1]`.
    #[must_use]
    pub fn jqt_quantile(&self, priority: Priority, q: f64) -> f64 {
        quantile(self.metric(priority, |t| Some(t.queued_secs as f64)), q)
    }

    /// Mean JQT in seconds over tasks of a class (queued time accrues even
    /// for unfinished tasks).
    #[must_use]
    pub fn mean_jqt(&self, priority: Priority) -> f64 {
        mean(&self.metric(priority, |t| Some(t.queued_secs as f64)))
    }

    /// The paper's eviction rate `e`: evictions / run segments, over spot
    /// tasks.
    #[must_use]
    pub fn eviction_rate(&self) -> f64 {
        let (mut ev, mut runs) = (0u64, 0u64);
        for t in self.tasks.iter().filter(|t| t.priority.is_spot()) {
            ev += u64::from(t.evictions);
            runs += u64::from(t.runs);
        }
        if runs == 0 {
            0.0
        } else {
            ev as f64 / runs as f64
        }
    }

    /// Fraction of tasks of a class that completed.
    #[must_use]
    pub fn completion_rate(&self, priority: Priority) -> f64 {
        let all: Vec<_> = self
            .tasks
            .iter()
            .filter(|t| t.priority == priority)
            .collect();
        if all.is_empty() {
            return 1.0;
        }
        all.iter().filter(|t| t.completed()).count() as f64 / all.len() as f64
    }

    /// Number of submitted tasks of a class.
    #[must_use]
    pub fn task_count(&self, priority: Priority) -> u64 {
        self.tasks.iter().filter(|t| t.priority == priority).count() as u64
    }

    /// Total eviction events over the run.
    #[must_use]
    pub fn eviction_count(&self) -> u64 {
        self.eviction_times.len() as u64
    }

    /// Mean overall allocation rate across samples.
    #[must_use]
    pub fn mean_allocation_rate(&self) -> f64 {
        mean(
            &self
                .alloc_samples
                .iter()
                .map(|s| s.total)
                .collect::<Vec<_>>(),
        )
    }

    /// Time-weighted capacity availability over the run in `[0, 1]`:
    /// in-service GPU-seconds over static GPU-seconds (1.0 when no node
    /// ever failed).
    #[must_use]
    pub fn availability(&self) -> f64 {
        1.0 - self.unavailability
    }

    /// Total node-failure displacement events (task-level: a failure
    /// killing three tasks counts three).
    #[must_use]
    pub fn displacement_count(&self) -> u64 {
        self.displacement_times.len() as u64
    }

    /// Total graceful-migration events (task-level): gangs that left a
    /// draining node inside its notice window instead of being forcibly
    /// displaced at the deadline.
    #[must_use]
    pub fn migration_count(&self) -> u64 {
        self.migration_times.len() as u64
    }

    /// Mean JCT in seconds over *completed tasks that suffered at least
    /// one displacement* — the churn analogue of the eviction-cost
    /// metrics (0 when no displaced task completed).
    #[must_use]
    pub fn displaced_mean_jct_s(&self) -> f64 {
        let v: Vec<f64> = self
            .tasks
            .iter()
            .filter(|t| t.displacements > 0)
            .filter_map(|t| t.jct().map(|d| d as f64))
            .collect();
        mean(&v)
    }

    /// Per-hour eviction ratio over the run: for each hour bucket,
    /// `evictions / (evictions + spot starts)` — the Fig. 5 timeline.
    #[must_use]
    pub fn hourly_eviction_ratio(&self) -> Vec<f64> {
        let hours = self.makespan.as_hours() as usize + 1;
        let mut ev = vec![0f64; hours];
        let mut st = vec![0f64; hours];
        for t in &self.eviction_times {
            ev[t.as_hours() as usize] += 1.0;
        }
        for t in &self.spot_start_times {
            st[t.as_hours() as usize] += 1.0;
        }
        (0..hours)
            .map(|h| {
                let total = ev[h] + st[h];
                if total == 0.0 {
                    0.0
                } else {
                    ev[h] / total
                }
            })
            .collect()
    }

    /// Market spend divided by completed tasks: USD per completed job,
    /// the paper's §4.3 "cost per completed JCT" economics condensed to
    /// one scalar (0 when nothing was bought or nothing completed).
    #[must_use]
    pub fn cost_per_completed_usd(&self) -> f64 {
        let completed = self.tasks.iter().filter(|t| t.completed()).count();
        if completed == 0 || self.market_spend_usd == 0.0 {
            0.0
        } else {
            self.market_spend_usd / completed as f64
        }
    }

    /// Condenses the report into the scalar metrics the experiment layer
    /// aggregates across seeds (`gfs::lab` never reaches into raw fields).
    #[must_use]
    pub fn summary(&self) -> RunSummary {
        RunSummary {
            hp_tasks: self.task_count(Priority::Hp),
            spot_tasks: self.task_count(Priority::Spot),
            hp_completion: self.completion_rate(Priority::Hp),
            spot_completion: self.completion_rate(Priority::Spot),
            hp_mean_jct_s: self.mean_jct(Priority::Hp),
            hp_p99_jct_s: self.p99_jct(Priority::Hp),
            hp_mean_jqt_s: self.mean_jqt(Priority::Hp),
            spot_mean_jct_s: self.mean_jct(Priority::Spot),
            spot_p99_jct_s: self.p99_jct(Priority::Spot),
            spot_mean_jqt_s: self.mean_jqt(Priority::Spot),
            spot_p99_jqt_s: self.jqt_quantile(Priority::Spot, 0.99),
            eviction_count: self.eviction_count(),
            eviction_rate: self.eviction_rate(),
            mean_alloc_rate: self.mean_allocation_rate(),
            makespan_hours: self.makespan.as_secs() as f64 / 3_600.0,
            failed_commits: self.failed_commits,
            availability: self.availability(),
            displacement_count: self.displacement_count(),
            displaced_mean_jct_s: self.displaced_mean_jct_s(),
            migration_count: self.migration_count(),
            node_drains: self.node_drains,
            added_gpus: self.gpus_added as f64,
            gpu_hours_bought: self.gpu_hours_bought,
            market_spend_usd: self.market_spend_usd,
            cost_per_completed_usd: self.cost_per_completed_usd(),
            stranded_gpu_hours: self.stranded_gpu_hours,
        }
    }
}

/// Scalar per-run metrics (§4.2) — the unit the experiment-orchestration
/// layer replicates across seeds and reduces into summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// HP tasks submitted.
    pub hp_tasks: u64,
    /// Spot tasks submitted.
    pub spot_tasks: u64,
    /// HP completion rate in `[0, 1]`.
    pub hp_completion: f64,
    /// Spot completion rate in `[0, 1]`.
    pub spot_completion: f64,
    /// Mean HP JCT, seconds.
    pub hp_mean_jct_s: f64,
    /// P99 HP JCT, seconds.
    pub hp_p99_jct_s: f64,
    /// Mean HP JQT, seconds.
    pub hp_mean_jqt_s: f64,
    /// Mean spot JCT, seconds.
    pub spot_mean_jct_s: f64,
    /// P99 spot JCT, seconds.
    pub spot_p99_jct_s: f64,
    /// Mean spot JQT, seconds.
    pub spot_mean_jqt_s: f64,
    /// P99 spot JQT, seconds.
    pub spot_p99_jqt_s: f64,
    /// Total eviction events.
    pub eviction_count: u64,
    /// Eviction rate `e` (evictions / spot run segments).
    pub eviction_rate: f64,
    /// Mean overall allocation rate in `[0, 1]`.
    pub mean_alloc_rate: f64,
    /// Simulated makespan, hours.
    pub makespan_hours: f64,
    /// Placements that failed to commit (should be 0).
    pub failed_commits: u64,
    /// Time-weighted capacity availability in `[0, 1]` (1.0 fault-free).
    pub availability: f64,
    /// Node-failure displacement events.
    pub displacement_count: u64,
    /// Mean JCT over completed tasks that suffered a displacement,
    /// seconds.
    pub displaced_mean_jct_s: f64,
    /// Graceful drain-notice migrations. Like the report-side dynamics
    /// fields, the drain/scale-out metrics below skip serialization at
    /// their zero defaults so fault-only summaries keep their historical
    /// encoding.
    #[serde(skip_serializing_if = "is_zero_u64", default)]
    pub migration_count: u64,
    /// Maintenance-drain notices applied (node-level).
    #[serde(skip_serializing_if = "is_zero_u64", default)]
    pub node_drains: u64,
    /// GPU cards added by scale-out events.
    #[serde(skip_serializing_if = "is_zero_f64", default)]
    pub added_gpus: f64,
    /// GPU-hours bought on the capacity market. Like the dynamics fields
    /// above, the cost metrics skip serialization at their zero defaults
    /// so market-free summaries keep their historical encoding.
    #[serde(skip_serializing_if = "is_zero_f64", default)]
    pub gpu_hours_bought: f64,
    /// Total market spend, USD.
    #[serde(skip_serializing_if = "is_zero_f64", default)]
    pub market_spend_usd: f64,
    /// Market spend per completed task, USD.
    #[serde(skip_serializing_if = "is_zero_f64", default)]
    pub cost_per_completed_usd: f64,
    /// Bought GPU-hours that sat idle (stranded capacity).
    #[serde(skip_serializing_if = "is_zero_f64", default)]
    pub stranded_gpu_hours: f64,
}

impl RunSummary {
    /// Index of the first metric of the drain/scale-out extension inside
    /// [`RunSummary::METRICS`]. The aggregation layer emits rows for
    /// these only when some run produced a non-zero value, so summaries
    /// of static or fault-only grids keep their historical encoding.
    pub const DYNAMICS_METRICS_START: usize = 17;

    /// Index of the first capacity-market cost metric inside
    /// [`RunSummary::METRICS`]. Suppressed from aggregation rows exactly
    /// like the dynamics extension when every run reports zero, so
    /// market-free grids keep their historical encoding.
    pub const COST_METRICS_START: usize = 20;

    /// Names of every scalar metric, in the order [`RunSummary::values`]
    /// returns them. The experiment layer uses this single source of truth
    /// for aggregation, JSON keys and table headers.
    pub const METRICS: [&'static str; 24] = [
        "hp_completion",
        "spot_completion",
        "hp_mean_jct_s",
        "hp_p99_jct_s",
        "hp_mean_jqt_s",
        "spot_mean_jct_s",
        "spot_p99_jct_s",
        "spot_mean_jqt_s",
        "spot_p99_jqt_s",
        "eviction_count",
        "eviction_rate",
        "mean_alloc_rate",
        "makespan_hours",
        "failed_commits",
        "availability",
        "displacement_count",
        "displaced_mean_jct_s",
        "migration_count",
        "node_drains",
        "added_gpus",
        "gpu_hours_bought",
        "market_spend_usd",
        "cost_per_completed_usd",
        "stranded_gpu_hours",
    ];

    /// The scalar metric values in [`RunSummary::METRICS`] order.
    #[must_use]
    pub fn values(&self) -> [f64; 24] {
        [
            self.hp_completion,
            self.spot_completion,
            self.hp_mean_jct_s,
            self.hp_p99_jct_s,
            self.hp_mean_jqt_s,
            self.spot_mean_jct_s,
            self.spot_p99_jct_s,
            self.spot_mean_jqt_s,
            self.spot_p99_jqt_s,
            self.eviction_count as f64,
            self.eviction_rate,
            self.mean_alloc_rate,
            self.makespan_hours,
            self.failed_commits as f64,
            self.availability,
            self.displacement_count as f64,
            self.displaced_mean_jct_s,
            self.migration_count as f64,
            self.node_drains as f64,
            self.added_gpus,
            self.gpu_hours_bought,
            self.market_spend_usd,
            self.cost_per_completed_usd,
            self.stranded_gpu_hours,
        ]
    }

    /// Looks one metric up by name.
    #[must_use]
    pub fn value(&self, metric: &str) -> Option<f64> {
        Self::METRICS
            .iter()
            .position(|&m| m == metric)
            .map(|i| self.values()[i])
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Nearest-rank quantile of an unsorted finite sample; 0 when empty.
fn quantile(mut v: Vec<f64>, q: f64) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("metrics are finite"));
    let rank = ((v.len() as f64) * q.clamp(0.0, 1.0)).ceil() as usize;
    v[rank.clamp(1, v.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        id: u64,
        priority: Priority,
        jct: Option<u64>,
        jqt: u64,
        ev: u32,
        runs: u32,
    ) -> TaskRecord {
        TaskRecord {
            id: TaskId::new(id),
            priority,
            org: OrgId::new(0),
            total_gpus: 1.0,
            pods: 1,
            work_secs: 100,
            submit: SimTime::ZERO,
            first_start: Some(SimTime::from_secs(jqt)),
            finish: jct.map(SimTime::from_secs),
            queued_secs: jqt,
            runs,
            evictions: ev,
            displacements: 0,
            migrations: 0,
        }
    }

    #[test]
    fn jct_and_metrics() {
        let r = SimReport {
            tasks: vec![
                record(1, Priority::Hp, Some(100), 10, 0, 1),
                record(2, Priority::Hp, Some(300), 30, 0, 1),
                record(3, Priority::Spot, Some(500), 100, 1, 2),
                record(4, Priority::Spot, None, 400, 1, 1),
            ],
            makespan: SimTime::from_hours(1),
            ..SimReport::default()
        };
        assert_eq!(r.mean_jct(Priority::Hp), 200.0);
        assert_eq!(r.mean_jqt(Priority::Hp), 20.0);
        assert_eq!(
            r.mean_jct(Priority::Spot),
            500.0,
            "unfinished excluded from JCT"
        );
        assert_eq!(r.mean_jqt(Priority::Spot), 250.0);
        assert!((r.eviction_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.completion_rate(Priority::Spot), 0.5);
        assert_eq!(r.completion_rate(Priority::Hp), 1.0);
    }

    #[test]
    fn p99_of_small_set_is_max() {
        let r = SimReport {
            tasks: (0..10)
                .map(|i| record(i, Priority::Hp, Some(100 * (i + 1)), 0, 0, 1))
                .collect(),
            ..SimReport::default()
        };
        assert_eq!(r.p99_jct(Priority::Hp), 1_000.0);
    }

    #[test]
    fn empty_report_is_zeroes() {
        let r = SimReport::default();
        assert_eq!(r.mean_jct(Priority::Hp), 0.0);
        assert_eq!(r.eviction_rate(), 0.0);
        assert_eq!(r.p99_jct(Priority::Spot), 0.0);
        assert_eq!(r.completion_rate(Priority::Hp), 1.0);
        assert_eq!(r.availability(), 1.0);
        assert_eq!(r.displacement_count(), 0);
        assert_eq!(r.displaced_mean_jct_s(), 0.0);
    }

    #[test]
    fn fault_fields_skip_serialization_at_zero_defaults() {
        let fault_free = SimReport {
            tasks: vec![record(1, Priority::Hp, Some(100), 10, 0, 1)],
            makespan: SimTime::from_hours(1),
            ..SimReport::default()
        };
        let json = serde_json::to_string(&fault_free).unwrap();
        assert!(
            !json.contains("displacement")
                && !json.contains("unavailability")
                && !json.contains("node_downs")
                && !json.contains("migration")
                && !json.contains("node_drains")
                && !json.contains("added")
                && !json.contains("bought")
                && !json.contains("spend")
                && !json.contains("stranded"),
            "zero-dynamics reports must keep the historical encoding: {json}"
        );
        // and the fields round-trip through their defaults
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.unavailability, 0.0);
        assert_eq!(back.tasks[0].displacements, 0);

        let mut faulted = fault_free.clone();
        faulted.tasks[0].displacements = 2;
        faulted.displacement_times = vec![SimTime::from_secs(50)];
        faulted.node_downs = 1;
        faulted.unavailability = 0.125;
        let json = serde_json::to_string(&faulted).unwrap();
        assert!(json.contains("\"displacements\":2"));
        assert!(json.contains("\"unavailability\":0.125"));
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.availability(), 0.875);
        assert_eq!(back.displacement_count(), 1);
        assert_eq!(back.tasks[0].displacements, 2);

        // the drain/scale-out fields round-trip the same way
        let mut dynamic = fault_free;
        dynamic.tasks[0].migrations = 1;
        dynamic.migration_times = vec![SimTime::from_secs(25)];
        dynamic.node_drains = 2;
        dynamic.nodes_added = 1;
        dynamic.gpus_added = 8;
        let json = serde_json::to_string(&dynamic).unwrap();
        assert!(json.contains("\"node_drains\":2"));
        assert!(json.contains("\"gpus_added\":8"));
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.migration_count(), 1);
        assert_eq!(back.summary().added_gpus, 8.0);
        assert_eq!(back.summary().node_drains, 2);
        assert_eq!(back.summary().migration_count, 1);

        // the market cost fields round-trip the same way
        let mut priced = back;
        priced.gpu_hours_bought = 96.0;
        priced.market_spend_usd = 288.0;
        priced.stranded_gpu_hours = 4.5;
        let json = serde_json::to_string(&priced).unwrap();
        assert!(json.contains("\"gpu_hours_bought\":96"));
        assert!(json.contains("\"market_spend_usd\":288"));
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.summary().gpu_hours_bought, 96.0);
        assert_eq!(back.summary().market_spend_usd, 288.0);
        assert_eq!(back.summary().stranded_gpu_hours, 4.5);
        // one completed task → cost-per-completed is the whole spend
        assert_eq!(back.cost_per_completed_usd(), 288.0);
        assert_eq!(back.summary().cost_per_completed_usd, 288.0);
    }

    #[test]
    fn displaced_jct_covers_only_displaced_completions() {
        let mut displaced_done = record(1, Priority::Hp, Some(400), 0, 0, 2);
        displaced_done.displacements = 1;
        let mut displaced_unfinished = record(2, Priority::Spot, None, 0, 0, 1);
        displaced_unfinished.displacements = 1;
        let r = SimReport {
            tasks: vec![
                displaced_done,
                displaced_unfinished,
                record(3, Priority::Hp, Some(100), 0, 0, 1),
            ],
            ..SimReport::default()
        };
        assert_eq!(r.displaced_mean_jct_s(), 400.0);
    }

    #[test]
    fn hourly_eviction_ratio_buckets() {
        let r = SimReport {
            eviction_times: vec![SimTime::from_minutes(10), SimTime::from_minutes(20)],
            spot_start_times: vec![SimTime::from_minutes(30), SimTime::from_hours(1)],
            makespan: SimTime::from_hours(1),
            ..SimReport::default()
        };
        let ratios = r.hourly_eviction_ratio();
        assert_eq!(ratios.len(), 2);
        assert!((ratios[0] - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(ratios[1], 0.0);
    }
}
