//! Fleet-scale sharded simulation: failure-domain shards simulated in
//! parallel with a deterministic merge — bit-identical at any thread
//! count.
//!
//! # Why shards
//!
//! A 100k-node week is too much state for one event loop to stay cache
//! resident, but GPU fleets are not one flat scheduling domain: placement
//! never crosses a failure domain (a rack, a pod, a spine block), because
//! gang fabrics do not span them. [`run_fleet`] exploits exactly that
//! boundary — each [`FleetShard`] carries its own [`Cluster`], trace and
//! [`DynamicsPlan`], runs the ordinary engine ([`crate::run`]) over it,
//! and the per-shard [`SimReport`]s are folded into one fleet report.
//!
//! # Shard-merge determinism rules
//!
//! The merge is deterministic by construction, independent of thread
//! count and completion order:
//!
//! 1. **One event stream per shard.** A shard's events are totally
//!    ordered by the engine's `(time, seq)` pair, exactly as in a
//!    single-cluster run; nothing about sharding changes a shard's own
//!    schedule.
//! 2. **Merge key `(time, shard)`.** Time-stamped streams (task records
//!    keyed by submit time, allocation samples, eviction / spot-start /
//!    displacement / migration times) are concatenated in ascending
//!    shard order and then *stably* sorted by time, so same-instant
//!    entries tie-break by shard index and, within a shard, keep their
//!    engine order. The result is a single total order no matter which
//!    thread finished first.
//! 3. **Barrier points at cross-shard events.** This engine has none —
//!    shards are failure-domain-isolated, so no event in shard *i* can
//!    observe state in shard *j* and every shard run commutes. A future
//!    cross-shard event (fleet-wide quota rebalancing, inter-domain
//!    migration) must be a *barrier*: all shards drained to the event's
//!    time, the event applied once globally, streams resumed. The merge
//!    key already accommodates that — a barrier event is simply a
//!    same-time entry in every stream.
//! 4. **Scalars fold associatively.** Counters (`node_downs`,
//!    `failed_commits`, …) sum; `makespan` takes the max; availability
//!    folds as the static-capacity-weighted mean of shard
//!    unavailability, with each shard weighted by its as-built capacity
//!    (capacity added mid-run rides inside the shard's own integral,
//!    exactly as in an unsharded run).
//!
//! The workspace property tests pin this down: a fleet run at eight
//! threads is byte-identical — report JSON and FNV fingerprint — to the
//! same fleet at one thread, and a single-shard fleet is identical to a
//! plain [`crate::run`].
//!
//! These rules only hold if no decision path smuggles in a
//! nondeterministic order or clock. That side of the contract is
//! enforced statically by the `gfs_lint` crate (`just lint`): `det-iter`
//! bans hash-container iteration in decision crates, `det-clock` bans
//! wall-clock reads outside the bench/timing allowlists, and
//! `changelog-coverage` guards the index-invalidation contract below —
//! see the `gfs_lint` crate docs for the full rule table and the
//! `// gfs-lint: allow(rule, "reason")` escape hatch.
//!
//! # Index invalidation contract
//!
//! Shards also bound the *placement index* story. Each shard's
//! [`Cluster`] owns a [`ChangeLog`](gfs_cluster::ChangeLog): every
//! score-relevant mutation (occupancy change, fail/drain/restore,
//! scale-out) appends the touched node id. Read-side caches — the
//! `gfs_core` score index that replaces the O(n) placement scan — obey
//! this contract:
//!
//! * a cache records the log's `instance` id and its `cursor` at sync;
//! * before answering a query it replays the suffix since its cursor,
//!   re-scoring exactly the touched nodes (O(changed), not O(nodes));
//! * a cursor is only meaningful against the same instance — clones and
//!   snapshot restores mint fresh ids, forcing a rebuild instead of a
//!   silent mis-apply — and a reader that slept past the ring capacity
//!   is told to rebuild rather than replay a truncated window.
//!
//! Because a cache is owned by the scheduler and a scheduler is owned by
//! one shard, no invalidation traffic ever crosses a shard boundary:
//! parallel shard simulation needs no locking around placement state.
//!
//! # Example
//!
//! ```
//! use gfs_sim::fleet::{domain_shards, partition_tasks, run_fleet, FleetShard};
//! use gfs_sim::SimConfig;
//! use gfs_types::{DynamicsPlan, GpuModel};
//!
//! let clusters = domain_shards(2, 4, GpuModel::A100, 8);
//! let tasks = partition_tasks(Vec::new(), 2);
//! let shards: Vec<FleetShard> = clusters
//!     .into_iter()
//!     .zip(tasks)
//!     .map(|(cluster, tasks)| FleetShard {
//!         cluster,
//!         tasks,
//!         dynamics: DynamicsPlan::default(),
//!     })
//!     .collect();
//! # struct Noop;
//! # impl gfs_cluster::Scheduler for Noop {
//! #     fn name(&self) -> &str { "noop" }
//! #     fn schedule(
//! #         &mut self,
//! #         _: &gfs_types::TaskSpec,
//! #         _: &gfs_cluster::Cluster,
//! #         _: gfs_types::SimTime,
//! #     ) -> Option<gfs_cluster::Decision> { None }
//! # }
//! let fleet = run_fleet(shards, &|_| Box::new(Noop), &SimConfig::default(), 2);
//! assert_eq!(fleet.shard_hashes.len(), 2);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use gfs_cluster::{Cluster, Scheduler};
use gfs_types::{DynamicsPlan, FailureDomain, GpuModel, NodeId, TaskSpec};

use crate::engine::SimConfig;
use crate::report::SimReport;
use crate::service::{fnv1a, report_hash};

/// One failure-domain shard of a fleet: its cluster, its slice of the
/// trace, and the dynamics that hit *its* nodes (node ids are
/// shard-local).
#[derive(Debug)]
pub struct FleetShard {
    /// The shard's own cluster (typically one failure domain).
    pub cluster: Cluster,
    /// Task arrivals routed to this shard.
    pub tasks: Vec<TaskSpec>,
    /// Churn against this shard's nodes. Replaces the base config's
    /// dynamics for the shard run — fleet configs keep their global
    /// `SimConfig.dynamics` empty.
    pub dynamics: DynamicsPlan,
}

/// The merged outcome of a fleet run plus per-shard fingerprints.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// The deterministic fold of every shard report (see the
    /// [module docs](self) for the merge rules).
    pub report: SimReport,
    /// FNV-1a fingerprint of each shard's report JSON, in shard order.
    pub shard_hashes: Vec<u64>,
    /// Fingerprint of the merged report combined with every shard hash —
    /// one `u64` that pins the entire fleet outcome.
    pub fleet_hash: u64,
}

/// Builds `domains` shard clusters of `nodes_per_domain` homogeneous
/// nodes each, every shard declared as a single failure domain (the
/// topology [`run_fleet`] assumes: shard boundary == blast radius).
#[must_use]
pub fn domain_shards(
    domains: usize,
    nodes_per_domain: u32,
    model: GpuModel,
    gpus_per_node: u32,
) -> Vec<Cluster> {
    (0..domains)
        .map(|_| {
            let mut c = Cluster::homogeneous(nodes_per_domain, model, gpus_per_node);
            c.set_failure_domains(&[FailureDomain::new((0..nodes_per_domain).map(NodeId::new))]);
            c
        })
        .collect()
}

/// Deterministically routes a trace across `shards` shards by
/// organization (`org.raw() % shards`), keeping each org's gangs — and
/// its diurnal pattern — inside one failure domain. Relative task order
/// within a shard is the trace order.
#[must_use]
pub fn partition_tasks(tasks: Vec<TaskSpec>, shards: usize) -> Vec<Vec<TaskSpec>> {
    let shards = shards.max(1);
    let mut out: Vec<Vec<TaskSpec>> = (0..shards).map(|_| Vec::new()).collect();
    for t in tasks {
        let s = usize::from(t.org.raw()) % shards;
        out[s].push(t);
    }
    out
}

struct ShardOutcome {
    report: SimReport,
    /// As-built capacity weight for the availability fold.
    weight: f64,
}

/// Runs every shard and folds the reports — see the [module docs](self)
/// for the determinism rules. `scheduler_factory` builds one scheduler
/// per shard (called with the shard index; each scheduler is built,
/// used and dropped on its worker thread, so non-`Send` schedulers —
/// e.g. GFS with a boxed forecaster — work fine; only the factory
/// crosses threads). `threads == 0` means one worker per available
/// core; any thread count produces bit-identical output.
#[must_use]
pub fn run_fleet(
    shards: Vec<FleetShard>,
    scheduler_factory: &(dyn Fn(usize) -> Box<dyn Scheduler> + Sync),
    cfg: &SimConfig,
    threads: usize,
) -> FleetReport {
    let n = shards.len();
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
    .min(n.max(1));

    let run_shard = |i: usize, shard: FleetShard| -> ShardOutcome {
        let weight = shard.cluster.static_capacity(None);
        let mut scheduler = scheduler_factory(i);
        let mut shard_cfg = cfg.clone();
        shard_cfg.dynamics = shard.dynamics;
        let report = crate::run(shard.cluster, &mut *scheduler, shard.tasks, &shard_cfg);
        ShardOutcome { report, weight }
    };

    let outcomes: Vec<ShardOutcome> = if threads <= 1 {
        shards
            .into_iter()
            .enumerate()
            .map(|(i, s)| run_shard(i, s))
            .collect()
    } else {
        // self-scheduling worker pool over the shard list; results land
        // in per-shard slots so completion order cannot leak into output
        let slots: Vec<Mutex<Option<ShardOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let work: Vec<Mutex<Option<FleetShard>>> =
            shards.into_iter().map(|s| Mutex::new(Some(s))).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let shard = work[i]
                        .lock()
                        .expect("shard slot poisoned")
                        .take()
                        .expect("each shard taken once");
                    let outcome = run_shard(i, shard);
                    *slots[i].lock().expect("result slot poisoned") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("result slot poisoned")
                    .expect("every shard ran")
            })
            .collect()
    };

    let shard_hashes: Vec<u64> = outcomes.iter().map(|o| report_hash(&o.report)).collect();
    let report = merge_reports(outcomes);
    let mut tag = String::new();
    for h in &shard_hashes {
        tag.push_str(&format!("{h:016x}|"));
    }
    tag.push_str(&format!("{:016x}", report_hash(&report)));
    let fleet_hash = fnv1a(tag.as_bytes());
    FleetReport {
        report,
        shard_hashes,
        fleet_hash,
    }
}

/// Folds shard reports in shard order under the merge rules of the
/// [module docs](self).
fn merge_reports(outcomes: Vec<ShardOutcome>) -> SimReport {
    let mut merged = SimReport::default();
    let mut weight_total = 0.0;
    let mut unavail_weighted = 0.0;
    for o in outcomes {
        let r = o.report;
        merged.tasks.extend(r.tasks);
        merged.alloc_samples.extend(r.alloc_samples);
        merged.node_alloc_samples.extend(r.node_alloc_samples);
        merged.eviction_times.extend(r.eviction_times);
        merged.spot_start_times.extend(r.spot_start_times);
        merged.displacement_times.extend(r.displacement_times);
        merged.migration_times.extend(r.migration_times);
        merged.makespan = merged.makespan.max(r.makespan);
        merged.failed_commits += r.failed_commits;
        merged.node_downs += r.node_downs;
        merged.node_ups += r.node_ups;
        merged.node_drains += r.node_drains;
        merged.nodes_added += r.nodes_added;
        merged.gpus_added += r.gpus_added;
        merged.gpu_hours_bought += r.gpu_hours_bought;
        merged.market_spend_usd += r.market_spend_usd;
        merged.stranded_gpu_hours += r.stranded_gpu_hours;
        unavail_weighted += r.unavailability * o.weight;
        weight_total += o.weight;
    }
    if weight_total > 0.0 {
        merged.unavailability = unavail_weighted / weight_total;
    }
    // stable sorts realize the (time, shard) merge key: concatenation
    // order is shard order, and stability preserves it on ties
    merged.tasks.sort_by_key(|t| t.submit);
    merged.alloc_samples.sort_by_key(|a| a.at);
    merged.eviction_times.sort_unstable();
    merged.spot_start_times.sort_unstable();
    merged.displacement_times.sort_unstable();
    merged.migration_times.sort_unstable();
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs_cluster::Decision;
    use gfs_types::{ClusterEvent, GpuDemand, OrgId, Priority, SimTime};
    use serde::Serialize;
    use std::collections::HashMap;

    struct FirstFit;

    impl Scheduler for FirstFit {
        fn name(&self) -> &str {
            "first-fit"
        }

        fn schedule(
            &mut self,
            task: &TaskSpec,
            cluster: &Cluster,
            _now: SimTime,
        ) -> Option<Decision> {
            let need = task.gpus_per_pod.whole_cards().unwrap_or(1);
            let candidates = cluster.whole_fit_candidates(task.gpu_model, need);
            let mut budget: HashMap<NodeId, u32> = HashMap::new();
            let mut nodes = Vec::with_capacity(task.pods as usize);
            for _ in 0..task.pods {
                let slot = candidates
                    .iter()
                    .map(|&id| (NodeId::new(id), &cluster.nodes()[id as usize]))
                    .find(|(id, n)| {
                        budget.get(id).copied().unwrap_or_else(|| n.idle_gpus()) >= need
                    })
                    .map(|(id, _)| id)?;
                let entry = budget
                    .entry(slot)
                    .or_insert_with(|| cluster.nodes()[slot.index()].idle_gpus());
                *entry -= need;
                nodes.push(slot);
            }
            Some(Decision::place(nodes))
        }
    }

    fn task(id: u64, org: u16, gpus: u32, dur: u64, submit: u64) -> TaskSpec {
        TaskSpec::builder(id)
            .org(OrgId::new(org))
            .priority(if id.is_multiple_of(3) {
                Priority::Spot
            } else {
                Priority::Hp
            })
            .gpus_per_pod(GpuDemand::whole(gpus))
            .duration_secs(dur)
            .submit_at(SimTime::from_secs(submit))
            .checkpoint(gfs_types::CheckpointPlan::Periodic { interval: 60 })
            .build()
            .unwrap()
    }

    fn shard_fixture(shards: usize) -> Vec<FleetShard> {
        let clusters = domain_shards(shards, 3, GpuModel::A100, 8);
        let tasks: Vec<TaskSpec> = (0..48u64)
            .map(|i| task(i, (i % 5) as u16, (i % 4 + 1) as u32, 400 + i * 37, i * 55))
            .collect();
        let traces = partition_tasks(tasks, shards);
        clusters
            .into_iter()
            .zip(traces)
            .enumerate()
            .map(|(s, (cluster, tasks))| FleetShard {
                cluster,
                tasks,
                dynamics: DynamicsPlan::new(vec![
                    ClusterEvent::down(NodeId::new(0), SimTime::from_secs(700 + s as u64 * 13)),
                    ClusterEvent::up(NodeId::new(0), SimTime::from_secs(1_900)),
                ])
                .unwrap(),
            })
            .collect()
    }

    #[test]
    fn single_shard_fleet_matches_plain_run() {
        let mut shards = shard_fixture(1);
        let shard = shards.remove(0);
        let cfg = SimConfig {
            dynamics: shard.dynamics.clone(),
            ..SimConfig::default()
        };
        let direct = crate::run(
            shard.cluster.clone(),
            &mut FirstFit,
            shard.tasks.clone(),
            &cfg,
        );
        let fleet = run_fleet(
            vec![shard],
            &|_| Box::new(FirstFit),
            &SimConfig::default(),
            1,
        );
        assert_eq!(fleet.report, direct);
        assert_eq!(fleet.shard_hashes, vec![report_hash(&direct)]);
    }

    #[test]
    fn parallel_and_serial_fleets_are_bit_identical() {
        let serial = run_fleet(
            shard_fixture(4),
            &|_| Box::new(FirstFit),
            &SimConfig::default(),
            1,
        );
        let parallel = run_fleet(
            shard_fixture(4),
            &|_| Box::new(FirstFit),
            &SimConfig::default(),
            8,
        );
        assert_eq!(serial.report, parallel.report);
        assert_eq!(serial.shard_hashes, parallel.shard_hashes);
        assert_eq!(serial.fleet_hash, parallel.fleet_hash);
        let mut a = String::new();
        serial.report.serialize_json(&mut a);
        let mut b = String::new();
        parallel.report.serialize_json(&mut b);
        assert_eq!(a, b, "merged reports must be byte-identical");
    }

    #[test]
    fn partition_is_deterministic_and_total() {
        let tasks: Vec<TaskSpec> = (0..30u64)
            .map(|i| task(i, (i % 7) as u16, 1, 100, i))
            .collect();
        let parts = partition_tasks(tasks.clone(), 3);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 30);
        for (s, part) in parts.iter().enumerate() {
            for t in part {
                assert_eq!(usize::from(t.org.raw()) % 3, s);
            }
        }
        assert_eq!(parts, partition_tasks(tasks, 3));
    }
}
