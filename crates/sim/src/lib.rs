//! Deterministic discrete-event simulation of GPU cluster scheduling.
//!
//! This crate drives any [`gfs_cluster::Scheduler`] implementation — the
//! GFS framework or the baselines — against a task trace on a simulated
//! cluster, reproducing the paper's trace-driven evaluation methodology
//! (§4.1). Outputs are [`SimReport`]s carrying per-task records and the
//! aggregate metrics of §4.2 (JCT, JQT, eviction rate, allocation rate).
//!
//! # Hot-path architecture
//!
//! The event loop keeps all per-task bookkeeping (record index, run
//! epoch, carried checkpoint progress, enqueue time) in one dense
//! `Vec<TaskState>` addressed by the task's position in the submitted
//! trace; events carry that index, so no hashing happens while draining
//! the heap. Specs flow into the cluster as `Arc<TaskSpec>` (no deep
//! copies per submit/start/requeue), and the pending queue is kept sorted
//! under [`gfs_cluster::Scheduler::queue_cmp`] by binary insertion rather
//! than re-sorted every scheduling pass. Carried progress is cleared when
//! a task finishes, so week-scale, eviction-heavy traces do not
//! accumulate stale state. Identical inputs produce byte-identical
//! [`SimReport`]s across runs and processes (see `tests/golden_report.rs`
//! at the workspace root).
//!
//! # Cluster dynamics
//!
//! Runs may inject a [`gfs_types::DynamicsPlan`] through
//! [`SimConfig::dynamics`]: nodes fail (displacing every pod they host)
//! and recover mid-run, racks fail together over declared failure
//! domains, maintenance drains give tasks notice to finish or migrate
//! before a forced shutdown, and scale-out steps mint fresh nodes.
//! Displaced and migrated tasks requeue through the normal path, and
//! reports grow availability/displacement/migration/scaled-capacity
//! metrics. The [`dynamics`] module documents the full event flow — who
//! emits, who consumes, the determinism rules, and the
//! `FaultPlan → DynamicsPlan` migration. An empty plan is a strict
//! no-op: the event sequence is bit-for-bit what it was before dynamics
//! injection existed.
//!
//! # Crash safety
//!
//! The event loop itself lives in the [`service`] module as the
//! long-running [`ClusterService`]: a resident object that admits live
//! streams of arrivals and dynamics plans, snapshots its entire state
//! (canonical, hashable, versioned), write-ahead journals every admission
//! and recovers from a crash via snapshot + journal replay —
//! bit-identically to the uninterrupted run. [`run`] is a thin batch
//! driver over it.
//!
//! # Examples
//!
//! See the `quickstart` example at the workspace root, which wires a
//! generated workload, a cluster and the GFS scheduler through [`run`],
//! and `crash_recovery`, which kills a live service mid-run and recovers
//! it from snapshot + journal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamics;
mod engine;
pub mod fleet;
mod report;
pub mod service;

pub use engine::{run, SimConfig};
pub use fleet::{run_fleet, FleetReport, FleetShard};
pub use report::{AllocSample, RunSummary, SimReport, TaskRecord};
pub use service::{
    fnv1a, parse_journal, report_hash, AdmittedEvent, ClusterService, Journal, JournalError,
    JournalRecord, JournalReplay, RestoreError, ServiceSnapshot, SNAPSHOT_VERSION,
};
