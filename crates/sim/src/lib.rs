//! Deterministic discrete-event simulation of GPU cluster scheduling.
//!
//! This crate drives any [`gfs_cluster::Scheduler`] implementation — the
//! GFS framework or the baselines — against a task trace on a simulated
//! cluster, reproducing the paper's trace-driven evaluation methodology
//! (§4.1). Outputs are [`SimReport`]s carrying per-task records and the
//! aggregate metrics of §4.2 (JCT, JQT, eviction rate, allocation rate).
//!
//! # Examples
//!
//! See the `quickstart` example at the workspace root, which wires a
//! generated workload, a cluster and the GFS scheduler through [`run`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod report;

pub use engine::{run, SimConfig};
pub use report::{AllocSample, SimReport, TaskRecord};
