//! Cluster-timeline event flow: how failures, recoveries, maintenance
//! drains and scale-out travel through the stack, and the determinism
//! rules that keep dynamic runs reproducible.
//!
//! # Who emits, who consumes
//!
//! ```text
//!  DynamicsPlan (gfs_types)       the schedule: ClusterEvents sorted by
//!      │                          time — hand-built (validated), seeded
//!      │                          MTBF/MTTR, correlated FailureDomains,
//!      │                          rolling drains, autoscale steps; plans
//!      ▼  SimConfig::dynamics     compose via DynamicsPlan::merge
//!  engine (gfs_sim::run)          turns each ClusterEvent into a heap
//!      │                          event, processed in (time, seq) order
//!      │                          with the task events of the same instant
//!      ▼
//!  Cluster verbs (gfs_cluster)
//!    fail_node                    NodeDown: drains every pod through the
//!      │                          shared release path, removes the node's
//!      │                          CapacityIndex buckets atomically, keeps
//!      │                          the O(1) per-model totals exact
//!    drain_node                   Drain{notice}: placement keys and
//!      │                          capacity leave immediately; pods keep
//!      │                          running. The engine migrates gangs that
//!      │                          cannot finish inside the notice window
//!      │                          (migrate_task: graceful, no eviction
//!      │                          history) and schedules a deadline event
//!      │                          that forces the node down via fail_node
//!      │                          for whatever still runs
//!    restore_node                 NodeUp: a repaired node returns all-idle
//!      │                          with a clean eviction history; an Up
//!      │                          during a notice window *cancels* the
//!      │                          drain, pods untouched, history kept
//!    add_node                     AddNode{group}: mints the next
//!      │                          sequential NodeId, extends totals and
//!      │                          index structures, grows the per-node
//!      │                          sample vectors
//!      ▼
//!  engine requeue                 displaced *and* migrated tasks re-enter
//!      │                          the pending queue via the normal Requeue
//!      │                          path after the preemption grace period,
//!      │                          carrying their checkpointed progress
//!      ▼
//!  Scheduler::on_event            TaskEvent::Displaced per drained or
//!  (gfs_cluster → policies)       migrated task, then one of
//!                                 NodeDown/NodeUp/DrainNotice/NodeAdded;
//!                                 GFS re-clamps the SQA quota against the
//!                                 schedulable fleet immediately instead of
//!                                 waiting for the next 300 s tick
//! ```
//!
//! The report side records each forced displacement on the task
//! ([`crate::TaskRecord::displacements`]) and the run
//! ([`crate::SimReport::displacement_times`]), each graceful migration
//! likewise ([`crate::TaskRecord::migrations`],
//! [`crate::SimReport::migration_times`]), counts drain notices and
//! scale-out events ([`crate::SimReport::node_drains`],
//! [`crate::SimReport::nodes_added`], [`crate::SimReport::gpus_added`]),
//! and integrates down capacity over time into
//! [`crate::SimReport::unavailability`]; the scalar [`crate::RunSummary`]
//! carries `availability`, `displacement_count`, `displaced_mean_jct_s`,
//! `migration_count`, `node_drains` and `added_gpus` into the experiment
//! layer.
//!
//! # Drain and autoscale flow
//!
//! A `Drain { notice_secs }` event at `t` plays out in three acts:
//!
//! 1. **Notice (t).** [`Cluster::drain_node`](gfs_cluster::Cluster::drain_node)
//!    removes the node from every placement query and capacity total.
//!    Running tasks whose remaining work fits the notice window are left
//!    to finish; every other task with a pod on the node is *migrated* —
//!    gracefully released with its checkpointed progress and requeued
//!    through the normal path (it re-places anywhere on the cluster,
//!    typically long before the deadline). Schedulers then receive
//!    [`TaskEvent::DrainNotice`](gfs_cluster::TaskEvent::DrainNotice).
//! 2. **Window (t .. t+notice).** Pods that fit keep executing; the node
//!    accepts nothing new. An interleaved `NodeUp` cancels the drain —
//!    pods untouched, free cards return.
//! 3. **Deadline (t+notice).** Whatever still runs is forcibly displaced
//!    with exact [`fail_node`](gfs_cluster::Cluster::fail_node)
//!    accounting and the node goes down until its `NodeUp`.
//!
//! An `AddNode { group }` event mints a fresh node (the next sequential
//! id — plans never guess ids) that joins every capacity total, index
//! structure and, when enabled, the per-node allocation sample series.
//! Schedulers see [`TaskEvent::NodeAdded`](gfs_cluster::TaskEvent::NodeAdded).
//!
//! # Placement-policy flow (who sees which event when)
//!
//! Churn-aware schedulers close the loop the engine only *reacts* in: a
//! `gfs_sched::placement::PlacementPolicy` consumes the cluster-side
//! state the timeline leaves behind, at placement time, through O(1)
//! queries maintained incrementally by the verbs above:
//!
//! * `fail_node` records an up→down transition on the node
//!   ([`Node::failures_within`](gfs_cluster::Node::failures_within),
//!   [`Node::failure_count`](gfs_cluster::Node::failure_count),
//!   [`Node::time_since_failure`](gfs_cluster::Node::time_since_failure)).
//!   Unlike the eviction history, this *survives* `restore_node` — the
//!   reliability score exists precisely to remember flaky hardware across
//!   repairs.
//! * `drain_node` / `restore_node` / the drain-deadline `fail_node` keep
//!   a per-failure-domain draining count
//!   ([`Cluster::draining_in_domain`](gfs_cluster::Cluster::draining_in_domain))
//!   when a topology was declared
//!   ([`Cluster::set_failure_domains`](gfs_cluster::Cluster::set_failure_domains),
//!   [`Cluster::domain_of`](gfs_cluster::Cluster::domain_of)); drain
//!   avoidance reads it to steer new placements off racks mid-wave.
//! * the `TaskEvent` stream (above) still reaches `Scheduler::on_event`
//!   exactly as before; policies need no extra events — the queries are
//!   available inside every `Scheduler::schedule` call.
//!
//! The **drain notice** is the one decision point the scheduler now owns:
//! at a `Drain { notice }` event the engine asks
//! [`Scheduler::drain_decision`](gfs_cluster::Scheduler::drain_decision)
//! once per gang running on the node — *migrate now* (graceful release
//! with checkpointed progress, requeue after the grace period) or *stay*
//! (finish inside the window, or keep checkpointing until the forced
//! deadline displaces it). For policy-less schedulers the trait default
//! reproduces the engine's historical hard-wired rule — migrate exactly
//! the gangs that cannot finish inside the window — so every pre-policy
//! golden pin holds; the engine also still arms the deadline, forces the
//! shutdown through `fail_node` accounting, and requeues whatever the
//! decision left behind. A drain-aware policy
//! (`PlacementPolicy::churn_aware`) keeps a can't-finish gang in place
//! when the cluster has no idle cards of its model to receive it:
//! migrating into a full cluster forfeits the window's checkpointable
//! progress and buys nothing.
//!
//! # Determinism rules
//!
//! Dynamic runs obey the same byte-identical-reproduction contract as
//! static ones:
//!
//! * the [`DynamicsPlan`](gfs_types::DynamicsPlan) is pure data, fully
//!   determined by its inputs (no wall clock, no global RNG) — see the
//!   `gfs_types::cluster_event` docs. Independent churn draws from
//!   per-`(seed, node)` SplitMix64 streams; **correlated** failures draw
//!   from one per-`(seed, domain)` stream, so every node of a
//!   [`FailureDomain`](gfs_types::FailureDomain) fails and recovers
//!   together and the schedule is independent of how many events other
//!   domains produced. Drains and autoscale steps are closed-form;
//! * dynamics heap events are enqueued *after* all submit/tick/sample
//!   events, so an empty plan leaves the event sequence numbers — and
//!   therefore every scheduling outcome — exactly as they were before
//!   this subsystem existed (the zero-dynamics path is a strict no-op,
//!   pinned by the golden report tests);
//! * within one timestamp, events still process in insertion order and the
//!   scheduling pass runs once after the whole batch, so a task submitted
//!   at the instant a node dies (or a drain fires) sees the post-event
//!   cluster no matter which thread ran the cell;
//! * `fail_node` drains — and the engine migrates — tasks in ascending
//!   task-id order (the running registry is an ordered map), so
//!   displacement order, and the requeue order derived from it, never
//!   depends on map iteration order;
//! * node ids minted by `AddNode` are sequential in event order, so a
//!   scaled-out cluster is identical across thread counts.
//!
//! # Semantics choices
//!
//! * **Failures do not honour priorities.** HP gangs die with the node
//!   exactly like spot pods; both requeue with whatever progress their
//!   checkpoint plan preserved.
//! * **Displacement is not eviction, and migration is neither.** The
//!   eviction-rate feedback (Eq. 11), the per-node eviction history
//!   (Eq. 15–16) and the `F` counter (Eq. 18) model *preemption*
//!   behaviour; hardware churn or honoured maintenance notices feeding
//!   them would shrink the spot quota exactly when displaced tasks need
//!   to be re-admitted. All three counters are kept apart end to end.
//! * **A restored node starts clean; a drain-cancelled node does not.**
//!   Eviction history is cleared on repair — a machine back from the shop
//!   must not repel spot tasks because of pre-failure preemption pressure
//!   — but a cancelled drain repaired nothing, so history survives.
//! * **Draining capacity is unschedulable capacity.** The moment the
//!   notice lands, the node's cards leave `capacity()`/`idle_gpus()` and
//!   the quota clamp, because nothing new can ever land there; its
//!   still-running pods remain in the allocation totals, so
//!   `allocation_rate` may transiently exceed 1 during a notice window.
//!   Availability accounting, by contrast, counts the node as *available
//!   until the deadline* — it is still serving its pods.
//!
//! # Migration note: `FaultPlan` → `DynamicsPlan`
//!
//! `FaultPlan` remains as a deprecated alias of
//! [`DynamicsPlan`](gfs_types::DynamicsPlan); `SimConfig::faults` became
//! [`SimConfig::dynamics`](crate::SimConfig::dynamics). Hand-built plans
//! now validate per-node event ordering (`DynamicsPlan::new` returns
//! `Result`; `new_unchecked` keeps the old tolerant behaviour for plans
//! intentionally shared across cluster shapes), and seeded MTBF schedules
//! are byte-identical to their `FaultPlan` ancestors, so fault-only
//! golden hashes hold across the redesign.

use gfs_types::SimTime;
use serde::{Deserialize, Serialize};

/// Integrates lost capacity over time against a (possibly growing) static
/// fleet: feeds [`SimReport::unavailability`](crate::SimReport::unavailability)
/// (down GPU-seconds over static GPU-seconds of the run).
///
/// Serializable for service snapshots; the partially-accumulated integrals
/// are stored verbatim so a restored run closes them bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct AvailabilityTracker {
    /// Static cards currently out of service.
    down_cards: f64,
    /// When `down_cards` last changed.
    since: SimTime,
    /// Accumulated down GPU-seconds.
    lost_gpu_secs: f64,
    /// Static cards currently installed (grows with scale-out).
    static_cards: f64,
    /// When `static_cards` last changed.
    static_since: SimTime,
    /// Accumulated static GPU-seconds (the denominator).
    static_gpu_secs: f64,
}

impl AvailabilityTracker {
    /// A tracker over a fleet of `static_cards` as built at t = 0.
    pub fn new(static_cards: f64) -> Self {
        AvailabilityTracker {
            down_cards: 0.0,
            since: SimTime::ZERO,
            lost_gpu_secs: 0.0,
            static_cards,
            static_since: SimTime::ZERO,
            static_gpu_secs: 0.0,
        }
    }

    /// Records a capacity change of `delta_cards` (negative = restored).
    pub fn change(&mut self, now: SimTime, delta_cards: f64) {
        self.lost_gpu_secs += self.down_cards * now.since(self.since) as f64;
        self.since = now;
        self.down_cards += delta_cards;
    }

    /// Records `delta_cards` of static capacity joining the fleet
    /// (scale-out). Availability from here on is judged against the
    /// larger denominator, time-weighted.
    pub fn add_static(&mut self, now: SimTime, delta_cards: f64) {
        self.static_gpu_secs += self.static_cards * now.since(self.static_since) as f64;
        self.static_since = now;
        self.static_cards += delta_cards;
    }

    /// Closes both integrals at `end` and returns the unavailability
    /// ratio (0.0 for a static, fault-free run). For runs without
    /// scale-out the denominator reduces to `static_cards × end` exactly,
    /// so fault-only results are bit-identical to the fixed-fleet
    /// formula.
    pub fn unavailability(mut self, end: SimTime) -> f64 {
        self.change(end, 0.0);
        self.static_gpu_secs += self.static_cards * end.since(self.static_since) as f64;
        if self.static_gpu_secs <= 0.0 {
            0.0
        } else {
            self.lost_gpu_secs / self.static_gpu_secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_changes_means_full_availability() {
        let t = AvailabilityTracker::new(32.0);
        assert_eq!(t.unavailability(SimTime::from_hours(10)), 0.0);
    }

    #[test]
    fn integral_matches_hand_computation() {
        let mut t = AvailabilityTracker::new(32.0);
        // 8 cards down for 2 h of a 10 h run on a 32-card cluster
        t.change(SimTime::from_hours(3), 8.0);
        t.change(SimTime::from_hours(5), -8.0);
        let u = t.unavailability(SimTime::from_hours(10));
        assert!((u - (8.0 * 2.0) / (32.0 * 10.0)).abs() < 1e-12, "u = {u}");
    }

    #[test]
    fn overlapping_outages_accumulate() {
        let mut t = AvailabilityTracker::new(32.0);
        t.change(SimTime::from_hours(0), 8.0);
        t.change(SimTime::from_hours(1), 8.0); // second node joins the outage
        t.change(SimTime::from_hours(2), -16.0);
        let u = t.unavailability(SimTime::from_hours(4));
        assert!((u - (8.0 + 16.0) / (32.0 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_length_run_is_fully_available() {
        let t = AvailabilityTracker::new(32.0);
        assert_eq!(t.unavailability(SimTime::ZERO), 0.0);
    }

    #[test]
    fn scale_out_grows_the_denominator_time_weighted() {
        let mut t = AvailabilityTracker::new(32.0);
        // 8 cards join at h2 of a 4 h run: denominator = 32·2 + 40·2
        t.add_static(SimTime::from_hours(2), 8.0);
        // one original node (8 cards) down for the last hour
        t.change(SimTime::from_hours(3), 8.0);
        let u = t.unavailability(SimTime::from_hours(4));
        let expected = (8.0 * 1.0) / (32.0 * 2.0 + 40.0 * 2.0);
        assert!((u - expected).abs() < 1e-12, "u = {u}");
    }
}
