//! Cluster-dynamics event flow: how node failures and recoveries travel
//! through the stack, and the determinism rules that keep faulted runs
//! reproducible.
//!
//! # Who emits, who consumes
//!
//! ```text
//!  FaultPlan (gfs_types)          the schedule: ClusterEvents sorted by
//!      │                          time, hand-built or seeded (MTBF/MTTR)
//!      ▼  SimConfig::faults
//!  engine (gfs_sim::run)          turns each ClusterEvent into a heap
//!      │                          event, processed in (time, seq) order
//!      │                          with the task events of the same instant
//!      ▼
//!  Cluster::fail_node /           drains every pod on the node through the
//!  Cluster::restore_node          shared release path, keeps the O(1)
//!  (gfs_cluster)                  whole-cluster *and per-model* totals
//!      │                          exact, and removes/restores the node's
//!      │                          CapacityIndex buckets atomically
//!      ▼
//!  engine requeue                 displaced tasks re-enter the pending
//!      │                          queue via the normal Requeue path after
//!      │                          the preemption grace period, carrying
//!      │                          their checkpointed progress
//!      ▼
//!  Scheduler::on_event            TaskEvent::Displaced{task, priority} per
//!  (gfs_cluster → policies)       drained task, then one NodeDown/NodeUp;
//!                                 GFS re-clamps the SQA quota against the
//!                                 surviving fleet immediately instead of
//!                                 waiting for the next 300 s tick
//! ```
//!
//! The report side records each displacement on the task
//! ([`crate::TaskRecord::displacements`]) and the run
//! ([`crate::SimReport::displacement_times`]), and integrates down
//! capacity over time into [`crate::SimReport::unavailability`]; the
//! scalar [`crate::RunSummary`] carries `availability`,
//! `displacement_count` and `displaced_mean_jct_s` into the experiment
//! layer.
//!
//! # Determinism rules
//!
//! Faulted runs obey the same byte-identical-reproduction contract as
//! fault-free ones:
//!
//! * the [`FaultPlan`](gfs_types::FaultPlan) is pure data, fully
//!   determined by its seed (no wall clock, no global RNG) — see the
//!   `gfs_types::cluster_event` docs;
//! * fault heap events are enqueued *after* all submit/tick/sample events,
//!   so an empty plan leaves the event sequence numbers — and therefore
//!   every scheduling outcome — exactly as they were before this subsystem
//!   existed (the zero-fault path is a strict no-op, pinned by the golden
//!   report tests);
//! * within one timestamp, events still process in insertion order and the
//!   scheduling pass runs once after the whole batch, so a task submitted
//!   at the instant a node dies sees the post-failure cluster no matter
//!   which thread ran the cell;
//! * `fail_node` drains tasks in ascending task-id order (the running
//!   registry is an ordered map), so displacement order — and the requeue
//!   order derived from it — never depends on map iteration order.
//!
//! # Semantics choices
//!
//! * **Failures do not honour priorities.** HP gangs die with the node
//!   exactly like spot pods; both requeue with whatever progress their
//!   checkpoint plan preserved.
//! * **Displacement is not eviction.** The eviction-rate feedback (Eq. 11),
//!   the per-node eviction history (Eq. 15–16) and the `F` counter
//!   (Eq. 18) model *preemption* behaviour; hardware churn feeding them
//!   would shrink the spot quota exactly when displaced tasks need to be
//!   re-admitted. Displacements are counted separately end to end.
//! * **A restored node starts clean.** Its eviction history is cleared on
//!   restore — a machine back from repair must not repel spot tasks
//!   because of pre-failure preemption pressure.

use gfs_types::SimTime;

/// Integrates lost capacity over time: feeds
/// [`SimReport::unavailability`](crate::SimReport::unavailability)
/// (GPU-seconds of down capacity over static GPU-seconds of the run).
#[derive(Debug, Clone, Default)]
pub(crate) struct AvailabilityTracker {
    /// Static cards currently out of service.
    down_cards: f64,
    /// When `down_cards` last changed.
    since: SimTime,
    /// Accumulated down GPU-seconds.
    lost_gpu_secs: f64,
}

impl AvailabilityTracker {
    /// Records a capacity change of `delta_cards` (negative = restored).
    pub fn change(&mut self, now: SimTime, delta_cards: f64) {
        self.lost_gpu_secs += self.down_cards * now.since(self.since) as f64;
        self.since = now;
        self.down_cards += delta_cards;
    }

    /// Closes the integral at `end` and returns the unavailability ratio
    /// for a cluster of `static_cards` (0.0 for a fault-free run).
    pub fn unavailability(mut self, end: SimTime, static_cards: f64) -> f64 {
        self.change(end, 0.0);
        let denom = static_cards * end.as_secs() as f64;
        if denom <= 0.0 {
            0.0
        } else {
            self.lost_gpu_secs / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_changes_means_full_availability() {
        let t = AvailabilityTracker::default();
        assert_eq!(t.unavailability(SimTime::from_hours(10), 32.0), 0.0);
    }

    #[test]
    fn integral_matches_hand_computation() {
        let mut t = AvailabilityTracker::default();
        // 8 cards down for 2 h of a 10 h run on a 32-card cluster
        t.change(SimTime::from_hours(3), 8.0);
        t.change(SimTime::from_hours(5), -8.0);
        let u = t.unavailability(SimTime::from_hours(10), 32.0);
        assert!((u - (8.0 * 2.0) / (32.0 * 10.0)).abs() < 1e-12, "u = {u}");
    }

    #[test]
    fn overlapping_outages_accumulate() {
        let mut t = AvailabilityTracker::default();
        t.change(SimTime::from_hours(0), 8.0);
        t.change(SimTime::from_hours(1), 8.0); // second node joins the outage
        t.change(SimTime::from_hours(2), -16.0);
        let u = t.unavailability(SimTime::from_hours(4), 32.0);
        assert!((u - (8.0 + 16.0) / (32.0 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_length_run_is_fully_available() {
        let t = AvailabilityTracker::default();
        assert_eq!(t.unavailability(SimTime::ZERO, 32.0), 0.0);
    }
}
