//! Distribution sampling helpers (kept local so `gfs-trace` does not pull
//! in the neural-network crate).

use rand::Rng;

/// Standard-normal sample via Box–Muller.
pub fn randn<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal sample parameterised by the median and the shape `sigma`.
pub fn lognormal<R: Rng>(median: f64, sigma: f64, rng: &mut R) -> f64 {
    (median.ln() + sigma * randn(rng)).exp()
}

/// Pareto sample with scale `xm` and shape `alpha`.
pub fn pareto<R: Rng>(xm: f64, alpha: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    xm / u.powf(1.0 / alpha)
}

/// Exponential sample with the given rate (events per unit time).
#[allow(dead_code)] // kept for Poisson arrival-process extensions
pub fn exponential<R: Rng>(rate: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

/// Samples an index from a discrete weight table.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero.
pub fn weighted_index<R: Rng>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must be non-empty with positive sum");
    let mut draw = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if draw < w {
            return i;
        }
        draw -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(123)
    }

    #[test]
    fn randn_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| randn(&mut r)).collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!(m.abs() < 0.03, "mean {m}");
        assert!((v - 1.0).abs() < 0.05, "var {v}");
    }

    #[test]
    fn lognormal_median() {
        let mut r = rng();
        let mut xs: Vec<f64> = (0..20_000).map(|_| lognormal(5.0, 1.0, &mut r)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med - 5.0).abs() < 0.3, "median {med}");
    }

    #[test]
    fn pareto_min_respected() {
        let mut r = rng();
        for _ in 0..1_000 {
            assert!(pareto(2.0, 1.5, &mut r) >= 2.0);
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| exponential(0.5, &mut r)).collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((m - 2.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn weighted_index_distribution() {
        let mut r = rng();
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[weighted_index(&[0.2, 0.3, 0.5], &mut r)] += 1;
        }
        assert!((counts[0] as f64 / 30_000.0 - 0.2).abs() < 0.02);
        assert!((counts[2] as f64 / 30_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn weighted_index_rejects_empty() {
        let mut r = rng();
        let _ = weighted_index(&[], &mut r);
    }
}
