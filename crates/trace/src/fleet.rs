//! Fleet-scale trace generation: million-task, heavy-tailed, sharded —
//! and fast enough to sit inside a benchmark loop.
//!
//! [`WorkloadGenerator`](crate::workload::WorkloadGenerator) rebuilds its
//! hourly diurnal weight table for *every* submission sample, which is
//! fine at thousands of tasks and ruinous at a million (O(tasks × hours)
//! allocations). [`FleetTraceGenerator`] precomputes the cumulative
//! diurnal intensity over the horizon once and samples each submission
//! with one uniform draw plus a binary search — O(tasks · log hours)
//! total, no per-task allocation.
//!
//! Tasks are drawn from a single seeded stream in global id order and
//! routed to shards by organization (`org % shards`), matching
//! `gfs_sim::fleet::partition_tasks`: the *task population* is a function
//! of `(seed, tasks)` alone, so re-sharding the same seed redistributes
//! identical tasks instead of resampling them.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use gfs_types::{
    CheckpointPlan, GpuDemand, GpuModel, OrgId, Priority, SimDuration, SimTime, TaskSpec, HOUR,
};

use crate::orgdemand::OrgArchetype;
use crate::rand_util::{lognormal, pareto, weighted_index};

/// Configuration of the fleet trace generator.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTraceConfig {
    /// Failure-domain shards the trace is partitioned across.
    pub shards: u32,
    /// Total tasks across the whole fleet.
    pub tasks: u64,
    /// Fraction of tasks submitted as spot (the rest are HP).
    pub spot_fraction: f64,
    /// Length of the submission window, seconds.
    pub horizon_secs: SimDuration,
    /// GPU model every task requests.
    pub gpu_model: GpuModel,
    /// Median task duration, seconds (log-normal body).
    pub duration_median_secs: f64,
    /// Log-normal shape parameter of the duration body.
    pub duration_sigma: f64,
    /// Fraction of tasks drawn from the heavy Pareto tail (multi-day
    /// trainings).
    pub heavy_tail_frac: f64,
    /// Hard cap on task duration, seconds.
    pub max_duration_secs: SimDuration,
    /// Checkpoint interval attached to every task, seconds.
    pub checkpoint_interval_secs: SimDuration,
    /// Guaranteed duration sold with spot tasks, seconds.
    pub guarantee_secs: SimDuration,
    /// Tenant organizations tasks are attributed to (routing key).
    pub num_orgs: u16,
    /// First task id to assign.
    pub start_id: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FleetTraceConfig {
    fn default() -> Self {
        FleetTraceConfig {
            shards: 8,
            tasks: 10_000,
            spot_fraction: 0.2,
            horizon_secs: 7 * 24 * HOUR,
            gpu_model: GpuModel::A100,
            duration_median_secs: 5_400.0,
            duration_sigma: 1.1,
            heavy_tail_frac: 0.015,
            max_duration_secs: 14 * 24 * HOUR,
            checkpoint_interval_secs: HOUR,
            guarantee_secs: HOUR,
            num_orgs: 64,
            start_id: 1,
            seed: 1,
        }
    }
}

/// Deterministic sharded trace generator with a precomputed diurnal CDF.
#[derive(Debug, Clone)]
pub struct FleetTraceGenerator {
    cfg: FleetTraceConfig,
    /// Cumulative hourly submission intensity over the horizon; the
    /// one-time table the per-task hot path binary-searches.
    cumulative: Vec<f64>,
}

impl FleetTraceGenerator {
    /// Creates a generator, building the diurnal CDF once.
    #[must_use]
    pub fn new(cfg: FleetTraceConfig) -> Self {
        let hours = (cfg.horizon_secs / HOUR).max(1);
        let mut cumulative = Vec::with_capacity(hours as usize);
        let mut total = 0.0;
        for h in 0..hours {
            total += 0.2 + OrgArchetype::diurnal_profile(h % 24);
            cumulative.push(total);
        }
        FleetTraceGenerator { cfg, cumulative }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &FleetTraceConfig {
        &self.cfg
    }

    /// Generates the fleet trace partitioned into per-shard streams,
    /// each sorted by `(submit, id)`. Tasks are drawn in global id order
    /// from one seeded stream and routed by `org % shards`.
    #[must_use]
    pub fn generate_sharded(&self) -> Vec<Vec<TaskSpec>> {
        let shards = self.cfg.shards.max(1) as usize;
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let per_shard_hint = (self.cfg.tasks as usize / shards).saturating_add(1);
        let mut out: Vec<Vec<TaskSpec>> = (0..shards)
            .map(|_| Vec::with_capacity(per_shard_hint))
            .collect();
        let spot_cut = self.cfg.spot_fraction.clamp(0.0, 1.0);
        for i in 0..self.cfg.tasks {
            let id = self.cfg.start_id + i;
            let priority = if rng.gen_bool(spot_cut) {
                Priority::Spot
            } else {
                Priority::Hp
            };
            let task = self.sample_task(id, priority, &mut rng);
            let shard = usize::from(task.org.raw()) % shards;
            out[shard].push(task);
        }
        for trace in &mut out {
            trace.sort_by_key(|t| (t.submit_at, t.id));
        }
        out
    }

    fn sample_task(&self, id: u64, priority: Priority, rng: &mut ChaCha8Rng) -> TaskSpec {
        // whole-card 2024-era mix, collapsed to the four whole buckets
        let weights = match priority {
            Priority::Hp => [55.2, 13.4, 7.5, 23.7],
            Priority::Spot => [68.2, 5.7, 12.0, 14.0],
        };
        let gpus = [1u32, 2, 4, 8][weighted_index(&weights, rng)];
        let gang_share = match priority {
            Priority::Hp => 0.0866,
            Priority::Spot => 0.2726,
        };
        let pods: u32 = if rng.gen_bool(gang_share) {
            [2u32, 4, 8][weighted_index(&[0.5, 0.3, 0.2], rng)]
        } else {
            1
        };

        let total_gpus = f64::from(pods * gpus);
        let median = self.cfg.duration_median_secs * total_gpus.powf(0.3);
        let raw = if rng.gen_bool(self.cfg.heavy_tail_frac.clamp(0.0, 1.0)) {
            pareto(6.0 * HOUR as f64, 1.05, rng)
        } else {
            lognormal(median, self.cfg.duration_sigma, rng)
        };
        let duration = (raw as u64).clamp(60, self.cfg.max_duration_secs);

        let submit = self.sample_submit_time(rng);
        let org = OrgId::new(rng.gen_range(0..self.cfg.num_orgs.max(1)));

        let mut b = TaskSpec::builder(id)
            .org(org)
            .priority(priority)
            .gpu_model(self.cfg.gpu_model)
            .pods(pods)
            .gpus_per_pod(GpuDemand::whole(gpus))
            .duration_secs(duration)
            .submit_at(submit)
            .checkpoint(CheckpointPlan::Periodic {
                interval: self.cfg.checkpoint_interval_secs,
            });
        if priority.is_spot() {
            b = b.guarantee_secs(self.cfg.guarantee_secs);
        }
        b.build()
            .expect("generated tasks satisfy the spec invariants")
    }

    /// One uniform draw against the precomputed CDF: binary search finds
    /// the hour, a second draw places the second within it.
    fn sample_submit_time(&self, rng: &mut ChaCha8Rng) -> SimTime {
        let total = *self.cumulative.last().expect("at least one hour");
        let u = rng.gen_range(0.0..total);
        let hour = self.cumulative.partition_point(|&c| c <= u) as u64;
        let hour = hour.min(self.cumulative.len() as u64 - 1);
        let sec = rng.gen_range(0..HOUR);
        SimTime::from_secs(hour * HOUR + sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FleetTraceConfig {
        FleetTraceConfig {
            shards: 4,
            tasks: 4_000,
            ..FleetTraceConfig::default()
        }
    }

    #[test]
    fn counts_ordering_and_routing() {
        let traces = FleetTraceGenerator::new(cfg()).generate_sharded();
        assert_eq!(traces.len(), 4);
        assert_eq!(traces.iter().map(Vec::len).sum::<usize>(), 4_000);
        for (s, trace) in traces.iter().enumerate() {
            for w in trace.windows(2) {
                assert!((w[0].submit_at, w[0].id) < (w[1].submit_at, w[1].id));
            }
            for t in trace {
                assert_eq!(usize::from(t.org.raw()) % 4, s);
                assert!(t.submit_at.as_secs() < cfg().horizon_secs);
                assert!(t.duration_secs >= 60);
            }
        }
    }

    #[test]
    fn same_seed_same_trace_different_seed_differs() {
        let a = FleetTraceGenerator::new(cfg()).generate_sharded();
        let b = FleetTraceGenerator::new(cfg()).generate_sharded();
        assert_eq!(a, b);
        let c = FleetTraceGenerator::new(FleetTraceConfig { seed: 9, ..cfg() }).generate_sharded();
        assert_ne!(a, c);
    }

    #[test]
    fn resharding_preserves_the_task_population() {
        let four = FleetTraceGenerator::new(cfg()).generate_sharded();
        let two =
            FleetTraceGenerator::new(FleetTraceConfig { shards: 2, ..cfg() }).generate_sharded();
        let mut ids_four: Vec<_> = four.iter().flatten().map(|t| t.id).collect();
        let mut ids_two: Vec<_> = two.iter().flatten().map(|t| t.id).collect();
        ids_four.sort_unstable();
        ids_two.sort_unstable();
        assert_eq!(ids_four, ids_two);
    }

    #[test]
    fn durations_are_heavy_tailed() {
        let traces = FleetTraceGenerator::new(FleetTraceConfig {
            tasks: 20_000,
            ..cfg()
        })
        .generate_sharded();
        let mut durations: Vec<u64> = traces.iter().flatten().map(|t| t.duration_secs).collect();
        durations.sort_unstable();
        let p50 = durations[durations.len() / 2];
        let p99 = durations[durations.len() * 99 / 100];
        assert!(
            p99 as f64 > 10.0 * p50 as f64,
            "tail should dominate: p50={p50} p99={p99}"
        );
    }
}
