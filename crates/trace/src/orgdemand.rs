//! Per-organization GPU-demand series generation.
//!
//! Calibrated to the published behaviour of the four organizations in
//! Fig. 4 and the cluster heat-maps of Fig. 8: shared diurnal periodicity
//! (peak 10:00–24:00), organization-specific weekly periodicity
//! (Organization C drops 35.7 % on weekends), distinct volatility levels
//! and occasional demand bursts.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::rand_util::randn;

/// Statistical description of one organization's demand process.
#[derive(Debug, Clone, PartialEq)]
pub struct OrgArchetype {
    /// Display name.
    pub name: String,
    /// Baseline demand in GPUs.
    pub base: f64,
    /// Amplitude of the diurnal (10:00–24:00 peak) cycle, GPUs.
    pub diurnal_amp: f64,
    /// Fractional weekend demand drop in `[0, 1]` (0.357 for Org C).
    pub weekend_drop: f64,
    /// Standard deviation of hour-to-hour Gaussian noise, GPUs.
    pub noise: f64,
    /// Probability per hour of a sustained demand burst.
    pub burst_rate: f64,
    /// Burst amplitude, GPUs.
    pub burst_amp: f64,
    /// Linear drift per hour, GPUs (budget-cycle effects).
    pub trend_slope: f64,
    /// Business attribute ids (cluster affiliation, GPU model, unit type).
    pub attrs: Vec<usize>,
}

impl OrgArchetype {
    /// Demand multiplier of the shared diurnal profile at `hour_of_day`:
    /// ramps from a night trough toward the 10:00–24:00 plateau observed in
    /// Fig. 5/8.
    #[must_use]
    pub fn diurnal_profile(hour_of_day: u64) -> f64 {
        match hour_of_day {
            0..=6 => 0.15,
            7..=9 => 0.15 + 0.28 * (hour_of_day - 6) as f64, // ramp up
            10..=23 => 1.0,
            _ => 0.15,
        }
    }
}

/// The four organization archetypes matching Fig. 4 (sharing A100 pools):
/// A is stable with sharp peaks (74–86 GPUs), B fluctuates widely (67–90),
/// C adds a pronounced weekly cycle (−35.7 % weekends), D sits lower with
/// moderate noise.
#[must_use]
pub fn paper_orgs() -> Vec<OrgArchetype> {
    vec![
        OrgArchetype {
            name: "Organization A".into(),
            base: 76.0,
            diurnal_amp: 7.0,
            weekend_drop: 0.0,
            noise: 1.2,
            burst_rate: 0.01,
            burst_amp: 6.0,
            trend_slope: 0.0,
            attrs: vec![0, 0, 0],
        },
        OrgArchetype {
            name: "Organization B".into(),
            base: 74.0,
            diurnal_amp: 10.0,
            weekend_drop: 0.05,
            noise: 3.5,
            burst_rate: 0.02,
            burst_amp: 8.0,
            trend_slope: 0.0,
            attrs: vec![1, 0, 1],
        },
        OrgArchetype {
            name: "Organization C".into(),
            base: 78.0,
            diurnal_amp: 8.0,
            weekend_drop: 0.357,
            noise: 2.0,
            burst_rate: 0.008,
            burst_amp: 5.0,
            trend_slope: 0.0,
            attrs: vec![2, 0, 0],
        },
        OrgArchetype {
            name: "Organization D".into(),
            base: 68.0,
            diurnal_amp: 6.0,
            weekend_drop: 0.12,
            noise: 2.5,
            burst_rate: 0.015,
            burst_amp: 7.0,
            trend_slope: 0.002,
            attrs: vec![1, 0, 2],
        },
    ]
}

/// Vocabulary sizes of the three business-attribute slots used by
/// [`paper_orgs`]: cluster affiliation (3), GPU model (1), unit type (3).
#[must_use]
pub fn default_attr_vocab() -> Vec<usize> {
    vec![3, 1, 3]
}

/// Generates `hours` of hourly demand for one organization.
///
/// Deterministic in `(archetype, hours, seed)`.
#[must_use]
pub fn generate_series(arch: &OrgArchetype, hours: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(hours);
    let mut burst_left = 0usize;
    let mut burst_level = 0.0;
    for h in 0..hours {
        let hour_of_day = (h % 24) as u64;
        let day = h / 24;
        let weekday = day % 7;
        let diurnal = arch.diurnal_amp * OrgArchetype::diurnal_profile(hour_of_day);
        let weekend = if weekday >= 5 {
            1.0 - arch.weekend_drop
        } else {
            1.0
        };
        if burst_left == 0 && rng.gen_bool(arch.burst_rate.clamp(0.0, 1.0)) {
            burst_left = rng.gen_range(2..10);
            burst_level = arch.burst_amp * rng.gen_range(0.5..1.0);
        }
        let burst = if burst_left > 0 {
            burst_left -= 1;
            burst_level
        } else {
            0.0
        };
        let noise = arch.noise * randn(&mut rng);
        let v = (arch.base + diurnal + burst + noise + arch.trend_slope * h as f64) * weekend;
        out.push(v.max(0.0));
    }
    out
}

/// Generates all series for a set of archetypes with per-org derived seeds.
#[must_use]
pub fn generate_all(archs: &[OrgArchetype], hours: usize, seed: u64) -> Vec<Vec<f64>> {
    archs
        .iter()
        .enumerate()
        .map(|(i, a)| generate_series(a, hours, seed.wrapping_add(i as u64 * 7_919)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_orgs_have_four_members() {
        let orgs = paper_orgs();
        assert_eq!(orgs.len(), 4);
        for o in &orgs {
            assert_eq!(o.attrs.len(), default_attr_vocab().len());
            for (a, v) in o.attrs.iter().zip(default_attr_vocab()) {
                assert!(*a < v, "attr id within vocab");
            }
        }
    }

    #[test]
    fn series_is_deterministic() {
        let orgs = paper_orgs();
        assert_eq!(
            generate_series(&orgs[0], 200, 5),
            generate_series(&orgs[0], 200, 5)
        );
        assert_ne!(
            generate_series(&orgs[0], 200, 5),
            generate_series(&orgs[0], 200, 6)
        );
    }

    #[test]
    fn org_a_range_matches_fig4() {
        // Fig. 4: Org A requests between ~74 and ~86 GPUs
        let s = generate_series(&paper_orgs()[0], 168, 42);
        let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min > 65.0, "min {min}");
        assert!(max < 95.0, "max {max}");
        assert!(max - min > 5.0, "visible peaks");
    }

    #[test]
    fn org_c_weekend_drop() {
        let s = generate_series(&paper_orgs()[2], 24 * 14, 9);
        let weekday_mean: f64 = (0..24 * 5).map(|h| s[h]).sum::<f64>() / (24.0 * 5.0);
        let weekend_mean: f64 = (24 * 5..24 * 7).map(|h| s[h]).sum::<f64>() / (24.0 * 2.0);
        let drop = 1.0 - weekend_mean / weekday_mean;
        assert!(
            (drop - 0.357).abs() < 0.1,
            "weekend drop {drop} should approximate the paper's 35.7 %"
        );
    }

    #[test]
    fn diurnal_peak_hours() {
        assert_eq!(OrgArchetype::diurnal_profile(12), 1.0);
        assert_eq!(OrgArchetype::diurnal_profile(23), 1.0);
        assert!(OrgArchetype::diurnal_profile(3) < 0.2);
        // the ramp is monotone
        assert!(OrgArchetype::diurnal_profile(8) > OrgArchetype::diurnal_profile(7));
    }

    #[test]
    fn demand_never_negative() {
        let mut arch = paper_orgs()[1].clone();
        arch.noise = 50.0; // extreme noise
        let s = generate_series(&arch, 500, 3);
        assert!(s.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn generate_all_uses_distinct_seeds() {
        let orgs = paper_orgs();
        let all = generate_all(&orgs, 100, 1);
        assert_eq!(all.len(), 4);
        assert_ne!(all[0], all[1]);
    }
}
