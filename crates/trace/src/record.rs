//! Trace persistence: save and load generated task traces as JSON, in the
//! spirit of the Alibaba cluster-trace release accompanying the paper.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use gfs_types::TaskSpec;

/// A versioned trace file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceFile {
    /// Format version.
    pub version: u32,
    /// Free-form description (workload name, seed, scale).
    pub description: String,
    /// The tasks, sorted by submission time.
    pub tasks: Vec<TaskSpec>,
}

impl TraceFile {
    /// Wraps tasks with metadata.
    #[must_use]
    pub fn new(description: impl Into<String>, tasks: Vec<TaskSpec>) -> Self {
        TraceFile {
            version: 1,
            description: description.into(),
            tasks,
        }
    }

    /// Serializes to a JSON writer. A `&mut W` also works (C-RW-VALUE).
    ///
    /// # Errors
    ///
    /// Propagates serialization or I/O failures.
    pub fn write_json<W: Write>(&self, writer: W) -> std::io::Result<()> {
        serde_json::to_writer(writer, self).map_err(std::io::Error::other)
    }

    /// Deserializes from a JSON reader. A `&mut R` also works (C-RW-VALUE).
    ///
    /// # Errors
    ///
    /// Propagates parse or I/O failures.
    pub fn read_json<R: Read>(reader: R) -> std::io::Result<Self> {
        serde_json::from_reader(reader).map_err(std::io::Error::other)
    }

    /// Saves to a file path.
    ///
    /// # Errors
    ///
    /// Propagates file-creation or serialization failures.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        self.write_json(BufWriter::new(File::create(path)?))
    }

    /// Loads from a file path.
    ///
    /// # Errors
    ///
    /// Propagates file-open or parse failures.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::read_json(BufReader::new(File::open(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{WorkloadConfig, WorkloadGenerator};

    #[test]
    fn json_round_trip() {
        let tasks = WorkloadGenerator::new(WorkloadConfig {
            hp_tasks: 20,
            spot_tasks: 5,
            ..WorkloadConfig::default()
        })
        .generate();
        let tf = TraceFile::new("unit test", tasks);
        let mut buf = Vec::new();
        tf.write_json(&mut buf).unwrap();
        let back = TraceFile::read_json(buf.as_slice()).unwrap();
        assert_eq!(back, tf);
        assert_eq!(back.version, 1);
    }

    #[test]
    fn file_round_trip() {
        let tf = TraceFile::new("file test", Vec::new());
        let path = std::env::temp_dir().join("gfs_trace_test.json");
        tf.save(&path).unwrap();
        let back = TraceFile::load(&path).unwrap();
        assert_eq!(back, tf);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_errors() {
        assert!(TraceFile::read_json(&b"{not json"[..]).is_err());
    }
}
