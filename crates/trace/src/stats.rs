//! Small statistics helpers shared by the generators and the benches that
//! reproduce the paper's distribution figures (Fig. 2/3).

/// Linear-interpolated percentile (`p` in `[0, 100]`) of unsorted data.
///
/// # Panics
///
/// Panics if `values` is empty or `p` is outside `[0, 100]`.
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty data");
    assert!(
        (0.0..=100.0).contains(&p),
        "p must lie in [0, 100], got {p}"
    );
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not contain NaN"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Empirical CDF: returns `(value, P(X ≤ value))` points in ascending order.
#[must_use]
pub fn empirical_cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not contain NaN"));
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Evaluates an empirical CDF at a probe value.
#[must_use]
pub fn cdf_at(values: &[f64], probe: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v <= probe).count() as f64 / values.len() as f64
}

/// Arithmetic mean (0 for empty input).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_endpoints() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 3.0);
        assert_eq!(percentile(&v, 50.0), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 25.0), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let v = [5.0, 1.0, 3.0, 3.0];
        let cdf = empirical_cdf(&v);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn cdf_at_probes() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(cdf_at(&v, 2.5), 0.5);
        assert_eq!(cdf_at(&v, 0.0), 0.0);
        assert_eq!(cdf_at(&v, 4.0), 1.0);
        assert_eq!(cdf_at(&[], 1.0), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
