//! Synthetic workload and demand generation for the GFS reproduction.
//!
//! The paper evaluates on a proprietary Alibaba trace (Apr–Jun 2024,
//! 138k HP + 27k spot tasks on a 2,296-GPU A100 pool). This crate replaces
//! it with deterministic generators calibrated to every published marginal:
//!
//! * [`workload`] — task streams matching the Table 3 size/gang mix, the
//!   Fig. 2 era CDFs, the Fig. 3 duration scales and the diurnal
//!   submission peaks behind Fig. 5;
//! * [`fleet`] — million-task sharded traces for the fleet-scale engine,
//!   with a precomputed diurnal CDF so generation stays O(tasks · log h);
//! * [`orgdemand`] — per-organization hourly demand series matching Fig. 4
//!   (including Organization C's 35.7 % weekend drop);
//! * [`record`] — JSON trace persistence;
//! * [`stats`] — percentile/CDF helpers used by the figure benches.
//!
//! # Examples
//!
//! ```
//! use gfs_trace::workload::{WorkloadConfig, WorkloadGenerator};
//!
//! let tasks = WorkloadGenerator::new(WorkloadConfig {
//!     hp_tasks: 100,
//!     spot_tasks: 20,
//!     ..WorkloadConfig::default()
//! })
//! .generate();
//! assert_eq!(tasks.len(), 120);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod orgdemand;
pub(crate) mod rand_util;
pub mod record;
pub mod stats;
pub mod workload;

pub use fleet::{FleetTraceConfig, FleetTraceGenerator};
pub use orgdemand::{default_attr_vocab, generate_all, generate_series, paper_orgs, OrgArchetype};
pub use record::TraceFile;
pub use workload::{WorkloadConfig, WorkloadEra, WorkloadGenerator};
