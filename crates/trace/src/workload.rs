//! Task-level workload generation calibrated to the paper's published
//! marginals: the Table 3 task mix, the Fig. 2 request CDFs (2020 vs 2024
//! eras), the Fig. 3 runtime scales, and the diurnal submission intensity
//! behind the Fig. 5 eviction peaks.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use gfs_types::{
    CheckpointPlan, GpuDemand, GpuModel, OrgId, Priority, SimDuration, SimTime, TaskSpec, HOUR,
};

use crate::orgdemand::OrgArchetype;
use crate::rand_util::{lognormal, pareto, weighted_index};

/// Which era's request-size distribution to draw from (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadEra {
    /// Jul 2020: ~80 % sub-card fractional requests.
    Era2020,
    /// Oct 2024: LLM era — nearly all whole-card, 70 % of pods at 8 GPUs.
    Era2024,
}

/// GPU-size buckets used by the Table 3 mix: `<1, 1, 2, 4, 8` cards.
const SIZE_BUCKETS: [f64; 5] = [0.5, 1.0, 2.0, 4.0, 8.0];

/// Configuration of the workload generator.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Request-size era.
    pub era: WorkloadEra,
    /// Length of the submission window, seconds.
    pub horizon_secs: SimDuration,
    /// Number of HP tasks to submit.
    pub hp_tasks: usize,
    /// Number of spot tasks at scale 1.0.
    pub spot_tasks: usize,
    /// Spot submission-rate multiplier: 1.0 / 2.0 / 4.0 for the paper's
    /// low / medium / high spot workloads (§4.1).
    pub spot_scale: f64,
    /// GPU model every task requests.
    pub gpu_model: GpuModel,
    /// Median task duration, seconds (log-normal body).
    pub duration_median_secs: f64,
    /// Log-normal shape parameter of the duration body.
    pub duration_sigma: f64,
    /// Fraction of tasks drawn from the heavy Pareto tail
    /// (the multi-day LLM trainings behind the 19.8-day P99 of Fig. 3).
    pub heavy_tail_frac: f64,
    /// Hard cap on task duration, seconds.
    pub max_duration_secs: SimDuration,
    /// Checkpoint interval sold with spot instances, seconds.
    pub checkpoint_interval_secs: SimDuration,
    /// Guaranteed duration sold with spot instances, seconds.
    pub guarantee_secs: SimDuration,
    /// Number of tenant organizations tasks are attributed to.
    pub num_orgs: u16,
    /// First task id to assign.
    pub start_id: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            era: WorkloadEra::Era2024,
            horizon_secs: 7 * 24 * HOUR,
            hp_tasks: 2_000,
            spot_tasks: 400,
            spot_scale: 1.0,
            gpu_model: GpuModel::A100,
            duration_median_secs: 5_400.0,
            duration_sigma: 1.1,
            heavy_tail_frac: 0.015,
            max_duration_secs: 14 * 24 * HOUR,
            checkpoint_interval_secs: HOUR,
            guarantee_secs: HOUR,
            num_orgs: 4,
            start_id: 1,
            seed: 1,
        }
    }
}

impl WorkloadConfig {
    /// Sizes the task counts so the submitted work approximates
    /// `hp_load` / `spot_load` fractions of `capacity_gpus` over the
    /// horizon (measured in GPU-seconds), via a calibration sample.
    #[must_use]
    pub fn sized_for(mut self, capacity_gpus: f64, hp_load: f64, spot_load: f64) -> Self {
        let probe = WorkloadGenerator::new(WorkloadConfig {
            hp_tasks: 600,
            spot_tasks: 600,
            spot_scale: 1.0,
            ..self.clone()
        });
        let tasks = probe.generate();
        let (mut hp_gs, mut hp_n, mut spot_gs, mut spot_n) = (0.0f64, 0usize, 0.0f64, 0usize);
        for t in &tasks {
            let gs = t.total_gpus() * t.duration_secs as f64;
            if t.priority.is_hp() {
                hp_gs += gs;
                hp_n += 1;
            } else {
                spot_gs += gs;
                spot_n += 1;
            }
        }
        let budget = capacity_gpus * self.horizon_secs as f64;
        if hp_n > 0 && hp_gs > 0.0 {
            self.hp_tasks = ((budget * hp_load) / (hp_gs / hp_n as f64)).round() as usize;
        }
        if spot_n > 0 && spot_gs > 0.0 {
            self.spot_tasks = ((budget * spot_load) / (spot_gs / spot_n as f64)).round() as usize;
        }
        self
    }
}

/// Deterministic task-trace generator.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    cfg: WorkloadConfig,
}

impl WorkloadGenerator {
    /// Creates a generator.
    #[must_use]
    pub fn new(cfg: WorkloadConfig) -> Self {
        WorkloadGenerator { cfg }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Size-bucket weights per priority class (Table 3 for 2024; Fig. 2 for
    /// 2020).
    #[must_use]
    pub fn size_weights(era: WorkloadEra, priority: Priority) -> [f64; 5] {
        match (era, priority) {
            (WorkloadEra::Era2024, Priority::Hp) => [0.11, 55.11, 13.37, 7.53, 23.69],
            (WorkloadEra::Era2024, Priority::Spot) => [0.82, 67.35, 5.67, 12.00, 14.04],
            (WorkloadEra::Era2020, _) => [80.0, 12.0, 5.0, 2.5, 0.5],
        }
    }

    /// Gang share per priority class (Table 3).
    #[must_use]
    pub fn gang_share(era: WorkloadEra, priority: Priority) -> f64 {
        match (era, priority) {
            (WorkloadEra::Era2024, Priority::Hp) => 0.0866,
            (WorkloadEra::Era2024, Priority::Spot) => 0.2726,
            (WorkloadEra::Era2020, _) => 0.02,
        }
    }

    /// Generates the full trace, sorted by submission time.
    #[must_use]
    pub fn generate(&self) -> Vec<TaskSpec> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let spot_count = (self.cfg.spot_tasks as f64 * self.cfg.spot_scale).round() as usize;
        let mut tasks = Vec::with_capacity(self.cfg.hp_tasks + spot_count);
        let mut next_id = self.cfg.start_id;
        for _ in 0..self.cfg.hp_tasks {
            tasks.push(self.sample_task(next_id, Priority::Hp, &mut rng));
            next_id += 1;
        }
        for _ in 0..spot_count {
            tasks.push(self.sample_task(next_id, Priority::Spot, &mut rng));
            next_id += 1;
        }
        tasks.sort_by_key(|t| (t.submit_at, t.id));
        tasks
    }

    fn sample_task(&self, id: u64, priority: Priority, rng: &mut ChaCha8Rng) -> TaskSpec {
        let weights = Self::size_weights(self.cfg.era, priority);
        let bucket = weighted_index(&weights, rng);
        let gang = rng.gen_bool(Self::gang_share(self.cfg.era, priority));
        let pods: u32 = if gang {
            [2u32, 4, 8][weighted_index(&[0.5, 0.3, 0.2], rng)]
        } else {
            1
        };
        let gpus = if bucket == 0 && !gang {
            GpuDemand::fraction(*[0.25, 0.5].get(rng.gen_range(0..2)).expect("static"))
                .expect("valid fraction")
        } else {
            GpuDemand::whole(SIZE_BUCKETS[bucket.max(1)] as u32)
        };

        let total_gpus = f64::from(pods) * gpus.cards();
        // larger tasks run longer (Fig. 3): scale the median by G^0.3
        let median = self.cfg.duration_median_secs * total_gpus.max(0.25).powf(0.3);
        let raw = if rng.gen_bool(self.cfg.heavy_tail_frac.clamp(0.0, 1.0)) {
            pareto(6.0 * HOUR as f64, 1.05, rng)
        } else {
            lognormal(median, self.cfg.duration_sigma, rng)
        };
        let duration = (raw as u64).clamp(60, self.cfg.max_duration_secs);

        let submit = self.sample_submit_time(rng);
        let org = OrgId::new(rng.gen_range(0..self.cfg.num_orgs.max(1)));

        let mut b = TaskSpec::builder(id)
            .org(org)
            .priority(priority)
            .gpu_model(self.cfg.gpu_model)
            .pods(pods)
            .gpus_per_pod(gpus)
            .duration_secs(duration)
            .submit_at(submit)
            .checkpoint(CheckpointPlan::Periodic {
                interval: self.cfg.checkpoint_interval_secs,
            });
        if priority.is_spot() {
            b = b.guarantee_secs(self.cfg.guarantee_secs);
        }
        b.build()
            .expect("generated tasks satisfy the spec invariants")
    }

    /// Samples a submission instant with the diurnal intensity profile
    /// (10:00–24:00 peak).
    fn sample_submit_time(&self, rng: &mut ChaCha8Rng) -> SimTime {
        let hours = (self.cfg.horizon_secs / HOUR).max(1);
        let weights: Vec<f64> = (0..hours)
            .map(|h| 0.2 + OrgArchetype::diurnal_profile(h % 24))
            .collect();
        let hour = weighted_index(&weights, rng) as u64;
        let sec = rng.gen_range(0..HOUR);
        SimTime::from_secs(hour * HOUR + sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> WorkloadConfig {
        WorkloadConfig {
            hp_tasks: 3_000,
            spot_tasks: 1_000,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn counts_and_ordering() {
        let tasks = WorkloadGenerator::new(small_cfg()).generate();
        assert_eq!(tasks.len(), 4_000);
        for w in tasks.windows(2) {
            assert!(w[0].submit_at <= w[1].submit_at);
        }
        let ids: std::collections::HashSet<_> = tasks.iter().map(|t| t.id).collect();
        assert_eq!(ids.len(), tasks.len(), "ids are unique");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = WorkloadGenerator::new(small_cfg()).generate();
        let b = WorkloadGenerator::new(small_cfg()).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn spot_scale_multiplies_spot_tasks() {
        let mut cfg = small_cfg();
        cfg.spot_scale = 4.0;
        let tasks = WorkloadGenerator::new(cfg).generate();
        let spot = tasks.iter().filter(|t| t.priority.is_spot()).count();
        assert_eq!(spot, 4_000);
    }

    #[test]
    fn size_mix_matches_table3() {
        let tasks = WorkloadGenerator::new(small_cfg()).generate();
        let hp: Vec<_> = tasks.iter().filter(|t| t.priority.is_hp()).collect();
        let one_card = hp
            .iter()
            .filter(|t| t.gpus_per_pod == GpuDemand::whole(1))
            .count() as f64
            / hp.len() as f64;
        assert!(
            (one_card - 0.5511).abs() < 0.05,
            "1-card HP share {one_card}"
        );
        let eight = hp
            .iter()
            .filter(|t| t.gpus_per_pod == GpuDemand::whole(8))
            .count() as f64
            / hp.len() as f64;
        assert!((eight - 0.2369).abs() < 0.05, "8-card HP share {eight}");
    }

    #[test]
    fn gang_share_matches_table3() {
        let tasks = WorkloadGenerator::new(small_cfg()).generate();
        let spot: Vec<_> = tasks.iter().filter(|t| t.priority.is_spot()).collect();
        let gang = spot.iter().filter(|t| t.is_gang()).count() as f64 / spot.len() as f64;
        assert!((gang - 0.2726).abs() < 0.06, "spot gang share {gang}");
        let hp: Vec<_> = tasks.iter().filter(|t| t.priority.is_hp()).collect();
        let hp_gang = hp.iter().filter(|t| t.is_gang()).count() as f64 / hp.len() as f64;
        assert!((hp_gang - 0.0866).abs() < 0.03, "hp gang share {hp_gang}");
    }

    #[test]
    fn era_2020_is_mostly_fractional() {
        let mut cfg = small_cfg();
        cfg.era = WorkloadEra::Era2020;
        let tasks = WorkloadGenerator::new(cfg).generate();
        let frac = tasks
            .iter()
            .filter(|t| t.gpus_per_pod.is_fractional())
            .count() as f64
            / tasks.len() as f64;
        assert!(frac > 0.6, "2020 era fractional share {frac}");
    }

    #[test]
    fn era_2024_is_mostly_whole_card() {
        let tasks = WorkloadGenerator::new(small_cfg()).generate();
        let frac = tasks
            .iter()
            .filter(|t| t.gpus_per_pod.is_fractional())
            .count() as f64
            / tasks.len() as f64;
        assert!(frac < 0.02, "2024 era fractional share {frac}");
    }

    #[test]
    fn submissions_peak_in_business_hours() {
        let tasks = WorkloadGenerator::new(small_cfg()).generate();
        let peak = tasks
            .iter()
            .filter(|t| (10..24).contains(&t.submit_at.hour_of_day()))
            .count() as f64
            / tasks.len() as f64;
        // 14 peak hours out of 24 carry well over their uniform share
        assert!(peak > 0.7, "peak-hour submission share {peak}");
    }

    #[test]
    fn spot_tasks_carry_guarantees_and_checkpoints() {
        let tasks = WorkloadGenerator::new(small_cfg()).generate();
        for t in tasks.iter().filter(|t| t.priority.is_spot()) {
            assert_eq!(t.guarantee_secs, Some(HOUR));
            assert!(matches!(t.checkpoint, CheckpointPlan::Periodic { .. }));
        }
        for t in tasks.iter().filter(|t| t.priority.is_hp()) {
            assert_eq!(t.guarantee_secs, None);
        }
    }

    #[test]
    fn durations_have_heavy_tail() {
        let mut cfg = small_cfg();
        cfg.hp_tasks = 20_000;
        cfg.spot_tasks = 0;
        let tasks = WorkloadGenerator::new(cfg).generate();
        let durs: Vec<f64> = tasks
            .iter()
            .map(|t| t.duration_secs as f64 / HOUR as f64)
            .collect();
        let p50 = crate::stats::percentile(&durs, 50.0);
        let p99 = crate::stats::percentile(&durs, 99.0);
        assert!(p50 > 0.5 && p50 < 6.0, "P50 {p50} h");
        assert!(p99 / p50 > 5.0, "tail ratio {}", p99 / p50);
    }

    #[test]
    fn sized_for_hits_target_load() {
        let cfg = WorkloadConfig {
            horizon_secs: 24 * HOUR,
            ..small_cfg()
        }
        .sized_for(512.0, 0.6, 0.2);
        let tasks = WorkloadGenerator::new(cfg.clone()).generate();
        let hp_gs: f64 = tasks
            .iter()
            .filter(|t| t.priority.is_hp())
            .map(|t| t.total_gpus() * t.duration_secs as f64)
            .sum();
        let budget = 512.0 * cfg.horizon_secs as f64;
        let load = hp_gs / budget;
        assert!((load - 0.6).abs() < 0.25, "achieved HP load {load}");
    }
}
