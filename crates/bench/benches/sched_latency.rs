//! Scheduler decision latency (§3.4.2 claims < 1 s per task in production;
//! our in-memory reproduction should be orders of magnitude faster) plus
//! ablation comparisons of the PTS design choices.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use gfs::prelude::*;

/// A 287-node cluster pre-loaded with a mixed HP/spot population.
fn loaded_cluster() -> Cluster {
    let mut cluster = Cluster::homogeneous(287, GpuModel::A100, 8);
    let mut id = 0u64;
    for n in 0..287u32 {
        // ~70% of nodes carry one 4-GPU HP and one 2-GPU spot task
        if n % 10 < 7 {
            id += 1;
            let hp = TaskSpec::builder(id)
                .priority(Priority::Hp)
                .gpus_per_pod(GpuDemand::whole(4))
                .duration_secs(100_000)
                .build()
                .expect("valid");
            cluster.start_task(hp, &[NodeId::new(n)], SimTime::ZERO, 0).expect("fits");
            id += 1;
            let spot = TaskSpec::builder(id)
                .priority(Priority::Spot)
                .gpus_per_pod(GpuDemand::whole(2))
                .duration_secs(100_000)
                .build()
                .expect("valid");
            cluster.start_task(spot, &[NodeId::new(n)], SimTime::from_secs(500), 0).expect("fits");
        }
    }
    cluster
}

fn hp_task(gpus: u32, pods: u32) -> TaskSpec {
    TaskSpec::builder(999_999)
        .priority(Priority::Hp)
        .pods(pods)
        .gpus_per_pod(GpuDemand::whole(gpus))
        .duration_secs(3_600)
        .build()
        .expect("valid")
}

fn bench_nonpreemptive(c: &mut Criterion) {
    let cluster = loaded_cluster();
    let pts = gfs::core::Pts::new(GfsParams::default(), PtsVariant::Full);
    let task = hp_task(2, 1);
    c.bench_function("pts_nonpreemptive_287_nodes", |b| {
        b.iter(|| pts.schedule_nonpreemptive(&task, &cluster, SimTime::from_hours(1)))
    });
}

fn bench_preemptive(c: &mut Criterion) {
    // a full cluster forces the preemptive path
    let mut cluster = Cluster::homogeneous(287, GpuModel::A100, 8);
    for n in 0..287u32 {
        let spot = TaskSpec::builder(u64::from(n) + 1)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::whole(8))
            .duration_secs(100_000)
            .build()
            .expect("valid");
        cluster.start_task(spot, &[NodeId::new(n)], SimTime::ZERO, 0).expect("fits");
    }
    let task = hp_task(8, 1);
    for (name, variant) in [
        ("pts_preemptive_waste_aware", PtsVariant::Full),
        ("pts_preemptive_random_ablation", PtsVariant::RandomPreemption),
    ] {
        let pts = gfs::core::Pts::new(GfsParams::default(), variant);
        c.bench_function(name, |b| {
            b.iter(|| pts.schedule_preemptive(&task, &cluster, SimTime::from_hours(1)))
        });
    }
}

fn bench_baseline_schedulers(c: &mut Criterion) {
    let cluster = loaded_cluster();
    let task = hp_task(4, 2);
    c.bench_function("yarn_best_fit_decision", |b| {
        b.iter_batched(
            YarnCs::new,
            |mut s| s.schedule(&task, &cluster, SimTime::from_hours(1)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("fgd_frag_gradient_decision", |b| {
        b.iter_batched(
            Fgd::new,
            |mut s| s.schedule(&task, &cluster, SimTime::from_hours(1)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_nonpreemptive, bench_preemptive, bench_baseline_schedulers
}
criterion_main!(benches);
