//! Scheduler decision latency (§3.4.2 claims < 1 s per task in production;
//! our in-memory reproduction should be orders of magnitude faster) plus
//! ablation comparisons of the PTS design choices.

use gfs::prelude::*;
use gfs_bench::harness::Suite;

/// A 287-node cluster pre-loaded with a mixed HP/spot population.
fn loaded_cluster() -> Cluster {
    let mut cluster = Cluster::homogeneous(287, GpuModel::A100, 8);
    let mut id = 0u64;
    for n in 0..287u32 {
        // ~70% of nodes carry one 4-GPU HP and one 2-GPU spot task
        if n % 10 < 7 {
            id += 1;
            let hp = TaskSpec::builder(id)
                .priority(Priority::Hp)
                .gpus_per_pod(GpuDemand::whole(4))
                .duration_secs(100_000)
                .build()
                .expect("valid");
            cluster
                .start_task(hp, &[NodeId::new(n)], SimTime::ZERO, 0)
                .expect("fits");
            id += 1;
            let spot = TaskSpec::builder(id)
                .priority(Priority::Spot)
                .gpus_per_pod(GpuDemand::whole(2))
                .duration_secs(100_000)
                .build()
                .expect("valid");
            cluster
                .start_task(spot, &[NodeId::new(n)], SimTime::from_secs(500), 0)
                .expect("fits");
        }
    }
    cluster
}

fn hp_task(gpus: u32, pods: u32) -> TaskSpec {
    TaskSpec::builder(999_999)
        .priority(Priority::Hp)
        .pods(pods)
        .gpus_per_pod(GpuDemand::whole(gpus))
        .duration_secs(3_600)
        .build()
        .expect("valid")
}

fn bench_nonpreemptive(suite: &mut Suite) {
    let cluster = loaded_cluster();
    let pts = gfs::core::Pts::new(GfsParams::default(), PtsVariant::Full);
    let task = hp_task(2, 1);
    suite.bench("pts_nonpreemptive_287_nodes", || {
        pts.schedule_nonpreemptive(&task, &cluster, SimTime::from_hours(1))
    });
}

fn bench_preemptive(suite: &mut Suite) {
    // a full cluster forces the preemptive path
    let mut cluster = Cluster::homogeneous(287, GpuModel::A100, 8);
    for n in 0..287u32 {
        let spot = TaskSpec::builder(u64::from(n) + 1)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::whole(8))
            .duration_secs(100_000)
            .build()
            .expect("valid");
        cluster
            .start_task(spot, &[NodeId::new(n)], SimTime::ZERO, 0)
            .expect("fits");
    }
    let task = hp_task(8, 1);
    for (name, variant) in [
        ("pts_preemptive_waste_aware", PtsVariant::Full),
        (
            "pts_preemptive_random_ablation",
            PtsVariant::RandomPreemption,
        ),
    ] {
        let pts = gfs::core::Pts::new(GfsParams::default(), variant);
        suite.bench(name, || {
            pts.schedule_preemptive(&task, &cluster, SimTime::from_hours(1))
        });
    }
}

fn bench_baseline_schedulers(suite: &mut Suite) {
    let cluster = loaded_cluster();
    let task = hp_task(4, 2);
    suite.bench("yarn_best_fit_decision", || {
        let mut s = YarnCs::new();
        s.schedule(&task, &cluster, SimTime::from_hours(1))
    });
    suite.bench("fgd_frag_gradient_decision", || {
        let mut s = Fgd::new();
        s.schedule(&task, &cluster, SimTime::from_hours(1))
    });
}

/// Cluster-timeline plan expansion for a production-scale fleet: one week
/// of independent churn + rack-correlated failures + a rolling
/// maintenance wave + an autoscale schedule, merged and validated. Plans
/// are built once per run *before* the event loop — this entry exists to
/// show the expansion stays off the simulation hot path (µs-scale against
/// ms-scale sims).
fn bench_timeline_apply(suite: &mut Suite) {
    use gfs::prelude::{ClusterEvent, DynamicsPlan, FailureDomain, NodeTemplate, SimTime};
    let horizon = 7 * 24 * gfs_types::HOUR;
    let racks = FailureDomain::racks(287, 8);
    suite.bench("timeline_apply", || {
        let churn = DynamicsPlan::seeded_mtbf(287, 96.0 * HOUR as f64, HOUR as f64, horizon, 42);
        let correlated =
            DynamicsPlan::correlated(&racks, 400.0 * HOUR as f64, 2.0 * HOUR as f64, horizon, 42);
        let wave = DynamicsPlan::rolling_drain(287, SimTime::from_hours(24), 600, 1_800, 3_600);
        let grow = DynamicsPlan::scale_out(
            NodeTemplate {
                model: GpuModel::A100,
                gpus: 8,
            },
            SimTime::from_hours(48),
            12 * HOUR,
            4,
            4,
        );
        // merge without cross-validating conflicting node histories (the
        // engine no-ops overlaps); count what a run would consume
        let all: Vec<ClusterEvent> = churn
            .events()
            .iter()
            .chain(correlated.events())
            .chain(wave.events())
            .chain(grow.events())
            .copied()
            .collect();
        DynamicsPlan::new_unchecked(all).len()
    });
}

/// Crash-safety hot path: checkpoint a live mid-run service and bring a
/// replacement up from it. One iteration is the full cycle a controller
/// pays per checkpoint interval plus what a failover pays at takeover —
/// snapshot, canonical-JSON encode, parse back, restore into a fresh
/// service. Keeping this µs-scale is what makes aggressive snapshot
/// cadences (and therefore short journal suffixes) affordable.
fn bench_snapshot_restore(suite: &mut Suite) {
    use gfs::sim::{ClusterService, ServiceSnapshot};
    let mut svc = ClusterService::new(
        Cluster::homogeneous(64, GpuModel::A100, 8),
        SimConfig {
            max_time_secs: Some(48 * HOUR),
            ..SimConfig::default()
        },
    );
    let mut tasks = Vec::new();
    for i in 0..160u64 {
        tasks.push(
            TaskSpec::builder(i + 1)
                .priority(if i % 4 == 0 {
                    Priority::Spot
                } else {
                    Priority::Hp
                })
                .gpus_per_pod(GpuDemand::whole(if i % 3 == 0 { 8 } else { 4 }))
                .duration_secs(3 * HOUR + i * 97)
                .build()
                .expect("valid"),
        );
    }
    svc.admit_tasks(tasks);
    svc.start();
    let mut sched = YarnCs::new();
    for _ in 0..200 {
        if !svc.step(&mut sched) {
            break;
        }
    }
    suite.bench("snapshot_restore", || {
        let json = svc.snapshot(&sched).to_json();
        let snap = ServiceSnapshot::from_json(&json).expect("round-trip");
        let mut standby = YarnCs::new();
        let restored = ClusterService::restore(snap, &mut standby).expect("restore");
        (json.len(), restored.steps())
    });
}

/// Capacity-market hot path: what one decision boundary costs on a
/// production-scale fleet. `controller_decision` is the pure
/// forecast-follower decision over a 287-node cluster (gap computation
/// plus the release-safety scan of every market node);
/// `market_step` is the full boundary cycle the driver pays per
/// interval — cost-meter accrual over the fleet plus quotes plus the
/// decision. Both must stay µs-scale so a market grid costs the same as
/// a dynamics grid.
fn bench_market(suite: &mut Suite) {
    use gfs::market::{
        CapacityController, ForecastController, ForecastParams, MarketView, PriceProcess,
    };
    let mut cluster = loaded_cluster();
    // a market-owned tail of the fleet: 32 bought nodes, half loaded
    let fleet_origin = cluster.nodes().len() as u32;
    let mut id = 1_000_000u64;
    for k in 0..32u32 {
        let node = cluster.add_node(GpuModel::A100, 8);
        if k % 2 == 0 {
            id += 1;
            let spot = TaskSpec::builder(id)
                .priority(Priority::Spot)
                .gpus_per_pod(GpuDemand::whole(4))
                .duration_secs(100_000)
                .build()
                .expect("valid");
            cluster
                .start_task(spot, &[node], SimTime::from_hours(1), 0)
                .expect("fits");
        }
    }
    let prices = PriceProcess::walk(42);
    let controller = ForecastController::new(ForecastParams::default());
    let now = SimTime::from_hours(6);
    let view = MarketView {
        now,
        cluster: &cluster,
        demand_gpus: 2_400.0,
        forecast_available: true,
        prices: &prices,
        fleet_origin,
    };
    suite.bench("controller_decision", || controller.decide(&view).len());
    suite.bench("market_step", || {
        let mut meter = gfs::market::CostMeter::new(HOUR);
        meter.accrue(&cluster, fleet_origin, &prices, now);
        let actions = controller.decide(&view);
        (meter.spend_usd(), actions.len())
    });
}

fn main() {
    let mut suite = Suite::new("sched_latency");
    bench_nonpreemptive(&mut suite);
    bench_preemptive(&mut suite);
    bench_baseline_schedulers(&mut suite);
    bench_timeline_apply(&mut suite);
    bench_snapshot_restore(&mut suite);
    bench_market(&mut suite);
    suite.finish();
}
