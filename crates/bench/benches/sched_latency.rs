//! Scheduler decision latency (§3.4.2 claims < 1 s per task in production;
//! our in-memory reproduction should be orders of magnitude faster) plus
//! ablation comparisons of the PTS design choices.

use gfs::prelude::*;
use gfs_bench::harness::Suite;

/// A 287-node cluster pre-loaded with a mixed HP/spot population.
fn loaded_cluster() -> Cluster {
    let mut cluster = Cluster::homogeneous(287, GpuModel::A100, 8);
    let mut id = 0u64;
    for n in 0..287u32 {
        // ~70% of nodes carry one 4-GPU HP and one 2-GPU spot task
        if n % 10 < 7 {
            id += 1;
            let hp = TaskSpec::builder(id)
                .priority(Priority::Hp)
                .gpus_per_pod(GpuDemand::whole(4))
                .duration_secs(100_000)
                .build()
                .expect("valid");
            cluster.start_task(hp, &[NodeId::new(n)], SimTime::ZERO, 0).expect("fits");
            id += 1;
            let spot = TaskSpec::builder(id)
                .priority(Priority::Spot)
                .gpus_per_pod(GpuDemand::whole(2))
                .duration_secs(100_000)
                .build()
                .expect("valid");
            cluster.start_task(spot, &[NodeId::new(n)], SimTime::from_secs(500), 0).expect("fits");
        }
    }
    cluster
}

fn hp_task(gpus: u32, pods: u32) -> TaskSpec {
    TaskSpec::builder(999_999)
        .priority(Priority::Hp)
        .pods(pods)
        .gpus_per_pod(GpuDemand::whole(gpus))
        .duration_secs(3_600)
        .build()
        .expect("valid")
}

fn bench_nonpreemptive(suite: &mut Suite) {
    let cluster = loaded_cluster();
    let pts = gfs::core::Pts::new(GfsParams::default(), PtsVariant::Full);
    let task = hp_task(2, 1);
    suite.bench("pts_nonpreemptive_287_nodes", || {
        pts.schedule_nonpreemptive(&task, &cluster, SimTime::from_hours(1))
    });
}

fn bench_preemptive(suite: &mut Suite) {
    // a full cluster forces the preemptive path
    let mut cluster = Cluster::homogeneous(287, GpuModel::A100, 8);
    for n in 0..287u32 {
        let spot = TaskSpec::builder(u64::from(n) + 1)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::whole(8))
            .duration_secs(100_000)
            .build()
            .expect("valid");
        cluster.start_task(spot, &[NodeId::new(n)], SimTime::ZERO, 0).expect("fits");
    }
    let task = hp_task(8, 1);
    for (name, variant) in [
        ("pts_preemptive_waste_aware", PtsVariant::Full),
        ("pts_preemptive_random_ablation", PtsVariant::RandomPreemption),
    ] {
        let pts = gfs::core::Pts::new(GfsParams::default(), variant);
        suite.bench(name, || pts.schedule_preemptive(&task, &cluster, SimTime::from_hours(1)));
    }
}

fn bench_baseline_schedulers(suite: &mut Suite) {
    let cluster = loaded_cluster();
    let task = hp_task(4, 2);
    suite.bench("yarn_best_fit_decision", || {
        let mut s = YarnCs::new();
        s.schedule(&task, &cluster, SimTime::from_hours(1))
    });
    suite.bench("fgd_frag_gradient_decision", || {
        let mut s = Fgd::new();
        s.schedule(&task, &cluster, SimTime::from_hours(1))
    });
}

fn main() {
    let mut suite = Suite::new("sched_latency");
    bench_nonpreemptive(&mut suite);
    bench_preemptive(&mut suite);
    bench_baseline_schedulers(&mut suite);
    suite.finish();
}
