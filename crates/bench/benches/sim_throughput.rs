//! Simulator and quota-loop throughput: end-to-end events per second and
//! the cost of one SQA quota update with a live OrgLinear forecast.

use gfs::prelude::*;
use gfs::scenario::{org_template_scaled, trained_gde, GdeModel};
use gfs_bench::harness::Suite;

fn bench_simulation(suite: &mut Suite) {
    let cfg = WorkloadConfig {
        horizon_secs: 12 * HOUR,
        hp_tasks: 300,
        spot_tasks: 60,
        seed: 6,
        ..WorkloadConfig::default()
    };
    let tasks = WorkloadGenerator::new(cfg).generate();
    let sim_cfg = SimConfig {
        max_time_secs: Some(3 * 24 * HOUR),
        ..SimConfig::default()
    };
    suite.bench("simulate_360_tasks_first_fit", || {
        let cluster = Cluster::homogeneous(32, GpuModel::A100, 8);
        let mut sched = YarnCs::new();
        run(cluster, &mut sched, tasks.clone(), &sim_cfg)
    });
    suite.bench("simulate_360_tasks_gfs", || {
        let cluster = Cluster::homogeneous(32, GpuModel::A100, 8);
        let mut sched = GfsScheduler::with_defaults();
        run(cluster, &mut sched, tasks.clone(), &sim_cfg)
    });
}

fn bench_quota_update(suite: &mut Suite) {
    let template = org_template_scaled(3, 168, 4, 1, Some(150.0));
    let mut cfg = TrainConfig::fast();
    cfg.epochs = 3;
    let gde = trained_gde(&template, GdeModel::OrgLinear, &cfg, 1);
    let cluster = Cluster::homogeneous(287, GpuModel::A100, 8);
    suite.bench("gde_aggregate_upper_p90", || gde.aggregate_upper(0.9, 1));
    let mut sqa = gfs::core::SpotQuotaAllocator::new(GfsParams::default());
    suite.bench("sqa_update", || {
        sqa.update(SimTime::from_hours(1), &cluster, 1_500.0)
    });
}

fn main() {
    let mut suite = Suite::new("sim_throughput");
    bench_simulation(&mut suite);
    bench_quota_update(&mut suite);
    suite.finish();
}
