//! Simulator and quota-loop throughput: end-to-end events per second and
//! the cost of one SQA quota update with a live OrgLinear forecast.

use criterion::{criterion_group, criterion_main, Criterion};

use gfs::prelude::*;
use gfs::scenario::{org_template_scaled, trained_gde, GdeModel};

fn bench_simulation(c: &mut Criterion) {
    let cfg = WorkloadConfig {
        horizon_secs: 12 * HOUR,
        hp_tasks: 300,
        spot_tasks: 60,
        seed: 6,
        ..WorkloadConfig::default()
    };
    let tasks = WorkloadGenerator::new(cfg).generate();
    c.bench_function("simulate_360_tasks_first_fit", |b| {
        b.iter(|| {
            let cluster = Cluster::homogeneous(32, GpuModel::A100, 8);
            let mut sched = YarnCs::new();
            run(
                cluster,
                &mut sched,
                tasks.clone(),
                &SimConfig {
                    max_time_secs: Some(3 * 24 * HOUR),
                    ..SimConfig::default()
                },
            )
        })
    });
}

fn bench_quota_update(c: &mut Criterion) {
    let template = org_template_scaled(3, 168, 4, 1, Some(150.0));
    let mut cfg = TrainConfig::fast();
    cfg.epochs = 3;
    let gde = trained_gde(&template, GdeModel::OrgLinear, &cfg, 1);
    let cluster = Cluster::homogeneous(287, GpuModel::A100, 8);
    c.bench_function("gde_aggregate_upper_p90", |b| {
        b.iter(|| gde.aggregate_upper(0.9, 1))
    });
    let mut sqa = gfs::core::SpotQuotaAllocator::new(GfsParams::default());
    c.bench_function("sqa_update", |b| {
        b.iter(|| sqa.update(SimTime::from_hours(1), &cluster, 1_500.0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_simulation, bench_quota_update
}
criterion_main!(benches);
