//! Forecasting throughput: OrgLinear epoch time vs the baselines (the
//! Table 7 training-time story) and the decomposition-kernel ablation
//! (reflection vs zero padding).

use gfs::forecast::dataset::Sample;
use gfs::forecast::decompose::{moving_average, moving_average_zero_pad};
use gfs::prelude::*;
use gfs::scenario::org_template;
use gfs_bench::harness::Suite;
use gfs_forecast::DeepAr;

fn bench_training_epoch(suite: &mut Suite) {
    let data = org_template(4, 168, 24, 3);
    let mut cfg = TrainConfig::fast();
    cfg.epochs = 1;
    cfg.stride = 24;
    suite.bench("orglinear_one_epoch", || {
        let mut m = OrgLinear::new(&data, 1);
        m.fit(&data, &cfg)
    });
    suite.bench("dlinear_one_epoch", || {
        let mut m = DLinear::new(&data, 1);
        m.fit(&data, &cfg)
    });
    suite.bench("deepar_one_epoch", || {
        let mut m = DeepAr::new(&data, 1);
        m.fit(&data, &cfg)
    });
}

fn bench_inference(suite: &mut Suite) {
    let data = org_template(4, 168, 24, 3);
    let mut cfg = TrainConfig::fast();
    cfg.epochs = 2;
    let mut model = OrgLinear::new(&data, 1);
    model.fit(&data, &cfg);
    let sample = Sample { org: 0, start: 64 };
    suite.bench("orglinear_predict_24h", || model.predict(&data, sample));
}

fn bench_decomposition(suite: &mut Suite) {
    let xs: Vec<f64> = (0..168)
        .map(|i| ((i % 24) as f64).sin() * 10.0 + 50.0)
        .collect();
    suite.bench("moving_average_reflection", || moving_average(&xs, 25));
    suite.bench("moving_average_zero_pad_ablation", || {
        moving_average_zero_pad(&xs, 25)
    });
}

fn main() {
    let mut suite = Suite::new("forecast_train");
    bench_training_epoch(&mut suite);
    bench_inference(&mut suite);
    bench_decomposition(&mut suite);
    suite.finish();
}
