//! Forecasting throughput: OrgLinear epoch time vs the baselines (the
//! Table 7 training-time story) and the decomposition-kernel ablation
//! (reflection vs zero padding).

use criterion::{criterion_group, criterion_main, Criterion};

use gfs::forecast::dataset::Sample;
use gfs::forecast::decompose::{moving_average, moving_average_zero_pad};
use gfs::prelude::*;
use gfs::scenario::org_template;
use gfs_forecast::DeepAr;

fn bench_training_epoch(c: &mut Criterion) {
    let data = org_template(4, 168, 24, 3);
    let mut cfg = TrainConfig::fast();
    cfg.epochs = 1;
    cfg.stride = 24;
    c.bench_function("orglinear_one_epoch", |b| {
        b.iter(|| {
            let mut m = OrgLinear::new(&data, 1);
            m.fit(&data, &cfg)
        })
    });
    c.bench_function("dlinear_one_epoch", |b| {
        b.iter(|| {
            let mut m = DLinear::new(&data, 1);
            m.fit(&data, &cfg)
        })
    });
    c.bench_function("deepar_one_epoch", |b| {
        b.iter(|| {
            let mut m = DeepAr::new(&data, 1);
            m.fit(&data, &cfg)
        })
    });
}

fn bench_inference(c: &mut Criterion) {
    let data = org_template(4, 168, 24, 3);
    let mut cfg = TrainConfig::fast();
    cfg.epochs = 2;
    let mut model = OrgLinear::new(&data, 1);
    model.fit(&data, &cfg);
    let sample = Sample { org: 0, start: 64 };
    c.bench_function("orglinear_predict_24h", |b| {
        b.iter(|| model.predict(&data, sample))
    });
}

fn bench_decomposition(c: &mut Criterion) {
    let xs: Vec<f64> = (0..168).map(|i| ((i % 24) as f64).sin() * 10.0 + 50.0).collect();
    c.bench_function("moving_average_reflection", |b| {
        b.iter(|| moving_average(&xs, 25))
    });
    c.bench_function("moving_average_zero_pad_ablation", |b| {
        b.iter(|| moving_average_zero_pad(&xs, 25))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_training_epoch, bench_inference, bench_decomposition
}
criterion_main!(benches);
