//! Fleet-scale engine benchmarks: the headline 100k-node / million-task /
//! one-week sharded simulation, placement-decision latency as the node
//! count grows 1k → 10k → 100k (the score index must keep it sub-linear),
//! and canonical snapshot/restore round-trips at 10k nodes.
//!
//! Short mode (`GFS_BENCH_SHORT=1`, the CI smoke) runs scaled-down
//! entries under their own names; the full run (`just bench`) records
//! both the smoke entries and the full-size ones, so the committed
//! baseline covers everything the gate may see.

use gfs::prelude::*;
use gfs::sim::fleet::{domain_shards, run_fleet, FleetShard};
use gfs::sim::{ClusterService, ServiceSnapshot};
use gfs::trace::fleet::{FleetTraceConfig, FleetTraceGenerator};
use gfs_bench::harness::Suite;

/// Builds the per-shard inputs for a fleet run: `shards` failure domains
/// of `nodes_per_shard` 8×A100 nodes and `tasks` heavy-tailed tasks over
/// a one-week submission window, routed by organization.
fn fleet_inputs(shards: u32, nodes_per_shard: u32, tasks: u64) -> Vec<FleetShard> {
    let clusters = domain_shards(shards as usize, nodes_per_shard, GpuModel::A100, 8);
    let traces = FleetTraceGenerator::new(FleetTraceConfig {
        shards,
        tasks,
        seed: 42,
        ..FleetTraceConfig::default()
    })
    .generate_sharded();
    clusters
        .into_iter()
        .zip(traces)
        .map(|(cluster, tasks)| FleetShard {
            cluster,
            tasks,
            dynamics: DynamicsPlan::none(),
        })
        .collect()
}

fn run_whole_fleet(shards: Vec<FleetShard>) -> u64 {
    let cfg = SimConfig {
        max_time_secs: Some(30 * 24 * HOUR),
        ..SimConfig::default()
    };
    let fleet = run_fleet(shards, &|_| Box::new(YarnCs::new()), &cfg, 0);
    fleet.fleet_hash
}

fn bench_fleet(suite: &mut Suite) {
    // smoke size runs in every mode so CI always has a gated datapoint
    suite.bench("fleet_2k_nodes_20k_tasks_week", || {
        run_whole_fleet(fleet_inputs(4, 500, 20_000))
    });
    if !suite.is_short() {
        // the acceptance headline: 100k nodes, 1M tasks, one-week window
        suite.bench("fleet_100k_nodes_1m_tasks_week", || {
            run_whole_fleet(fleet_inputs(8, 12_500, 1_000_000))
        });
    }
}

/// A cluster with ~70 % of nodes carrying a 4-GPU HP plus a 2-GPU spot
/// task — the `sched_latency` fixture scaled to arbitrary node counts.
fn loaded_cluster(nodes: u32) -> Cluster {
    let mut cluster = Cluster::homogeneous(nodes, GpuModel::A100, 8);
    let mut id = 0u64;
    for n in 0..nodes {
        if n % 10 < 7 {
            id += 1;
            let hp = TaskSpec::builder(id)
                .priority(Priority::Hp)
                .gpus_per_pod(GpuDemand::whole(4))
                .duration_secs(100_000)
                .build()
                .expect("valid");
            cluster
                .start_task(hp, &[NodeId::new(n)], SimTime::ZERO, 0)
                .expect("fits");
            id += 1;
            let spot = TaskSpec::builder(id)
                .priority(Priority::Spot)
                .gpus_per_pod(GpuDemand::whole(2))
                .duration_secs(100_000)
                .build()
                .expect("valid");
            cluster
                .start_task(spot, &[NodeId::new(n)], SimTime::from_secs(500), 0)
                .expect("fits");
        }
    }
    cluster
}

fn bench_placement(suite: &mut Suite) {
    let pts = gfs::core::Pts::new(GfsParams::default(), PtsVariant::Full);
    let task = TaskSpec::builder(999_999)
        .priority(Priority::Hp)
        .gpus_per_pod(GpuDemand::whole(2))
        .duration_secs(3_600)
        .build()
        .expect("valid");
    let mut sizes: Vec<(u32, &str)> = vec![
        (1_000, "placement_decision_1k_nodes"),
        (10_000, "placement_decision_10k_nodes"),
    ];
    if !suite.is_short() {
        sizes.push((100_000, "placement_decision_100k_nodes"));
    }
    for (nodes, name) in sizes {
        let cluster = loaded_cluster(nodes);
        // prime the score index so the loop measures the steady state,
        // not the one-time build
        let _ = pts.schedule_nonpreemptive(&task, &cluster, SimTime::from_hours(1));
        suite.bench(name, || {
            pts.schedule_nonpreemptive(&task, &cluster, SimTime::from_hours(1))
        });
    }
}

/// A mid-run `ClusterService` over `nodes` nodes with live tasks, pending
/// queue and journal state — what a real checkpoint captures.
fn live_service(nodes: u32, tasks: u64) -> (ClusterService, YarnCs) {
    let trace = FleetTraceGenerator::new(FleetTraceConfig {
        shards: 1,
        tasks,
        seed: 7,
        ..FleetTraceConfig::default()
    })
    .generate_sharded()
    .remove(0);
    let mut svc = ClusterService::new(
        Cluster::homogeneous(nodes, GpuModel::A100, 8),
        SimConfig::default(),
    );
    let mut sched = YarnCs::new();
    svc.admit_tasks(trace);
    for _ in 0..200 {
        if !svc.step(&mut sched) {
            break;
        }
    }
    (svc, sched)
}

fn bench_snapshot(suite: &mut Suite) {
    let mut sizes: Vec<(u32, u64, &str)> = vec![(1_000, 2_000, "snapshot_restore_1k_nodes")];
    if !suite.is_short() {
        sizes.push((10_000, 20_000, "snapshot_restore_10k_nodes"));
    }
    for (nodes, tasks, name) in sizes {
        let (svc, sched) = live_service(nodes, tasks);
        suite.bench(name, || {
            let json = svc.snapshot_json(&sched);
            let snap = ServiceSnapshot::from_json(&json).expect("round-trip");
            let mut sched2 = YarnCs::new();
            ClusterService::restore(snap, &mut sched2).expect("restores")
        });
    }
}

fn main() {
    let mut suite = Suite::new("fleet_scale");
    bench_fleet(&mut suite);
    bench_placement(&mut suite);
    bench_snapshot(&mut suite);
    suite.finish();
}
