//! Table 3: overview of the two task classes — request counts, GPU size
//! distribution and gang share of the generated evaluation workload.

use gfs::prelude::*;

fn main() {
    println!("Table 3 reproduction — generated task mix vs paper percentages");
    let tasks = WorkloadGenerator::new(WorkloadConfig {
        hp_tasks: 138_403 / 4,
        spot_tasks: 26_635 / 4,
        seed: 5,
        ..WorkloadConfig::default()
    })
    .generate();

    for (label, priority, paper) in [
        ("HP", Priority::Hp, [0.11, 55.11, 13.37, 7.53, 23.69, 8.66]),
        (
            "Spot",
            Priority::Spot,
            [0.82, 67.35, 5.67, 12.00, 14.04, 27.26],
        ),
    ] {
        let class: Vec<_> = tasks.iter().filter(|t| t.priority == priority).collect();
        let n = class.len() as f64;
        let share = |pred: &dyn Fn(&TaskSpec) -> bool| {
            class.iter().filter(|t| pred(t)).count() as f64 / n * 100.0
        };
        let frac = share(&|t| t.gpus_per_pod.is_fractional());
        let one = share(&|t| t.gpus_per_pod == GpuDemand::whole(1));
        let two = share(&|t| t.gpus_per_pod == GpuDemand::whole(2));
        let four = share(&|t| t.gpus_per_pod == GpuDemand::whole(4));
        let eight = share(&|t| t.gpus_per_pod == GpuDemand::whole(8));
        let gang = share(&|t| t.is_gang());
        println!("\n{label} ({} tasks):", class.len());
        println!(
            "{:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "<1", "1", "2", "4", "8", "gang"
        );
        println!(
            "{:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}%   (measured)",
            frac, one, two, four, eight, gang
        );
        println!(
            "{:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}%   (paper)",
            paper[0], paper[1], paper[2], paper[3], paper[4], paper[5]
        );
    }
}
