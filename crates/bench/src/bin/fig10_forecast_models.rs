//! Fig. 10 + Table 7: forecast-model comparison — OrgLinear vs Transformer,
//! Informer, Autoformer, FEDformer, DLinear and DeepAR on the
//! organization-demand dataset; point metrics, quantile metrics and
//! training time.
//!
//! Set `GFS_BENCH_SCALE=full` for more epochs/data.

use gfs::forecast::ModelScores;
use gfs::prelude::*;
use gfs::scenario::org_template;
use gfs_bench::Scale;
use gfs_forecast::{
    evaluate, AutoformerForecaster, DeepAr, FedformerForecaster, InformerForecaster,
    TransformerForecaster,
};

fn main() {
    let scale = Scale::from_env();
    let (weeks, epochs, seq_epochs) = match scale {
        Scale::Quick => (6, 20, 4),
        Scale::Full => (10, 40, 10),
    };
    let data = org_template(weeks, 168, 24, 33);
    println!(
        "Fig. 10 / Table 7 reproduction — {} orgs × {} weeks, L=168, H=24",
        data.num_orgs(),
        weeks
    );

    let cfg = TrainConfig {
        epochs,
        stride: 7,
        ..TrainConfig::default()
    };
    let seq_cfg = TrainConfig {
        epochs: seq_epochs,
        ..cfg.clone()
    };

    let mut rows: Vec<ModelScores> = vec![evaluate(&mut OrgLinear::new(&data, 1), &data, &cfg)];
    rows.push(evaluate(
        &mut TransformerForecaster::new(&data, 1),
        &data,
        &seq_cfg,
    ));
    rows.push(evaluate(
        &mut InformerForecaster::new(&data, 1),
        &data,
        &seq_cfg,
    ));
    rows.push(evaluate(
        &mut AutoformerForecaster::new(&data, 1),
        &data,
        &seq_cfg,
    ));
    rows.push(evaluate(
        &mut FedformerForecaster::new(&data, 1),
        &data,
        &seq_cfg,
    ));
    rows.push(evaluate(&mut DLinear::new(&data, 1), &data, &cfg));
    rows.push(evaluate(&mut DeepAr::new(&data, 1), &data, &seq_cfg));

    println!(
        "\n{:<12} {:>8} {:>10} {:>8} {:>8} {:>10} {:>10} {:>9}",
        "model", "MAE", "MSE", "RMSE", "MAPE", "0.9-MAQE", "0.95-MAQE", "train(s)"
    );
    for r in &rows {
        println!(
            "{:<12} {:>8.2} {:>10.2} {:>8.2} {:>8.3} {:>10} {:>10} {:>9.1}",
            r.name,
            r.mae,
            r.mse,
            r.rmse,
            r.mape,
            r.maqe90.map_or("-".into(), |v| format!("{v:.4}")),
            r.maqe95.map_or("-".into(), |v| format!("{v:.4}")),
            r.train_time_secs
        );
    }

    let org = &rows[0];
    let best_baseline = rows[1..]
        .iter()
        .min_by(|a, b| a.mae.partial_cmp(&b.mae).expect("finite"))
        .expect("baselines exist");
    println!(
        "\nOrgLinear vs best baseline ({}): MAE {:+.1}%, MSE {:+.1}%, RMSE {:+.1}%, MAPE {:+.1}%",
        best_baseline.name,
        (org.mae / best_baseline.mae - 1.0) * 100.0,
        (org.mse / best_baseline.mse - 1.0) * 100.0,
        (org.rmse / best_baseline.rmse - 1.0) * 100.0,
        (org.mape / best_baseline.mape - 1.0) * 100.0,
    );
    let deepar = rows.last().expect("DeepAR is last");
    println!(
        "Table 7 — training time: OrgLinear {:.1}s vs DeepAR {:.1}s ({:.1}% of DeepAR; paper: 1.63%)",
        org.train_time_secs,
        deepar.train_time_secs,
        org.train_time_secs / deepar.train_time_secs.max(1e-9) * 100.0
    );
}
