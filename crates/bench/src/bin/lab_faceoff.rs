//! Table 5 scheduler face-off as a `gfs::lab` grid declaration: the four
//! baselines plus GFS on the medium-spot workload, replicated over seeds
//! and aggregated with across-seed statistics.
//!
//! ```text
//! cargo run --release -p gfs-bench --bin lab_faceoff
//! GFS_LAB_SMOKE=1  …         # tiny grid for CI (< 10 s)
//! GFS_LAB_THREADS=8 …        # fixed worker count (default: one per core)
//! GFS_LAB_COMPARE=1 …        # also run serially; verify identical output
//! ```

use std::time::Instant;

use gfs::lab::{ClusterShape, Grid, SchedulerSpec, Threads, WorkloadAxis};
use gfs::prelude::*;
use gfs::scenario;
use gfs_bench::env_flag;

fn main() {
    let smoke = env_flag("GFS_LAB_SMOKE");
    let threads = match std::env::var("GFS_LAB_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(n) => Threads::Fixed(n),
        None => Threads::Auto,
    };
    let (nodes, horizon_h) = if smoke { (8, 12) } else { (32, 72) };

    // The whole experiment, declaratively: schedulers × workload × seeds.
    let base = WorkloadConfig {
        horizon_secs: horizon_h * HOUR,
        spot_scale: 2.0, // medium spot workload (§4.1)
        ..WorkloadConfig::default()
    };
    let medium = if smoke {
        // fixed tiny counts: CI wants seconds, not load fidelity
        WorkloadAxis::generated(
            "medium-spot",
            WorkloadConfig {
                hp_tasks: 48,
                spot_tasks: 16,
                ..base
            },
        )
    } else {
        // 60 % HP / 15 % spot at scale 1 (×2 for the medium spot workload)
        WorkloadAxis::generated_sized("medium-spot", base, 0.60, 0.15)
    };
    let mut grid = Grid::new()
        .schedulers(SchedulerSpec::baselines())
        .shape(ClusterShape::a100(nodes, 8))
        .workload(medium)
        .seeds([9, 10, 11])
        .sim(SimConfig {
            max_time_secs: Some((horizon_h + 96) * HOUR),
            ..SimConfig::default()
        });
    if !smoke {
        grid = grid.scheduler(scenario::gfs_spec(3, 0.6));
    }

    let start = Instant::now();
    let result = grid.run(threads);
    let wall = start.elapsed();
    println!(
        "{}",
        result.report.render_table(&[
            "hp_p99_jct_s",
            "hp_mean_jct_s",
            "hp_mean_jqt_s",
            "spot_mean_jct_s",
            "spot_mean_jqt_s",
            "eviction_rate",
        ])
    );
    let runs = result.report.cells.len() * 3;
    println!(
        "{runs} runs in {:.2}s on {} threads",
        wall.as_secs_f64(),
        threads.count()
    );

    if env_flag("GFS_LAB_COMPARE") {
        let start = Instant::now();
        let serial = grid.run(Threads::Fixed(1));
        let serial_wall = start.elapsed();
        assert_eq!(
            serial.report.to_json(),
            result.report.to_json(),
            "parallel and serial grids must agree byte-for-byte"
        );
        println!(
            "serial: {:.2}s  -> speedup {:.2}x, outputs identical",
            serial_wall.as_secs_f64(),
            serial_wall.as_secs_f64() / wall.as_secs_f64()
        );
    }
}
