//! Fig. 4: hourly GPU requests of four organizations over one week.

use gfs::trace::{generate_series, paper_orgs};

fn main() {
    println!("Fig. 4 reproduction — weekly GPU demand of four organizations");
    let orgs = paper_orgs();
    let series: Vec<Vec<f64>> = orgs
        .iter()
        .enumerate()
        .map(|(i, a)| generate_series(a, 168, 42 + i as u64 * 7_919))
        .collect();

    println!(
        "{:<16} {:>6} {:>6} {:>6} {:>14}",
        "org", "min", "mean", "max", "weekend drop"
    );
    for (i, a) in orgs.iter().enumerate() {
        let s = &series[i];
        let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let wk: f64 = (0..120).map(|h| s[h]).sum::<f64>() / 120.0;
        let we: f64 = (120..168).map(|h| s[h]).sum::<f64>() / 48.0;
        println!(
            "{:<16} {:>6.1} {:>6.1} {:>6.1} {:>13.1}%",
            a.name,
            min,
            mean,
            max,
            (1.0 - we / wk) * 100.0
        );
    }
    println!("\nhourly series (first 48h), CSV for plotting:");
    println!(
        "hour,{}",
        orgs.iter()
            .map(|o| o.name.replace(' ', "_"))
            .collect::<Vec<_>>()
            .join(",")
    );
    for h in 0..48 {
        let row: Vec<String> = series.iter().map(|s| format!("{:.1}", s[h])).collect();
        println!("{h},{}", row.join(","));
    }
    println!("\n(paper: Org A 74–86 GPUs with sharp peaks; Org B 67–90; Org C −35.7% weekends)");
}
