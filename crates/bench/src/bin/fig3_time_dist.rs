//! Fig. 3: running times and queuing times of tasks by GPU size — runtime
//! percentiles from the generator, queuing percentiles from a first-fit
//! simulation on a loaded pool.

use gfs::prelude::*;
use gfs::trace::stats::percentile;
use std::collections::BTreeMap;

fn main() {
    println!("Fig. 3 reproduction");
    let cfg = WorkloadConfig {
        hp_tasks: 30_000,
        spot_tasks: 6_000,
        seed: 4,
        ..WorkloadConfig::default()
    };
    let tasks = WorkloadGenerator::new(cfg).generate();

    // (a) running time percentiles
    let durs: Vec<f64> = tasks
        .iter()
        .map(|t| t.duration_secs as f64 / HOUR as f64)
        .collect();
    println!(
        "\nrunning time (hours): P50 {:.1}  P90 {:.1}  P99 {:.1}  (paper: P90 6.4h, P99 ~19.8d)",
        percentile(&durs, 50.0),
        percentile(&durs, 90.0),
        percentile(&durs, 99.0)
    );

    // (b) queuing time by GPU-size bucket, from a loaded 64-node pool
    let capacity = 64.0 * 8.0;
    let sim_cfg = WorkloadConfig {
        horizon_secs: 3 * 24 * HOUR,
        seed: 4,
        ..WorkloadConfig::default()
    }
    .sized_for(capacity, 0.92, 0.10);
    let sim_tasks = WorkloadGenerator::new(sim_cfg).generate();
    let cluster = Cluster::homogeneous(64, GpuModel::A100, 8);
    let report = run(
        cluster,
        &mut YarnCs::new(),
        sim_tasks,
        &SimConfig {
            max_time_secs: Some(8 * 24 * HOUR),
            ..SimConfig::default()
        },
    );
    let mut buckets: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for t in &report.tasks {
        let g = t.total_gpus.round() as u64;
        let key = [1u64, 2, 4, 8, 16, 32, 64]
            .iter()
            .cloned()
            .find(|&k| g <= k)
            .unwrap_or(64);
        buckets
            .entry(key)
            .or_default()
            .push(t.queued_secs as f64 / HOUR as f64);
    }
    println!("\nqueuing time by total GPU request (hours):");
    println!(
        "{:>8} {:>8} {:>9} {:>9} {:>7}",
        "GPUs", "median", "P90", "mean", "tasks"
    );
    let mut mean1 = None;
    let mut mean8 = None;
    for (k, v) in &buckets {
        let med = percentile(v, 50.0);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        if *k == 1 {
            mean1 = Some(mean);
        }
        if *k == 8 {
            mean8 = Some(mean);
        }
        println!(
            "{:>8} {:>8.2} {:>9.2} {:>9.2} {:>7}",
            k,
            med,
            percentile(v, 90.0),
            v.iter().sum::<f64>() / v.len() as f64,
            v.len()
        );
    }
    if let (Some(a), Some(b)) = (mean1, mean8) {
        let (a, b) = (a.max(0.01), b.max(0.01));
        println!(
            "\n8-GPU vs 1-GPU mean wait ratio: {:.1}x (paper reports 2.7x on medians)",
            b / a
        );
    }
}
