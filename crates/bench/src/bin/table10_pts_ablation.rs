//! Table 10: PTS ablation — full GFS vs GFS-s (packing-only scoring),
//! GFS-p (random preemption) and GFS-sp (both degraded).

use gfs::prelude::*;
use gfs::scenario::{org_template_scaled, trained_gde, GdeModel};
use gfs_bench::{eval_workload, print_rows, run_row, Scale, PAPER_GPUS_PER_NODE};

fn build(variant: PtsVariant, capacity: f64, seed: u64) -> GfsScheduler {
    let template = org_template_scaled(3, 168, 4, seed, Some(0.60 * capacity));
    let cfg = TrainConfig {
        epochs: 15,
        stride: 7,
        seed,
        ..TrainConfig::default()
    };
    let gde = trained_gde(&template, GdeModel::OrgLinear, &cfg, seed);
    GfsScheduler::new(GfsParams::default(), variant, Some(gde))
}

fn main() {
    let scale = Scale::from_env();
    println!("Table 10 reproduction — PTS ablation, medium spot workload");
    let tasks = eval_workload(scale, 2.0, 9);
    let capacity = f64::from(scale.nodes() * PAPER_GPUS_PER_NODE);
    let mut rows = Vec::new();
    for variant in [
        PtsVariant::Degraded,
        PtsVariant::SimpleScoring,
        PtsVariant::RandomPreemption,
        PtsVariant::Full,
    ] {
        let mut s = build(variant, capacity, 9);
        let name = match variant {
            PtsVariant::Degraded => "GFS-sp",
            PtsVariant::SimpleScoring => "GFS-s",
            PtsVariant::RandomPreemption => "GFS-p",
            PtsVariant::Full => "GFS",
        };
        rows.push(run_row(name, &mut s, scale, &tasks));
    }
    print_rows("PTS ablation", &rows);
    println!("\n(paper: restoring each module cuts spot JCT ~11%; both together 23.5%)");
}
