//! Fig. 5: hourly spot eviction rates over four consecutive weeks under a
//! static-quota first-fit regime (the pre-GFS production behaviour).

use gfs::prelude::*;

fn main() {
    println!("Fig. 5 reproduction — weekly eviction-rate timelines, static quota + first-fit");
    let capacity = 64.0 * 8.0;
    for week in 0..4u64 {
        let cfg = WorkloadConfig {
            horizon_secs: 7 * 24 * HOUR,
            seed: 100 + week,
            spot_scale: 1.5 + week as f64 * 0.4, // weekly intensity drift
            ..WorkloadConfig::default()
        }
        .sized_for(capacity, 0.72, 0.18);
        let tasks = WorkloadGenerator::new(cfg).generate();
        let cluster = Cluster::homogeneous(64, GpuModel::A100, 8);
        let report = run(
            cluster,
            &mut YarnCs::new(),
            tasks,
            &SimConfig {
                max_time_secs: Some(9 * 24 * HOUR),
                ..SimConfig::default()
            },
        );
        let hourly = report.hourly_eviction_ratio();
        let week_hours = &hourly[..hourly.len().min(168)];
        let active: Vec<f64> = week_hours.to_vec();
        let max = active.iter().cloned().fold(0.0, f64::max);
        let min = active
            .iter()
            .cloned()
            .filter(|&v| v > 0.0)
            .fold(f64::INFINITY, f64::min);
        let mut sorted: Vec<f64> = active.iter().cloned().filter(|&v| v > 0.0).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mid = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
        // peak-hour vs off-peak contrast (10:00–12:00 vs 02:00–04:00)
        let peak: f64 = (0..7)
            .flat_map(|d| (10..12).map(move |h| d * 24 + h))
            .map(|h| week_hours.get(h).copied().unwrap_or(0.0))
            .sum::<f64>()
            / 14.0;
        let off: f64 = (0..7)
            .flat_map(|d| (2..4).map(move |h| d * 24 + h))
            .map(|h| week_hours.get(h).copied().unwrap_or(0.0))
            .sum::<f64>()
            / 14.0;
        println!(
            "week {}: max {:>5.1}%  mid {:>5.1}%  min {:>4.1}%   10-12h mean {:>5.1}% vs 2-4h mean {:>4.1}%",
            week + 1,
            max * 100.0,
            mid * 100.0,
            if min.is_finite() { min * 100.0 } else { 0.0 },
            peak * 100.0,
            off * 100.0
        );
    }
    println!("\n(paper: weekly maxima 80–94%, minima 2–8%, pronounced 10:00–12:00 peaks)");
}
