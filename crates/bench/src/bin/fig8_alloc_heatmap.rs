//! Fig. 8: weekly node-level GPU allocation heat-maps across three A100
//! clusters with distinct load characters.

use gfs::prelude::*;

fn heat_row(samples: &[f64]) -> String {
    // 0..8 allocated cards → shade characters
    const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];
    samples
        .iter()
        .map(|&v| SHADES[((v / 8.0 * 4.0).round() as usize).min(4)])
        .collect()
}

fn main() {
    println!("Fig. 8 reproduction — node×hour allocation heat-maps (one char per 4h)");
    // three cluster archetypes: (name, nodes, hp_load, diurnal share)
    let clusters = [
        ("Cluster A", 8u32, 0.80),
        ("Cluster B", 24, 0.62),
        ("Cluster C", 14, 0.78),
    ];
    for (name, nodes, load) in clusters {
        let capacity = f64::from(nodes * 8);
        let cfg = WorkloadConfig {
            horizon_secs: 7 * 24 * HOUR,
            seed: 11 + u64::from(nodes),
            ..WorkloadConfig::default()
        }
        .sized_for(capacity, load, 0.08);
        let tasks = WorkloadGenerator::new(cfg).generate();
        let cluster = Cluster::homogeneous(nodes, GpuModel::A100, 8);
        let report = run(
            cluster,
            &mut YarnCs::new(),
            tasks,
            &SimConfig {
                record_node_alloc: true,
                alloc_sample_interval_secs: 4 * HOUR,
                max_time_secs: Some(7 * 24 * HOUR),
                ..SimConfig::default()
            },
        );
        let mean_alloc = report.mean_allocation_rate() * 100.0;
        println!(
            "\n{name} ({} nodes, target load {:.0}%, measured alloc {mean_alloc:.1}%):",
            nodes,
            load * 100.0
        );
        for (i, series) in report.node_alloc_samples.iter().enumerate().take(12) {
            println!("  node {:>2} |{}|", i, heat_row(series));
        }
        if report.node_alloc_samples.len() > 12 {
            println!("  … ({} more nodes)", report.node_alloc_samples.len() - 12);
        }
        // persistently idle nodes (paper: present in clusters A and C)
        let idle_nodes = report
            .node_alloc_samples
            .iter()
            .filter(|s| s.iter().all(|&v| v < 1.0))
            .count();
        println!("  persistently idle nodes: {idle_nodes}");
    }
    println!(
        "\n(paper: Cluster B averages 68.5% with strong diurnal idleness; A and C run hotter)"
    );
}
