//! Capacity-market sweep as a `gfs::lab` grid: the market axis runs from
//! market-free through passive billing of a PR-4-style time-driven
//! autoscale schedule to the closed-loop forecast controller, under one
//! shared spot-price shock — the "schedulers compared under identical
//! price shocks" scenario of ROADMAP item 3 end to end.
//!
//! ```text
//! cargo run --release -p gfs-bench --bin lab_market
//! GFS_LAB_SMOKE=1  …         # tiny grid for CI (< 10 s)
//! GFS_LAB_THREADS=8 …        # fixed worker count (default: one per core)
//! GFS_LAB_COMPARE=1 …        # also run serially; verify identical output
//! GFS_LAB_JSON=1 …           # dump the aggregated GridReport JSON
//! ```

use std::time::Instant;

use gfs::lab::{
    ClusterShape, DynamicsAxis, Grid, MarketAxis, SchedulerSpec, Threads, WorkloadAxis,
};
use gfs::market::{spike, ForecastParams, MarketSpec};
use gfs::prelude::*;
use gfs_bench::env_flag;

fn main() {
    let smoke = env_flag("GFS_LAB_SMOKE");
    let threads = match std::env::var("GFS_LAB_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(n) => Threads::Fixed(n),
        None => Threads::Auto,
    };
    let (nodes, hp, spot, seeds): (u32, usize, usize, Vec<u64>) = if smoke {
        (2, 14, 4, vec![1, 2])
    } else {
        (8, 60, 20, vec![1, 2, 3])
    };
    let horizon_h = if smoke { 4 } else { 5 };
    let sim_horizon = (horizon_h + 60) * HOUR;

    // one shared price story: A100 spot triples for six hours once the
    // arrival wave is over — the window where *holding* bought capacity
    // is what costs money
    let shock = spike(GpuModel::A100, 6, 12, 3.0);
    // two nodes per boundary front-loads the backlog faster than the
    // autoscale schedule's one-per-hour trickle without overshooting
    // the demand estimate and then holding the excess through the spike
    let params = ForecastParams {
        max_nodes_per_step: 2,
        ..ForecastParams::default()
    };

    let grid = Grid::new()
        .schedulers([SchedulerSpec::yarn_cs(), SchedulerSpec::fgd()])
        .shape(ClusterShape::a100(nodes, 8))
        .workload(WorkloadAxis::generated(
            "backlog",
            WorkloadConfig {
                hp_tasks: hp,
                spot_tasks: spot,
                spot_scale: 2.0,
                horizon_secs: horizon_h * HOUR,
                ..WorkloadConfig::default()
            },
        ))
        .dynamics([
            DynamicsAxis::none(),
            // the PR-4 answer: buy on a clock, price-blind
            DynamicsAxis::autoscale("autoscale", SimTime::from_hours(1), HOUR, 4, 1),
        ])
        .markets([
            MarketAxis::none(),
            // meter-only: bills whatever the autoscale timeline adds
            MarketAxis::new("bill", MarketSpec::fixed_price().with_shocks(shock.clone())),
            // the closed loop: forecast-driven buys, price-aware
            MarketAxis::new(
                "closedloop",
                MarketSpec::forecast(params).with_shocks(shock),
            ),
        ])
        .seeds(seeds)
        .sim(SimConfig {
            max_time_secs: Some(sim_horizon),
            ..SimConfig::default()
        });

    let start = Instant::now();
    let result = grid.run(threads);
    let wall = start.elapsed();
    println!(
        "{}",
        result.report.render_table(&[
            "hp_mean_jct_s",
            "market_spend_usd",
            "gpu_hours_bought",
            "cost_per_completed_usd",
            "stranded_gpu_hours",
        ])
    );
    let runs = result
        .report
        .cells
        .iter()
        .map(|c| c.seeds.len())
        .sum::<usize>();
    println!(
        "{runs} runs in {:.2}s on {} threads",
        wall.as_secs_f64(),
        threads.count()
    );

    if env_flag("GFS_LAB_JSON") {
        println!("{}", result.report.to_json());
    }
    if env_flag("GFS_LAB_COMPARE") {
        let start = Instant::now();
        let serial = grid.run(Threads::Fixed(1));
        let serial_wall = start.elapsed();
        assert_eq!(
            serial.report.to_json(),
            result.report.to_json(),
            "parallel and serial market grids must agree byte-for-byte"
        );
        println!(
            "serial: {:.2}s  -> speedup {:.2}x, outputs identical",
            serial_wall.as_secs_f64(),
            serial_wall.as_secs_f64() / wall.as_secs_f64()
        );
    }
}
