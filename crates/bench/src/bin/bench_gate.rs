//! CI bench-regression gate: diffs the freshly written `BENCH_*.json`
//! (the short-mode smoke run that precedes this step) against the
//! committed `BENCH_*.baseline.json` references, prints a comparison
//! table into the job log, and hard-fails only on genuine regressions.
//!
//! The tolerance is deliberately loose and *spread-aware*: CI runners are
//! noisy shared hosts, and the harness records each entry's run-to-run
//! spread (`spread_pct`, `(max − min)/median` across repetitions). An
//! entry fails only when
//!
//! ```text
//! current.mean_ns > baseline.mean_ns × 2.5 × (1 + max(spread)/100)
//! ```
//!
//! i.e. a >2.5× slowdown beyond what the measured noise of either side
//! can explain. Entries with no baseline (new benchmarks) and baselines
//! with no current entry (retired benchmarks) are reported but never
//! fail the gate.
//!
//! A second, independent check gates the *noise itself*: an entry also
//! fails when its current `spread_pct` exceeds 2× the baseline's
//! recorded spread. A wide spread inflates the slowdown tolerance above,
//! so without this check a regression could hide inside a measurement
//! that suddenly became noisy — the spread gate forces that situation to
//! surface as its own failure instead. Baselines that predate the spread
//! schema (recorded spread 0) skip the check; re-record a full-mode
//! baseline to arm it.
//!
//! ```text
//! cargo run --release -p gfs-bench --bin bench_gate       # after a bench run
//! GFS_BENCH_DIR=<dir> …                                   # where the JSONs live
//! GFS_GATE_FACTOR=3.0 …                                   # override the 2.5× bar
//! GFS_GATE_SPREAD_FACTOR=4.0 …                            # override the 2× spread bar
//! ```

use serde::Deserialize;

/// One `BENCH_<suite>.json` / `BENCH_<suite>.baseline.json` file. Older
/// baseline files predate the `min_ns`/`spread_pct` schema; missing
/// fields default to zero, which makes the tolerance fall back to the
/// current run's spread alone.
#[derive(Debug, Deserialize)]
struct BenchFile {
    suite: String,
    #[serde(default)]
    tag: String,
    #[serde(default)]
    short: bool,
    results: Vec<Entry>,
}

#[derive(Debug, Deserialize)]
struct Entry {
    name: String,
    mean_ns: f64,
    #[serde(default)]
    spread_pct: f64,
}

const SUITES: [&str; 4] = [
    "sched_latency",
    "sim_throughput",
    "forecast_train",
    "fleet_scale",
];
const DEFAULT_FACTOR: f64 = 2.5;
/// A current spread beyond this multiple of the baseline's spread fails
/// the gate (the measurement got too noisy to trust, which would widen
/// the slowdown tolerance above into meaninglessness).
const DEFAULT_SPREAD_FACTOR: f64 = 2.0;
/// Spreads below this many percent never fail the spread gate: the
/// short-mode smoke run (3 reps × 15 ms) routinely measures 10–20 %
/// spread on a healthy entry whose full-mode baseline recorded 1–4 %,
/// so a 2× ratio alone would flake. Above this floor a wide spread
/// starts buying real slack in the slowdown tolerance, which is exactly
/// what the gate exists to deny.
const SPREAD_FLOOR_PCT: f64 = 25.0;

fn load(path: &str) -> Option<BenchFile> {
    let text = std::fs::read_to_string(path).ok()?;
    match serde_json::from_str(&text) {
        Ok(f) => Some(f),
        Err(e) => {
            eprintln!("bench_gate: cannot parse {path}: {e}");
            None
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn main() {
    let dir = std::env::var("GFS_BENCH_DIR")
        .unwrap_or_else(|_| format!("{}/../..", env!("CARGO_MANIFEST_DIR")));
    let factor: f64 = std::env::var("GFS_GATE_FACTOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_FACTOR);
    let spread_factor: f64 = std::env::var("GFS_GATE_SPREAD_FACTOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SPREAD_FACTOR);

    let mut failures = 0u32;
    let mut compared = 0u32;
    for suite in SUITES {
        let Some(current) = load(&format!("{dir}/BENCH_{suite}.json")) else {
            eprintln!(
                "bench_gate: BENCH_{suite}.json missing — run the bench smoke first \
                 (GFS_BENCH_SHORT=1 cargo bench -p gfs-bench)"
            );
            failures += 1;
            continue;
        };
        let Some(baseline) = load(&format!("{dir}/BENCH_{suite}.baseline.json")) else {
            eprintln!("bench_gate: BENCH_{suite}.baseline.json missing — nothing to gate against");
            failures += 1;
            continue;
        };
        println!(
            "## {} (current tag `{}`{} vs baseline tag `{}`)",
            current.suite,
            current.tag,
            if current.short { ", short mode" } else { "" },
            baseline.tag,
        );
        println!(
            "{:<36} {:>12} {:>12} {:>8} {:>8} {:>9}  verdict",
            "benchmark", "baseline", "current", "ratio", "spread", "allowed"
        );
        for cur in &current.results {
            let Some(base) = baseline.results.iter().find(|b| b.name == cur.name) else {
                println!(
                    "{:<36} {:>12} {:>12} {:>8} {:>8} {:>9}  (new: no baseline)",
                    cur.name,
                    "-",
                    format_ns(cur.mean_ns),
                    "-",
                    format!("±{:.0}%", cur.spread_pct),
                    "-"
                );
                continue;
            };
            compared += 1;
            let ratio = cur.mean_ns / base.mean_ns.max(1e-9);
            let spread = cur.spread_pct.max(base.spread_pct);
            let allowed = factor * (1.0 + spread / 100.0);
            let slow = ratio > allowed;
            // spread gate: armed only for baselines recorded with the
            // spread schema, and only above the jitter floor
            let noisy = base.spread_pct > 0.0
                && cur.spread_pct > SPREAD_FLOOR_PCT
                && cur.spread_pct > spread_factor * base.spread_pct;
            if slow || noisy {
                failures += 1;
            }
            let verdict = match (slow, noisy) {
                (false, false) => "ok".to_string(),
                (true, false) => "REGRESSION".to_string(),
                (false, true) => format!(
                    "NOISY (±{:.0}% > {spread_factor}x baseline ±{:.0}%)",
                    cur.spread_pct, base.spread_pct
                ),
                (true, true) => "REGRESSION+NOISY".to_string(),
            };
            println!(
                "{:<36} {:>12} {:>12} {:>7.2}x {:>8} {:>8.2}x  {}",
                cur.name,
                format_ns(base.mean_ns),
                format_ns(cur.mean_ns),
                ratio,
                format!("±{spread:.0}%"),
                allowed,
                verdict,
            );
        }
        for base in &baseline.results {
            if !current.results.iter().any(|c| c.name == base.name) {
                println!(
                    "{:<36} {:>12} {:>12}  (retired: baseline entry has no current run)",
                    base.name,
                    format_ns(base.mean_ns),
                    "-"
                );
            }
        }
        println!();
    }

    println!(
        "bench_gate: {compared} entries compared, {failures} failure(s) \
         (bars: {factor}x slowdown plus measured spread; {spread_factor}x spread growth)"
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
