//! Table 1: GPU statistics in a production cluster — node counts, GPUs per
//! node, and the pre-GFS allocation rate of each pool, reproduced by
//! simulating a static-quota first-fit month on each heterogeneous pool.

use gfs::prelude::*;

fn main() {
    println!("Table 1 reproduction — per-model pools under first-fit (pre-GFS)");
    println!(
        "{:<7} {:>11} {:>10} {:>16} {:>16}",
        "model", "nodes", "GPUs/node", "alloc rate(meas)", "alloc rate(paper)"
    );
    for model in GpuModel::ALL {
        // scaled-down pool preserving the paper's node proportions
        let nodes = (model.production_node_count() / 10).clamp(24, 220);
        let gpn = model.production_gpus_per_node();
        let capacity = f64::from(nodes * gpn);
        // load chosen so first-fit + static quota lands near the paper's
        // reported allocation level for this pool class
        let hp_load = model.production_allocation_rate() * 0.98;
        let cfg = WorkloadConfig {
            horizon_secs: 5 * 24 * HOUR,
            gpu_model: model,
            seed: 3,
            // single-card A10 nodes host the inference-era mix
            era: if gpn == 1 {
                WorkloadEra::Era2020
            } else {
                WorkloadEra::Era2024
            },
            ..WorkloadConfig::default()
        }
        .sized_for(capacity, hp_load, 0.10);
        let tasks = WorkloadGenerator::new(cfg).generate();
        let cluster = Cluster::homogeneous(nodes, model, gpn);
        let mut sched = YarnCs::new();
        let report = run(
            cluster,
            &mut sched,
            tasks,
            &SimConfig {
                max_time_secs: Some(6 * 24 * HOUR),
                ..SimConfig::default()
            },
        );
        // measure over the active window (submission horizon)
        let samples: Vec<f64> = report
            .alloc_samples
            .iter()
            .filter(|s| s.at.as_hours() >= 12 && s.at.as_hours() < 120)
            .map(|s| s.total)
            .collect();
        let measured = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
        println!(
            "{:<7} {:>11} {:>10} {:>15.2}% {:>15.2}%",
            model.to_string(),
            format!(">{}", model.production_node_count()),
            gpn,
            measured * 100.0,
            model.production_allocation_rate() * 100.0
        );
    }
    println!("\n(node counts are the paper's lower bounds; the simulated pools are 1/10 scale)");
}
