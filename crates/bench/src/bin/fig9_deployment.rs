//! Fig. 9 + §4.3: production deployment comparison — spot eviction rate and
//! GPU allocation rate per GPU model, before (static quota + first-fit) and
//! after (GFS) deployment, plus the monthly-benefit estimate.

use gfs::market::{on_demand_cost_usd, HOURS_PER_MONTH};
use gfs::prelude::*;
use gfs::scenario;

/// The pre-GFS production regime of Fig. 1: first-fit with a *static* spot
/// quota (a fixed fraction of capacity), which strands idle GPUs whenever
/// HP demand dips and still evicts heavily whenever it surges.
struct StaticQuota {
    inner: YarnCs,
    quota_gpus: f64,
}

impl Scheduler for StaticQuota {
    fn name(&self) -> &str {
        "static-quota"
    }

    fn schedule(&mut self, task: &TaskSpec, cluster: &Cluster, now: SimTime) -> Option<Decision> {
        if task.priority.is_spot()
            && cluster.spot_allocated(None) + task.total_gpus() > self.quota_gpus
        {
            return None;
        }
        self.inner.schedule(task, cluster, now)
    }
}

struct PoolResult {
    eviction: f64,
    alloc: f64,
}

fn run_pool(model: GpuModel, nodes: u32, gfs_on: bool, seed: u64) -> PoolResult {
    let gpn = model.production_gpus_per_node();
    let capacity = f64::from(nodes * gpn);
    let hp_load = model.production_allocation_rate() * 0.80;
    let cfg = WorkloadConfig {
        horizon_secs: 4 * 24 * HOUR,
        gpu_model: model,
        seed,
        spot_scale: 2.0,
        // the A10 pool hosts one card per node: it serves the 2020-era
        // inference mix (sub-card and single-card requests)
        era: if gpn == 1 {
            WorkloadEra::Era2020
        } else {
            WorkloadEra::Era2024
        },
        ..WorkloadConfig::default()
    }
    .sized_for(capacity, hp_load, 0.20);
    let tasks = WorkloadGenerator::new(cfg).generate();
    let cluster = Cluster::homogeneous(nodes, model, gpn);
    let sim_cfg = SimConfig {
        max_time_secs: Some(6 * 24 * HOUR),
        ..SimConfig::default()
    };
    let report = if gfs_on {
        let params = GfsParams::builder()
            .guarantee_rate(0.95)
            .build()
            .expect("valid params");
        let mut s = scenario::gfs_full(params, 3, seed, hp_load * capacity);
        run(cluster, &mut s, tasks, &sim_cfg)
    } else {
        // the static quota pins spot to a fixed 25% band regardless of
        // actual HP headroom
        let mut s = StaticQuota {
            inner: YarnCs::new(),
            quota_gpus: capacity * 0.25,
        };
        run(cluster, &mut s, tasks, &sim_cfg)
    };
    let active: Vec<f64> = report
        .alloc_samples
        .iter()
        .filter(|s| (12..96).contains(&s.at.as_hours()))
        .map(|s| s.total)
        .collect();
    PoolResult {
        eviction: report.eviction_rate(),
        alloc: active.iter().sum::<f64>() / active.len().max(1) as f64,
    }
}

fn main() {
    println!("Fig. 9 reproduction — pre- vs post-GFS deployment per GPU pool");
    println!(
        "{:<6} | {:>9} {:>9} {:>8} | {:>9} {:>9} {:>8} | {:>12}",
        "model", "evict pre", "post", "Δ", "alloc pre", "post", "Δ", "$ gain/month"
    );
    let mut total_gain = 0.0;
    for (model, nodes) in [
        (GpuModel::A10, 64u32),
        (GpuModel::A100, 40),
        (GpuModel::A800, 24),
    ] {
        let pre = run_pool(model, nodes, false, 21);
        let post = run_pool(model, nodes, true, 21);
        // §4.3 economics: extra allocated GPU-hours × the on-demand rate,
        // extrapolated to the paper's production pool size
        let gpn = model.production_gpus_per_node();
        let prod_gpus = f64::from(model.production_node_count() * gpn);
        let extra_gpu_hours = (post.alloc - pre.alloc).max(0.0) * prod_gpus * HOURS_PER_MONTH;
        // 20% of the raised allocation is billed spot revenue
        let gain = on_demand_cost_usd(model, extra_gpu_hours) * 0.2;
        total_gain += gain;
        println!(
            "{:<6} | {:>8.1}% {:>8.1}% {:>7.0}% | {:>8.1}% {:>8.1}% {:>+7.1}% | {:>12.0}",
            model.to_string(),
            pre.eviction * 100.0,
            post.eviction * 100.0,
            (1.0 - post.eviction / pre.eviction.max(1e-9)) * 100.0,
            pre.alloc * 100.0,
            post.alloc * 100.0,
            (post.alloc - pre.alloc) * 100.0,
            gain
        );
    }
    println!("\nestimated monthly benefit across pools: ${total_gain:.0} (paper: ~$459,715)");
}
