//! Hot-path breakdown for the forecast training loop: times the graph
//! forward, backward, optimizer step and the input decomposition
//! separately so kernel work can be attributed before optimizing.

use std::hint::black_box;
use std::time::Instant;

use gfs::forecast::decompose::decompose;
use gfs::prelude::*;
use gfs::scenario::org_template;

fn time<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    println!(
        "{label:<28} {:>10.1} µs/iter",
        start.elapsed().as_micros() as f64 / f64::from(iters)
    );
}

fn main() {
    let data = org_template(4, 168, 24, 3);
    let mut cfg = TrainConfig::fast();
    cfg.epochs = 1;
    cfg.stride = 24;

    time("orglinear_full_epoch", 50, || {
        let mut m = OrgLinear::new(&data, 1);
        m.fit(&data, &cfg)
    });
    time("orglinear_construct", 200, || OrgLinear::new(&data, 1));
    let window: Vec<f64> = (0..168)
        .map(|i| ((i % 24) as f64).sin() * 10.0 + 50.0)
        .collect();
    time("decompose_168", 2_000, || decompose(&window, 25));

    let mut model = OrgLinear::new(&data, 1);
    model.fit(&data, &cfg);
    let sample = gfs::forecast::dataset::Sample { org: 0, start: 64 };
    time("orglinear_predict", 2_000, || model.predict(&data, sample));

    stages::run();
}

#[allow(dead_code)]
mod stages {
    use super::*;
    use gfs::nn::{loss, Adam, Graph, Linear, Optimizer, Tensor};
    use rand::SeedableRng;

    pub fn run() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let heads: Vec<Linear> = (0..3).map(|_| Linear::new(186, 24, &mut rng)).collect();
        let x = Tensor::uniform(16, 186, 1.0, &mut rng);
        let target = Tensor::uniform(16, 24, 1.0, &mut rng);
        let params: Vec<_> = heads.iter().flat_map(Linear::params).collect();
        let mut opt = Adam::new(params, 0.02);

        time("fwd_3heads_only", 2_000, || {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let ys: Vec<_> = heads.iter().map(|h| h.forward(&mut g, xv)).collect();
            ys
        });
        time("fwd_nll", 2_000, || {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let mu = heads[0].forward(&mut g, xv);
            let yt = heads[1].forward(&mut g, xv);
            let mu = g.add(mu, yt);
            let hv = heads[2].forward(&mut g, xv);
            let sp = g.softplus(hv);
            let sigma = g.add_const(sp, 1e-3);
            let t = g.constant(target.clone());
            loss::gaussian_nll(&mut g, mu, sigma, t)
        });
        time("fwd_bwd_nll", 2_000, || {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let mu = heads[0].forward(&mut g, xv);
            let yt = heads[1].forward(&mut g, xv);
            let mu = g.add(mu, yt);
            let hv = heads[2].forward(&mut g, xv);
            let sp = g.softplus(hv);
            let sigma = g.add_const(sp, 1e-3);
            let t = g.constant(target.clone());
            let l = loss::gaussian_nll(&mut g, mu, sigma, t);
            g.backward(l);
        });
        time("adam_step", 2_000, || opt.step());
    }
}
