//! Crash-injection sweep over the crash-safe `ClusterService`: for every
//! scheduler × dynamics × crash-point × seed cell, kill a live run at the
//! crash point, recover it from the last snapshot plus the write-ahead
//! journal suffix, and assert the recovered run reproduces the
//! uninterrupted golden run's report and final state hashes exactly.
//! Also tears a journal tail and flips a byte to confirm damaged logs
//! are detected rather than silently replayed.
//!
//! ```text
//! cargo run --release -p gfs-bench --bin lab_recovery
//! GFS_LAB_SMOKE=1  …         # tiny grid for CI (< 10 s)
//! GFS_LAB_THREADS=8 …        # fixed worker count (default: one per core)
//! GFS_LAB_COMPARE=1 …        # also run serially; verify identical output
//! GFS_LAB_JSON=1 …           # dump the outcome matrix as JSON lines
//! ```

use std::time::Instant;

use gfs::lab::pool::run_indexed;
use gfs::lab::{
    crash_and_recover, ClusterShape, CrashPlan, CrashPoint, DynamicsAxis, MarketAxis, ParamsAxis,
    PolicyAxis, RecoveryOutcome, Scenario, SchedulerSpec, Threads, WorkloadAxis,
};
use gfs::prelude::*;
use gfs::sim::{parse_journal, ClusterService, JournalError};
use gfs_bench::env_flag;

fn journal_damage_is_detected() {
    // a small live run with the journal on, for realistic record text
    let mut svc = ClusterService::new(
        ClusterShape::a100(2, 8).build(),
        SimConfig {
            max_time_secs: Some(24 * HOUR),
            ..SimConfig::default()
        },
    );
    svc.enable_journal();
    svc.admit_tasks(
        WorkloadAxis::generated(
            "tiny",
            WorkloadConfig {
                hp_tasks: 4,
                spot_tasks: 2,
                horizon_secs: 2 * HOUR,
                ..WorkloadConfig::default()
            },
        )
        .build(&ClusterShape::a100(2, 8), 7),
    );
    svc.start();
    let text = svc.journal().expect("journal enabled").text().to_string();
    let (ok, _) = parse_journal(&text);
    assert!(ok.len() >= 2, "tasks + start journaled");

    // torn tail: the valid prefix parses, the damage is reported
    let torn = &text[..text.len() - 7];
    let (prefix, err) = parse_journal(torn);
    assert!(
        matches!(err, Some(JournalError::Truncated { .. })),
        "torn tail must be flagged: {err:?}"
    );
    assert_eq!(prefix.len(), ok.len() - 1, "only the last record is lost");

    // flipped byte: the record parses but fails its checksum
    let flipped = text.replacen("\"seq\":1", "\"seq\":9", 1);
    let (_, err) = parse_journal(&flipped);
    assert!(
        matches!(
            err,
            Some(JournalError::Corrupt { .. }) | Some(JournalError::DuplicateSeq { .. })
        ),
        "a flipped byte must be flagged: {err:?}"
    );
    println!("journal damage detection: torn tail + flipped byte flagged OK");
}

fn main() {
    let smoke = env_flag("GFS_LAB_SMOKE");
    let threads = match std::env::var("GFS_LAB_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(n) => Threads::Fixed(n),
        None => Threads::Auto,
    };
    let (nodes, hp, spot, horizon_h) = if smoke {
        (4, 16, 6, 4)
    } else {
        (16, 120, 40, 24)
    };
    let sim_horizon = (horizon_h + 48) * HOUR;
    let shape = ClusterShape::a100(nodes, 8);
    let sim = SimConfig {
        max_time_secs: Some(sim_horizon),
        ..SimConfig::default()
    };
    let workload = WorkloadAxis::generated(
        "steady",
        WorkloadConfig {
            hp_tasks: hp,
            spot_tasks: spot,
            spot_scale: 2.0,
            horizon_secs: horizon_h * HOUR,
            ..WorkloadConfig::default()
        },
    );

    let schedulers = [SchedulerSpec::yarn_cs(), SchedulerSpec::fgd()];
    let dynamics = [
        DynamicsAxis::mtbf("mtbf12h", 12.0 * HOUR as f64, HOUR as f64, sim_horizon),
        DynamicsAxis::rolling_drain("wave", SimTime::from_hours(1), HOUR / 2, 1_800, 2 * HOUR),
    ];
    // three recovery regimes: ev kills before the first checkpoint
    // (journal-only recovery); t kills deep in the run (snapshot holds
    // everything, suffix empty); snap! tears a snapshot write between the
    // last good checkpoint and the late admission wave, so recovery
    // replays a genuine journal suffix on top of a snapshot
    let points = [
        CrashPoint::AfterEvents(if smoke { 3 } else { 12 }),
        CrashPoint::AtTime(SimTime::from_hours(2)),
        CrashPoint::MidSnapshot(if smoke { 9 } else { 40 }),
    ];
    let seeds = [1u64, 2];
    let cadence = if smoke { 6 } else { 25 };
    let late_at = cadence + 2;

    // the cell matrix, in a fixed enumeration order
    let mut cells: Vec<(Scenario, CrashPlan)> = Vec::new();
    for sched in &schedulers {
        for dyn_axis in &dynamics {
            for point in points {
                for seed in seeds {
                    cells.push((
                        Scenario {
                            cell: cells.len(),
                            scheduler: sched.clone(),
                            shape: shape.clone(),
                            workload: workload.clone(),
                            dynamics: dyn_axis.clone(),
                            market: MarketAxis::none(),
                            policy: PolicyAxis::naive(),
                            params: ParamsAxis::default_params(),
                            seed,
                        },
                        CrashPlan {
                            point,
                            snapshot_every: cadence,
                            admit_late_after: Some(late_at),
                        },
                    ));
                }
            }
        }
    }

    let run_all = |threads: Threads| -> Vec<RecoveryOutcome> {
        run_indexed(cells.len(), threads, |i| {
            let (scenario, plan) = &cells[i];
            crash_and_recover(scenario, &sim, plan)
        })
    };

    let start = Instant::now();
    let outcomes = run_all(threads);
    let wall = start.elapsed();

    let mut failures = 0;
    for ((scenario, plan), out) in cells.iter().zip(&outcomes) {
        let verdict = if out.matches() { "ok" } else { "MISMATCH" };
        if !out.matches() {
            failures += 1;
        }
        println!(
            "{:8} {:8} {:>8} seed{} | crash @step {:>4} t={:>6}s | {} replay {:>2}+{:<2} | golden {:016x} recovered {:016x} {}",
            scenario.scheduler.name(),
            scenario.dynamics.name(),
            plan.point.label(),
            scenario.seed,
            out.crashed_at_step,
            out.crashed_at.as_secs(),
            if out.used_snapshot { "snap+wal" } else { "wal-only" },
            out.skipped,
            out.replayed,
            out.golden_report,
            out.recovered_report,
            verdict,
        );
    }
    assert_eq!(
        failures, 0,
        "{failures} crash cells failed to recover to the golden hash"
    );
    println!(
        "{} crash cells recovered bit-identically in {:.2}s on {} threads",
        cells.len(),
        wall.as_secs_f64(),
        threads.count()
    );

    journal_damage_is_detected();

    if env_flag("GFS_LAB_JSON") {
        for ((scenario, plan), out) in cells.iter().zip(&outcomes) {
            println!(
                "{{\"scheduler\":\"{}\",\"dynamics\":\"{}\",\"crash\":\"{}\",\"seed\":{},\"golden\":{},\"recovered\":{},\"matches\":{}}}",
                scenario.scheduler.name(),
                scenario.dynamics.name(),
                plan.point.label(),
                scenario.seed,
                out.golden_report,
                out.recovered_report,
                out.matches(),
            );
        }
    }
    if env_flag("GFS_LAB_COMPARE") {
        let start = Instant::now();
        let serial = run_all(Threads::Fixed(1));
        let serial_wall = start.elapsed();
        assert_eq!(
            serial, outcomes,
            "parallel and serial recovery sweeps must agree exactly"
        );
        println!(
            "serial: {:.2}s  -> speedup {:.2}x, outputs identical",
            serial_wall.as_secs_f64(),
            serial_wall.as_secs_f64() / wall.as_secs_f64()
        );
    }
}
