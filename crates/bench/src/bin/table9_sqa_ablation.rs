//! Table 9: SQA ablation — GFS vs GFS-d, which freezes the safety
//! coefficient at η = 1 (no feedback adaptation).

use gfs::prelude::*;
use gfs::scenario;
use gfs_bench::{eval_workload, print_rows, run_row, Scale, PAPER_GPUS_PER_NODE};
use gfs_types::EtaUpdateRule;

fn main() {
    let scale = Scale::from_env();
    println!("Table 9 reproduction — SQA ablation, medium spot workload");
    let tasks = eval_workload(scale, 2.0, 9);
    let capacity = f64::from(scale.nodes() * PAPER_GPUS_PER_NODE);
    let mut rows = Vec::new();
    let frozen = GfsParams::builder()
        .eta_rule(EtaUpdateRule::Frozen)
        .build()
        .expect("valid params");
    let mut gfs_d = scenario::gfs_full(frozen, 3, 9, 0.60 * capacity);
    gfs_d.set_display_name("GFS-d");
    rows.push(run_row("GFS-d", &mut gfs_d, scale, &tasks));
    let mut full = scenario::gfs_full(GfsParams::default(), 3, 9, 0.60 * capacity);
    rows.push(run_row("GFS", &mut full, scale, &tasks));
    print_rows("SQA ablation", &rows);
    println!("\n(paper: adaptive η cuts spot JCT 13%, JQT 74%, e 30% vs frozen η = 1)");
}
