//! Table 5: scheduling-metrics comparison of GFS against the four baseline
//! schedulers under the low / medium / high spot workloads (§4.4).
//!
//! ```text
//! GFS_BENCH_SCALE=full cargo run --release -p gfs-bench --bin table5_baselines
//! ```

use gfs::prelude::*;
use gfs_bench::{eval_gfs, eval_workload, print_rows, run_row, Scale};

fn main() {
    let scale = Scale::from_env();
    println!(
        "Table 5 reproduction — {} nodes, {}h horizon (set GFS_BENCH_SCALE=full for paper scale)",
        scale.nodes(),
        scale.horizon_hours()
    );
    for (label, spot_scale) in [("(a) Low Spot Workload", 1.0), ("(b) Medium Spot Workload", 2.0), ("(c) High Spot Workload", 4.0)] {
        let tasks = eval_workload(scale, spot_scale, 9);
        let mut rows = vec![run_row("YARN-CS", &mut YarnCs::new(), scale, &tasks)];
        rows.push(run_row("Chronus", &mut Chronus::new(), scale, &tasks));
        rows.push(run_row("Lyra", &mut Lyra::new(), scale, &tasks));
        rows.push(run_row("FGD", &mut Fgd::new(), scale, &tasks));
        let mut gfs = eval_gfs(scale, 9);
        rows.push(run_row("GFS", &mut gfs, scale, &tasks));
        print_rows(label, &rows);
    }
    println!("\n(Chronus displaces best-effort jobs only at lease expiry; its e column is");
    println!(" reported for completeness where the paper prints '-'.)");
}
