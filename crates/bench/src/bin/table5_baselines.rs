//! Table 5: scheduling-metrics comparison of GFS against the four baseline
//! schedulers under the low / medium / high spot workloads (§4.4), declared
//! as one `gfs::lab` grid (workloads × schedulers) instead of hand-rolled
//! serial loops.
//!
//! ```text
//! GFS_BENCH_SCALE=full cargo run --release -p gfs-bench --bin table5_baselines
//! ```

use gfs::lab::{ClusterShape, Grid, SchedulerSpec, Threads, WorkloadAxis};
use gfs::prelude::*;
use gfs::scenario;
use gfs_bench::{eval_sim_config, Scale, PAPER_GPUS_PER_NODE};

fn main() {
    let scale = Scale::from_env();
    println!(
        "Table 5 reproduction — {} nodes, {}h horizon (set GFS_BENCH_SCALE=full for paper scale)",
        scale.nodes(),
        scale.horizon_hours()
    );
    let workloads =
        [("(a) low", 1.0), ("(b) medium", 2.0), ("(c) high", 4.0)].map(|(name, spot_scale)| {
            let base = WorkloadConfig {
                horizon_secs: scale.horizon_hours() * HOUR,
                spot_scale,
                ..WorkloadConfig::default()
            };
            WorkloadAxis::generated_sized(format!("{name}-spot"), base, 0.60, 0.12)
        });
    let grid = Grid::new()
        .schedulers(SchedulerSpec::baselines())
        .scheduler(scenario::gfs_spec(3, 0.60))
        .shape(ClusterShape::a100(scale.nodes(), PAPER_GPUS_PER_NODE))
        .workloads(workloads)
        .seeds([9])
        .sim(eval_sim_config(scale));

    let result = grid.run(Threads::Auto);
    println!(
        "{}",
        result.report.render_table(&[
            "hp_p99_jct_s",
            "hp_mean_jct_s",
            "hp_mean_jqt_s",
            "spot_mean_jct_s",
            "spot_mean_jqt_s",
            "eviction_rate",
        ])
    );
    println!("\n(Chronus displaces best-effort jobs only at lease expiry; its eviction_rate");
    println!(" column is reported for completeness where the paper prints '-'.)");
}
