//! Fig. 2: CDFs of GPU requests at pod and task level, Jul 2020 vs Oct 2024.

use gfs::prelude::*;
use gfs::trace::stats::cdf_at;

fn pod_requests(era: WorkloadEra) -> Vec<f64> {
    let tasks = WorkloadGenerator::new(WorkloadConfig {
        era,
        hp_tasks: 40_000,
        spot_tasks: 8_000,
        seed: 2,
        ..WorkloadConfig::default()
    })
    .generate();
    tasks.iter().map(|t| t.gpus_per_pod.cards()).collect()
}

fn task_requests(era: WorkloadEra) -> Vec<f64> {
    let tasks = WorkloadGenerator::new(WorkloadConfig {
        era,
        hp_tasks: 40_000,
        spot_tasks: 8_000,
        seed: 2,
        ..WorkloadConfig::default()
    })
    .generate();
    tasks.iter().map(TaskSpec::total_gpus).collect()
}

fn print_cdf(title: &str, v2024: &[f64], v2020: &[f64]) {
    println!("\n{title}");
    println!("{:>10} {:>12} {:>12}", "GPUs<=", "Oct 2024", "Jul 2020");
    for probe in [0.25, 0.5, 0.9999, 1.0, 2.0, 4.0, 7.9999, 8.0, 16.0, 64.0] {
        println!(
            "{:>10.2} {:>11.1}% {:>11.1}%",
            probe,
            cdf_at(v2024, probe) * 100.0,
            cdf_at(v2020, probe) * 100.0
        );
    }
}

fn main() {
    println!("Fig. 2 reproduction — request CDFs, 2020 vs 2024 eras");
    let pods24 = pod_requests(WorkloadEra::Era2024);
    let pods20 = pod_requests(WorkloadEra::Era2020);
    print_cdf("(a) pod-level GPU requests", &pods24, &pods20);
    let tasks24 = task_requests(WorkloadEra::Era2024);
    let tasks20 = task_requests(WorkloadEra::Era2020);
    print_cdf("(b) task-level GPU requests", &tasks24, &tasks20);

    let full_card_24 = 1.0 - cdf_at(&pods24, 0.9999);
    let full_card_20 = 1.0 - cdf_at(&pods20, 0.9999);
    println!(
        "\nfull-card pod share: 2024 {:.1}% vs 2020 {:.1}% (paper: ~100% vs ~20%)",
        full_card_24 * 100.0,
        full_card_20 * 100.0
    );
}
