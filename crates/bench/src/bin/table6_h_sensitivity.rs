//! Table 6: sensitivity of the guarantee horizon `H ∈ {1, 2, 4}` hours
//! under the medium spot workload.

use gfs::prelude::*;
use gfs::scenario;
use gfs_bench::{eval_workload, print_rows, run_row, Scale, PAPER_GPUS_PER_NODE};

fn main() {
    let scale = Scale::from_env();
    println!(
        "Table 6 reproduction — guarantee hours sweep, medium spot workload, {} nodes",
        scale.nodes()
    );
    let tasks = eval_workload(scale, 2.0, 9);
    let capacity = f64::from(scale.nodes() * PAPER_GPUS_PER_NODE);
    let mut rows = Vec::new();
    for h in [1u32, 2, 4] {
        let params = GfsParams::builder()
            .guarantee_hours(h)
            .build()
            .expect("valid params");
        let mut gfs = scenario::gfs_full(params, 3, 9, 0.60 * capacity);
        gfs.set_display_name(format!("H={h}"));
        rows.push(run_row(&format!("H={h}"), &mut gfs, scale, &tasks));
    }
    print_rows("guarantee horizon sweep", &rows);
    println!("\n(paper: H=1,2 nearly identical; H=4 lengthens spot JQT/JCT; e stays <1.5%)");
}
