//! Table 8: GDE ablation — GFS with OrgLinear vs GFS-e, which replaces the
//! demand model with the naive last-week-peak heuristic.

use gfs::prelude::*;
use gfs::scenario;
use gfs_bench::{eval_workload, print_rows, run_row, Scale, PAPER_GPUS_PER_NODE};

fn main() {
    let scale = Scale::from_env();
    println!("Table 8 reproduction — GDE ablation, medium spot workload");
    let tasks = eval_workload(scale, 2.0, 9);
    let capacity = f64::from(scale.nodes() * PAPER_GPUS_PER_NODE);
    let mut rows = Vec::new();
    let mut naive = scenario::gfs_naive_gde(GfsParams::default(), 3, 9, 0.60 * capacity);
    rows.push(run_row("GFS-e", &mut naive, scale, &tasks));
    let mut full = scenario::gfs_full(GfsParams::default(), 3, 9, 0.60 * capacity);
    rows.push(run_row("GFS", &mut full, scale, &tasks));
    print_rows("GDE ablation", &rows);
    println!("\n(paper: GFS cuts spot JCT 48%, JQT 95%, e 85% vs the peak heuristic)");
}
