//! Fleet-scale engine smoke: a sharded, churned, heavy-tailed fleet run
//! through `gfs::sim::fleet::run_fleet`, verifying the sharded engine's
//! determinism contract end to end — any thread count produces the same
//! `fleet_hash`, and the smoke configuration's hash is pinned so a
//! behavioral drift in the engine, the trace generator or the merge
//! rules cannot land silently.
//!
//! ```text
//! cargo run --release -p gfs-bench --bin lab_fleet
//! GFS_LAB_SMOKE=1  …         # tiny fleet for CI (< 10 s), pinned hash
//! GFS_LAB_COMPARE=1 …        # also run serially; verify identical output
//! ```

use std::time::Instant;

use gfs::prelude::*;
use gfs::sim::fleet::{domain_shards, run_fleet, FleetShard};
use gfs::trace::fleet::{FleetTraceConfig, FleetTraceGenerator};
use gfs_bench::env_flag;

/// `fleet_hash` of the smoke configuration below. Recompute with
/// `GFS_LAB_SMOKE=1 cargo run --release -p gfs-bench --bin lab_fleet`
/// after an *intentional* behavior change.
const SMOKE_FLEET_HASH: u64 = 0x5cf4_59cf_2f8b_929d;

fn build_fleet(shards: u32, nodes_per_shard: u32, tasks: u64) -> Vec<FleetShard> {
    let clusters = domain_shards(shards as usize, nodes_per_shard, GpuModel::A100, 8);
    let traces = FleetTraceGenerator::new(FleetTraceConfig {
        shards,
        tasks,
        seed: 11,
        ..FleetTraceConfig::default()
    })
    .generate_sharded();
    clusters
        .into_iter()
        .zip(traces)
        .enumerate()
        .map(|(s, (cluster, tasks))| FleetShard {
            cluster,
            // stagger one failure per shard so the merge folds real
            // availability loss, not just counters
            dynamics: DynamicsPlan::new(vec![
                ClusterEvent::down(NodeId::new(0), SimTime::from_hours(2 + s as u64)),
                ClusterEvent::up(NodeId::new(0), SimTime::from_hours(8 + s as u64)),
            ])
            .expect("ordered plan"),
            tasks,
        })
        .collect()
}

fn main() {
    let smoke = env_flag("GFS_LAB_SMOKE");
    let (shards, nodes_per_shard, tasks) = if smoke {
        (4u32, 50u32, 2_000u64)
    } else {
        (8, 2_000, 200_000)
    };
    let cfg = SimConfig {
        max_time_secs: Some(30 * 24 * HOUR),
        ..SimConfig::default()
    };
    let factory = |_: usize| -> Box<dyn Scheduler> { Box::new(YarnCs::new()) };

    let start = Instant::now();
    let fleet = run_fleet(
        build_fleet(shards, nodes_per_shard, tasks),
        &factory,
        &cfg,
        0,
    );
    let wall = start.elapsed();

    let finished = fleet
        .report
        .tasks
        .iter()
        .filter(|t| t.finish.is_some())
        .count();
    println!(
        "fleet: {} shards x {} nodes, {} tasks ({} finished), makespan {:.1} h, \
         unavailability {:.4}, {} displacements",
        shards,
        nodes_per_shard,
        fleet.report.tasks.len(),
        finished,
        fleet.report.makespan.as_secs() as f64 / HOUR as f64,
        fleet.report.unavailability,
        fleet.report.displacement_times.len(),
    );
    for (s, h) in fleet.shard_hashes.iter().enumerate() {
        println!("  shard {s}: {h:#018x}");
    }
    println!(
        "fleet_hash {:#018x} in {:.2}s",
        fleet.fleet_hash,
        wall.as_secs_f64()
    );

    if smoke {
        assert_eq!(
            fleet.fleet_hash, SMOKE_FLEET_HASH,
            "smoke fleet hash drifted — if the change is intentional, \
             update SMOKE_FLEET_HASH"
        );
    }
    if env_flag("GFS_LAB_COMPARE") {
        let start = Instant::now();
        let serial = run_fleet(
            build_fleet(shards, nodes_per_shard, tasks),
            &factory,
            &cfg,
            1,
        );
        let serial_wall = start.elapsed();
        assert_eq!(
            serial, fleet,
            "serial and parallel fleet runs must agree bit-for-bit"
        );
        println!(
            "serial: {:.2}s, outputs identical (threads=1 == threads=auto)",
            serial_wall.as_secs_f64()
        );
    }
}
