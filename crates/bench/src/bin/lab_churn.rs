//! Cluster-churn sweep as a `gfs::lab` grid: failure rates × schedulers ×
//! (homogeneous and heterogeneous) cluster shapes, reporting the
//! availability/displacement metrics next to the classic JCT/eviction
//! ones — the scheduling claims of Table 5 under machine churn.
//!
//! ```text
//! cargo run --release -p gfs-bench --bin lab_churn
//! GFS_LAB_SMOKE=1  …         # tiny grid for CI (< 10 s)
//! GFS_LAB_THREADS=8 …        # fixed worker count (default: one per core)
//! GFS_LAB_COMPARE=1 …        # also run serially; verify identical output
//! GFS_LAB_JSON=1 …           # dump the aggregated GridReport JSON
//! ```

use std::time::Instant;

use gfs::lab::{ClusterShape, DynamicsAxis, Grid, NodeGroup, SchedulerSpec, Threads, WorkloadAxis};
use gfs::prelude::*;
use gfs::scenario;
use gfs_bench::env_flag;

fn main() {
    let smoke = env_flag("GFS_LAB_SMOKE");
    let threads = match std::env::var("GFS_LAB_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(n) => Threads::Fixed(n),
        None => Threads::Auto,
    };
    let (a100_nodes, h800_nodes, horizon_h, seeds): (u32, u32, u64, Vec<u64>) = if smoke {
        (4, 2, 8, vec![1, 2])
    } else {
        (24, 8, 48, vec![1, 2, 3, 4])
    };
    let sim_horizon = (horizon_h + 96) * HOUR;

    let shapes = [
        ClusterShape::a100(a100_nodes + h800_nodes, 8),
        ClusterShape::heterogeneous([
            NodeGroup {
                nodes: a100_nodes,
                gpus_per_node: 8,
                model: GpuModel::A100,
            },
            NodeGroup {
                nodes: h800_nodes,
                gpus_per_node: 8,
                model: GpuModel::H800,
            },
        ]),
    ];
    // failure-rate axis: fleet-quality tiers from "hyperscaler" to "spot
    // market hardware", hour-scale repair
    let dynamics = [
        DynamicsAxis::none(),
        DynamicsAxis::mtbf("mtbf48h", 48.0 * HOUR as f64, HOUR as f64, sim_horizon),
        DynamicsAxis::mtbf("mtbf12h", 12.0 * HOUR as f64, HOUR as f64, sim_horizon),
    ];

    let base = WorkloadConfig {
        horizon_secs: horizon_h * HOUR,
        spot_scale: 2.0,
        ..WorkloadConfig::default()
    };
    let workload = if smoke {
        WorkloadAxis::generated_mixed(
            "mixed",
            WorkloadConfig {
                hp_tasks: 40,
                spot_tasks: 14,
                ..base
            },
        )
    } else {
        WorkloadAxis::generated_mixed(
            "mixed",
            WorkloadConfig {
                hp_tasks: 400,
                spot_tasks: 120,
                ..base
            },
        )
    };

    let mut grid = Grid::new()
        .schedulers([SchedulerSpec::yarn_cs(), SchedulerSpec::fgd()])
        .shapes(shapes)
        .workload(workload)
        .dynamics(dynamics)
        .seeds(seeds)
        .sim(SimConfig {
            max_time_secs: Some(sim_horizon),
            ..SimConfig::default()
        });
    if !smoke {
        grid = grid.scheduler(scenario::gfs_no_gde_spec());
    }

    let start = Instant::now();
    let result = grid.run(threads);
    let wall = start.elapsed();
    println!(
        "{}",
        result.report.render_table(&[
            "availability",
            "displacement_count",
            "displaced_mean_jct_s",
            "hp_p99_jct_s",
            "spot_mean_jqt_s",
            "eviction_rate",
        ])
    );
    let runs = result
        .report
        .cells
        .iter()
        .map(|c| c.seeds.len())
        .sum::<usize>();
    println!(
        "{runs} runs in {:.2}s on {} threads",
        wall.as_secs_f64(),
        threads.count()
    );

    if env_flag("GFS_LAB_JSON") {
        println!("{}", result.report.to_json());
    }
    if env_flag("GFS_LAB_COMPARE") {
        let start = Instant::now();
        let serial = grid.run(Threads::Fixed(1));
        let serial_wall = start.elapsed();
        assert_eq!(
            serial.report.to_json(),
            result.report.to_json(),
            "parallel and serial churn grids must agree byte-for-byte"
        );
        println!(
            "serial: {:.2}s  -> speedup {:.2}x, outputs identical",
            serial_wall.as_secs_f64(),
            serial_wall.as_secs_f64() / wall.as_secs_f64()
        );
    }
}
