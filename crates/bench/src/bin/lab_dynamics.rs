//! Cluster-timeline sweep as a `gfs::lab` grid: the dynamics axis runs
//! from a static control through independent churn, rack-correlated
//! failures, a rolling maintenance wave, and scale-out-under-pressure,
//! reporting the drained/migrated/scaled-capacity metrics next to the
//! availability and JCT ones — the rolling-drain and autoscale scenarios
//! of the ROADMAP end to end.
//!
//! ```text
//! cargo run --release -p gfs-bench --bin lab_dynamics
//! GFS_LAB_SMOKE=1  …         # tiny grid for CI (< 10 s)
//! GFS_LAB_THREADS=8 …        # fixed worker count (default: one per core)
//! GFS_LAB_COMPARE=1 …        # also run serially; verify identical output
//! GFS_LAB_JSON=1 …           # dump the aggregated GridReport JSON
//! ```

use std::time::Instant;

use gfs::lab::{ClusterShape, DynamicsAxis, Grid, SchedulerSpec, Threads, WorkloadAxis};
use gfs::prelude::*;
use gfs::scenario;
use gfs_bench::env_flag;

fn main() {
    let smoke = env_flag("GFS_LAB_SMOKE");
    let threads = match std::env::var("GFS_LAB_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(n) => Threads::Fixed(n),
        None => Threads::Auto,
    };
    let (nodes, horizon_h, seeds): (u32, u64, Vec<u64>) = if smoke {
        (6, 8, vec![1, 2])
    } else {
        (32, 48, vec![1, 2, 3, 4])
    };
    let sim_horizon = (horizon_h + 96) * HOUR;
    let shape = ClusterShape::a100(nodes, 8);

    // the dynamics axis: static control → independent churn → correlated
    // racks → rolling maintenance wave → the same wave with an autoscaler
    // buying capacity mid-drain (scale-out under pressure)
    let rack = 4;
    let wave_start = SimTime::from_hours(2);
    let stagger = HOUR / 2;
    let notice = 1_800;
    let maintenance = 2 * HOUR;
    let dynamics = [
        DynamicsAxis::none(),
        DynamicsAxis::mtbf("mtbf24h", 24.0 * HOUR as f64, HOUR as f64, sim_horizon),
        DynamicsAxis::correlated("racks", rack, 16.0 * HOUR as f64, HOUR as f64, sim_horizon),
        DynamicsAxis::rolling_drain("wave", wave_start, stagger, notice, maintenance),
        DynamicsAxis::new("wave+grow", move |shape, _seed| {
            let wave = DynamicsPlan::rolling_drain(
                shape.node_count(),
                wave_start,
                stagger,
                notice,
                maintenance,
            );
            let grow = DynamicsPlan::scale_out(
                NodeTemplate {
                    model: GpuModel::A100,
                    gpus: 8,
                },
                wave_start + HOUR,
                2 * HOUR,
                2,
                2,
            );
            wave.merge(grow).expect("disjoint histories compose")
        }),
    ];

    let base = WorkloadConfig {
        horizon_secs: horizon_h * HOUR,
        spot_scale: 2.0,
        ..WorkloadConfig::default()
    };
    let workload = if smoke {
        WorkloadAxis::generated(
            "steady",
            WorkloadConfig {
                hp_tasks: 40,
                spot_tasks: 14,
                ..base
            },
        )
    } else {
        WorkloadAxis::generated(
            "steady",
            WorkloadConfig {
                hp_tasks: 400,
                spot_tasks: 120,
                ..base
            },
        )
    };

    let mut grid = Grid::new()
        .schedulers([SchedulerSpec::yarn_cs(), SchedulerSpec::fgd()])
        .shape(shape)
        .workload(workload)
        .dynamics(dynamics)
        .seeds(seeds)
        .sim(SimConfig {
            max_time_secs: Some(sim_horizon),
            ..SimConfig::default()
        });
    if !smoke {
        grid = grid.scheduler(scenario::gfs_no_gde_spec());
    }

    let start = Instant::now();
    let result = grid.run(threads);
    let wall = start.elapsed();
    println!(
        "{}",
        result.report.render_table(&[
            "availability",
            "node_drains",
            "migration_count",
            "displacement_count",
            "added_gpus",
            "hp_p99_jct_s",
            "spot_mean_jqt_s",
        ])
    );
    let runs = result
        .report
        .cells
        .iter()
        .map(|c| c.seeds.len())
        .sum::<usize>();
    println!(
        "{runs} runs in {:.2}s on {} threads",
        wall.as_secs_f64(),
        threads.count()
    );

    if env_flag("GFS_LAB_JSON") {
        println!("{}", result.report.to_json());
    }
    if env_flag("GFS_LAB_COMPARE") {
        let start = Instant::now();
        let serial = grid.run(Threads::Fixed(1));
        let serial_wall = start.elapsed();
        assert_eq!(
            serial.report.to_json(),
            result.report.to_json(),
            "parallel and serial dynamics grids must agree byte-for-byte"
        );
        println!(
            "serial: {:.2}s  -> speedup {:.2}x, outputs identical",
            serial_wall.as_secs_f64(),
            serial_wall.as_secs_f64() / wall.as_secs_f64()
        );
    }
}
