//! Placement-policy sweep as a `gfs::lab` grid: the policy axis runs from
//! naive placement through domain spreading, reliability scoring and the
//! full churn-aware policy, under a correlated flaky-rack timeline — the
//! churn-aware-placement scenario of the ROADMAP end to end.
//!
//! ```text
//! cargo run --release -p gfs-bench --bin lab_policy
//! GFS_LAB_SMOKE=1  …         # tiny grid for CI (< 10 s)
//! GFS_LAB_THREADS=8 …        # fixed worker count (default: one per core)
//! GFS_LAB_COMPARE=1 …        # also run serially; verify identical output
//! GFS_LAB_JSON=1 …           # dump the aggregated GridReport JSON
//! ```

use std::time::Instant;

use gfs::lab::{ClusterShape, DynamicsAxis, Grid, PolicyAxis, Threads, WorkloadAxis};
use gfs::prelude::*;
use gfs::scenario;
use gfs_bench::env_flag;

fn main() {
    let smoke = env_flag("GFS_LAB_SMOKE");
    let threads = match std::env::var("GFS_LAB_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(n) => Threads::Fixed(n),
        None => Threads::Auto,
    };
    let rack = 4;
    let (nodes, hp, spot, seeds): (u32, usize, usize, Vec<u64>) = if smoke {
        (8, 20, 6, vec![1, 2])
    } else {
        (32, 120, 40, vec![1, 2, 3, 4])
    };
    let horizon_h = if smoke { 8 } else { 24 };
    let sim_horizon = (horizon_h + 48) * HOUR;

    // half the racks churn as correlated blast radii, half are stable —
    // the heterogeneous-reliability fleet the policy is designed for
    let flaky_racks = (nodes / rack / 2) as usize;
    let dynamics = DynamicsAxis::new("flakyracks", move |shape, seed| {
        let racks = FailureDomain::racks(shape.node_count(), rack);
        DynamicsPlan::correlated(
            &racks[..flaky_racks.min(racks.len())],
            3.0 * HOUR as f64,
            HOUR as f64 / 2.0,
            sim_horizon,
            seed,
        )
    });

    let grid = Grid::new()
        .schedulers([scenario::pts_spec(), scenario::gfs_no_gde_spec()])
        .shape(ClusterShape::a100(nodes, 8).racked(rack))
        .workload(WorkloadAxis::generated(
            "steady",
            WorkloadConfig {
                hp_tasks: hp,
                spot_tasks: spot,
                spot_scale: 2.0,
                horizon_secs: horizon_h * HOUR,
                heavy_tail_frac: 0.0,
                ..WorkloadConfig::default()
            },
        ))
        .dynamic(dynamics)
        .policies([
            PolicyAxis::naive(),
            PolicyAxis::domain_spread(),
            PolicyAxis::reliability(),
            PolicyAxis::churn_aware(),
        ])
        .seeds(seeds)
        .sim(SimConfig {
            max_time_secs: Some(sim_horizon),
            ..SimConfig::default()
        });

    let start = Instant::now();
    let result = grid.run(threads);
    let wall = start.elapsed();
    println!(
        "{}",
        result.report.render_table(&[
            "displacement_count",
            "displaced_mean_jct_s",
            "hp_p99_jct_s",
            "spot_mean_jqt_s",
            "availability",
        ])
    );
    let runs = result
        .report
        .cells
        .iter()
        .map(|c| c.seeds.len())
        .sum::<usize>();
    println!(
        "{runs} runs in {:.2}s on {} threads",
        wall.as_secs_f64(),
        threads.count()
    );

    if env_flag("GFS_LAB_JSON") {
        println!("{}", result.report.to_json());
    }
    if env_flag("GFS_LAB_COMPARE") {
        let start = Instant::now();
        let serial = grid.run(Threads::Fixed(1));
        let serial_wall = start.elapsed();
        assert_eq!(
            serial.report.to_json(),
            result.report.to_json(),
            "parallel and serial policy grids must agree byte-for-byte"
        );
        println!(
            "serial: {:.2}s  -> speedup {:.2}x, outputs identical",
            serial_wall.as_secs_f64(),
            serial_wall.as_secs_f64() / wall.as_secs_f64()
        );
    }
}
