//! A dependency-free micro-benchmark harness.
//!
//! Each bench target builds a [`Suite`], registers closures with
//! [`Suite::bench`], and calls [`Suite::finish`], which prints a table and
//! writes a machine-readable `BENCH_<suite>.json` next to the workspace
//! root (override the directory with `GFS_BENCH_DIR`). Timing is adaptive:
//! a closure is warmed up, then iterated until the measurement budget is
//! spent, and the mean wall-clock nanoseconds per iteration is reported.
//!
//! Environment knobs:
//!
//! * `GFS_BENCH_SHORT=1` — smoke mode for CI: tiny warm-up/measure budget.
//! * `GFS_BENCH_DIR=<dir>` — where `BENCH_*.json` lands (default: the
//!   workspace root, two levels above this crate's manifest).
//! * `GFS_BENCH_TAG=<tag>` — written into the JSON (`baseline`,
//!   `optimized`, a commit id, …) so runs are attributable.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (stable across runs; used to diff baselines).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured (after warm-up).
    pub iters: u64,
}

/// A named collection of benchmarks writing one `BENCH_<name>.json`.
#[derive(Debug)]
pub struct Suite {
    name: String,
    short: bool,
    results: Vec<Measurement>,
}

impl Suite {
    /// Creates a suite; reads `GFS_BENCH_SHORT` for smoke mode.
    #[must_use]
    pub fn new(name: &str) -> Self {
        let short = std::env::var("GFS_BENCH_SHORT").is_ok_and(|v| v != "0" && !v.is_empty());
        println!(
            "## bench suite `{name}`{}",
            if short { " (short mode)" } else { "" }
        );
        Suite {
            name: name.to_string(),
            short,
            results: Vec::new(),
        }
    }

    /// Whether the suite runs in CI smoke mode.
    #[must_use]
    pub fn is_short(&self) -> bool {
        self.short
    }

    fn budget(&self) -> (u32, Duration) {
        if self.short {
            (1, Duration::from_millis(30))
        } else {
            (3, Duration::from_millis(800))
        }
    }

    /// Measures `f`, printing and recording the mean time per iteration.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        let (warmup, measure) = self.budget();
        for _ in 0..warmup {
            black_box(f());
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < measure || iters == 0 {
            let start = Instant::now();
            black_box(f());
            elapsed += start.elapsed();
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
        let mean_ns = elapsed.as_nanos() as f64 / iters as f64;
        println!("{name:<44} {:>14}/iter  ({iters} iters)", format_ns(mean_ns));
        self.results.push(Measurement {
            name: name.to_string(),
            mean_ns,
            iters,
        });
    }

    /// Writes `BENCH_<suite>.json` and returns the measurements.
    pub fn finish(self) -> Vec<Measurement> {
        let dir = std::env::var("GFS_BENCH_DIR")
            .unwrap_or_else(|_| format!("{}/../..", env!("CARGO_MANIFEST_DIR")));
        let tag: String = std::env::var("GFS_BENCH_TAG")
            .unwrap_or_else(|_| "untagged".to_string())
            .chars()
            .map(|c| if c == '"' || c == '\\' || c.is_control() { '_' } else { c })
            .collect();
        let path = format!("{dir}/BENCH_{}.json", self.name);
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"suite\": \"{}\",\n", self.name));
        json.push_str(&format!("  \"tag\": \"{tag}\",\n"));
        json.push_str(&format!("  \"short\": {},\n", self.short));
        json.push_str("  \"results\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}}}{}\n",
                m.name,
                m.mean_ns,
                m.iters,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
        self.results
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}
