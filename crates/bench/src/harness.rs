//! A dependency-free micro-benchmark harness.
//!
//! Each bench target builds a [`Suite`], registers closures with
//! [`Suite::bench`], and calls [`Suite::finish`], which prints a table and
//! writes a machine-readable `BENCH_<suite>.json` next to the workspace
//! root (override the directory with `GFS_BENCH_DIR`). Timing is adaptive
//! and repeated: a closure is warmed up, then measured in `k` independent
//! repetitions (each iterating until its time budget is spent); the
//! reported figure is the **median** of the per-repetition means — robust
//! against the ±20 % noise of shared hosts, where a single long repetition
//! (or a lucky quiet one) would skew a plain mean or best-of-k. The
//! minimum repetition and the spread are emitted per entry so a noisy
//! measurement is visible in the JSON instead of silently trusted.
//! Spread is `(max − min)/median` with the single slowest repetition
//! excluded (when there are ≥3): one scheduler preemption on a shared
//! host would otherwise define the whole entry's noise figure, which
//! made the raw statistic too flaky for `bench_gate`'s spread ratchet.
//! A genuinely noisy entry still shows, because noise that matters
//! affects more than one repetition.
//!
//! Environment knobs:
//!
//! * `GFS_BENCH_SHORT=1` — smoke mode for CI: tiny warm-up/measure budget.
//! * `GFS_BENCH_DIR=<dir>` — where `BENCH_*.json` lands (default: the
//!   workspace root, two levels above this crate's manifest).
//! * `GFS_BENCH_TAG=<tag>` — written into the JSON (`baseline`,
//!   `optimized`, a commit id, …) so runs are attributable.
//! * `GFS_BENCH_PIN=<cpu>` — best-effort CPU pinning before measuring
//!   (Linux `sched_setaffinity`; a recorded no-op elsewhere — see
//!   [`crate::affinity`]). The JSON's `pinned_cpu` field says whether it
//!   took effect, so pinned and unpinned baselines are distinguishable.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (stable across runs; used to diff baselines).
    pub name: String,
    /// Median across repetitions of the mean nanoseconds per iteration —
    /// the headline number (kept under the historical `mean_ns` JSON key
    /// so baselines stay diffable).
    pub mean_ns: f64,
    /// Fastest repetition's mean nanoseconds per iteration.
    pub min_ns: f64,
    /// Iterations measured across all repetitions (after warm-up).
    pub iters: u64,
    /// Measurement repetitions.
    pub reps: u32,
    /// `(max − min) / median` across repetitions, percent, with the
    /// single slowest repetition dropped when ≥3 were measured: the
    /// run-to-run noise of this entry net of one-off scheduler spikes.
    pub spread_pct: f64,
}

/// A named collection of benchmarks writing one `BENCH_<name>.json`.
#[derive(Debug)]
pub struct Suite {
    name: String,
    short: bool,
    /// CPU the process was pinned to via `GFS_BENCH_PIN`, if pinning
    /// succeeded; recorded in the JSON metadata.
    pinned_cpu: Option<usize>,
    results: Vec<Measurement>,
}

impl Suite {
    /// Creates a suite; reads `GFS_BENCH_SHORT` for smoke mode and
    /// `GFS_BENCH_PIN` for best-effort CPU pinning.
    #[must_use]
    pub fn new(name: &str) -> Self {
        let short = std::env::var("GFS_BENCH_SHORT").is_ok_and(|v| v != "0" && !v.is_empty());
        let pinned_cpu = crate::affinity::pin_from_env();
        println!(
            "## bench suite `{name}`{}{}",
            if short { " (short mode)" } else { "" },
            match pinned_cpu {
                Some(cpu) => format!(" (pinned to cpu {cpu})"),
                None => String::new(),
            }
        );
        Suite {
            name: name.to_string(),
            short,
            pinned_cpu,
            results: Vec::new(),
        }
    }

    /// Whether the suite runs in CI smoke mode.
    #[must_use]
    pub fn is_short(&self) -> bool {
        self.short
    }

    /// `(warm-up iterations, per-repetition budget, repetitions)`.
    fn budget(&self) -> (u32, Duration, u32) {
        if self.short {
            // 3 reps, not 2: the median then sheds a single slow
            // repetition, which keeps the smoke-mode spread_pct stable
            // enough for bench_gate's spread ratchet to be meaningful
            (1, Duration::from_millis(15), 3)
        } else {
            (3, Duration::from_millis(250), 5)
        }
    }

    /// Measures `f` over `k` repetitions, printing and recording the
    /// median (and min) of the per-repetition mean time per iteration.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        let (warmup, measure, reps) = self.budget();
        for _ in 0..warmup {
            black_box(f());
        }
        let mut iters = 0u64;
        let mut rep_means = Vec::with_capacity(reps as usize);
        for _ in 0..reps {
            let mut rep_iters = 0u64;
            let mut elapsed = Duration::ZERO;
            while elapsed < measure || rep_iters == 0 {
                let start = Instant::now();
                black_box(f());
                elapsed += start.elapsed();
                rep_iters += 1;
                if rep_iters >= 1_000_000 {
                    break;
                }
            }
            rep_means.push(elapsed.as_nanos() as f64 / rep_iters as f64);
            iters += rep_iters;
        }
        rep_means.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let n = rep_means.len();
        // true median: average the middle pair for even k, so the 2-rep
        // short mode does not report its slower repetition as the headline
        let median_ns = if n % 2 == 0 {
            (rep_means[n / 2 - 1] + rep_means[n / 2]) / 2.0
        } else {
            rep_means[n / 2]
        };
        let min_ns = rep_means[0];
        // shed the single slowest repetition (see module docs): one
        // preemption spike must not define the entry's noise figure
        let max_ns = if n >= 3 {
            rep_means[n - 2]
        } else {
            rep_means[n - 1]
        };
        let spread_pct = if median_ns > 0.0 {
            (max_ns - min_ns) / median_ns * 100.0
        } else {
            0.0
        };
        println!(
            "{name:<44} {:>14}/iter  (min {}, ±{spread_pct:.0}%, {iters} iters × {reps} reps)",
            format_ns(median_ns),
            format_ns(min_ns),
        );
        self.results.push(Measurement {
            name: name.to_string(),
            mean_ns: median_ns,
            min_ns,
            iters,
            reps,
            spread_pct,
        });
    }

    /// Writes `BENCH_<suite>.json` and returns the measurements.
    pub fn finish(self) -> Vec<Measurement> {
        let dir = std::env::var("GFS_BENCH_DIR")
            .unwrap_or_else(|_| format!("{}/../..", env!("CARGO_MANIFEST_DIR")));
        let tag: String = std::env::var("GFS_BENCH_TAG")
            .unwrap_or_else(|_| "untagged".to_string())
            .chars()
            .map(|c| {
                if c == '"' || c == '\\' || c.is_control() {
                    '_'
                } else {
                    c
                }
            })
            .collect();
        let path = format!("{dir}/BENCH_{}.json", self.name);
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"suite\": \"{}\",\n", self.name));
        json.push_str(&format!("  \"tag\": \"{tag}\",\n"));
        json.push_str(&format!("  \"short\": {},\n", self.short));
        json.push_str(&format!(
            "  \"pinned_cpu\": {},\n",
            self.pinned_cpu
                .map_or_else(|| "null".to_string(), |c| c.to_string())
        ));
        json.push_str("  \"results\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"iters\": {}, \"reps\": {}, \"spread_pct\": {:.1}}}{}\n",
                m.name,
                m.mean_ns,
                m.min_ns,
                m.iters,
                m.reps,
                m.spread_pct,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
        self.results
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}
