//! Shared harness code for the experiment binaries that regenerate every
//! table and figure of the paper (see DESIGN.md §4 for the index).

// `deny` rather than `forbid`: the affinity module scopes one audited
// raw-syscall allowance (no `libc` is available offline).
#![deny(unsafe_code)]

pub mod affinity;
pub mod harness;

use gfs::prelude::*;
use gfs::scenario;

/// The simulated A100 pool of §4.1: 287 nodes × 8 GPUs = 2,296 GPUs.
pub const PAPER_NODES: u32 = 287;
/// GPUs per node.
pub const PAPER_GPUS_PER_NODE: u32 = 8;

/// Builds the §4.1 evaluation cluster.
#[must_use]
pub fn paper_cluster() -> Cluster {
    Cluster::homogeneous(PAPER_NODES, GpuModel::A100, PAPER_GPUS_PER_NODE)
}

/// Reads a boolean environment flag: set and neither `"0"` nor empty.
#[must_use]
pub fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Scale factors for quick (CI) vs full (paper-scale) experiment runs,
/// selected with the `GFS_BENCH_SCALE` environment variable
/// (`quick` | `full`, default `quick`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced cluster/horizon for fast iteration.
    Quick,
    /// The paper's 287-node pool and multi-day horizon.
    Full,
}

impl Scale {
    /// Reads the scale from the environment.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("GFS_BENCH_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Number of nodes to simulate.
    #[must_use]
    pub fn nodes(self) -> u32 {
        match self {
            Scale::Quick => 72,
            Scale::Full => PAPER_NODES,
        }
    }

    /// Submission horizon in hours.
    #[must_use]
    pub fn horizon_hours(self) -> u64 {
        match self {
            Scale::Quick => 72,
            Scale::Full => 7 * 24,
        }
    }
}

/// The standard evaluation workload: Table 3 mix sized to the cluster,
/// at the given spot scale (1 / 2 / 4 = low / medium / high).
#[must_use]
pub fn eval_workload(scale: Scale, spot_scale: f64, seed: u64) -> Vec<TaskSpec> {
    let capacity = f64::from(scale.nodes() * PAPER_GPUS_PER_NODE);
    let cfg = WorkloadConfig {
        horizon_secs: scale.horizon_hours() * HOUR,
        spot_scale,
        seed,
        ..WorkloadConfig::default()
    }
    .sized_for(capacity, 0.60, 0.12);
    WorkloadGenerator::new(cfg).generate()
}

/// Simulation settings shared by the scheduling experiments.
#[must_use]
pub fn eval_sim_config(scale: Scale) -> SimConfig {
    SimConfig {
        max_time_secs: Some((scale.horizon_hours() + 96) * HOUR),
        ..SimConfig::default()
    }
}

/// Builds the full GFS scheduler for a cluster of the given scale.
#[must_use]
pub fn eval_gfs(scale: Scale, seed: u64) -> gfs::core::GfsScheduler {
    let capacity = f64::from(scale.nodes() * PAPER_GPUS_PER_NODE);
    scenario::gfs_full(GfsParams::default(), 3, seed, 0.60 * capacity)
}

/// One row of a Table 5-style comparison.
#[derive(Debug, Clone)]
pub struct SchedRow {
    /// Scheduler display name.
    pub name: String,
    /// P99 HP job completion time, seconds.
    pub hp_jct_p99: f64,
    /// Mean HP JCT, seconds.
    pub hp_jct: f64,
    /// Mean HP JQT, seconds.
    pub hp_jqt: f64,
    /// Mean spot JCT, seconds.
    pub spot_jct: f64,
    /// Mean spot JQT, seconds.
    pub spot_jqt: f64,
    /// Spot eviction rate (`e`), fraction.
    pub eviction: f64,
}

/// Runs one scheduler on a workload and summarises the §4.2 metrics.
pub fn run_row(
    name: &str,
    scheduler: &mut dyn Scheduler,
    scale: Scale,
    tasks: &[TaskSpec],
) -> SchedRow {
    let cluster = Cluster::homogeneous(scale.nodes(), GpuModel::A100, PAPER_GPUS_PER_NODE);
    let report = gfs::sim::run(cluster, scheduler, tasks.to_vec(), &eval_sim_config(scale));
    SchedRow {
        name: name.to_string(),
        hp_jct_p99: report.p99_jct(Priority::Hp),
        hp_jct: report.mean_jct(Priority::Hp),
        hp_jqt: report.mean_jqt(Priority::Hp),
        spot_jct: report.mean_jct(Priority::Spot),
        spot_jqt: report.mean_jqt(Priority::Spot),
        eviction: report.eviction_rate(),
    }
}

/// Prints a Table 5-style block.
pub fn print_rows(title: &str, rows: &[SchedRow]) {
    println!("\n### {title}");
    println!(
        "{:<9} | {:>12} {:>10} {:>8} | {:>10} {:>8} {:>6}",
        "sched", "JCT-p99(s)", "JCT(s)", "JQT(s)", "JCT(s)", "JQT(s)", "e(%)"
    );
    println!("{}", "-".repeat(78));
    for r in rows {
        println!(
            "{:<9} | {:>12.1} {:>10.1} {:>8.1} | {:>10.1} {:>8.1} {:>6.2}",
            r.name,
            r.hp_jct_p99,
            r.hp_jct,
            r.hp_jqt,
            r.spot_jct,
            r.spot_jqt,
            r.eviction * 100.0
        );
    }
}
