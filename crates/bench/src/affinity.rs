//! Best-effort CPU-affinity pinning for the bench harness.
//!
//! Shared-host benchmark noise (the ±20 % `spread_pct` the harness
//! reports) is partly scheduler migration: the benched thread hops cores
//! and loses its L1/L2 state. Setting `GFS_BENCH_PIN=<cpu>` pins the
//! process to one CPU before measuring, via a raw `sched_setaffinity`
//! syscall — raw because the workspace builds offline with no `libc`
//! crate. On non-Linux targets (or unsupported architectures) the knob is
//! a recorded no-op: the JSON metadata says whether pinning happened, so
//! baselines from pinned and unpinned hosts are never silently compared.
//!
//! This is the only unsafe code in the workspace; it writes no memory
//! (the kernel only *reads* the mask) and a failed syscall simply leaves
//! the process unpinned.

/// Reads `GFS_BENCH_PIN` and pins the process when it names a CPU.
///
/// Returns the pinned CPU index on success, `None` when the variable is
/// unset/empty/`0`-like-off… — specifically: unset or empty means off,
/// any unsigned integer means "pin to this CPU index", anything else is
/// treated as CPU 0. `None` is also returned when the platform cannot
/// pin or the syscall fails (e.g. the index exceeds the machine).
#[must_use]
pub fn pin_from_env() -> Option<usize> {
    let raw = std::env::var("GFS_BENCH_PIN").ok()?;
    if raw.is_empty() {
        return None;
    }
    let cpu: usize = raw.parse().unwrap_or(0);
    set_affinity(cpu).then_some(cpu)
}

/// Pins the calling process (pid 0 = self) to `cpu`. Returns success.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[allow(unsafe_code)]
#[must_use]
pub fn set_affinity(cpu: usize) -> bool {
    // a 1024-bit cpu_set_t, the kernel's default mask width
    let mut mask = [0u8; 128];
    if cpu >= mask.len() * 8 {
        return false;
    }
    mask[cpu / 8] |= 1 << (cpu % 8);
    let ret: isize;
    // SAFETY: sched_setaffinity(pid=0, len, mask) only *reads* `mask`,
    // which outlives the call; no Rust-visible memory is written. The
    // clobbered registers are declared per the Linux syscall ABI.
    unsafe {
        #[cfg(target_arch = "x86_64")]
        core::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret, // __NR_sched_setaffinity
            in("rdi") 0usize,
            in("rsi") mask.len(),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, readonly)
        );
        #[cfg(target_arch = "aarch64")]
        core::arch::asm!(
            "svc 0",
            in("x8") 122usize, // __NR_sched_setaffinity
            inlateout("x0") 0isize => ret,
            in("x1") mask.len(),
            in("x2") mask.as_ptr(),
            options(nostack, readonly)
        );
    }
    ret == 0
}

/// Unsupported platform: pinning is a no-op that reports failure.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
#[must_use]
pub fn set_affinity(_cpu: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    fn pinning_to_cpu0_succeeds_on_linux() {
        // every Linux machine has CPU 0; the call must succeed and the
        // process keeps running (we cannot easily assert the mask without
        // a getter syscall, but a kernel rejection would return false)
        assert!(set_affinity(0));
    }

    #[test]
    fn absurd_cpu_index_fails_cleanly() {
        assert!(!set_affinity(1 << 20));
    }
}
