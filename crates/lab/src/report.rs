//! Aggregated grid output: per-cell summaries, canonical JSON emission and
//! aligned text tables.

use gfs_sim::RunSummary;
use serde::{Deserialize, Serialize};

use crate::agg::{aggregate, MetricSummary};

/// One grid cell after across-seed reduction: axis labels, the raw
/// per-seed summaries, and robust statistics per metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSummary {
    /// Scheduler display name.
    pub scheduler: String,
    /// Cluster-shape label.
    pub shape: String,
    /// Workload-axis label.
    pub workload: String,
    /// Dynamics-axis label (`"none"` for static-cluster cells). The
    /// field keeps its pre-redesign name — it is part of the serialized
    /// grid schema, pinned by golden hashes.
    pub faults: String,
    /// Capacity-market label, `None` for the market-free default —
    /// omitted from the JSON so market-free grids keep their historical
    /// golden encoding (use [`CellSummary::market_label`] for display).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub market: Option<String>,
    /// Placement-policy label, `None` for the naive (policy-less) default
    /// — omitted from the JSON so policy-free grids keep their historical
    /// golden encoding (use [`CellSummary::policy_label`] for display).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub policy: Option<String>,
    /// Parameter-override label.
    pub params: String,
    /// Replication seeds, in run order.
    pub seeds: Vec<u64>,
    /// Per-seed scalar summaries, aligned with `seeds`.
    pub runs: Vec<RunSummary>,
    /// Across-seed statistics, one row per [`RunSummary::METRICS`] entry.
    pub metrics: Vec<MetricSummary>,
}

impl CellSummary {
    /// Builds a cell summary, computing the across-seed statistics. A
    /// `"naive"` policy label (and a `"none"` market label) is stored as
    /// `None` (the skip-serialized default), keeping policy- and
    /// market-free grids byte-identical on the wire.
    #[allow(clippy::too_many_arguments)] // one arg per grid axis, by design
    #[must_use]
    pub fn new(
        scheduler: &str,
        shape: &str,
        workload: &str,
        faults: &str,
        market: &str,
        policy: &str,
        params: &str,
        seeds: &[u64],
        runs: Vec<RunSummary>,
    ) -> Self {
        let metrics = aggregate(&runs);
        CellSummary {
            scheduler: scheduler.to_string(),
            shape: shape.to_string(),
            workload: workload.to_string(),
            faults: faults.to_string(),
            market: (market != "none").then(|| market.to_string()),
            policy: (policy != "naive").then(|| policy.to_string()),
            params: params.to_string(),
            seeds: seeds.to_vec(),
            runs,
            metrics,
        }
    }

    /// The capacity-market label (`"none"` for market-free cells).
    #[must_use]
    pub fn market_label(&self) -> &str {
        self.market.as_deref().unwrap_or("none")
    }

    /// The placement-policy label (`"naive"` for policy-less cells).
    #[must_use]
    pub fn policy_label(&self) -> &str {
        self.policy.as_deref().unwrap_or("naive")
    }

    /// Across-seed statistics of one metric by name.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<&crate::agg::MetricStats> {
        self.metrics
            .iter()
            .find(|m| m.metric == name)
            .map(|m| &m.stats)
    }

    /// Median of one metric by name (0 when unknown).
    #[must_use]
    pub fn median(&self, name: &str) -> f64 {
        self.metric(name).map_or(0.0, |s| s.median)
    }

    /// The `(shape, workload, faults, market, policy, params)` block key
    /// this cell belongs to.
    #[must_use]
    pub fn block_key(&self) -> (&str, &str, &str, &str, &str, &str) {
        (
            &self.shape,
            &self.workload,
            &self.faults,
            self.market_label(),
            self.policy_label(),
            &self.params,
        )
    }
}

/// The aggregated result of a whole grid, in cell-enumeration order.
///
/// Serialising this struct yields the canonical byte-stable JSON the
/// determinism tests compare across thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct GridReport {
    /// One summary per cell.
    pub cells: Vec<CellSummary>,
}

impl GridReport {
    /// Canonical JSON encoding.
    ///
    /// # Panics
    ///
    /// Never panics for reports produced by a grid run (the `Result` is an
    /// artefact of the serde API).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("grid reports serialize")
    }

    /// Parses a report back from its JSON encoding.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error on malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Looks one cell up by its axis labels, ignoring the fault axis
    /// (first match wins — convenient for fault-free grids).
    #[must_use]
    pub fn cell(
        &self,
        scheduler: &str,
        shape: &str,
        workload: &str,
        params: &str,
    ) -> Option<&CellSummary> {
        self.cells.iter().find(|c| {
            c.scheduler == scheduler
                && c.shape == shape
                && c.workload == workload
                && c.params == params
        })
    }

    /// Looks one cell up by scheduler, shape, workload, dynamics and
    /// params labels, ignoring the policy axis (first match wins —
    /// convenient for policy-free grids).
    #[must_use]
    pub fn cell_at(
        &self,
        scheduler: &str,
        shape: &str,
        workload: &str,
        faults: &str,
        params: &str,
    ) -> Option<&CellSummary> {
        self.cells.iter().find(|c| {
            c.scheduler == scheduler
                && c.shape == shape
                && c.workload == workload
                && c.faults == faults
                && c.params == params
        })
    }

    /// Looks one cell up by all six axis labels (policy included; pass
    /// `"naive"` for the policy-less default).
    #[must_use]
    pub fn cell_full(
        &self,
        scheduler: &str,
        shape: &str,
        workload: &str,
        faults: &str,
        policy: &str,
        params: &str,
    ) -> Option<&CellSummary> {
        self.cells.iter().find(|c| {
            c.scheduler == scheduler
                && c.shape == shape
                && c.workload == workload
                && c.faults == faults
                && c.policy_label() == policy
                && c.params == params
        })
    }

    /// Renders an aligned text table: one block per `(shape, workload,
    /// faults, params)` combination, one row per scheduler, one column per
    /// requested metric showing `median ±IQR/2` (the `±` column is omitted
    /// for single-seed grids).
    #[must_use]
    pub fn render_table(&self, metrics: &[&str]) -> String {
        let mut out = String::new();
        let replicated = self.cells.iter().any(|c| c.seeds.len() > 1);
        let mut block: Option<(&str, &str, &str, &str, &str, &str)> = None;
        for cell in &self.cells {
            let key = cell.block_key();
            if block != Some(key) {
                block = Some(key);
                out.push_str(&format!(
                    "\n### shape={} workload={} faults={}{}{} params={}{}\n",
                    key.0,
                    key.1,
                    key.2,
                    // the market and policy segments appear only on grids
                    // declaring those axes, so axis-free tables render
                    // exactly as before
                    if key.3 == "none" {
                        String::new()
                    } else {
                        format!(" market={}", key.3)
                    },
                    if key.4 == "naive" {
                        String::new()
                    } else {
                        format!(" policy={}", key.4)
                    },
                    key.5,
                    if replicated {
                        format!("  (median ±IQR/2 over {} seeds)", cell.seeds.len())
                    } else {
                        String::new()
                    }
                ));
                out.push_str(&format!("{:<14}", "sched"));
                for m in metrics {
                    out.push_str(&format!(" | {:>20}", m));
                }
                out.push('\n');
                out.push_str(&"-".repeat(14 + metrics.len() * 23));
                out.push('\n');
            }
            out.push_str(&format!("{:<14}", cell.scheduler));
            for m in metrics {
                let cellstr = cell.metric(m).map_or_else(
                    || "?".to_string(),
                    |s| {
                        if replicated {
                            format!("{} ±{}", fmt_value(s.median), fmt_value(s.iqr / 2.0))
                        } else {
                            fmt_value(s.median)
                        }
                    },
                );
                out.push_str(&format!(" | {cellstr:>20}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Magnitude-adaptive formatting: rates in `[0, 1]` keep three decimals,
/// second-scale metrics one — a `0.12` eviction rate must not collapse to
/// `0.1` next to a five-digit JCT.
fn fmt_value(v: f64) -> String {
    let a = v.abs();
    if a >= 100.0 {
        format!("{v:.1}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(jct: f64) -> RunSummary {
        RunSummary {
            hp_tasks: 2,
            spot_tasks: 1,
            hp_completion: 1.0,
            spot_completion: 1.0,
            hp_mean_jct_s: jct,
            hp_p99_jct_s: jct * 2.0,
            hp_mean_jqt_s: 5.0,
            spot_mean_jct_s: 50.0,
            spot_p99_jct_s: 80.0,
            spot_mean_jqt_s: 9.0,
            spot_p99_jqt_s: 12.0,
            eviction_count: 1,
            eviction_rate: 0.25,
            mean_alloc_rate: 0.5,
            makespan_hours: 10.0,
            failed_commits: 0,
            availability: 1.0,
            displacement_count: 0,
            displaced_mean_jct_s: 0.0,
            migration_count: 0,
            node_drains: 0,
            added_gpus: 0.0,
            gpu_hours_bought: 0.0,
            market_spend_usd: 0.0,
            cost_per_completed_usd: 0.0,
            stranded_gpu_hours: 0.0,
        }
    }

    fn report() -> GridReport {
        GridReport {
            cells: vec![CellSummary::new(
                "YARN-CS",
                "4n",
                "tiny",
                "none",
                "none",
                "naive",
                "default",
                &[1, 2],
                vec![summary(100.0), summary(140.0)],
            )],
        }
    }

    #[test]
    fn json_round_trip() {
        let r = report();
        let json = r.to_json();
        let back = GridReport::from_json(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn cell_lookup_and_median() {
        let r = report();
        let cell = r.cell("YARN-CS", "4n", "tiny", "default").unwrap();
        assert_eq!(cell.median("hp_mean_jct_s"), 120.0);
        assert!(r.cell("nope", "4n", "tiny", "default").is_none());
        assert!(cell.metric("not_a_metric").is_none());
    }

    #[test]
    fn table_contains_block_and_row() {
        let r = report();
        let table = r.render_table(&["hp_mean_jct_s", "eviction_rate"]);
        assert!(table.contains("shape=4n workload=tiny faults=none params=default"));
        assert!(table.contains("YARN-CS"));
        assert!(table.contains("120.0"));
        assert!(table.contains("±"));
    }

    #[test]
    fn market_label_skips_serialization_like_policy() {
        // a market-free cell keeps the historical wire encoding...
        let r = report();
        assert!(!r.to_json().contains("\"market\""));
        assert_eq!(r.cells[0].market_label(), "none");
        // ...and a market cell names its axis point in JSON and table
        let mut market = report();
        market.cells[0].market = Some("shock3x".to_string());
        assert!(market.to_json().contains("\"market\":\"shock3x\""));
        let table = market.render_table(&["hp_mean_jct_s"]);
        assert!(table.contains(" market=shock3x "), "{table}");
        let plain = report().render_table(&["hp_mean_jct_s"]);
        assert!(!plain.contains("market="), "{plain}");
    }

    #[test]
    fn cell_at_distinguishes_fault_axis() {
        let mut r = report();
        r.cells.push(CellSummary::new(
            "YARN-CS",
            "4n",
            "tiny",
            "churny",
            "none",
            "naive",
            "default",
            &[1, 2],
            vec![summary(200.0), summary(260.0)],
        ));
        assert_eq!(
            r.cell_at("YARN-CS", "4n", "tiny", "churny", "default")
                .unwrap()
                .median("hp_mean_jct_s"),
            230.0
        );
        assert_eq!(
            r.cell_at("YARN-CS", "4n", "tiny", "none", "default")
                .unwrap()
                .median("hp_mean_jct_s"),
            120.0
        );
        // the fault-agnostic lookup returns the first declared cell
        assert_eq!(
            r.cell("YARN-CS", "4n", "tiny", "default").unwrap().faults,
            "none"
        );
    }
}
