//! Declarative scenario grids: the cross-product of scheduler
//! constructors, cluster shapes, workload sources, parameter overrides and
//! seeds, plus the deterministic parallel executor that turns a grid into
//! an aggregated [`GridReport`](crate::GridReport).

use std::sync::Arc;

use gfs_cluster::{Cluster, Scheduler};
use gfs_sched::{Chronus, Fgd, Lyra, YarnCs};
use gfs_sim::{RunSummary, SimConfig, SimReport};
use gfs_trace::{WorkloadConfig, WorkloadGenerator};
use gfs_types::{GfsParams, GpuModel, TaskSpec};

use crate::pool::{run_indexed, Threads};
use crate::report::{CellSummary, GridReport};

/// A named cluster geometry a grid cell simulates.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterShape {
    /// Display label ("72n" / "287n" …).
    pub name: String,
    /// Node count.
    pub nodes: u32,
    /// Cards per node.
    pub gpus_per_node: u32,
    /// GPU model of every node.
    pub model: GpuModel,
}

impl ClusterShape {
    /// A homogeneous A100 shape named after its node count.
    #[must_use]
    pub fn a100(nodes: u32, gpus_per_node: u32) -> Self {
        ClusterShape {
            name: format!("{nodes}n"),
            nodes,
            gpus_per_node,
            model: GpuModel::A100,
        }
    }

    /// Overrides the display label.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Total cards of the shape.
    #[must_use]
    pub fn capacity_gpus(&self) -> f64 {
        f64::from(self.nodes * self.gpus_per_node)
    }

    /// Materialises the cluster.
    #[must_use]
    pub fn build(&self) -> Cluster {
        Cluster::homogeneous(self.nodes, self.model, self.gpus_per_node)
    }
}

/// Everything a scheduler constructor may condition on: the cell's shape,
/// parameter override and the run's seed.
#[derive(Debug, Clone)]
pub struct RunContext<'a> {
    /// Cluster shape of the cell.
    pub shape: &'a ClusterShape,
    /// Workload-axis label of the cell.
    pub workload: &'a str,
    /// Parameter override of the cell.
    pub params: &'a GfsParams,
    /// Replication seed of this run.
    pub seed: u64,
}

type SchedulerFactory = dyn Fn(&RunContext<'_>) -> Box<dyn Scheduler> + Send + Sync;

/// A named scheduler constructor — one point on the grid's scheduler axis.
///
/// The factory runs once per grid run *inside* the worker thread, so
/// expensive constructors (e.g. training a GFS demand estimator) neither
/// block the submitting thread nor share state between runs.
#[derive(Clone)]
pub struct SchedulerSpec {
    name: String,
    build: Arc<SchedulerFactory>,
}

impl std::fmt::Debug for SchedulerSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SchedulerSpec({})", self.name)
    }
}

impl SchedulerSpec {
    /// Wraps a constructor closure under a display name.
    pub fn new(
        name: impl Into<String>,
        build: impl Fn(&RunContext<'_>) -> Box<dyn Scheduler> + Send + Sync + 'static,
    ) -> Self {
        SchedulerSpec {
            name: name.into(),
            build: Arc::new(build),
        }
    }

    /// The YARN-CS baseline.
    #[must_use]
    pub fn yarn_cs() -> Self {
        SchedulerSpec::new("YARN-CS", |_| Box::new(YarnCs::new()))
    }

    /// The Chronus baseline.
    #[must_use]
    pub fn chronus() -> Self {
        SchedulerSpec::new("Chronus", |_| Box::new(Chronus::new()))
    }

    /// The Lyra baseline.
    #[must_use]
    pub fn lyra() -> Self {
        SchedulerSpec::new("Lyra", |_| Box::new(Lyra::new()))
    }

    /// The FGD baseline.
    #[must_use]
    pub fn fgd() -> Self {
        SchedulerSpec::new("FGD", |_| Box::new(Fgd::new()))
    }

    /// The four baseline schedulers of §4.4, in paper order.
    #[must_use]
    pub fn baselines() -> Vec<Self> {
        vec![
            SchedulerSpec::yarn_cs(),
            SchedulerSpec::chronus(),
            SchedulerSpec::lyra(),
            SchedulerSpec::fgd(),
        ]
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds the scheduler for one run.
    #[must_use]
    pub fn build(&self, ctx: &RunContext<'_>) -> Box<dyn Scheduler> {
        (self.build)(ctx)
    }
}

type WorkloadFactory = dyn Fn(&ClusterShape, u64) -> Vec<TaskSpec> + Send + Sync;

/// A named task-trace source — one point on the grid's workload axis.
#[derive(Clone)]
pub struct WorkloadAxis {
    name: String,
    build: Arc<WorkloadFactory>,
}

impl std::fmt::Debug for WorkloadAxis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkloadAxis({})", self.name)
    }
}

impl WorkloadAxis {
    /// Wraps an arbitrary trace source (hand-built traces, replayed logs…).
    pub fn new(
        name: impl Into<String>,
        build: impl Fn(&ClusterShape, u64) -> Vec<TaskSpec> + Send + Sync + 'static,
    ) -> Self {
        WorkloadAxis {
            name: name.into(),
            build: Arc::new(build),
        }
    }

    /// A generated workload: `base` with its seed replaced by the run seed.
    #[must_use]
    pub fn generated(name: impl Into<String>, base: WorkloadConfig) -> Self {
        WorkloadAxis::new(name, move |_, seed| {
            WorkloadGenerator::new(WorkloadConfig { seed, ..base.clone() }).generate()
        })
    }

    /// A generated workload whose task counts are calibrated per shape so
    /// HP/spot submissions approximate the given fractions of cluster
    /// capacity over the horizon (see [`WorkloadConfig::sized_for`]).
    #[must_use]
    pub fn generated_sized(
        name: impl Into<String>,
        base: WorkloadConfig,
        hp_load: f64,
        spot_load: f64,
    ) -> Self {
        WorkloadAxis::new(name, move |shape, seed| {
            let cfg = WorkloadConfig { seed, ..base.clone() }.sized_for(
                shape.capacity_gpus(),
                hp_load,
                spot_load,
            );
            WorkloadGenerator::new(cfg).generate()
        })
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds the trace for one run.
    #[must_use]
    pub fn build(&self, shape: &ClusterShape, seed: u64) -> Vec<TaskSpec> {
        (self.build)(shape, seed)
    }
}

/// A named [`GfsParams`] override — one point on the grid's parameter axis.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamsAxis {
    /// Display label ("default", "H=4", …).
    pub name: String,
    /// The parameter set cells on this axis point use.
    pub params: GfsParams,
}

impl ParamsAxis {
    /// The Table 4 defaults under the label `default`.
    #[must_use]
    pub fn default_params() -> Self {
        ParamsAxis {
            name: "default".to_string(),
            params: GfsParams::default(),
        }
    }
}

/// One fully specified run: a grid cell at one seed.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Index of the owning cell in grid enumeration order.
    pub cell: usize,
    /// Scheduler constructor.
    pub scheduler: SchedulerSpec,
    /// Cluster geometry.
    pub shape: ClusterShape,
    /// Trace source.
    pub workload: WorkloadAxis,
    /// Parameter override.
    pub params: ParamsAxis,
    /// Replication seed.
    pub seed: u64,
}

impl Scenario {
    /// Executes the run: generate the trace, build cluster and scheduler,
    /// simulate. Self-contained and deterministic given the scenario.
    #[must_use]
    pub fn execute(&self, sim: &SimConfig) -> SimReport {
        let ctx = RunContext {
            shape: &self.shape,
            workload: self.workload.name(),
            params: &self.params.params,
            seed: self.seed,
        };
        let tasks = self.workload.build(&self.shape, self.seed);
        let mut scheduler = self.scheduler.build(&ctx);
        gfs_sim::run(self.shape.build(), scheduler.as_mut(), tasks, sim)
    }
}

/// Everything a grid run produces: the serialisable aggregated report plus
/// (when requested) the raw per-run [`SimReport`]s, `[cell][seed]`.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// Aggregated per-cell summaries (serialisable, thread-count
    /// independent).
    pub report: GridReport,
    /// Raw reports per cell per seed; empty unless
    /// [`Grid::keep_reports`] was set.
    pub sim_reports: Vec<Vec<SimReport>>,
}

/// The declarative experiment grid (C-BUILDER).
///
/// Axes default to "empty"; [`Grid::run`] fills the parameter axis with
/// the Table 4 defaults and the seed axis with `[1]` when unset, and
/// panics if schedulers, shapes or workloads are missing.
#[derive(Debug, Clone, Default)]
pub struct Grid {
    schedulers: Vec<SchedulerSpec>,
    shapes: Vec<ClusterShape>,
    workloads: Vec<WorkloadAxis>,
    params: Vec<ParamsAxis>,
    seeds: Vec<u64>,
    sim: Option<SimConfig>,
    keep_reports: bool,
}

impl Grid {
    /// An empty grid.
    #[must_use]
    pub fn new() -> Self {
        Grid::default()
    }

    /// Adds scheduler constructors.
    #[must_use]
    pub fn schedulers(mut self, specs: impl IntoIterator<Item = SchedulerSpec>) -> Self {
        self.schedulers.extend(specs);
        self
    }

    /// Adds one scheduler constructor.
    #[must_use]
    pub fn scheduler(mut self, spec: SchedulerSpec) -> Self {
        self.schedulers.push(spec);
        self
    }

    /// Adds cluster shapes.
    #[must_use]
    pub fn shapes(mut self, shapes: impl IntoIterator<Item = ClusterShape>) -> Self {
        self.shapes.extend(shapes);
        self
    }

    /// Adds one cluster shape.
    #[must_use]
    pub fn shape(mut self, shape: ClusterShape) -> Self {
        self.shapes.push(shape);
        self
    }

    /// Adds workload sources.
    #[must_use]
    pub fn workloads(mut self, axes: impl IntoIterator<Item = WorkloadAxis>) -> Self {
        self.workloads.extend(axes);
        self
    }

    /// Adds one workload source.
    #[must_use]
    pub fn workload(mut self, axis: WorkloadAxis) -> Self {
        self.workloads.push(axis);
        self
    }

    /// Adds parameter overrides.
    #[must_use]
    pub fn params(mut self, axes: impl IntoIterator<Item = ParamsAxis>) -> Self {
        self.params.extend(axes);
        self
    }

    /// Sets the replication seeds (each cell runs once per seed).
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Sets the simulation configuration shared by every run.
    #[must_use]
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.sim = Some(sim);
        self
    }

    /// Keep every raw [`SimReport`] in the result (memory-heavy; off by
    /// default).
    #[must_use]
    pub fn keep_reports(mut self, keep: bool) -> Self {
        self.keep_reports = keep;
        self
    }

    fn params_axis(&self) -> Vec<ParamsAxis> {
        if self.params.is_empty() {
            vec![ParamsAxis::default_params()]
        } else {
            self.params.clone()
        }
    }

    fn seed_axis(&self) -> Vec<u64> {
        if self.seeds.is_empty() {
            vec![1]
        } else {
            self.seeds.clone()
        }
    }

    /// Enumerates every run of the grid in deterministic order: cells
    /// nest (shape → workload → params → scheduler), each replicated over
    /// all seeds.
    ///
    /// # Panics
    ///
    /// Panics when the scheduler, shape or workload axis is empty.
    #[must_use]
    pub fn scenarios(&self) -> Vec<Scenario> {
        assert!(!self.schedulers.is_empty(), "grid needs at least one scheduler");
        assert!(!self.shapes.is_empty(), "grid needs at least one cluster shape");
        assert!(!self.workloads.is_empty(), "grid needs at least one workload");
        let params = self.params_axis();
        let seeds = self.seed_axis();
        let mut out = Vec::new();
        let mut cell = 0;
        for shape in &self.shapes {
            for workload in &self.workloads {
                for p in &params {
                    for scheduler in &self.schedulers {
                        for &seed in &seeds {
                            out.push(Scenario {
                                cell,
                                scheduler: scheduler.clone(),
                                shape: shape.clone(),
                                workload: workload.clone(),
                                params: p.clone(),
                                seed,
                            });
                        }
                        cell += 1;
                    }
                }
            }
        }
        out
    }

    /// Number of cells (scenarios ÷ seeds).
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.schedulers.len() * self.shapes.len() * self.workloads.len() * self.params_axis().len()
    }

    /// Executes the whole grid on `threads` workers and aggregates each
    /// cell across its seeds.
    ///
    /// Results are collected by run index — never by completion order — so
    /// the report is byte-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics when an axis is empty (see [`Grid::scenarios`]) or a worker
    /// panics.
    #[must_use]
    pub fn run(&self, threads: Threads) -> GridResult {
        let scenarios = self.scenarios();
        let sim = self.sim.clone().unwrap_or_default();
        let keep = self.keep_reports;
        let outputs: Vec<(RunSummary, Option<SimReport>)> =
            run_indexed(scenarios.len(), threads, |i| {
                let report = scenarios[i].execute(&sim);
                let summary = report.summary();
                (summary, keep.then_some(report))
            });

        let seeds = self.seed_axis();
        let per_cell = seeds.len();
        let mut cells = Vec::with_capacity(self.cell_count());
        let mut sim_reports = Vec::new();
        for (cell_idx, chunk) in outputs.chunks(per_cell).enumerate() {
            let first = &scenarios[cell_idx * per_cell];
            let runs: Vec<RunSummary> = chunk.iter().map(|(s, _)| s.clone()).collect();
            cells.push(CellSummary::new(
                first.scheduler.name(),
                &first.shape.name,
                first.workload.name(),
                &first.params.name,
                &seeds,
                runs,
            ));
            if keep {
                sim_reports.push(
                    chunk
                        .iter()
                        .map(|(_, r)| r.clone().expect("kept report present"))
                        .collect(),
                );
            }
        }
        GridResult {
            report: GridReport { cells },
            sim_reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs_types::HOUR;

    fn tiny_workload() -> WorkloadAxis {
        WorkloadAxis::generated(
            "tiny",
            WorkloadConfig {
                hp_tasks: 20,
                spot_tasks: 8,
                horizon_secs: 6 * HOUR,
                ..WorkloadConfig::default()
            },
        )
    }

    fn tiny_grid() -> Grid {
        Grid::new()
            .schedulers([SchedulerSpec::yarn_cs(), SchedulerSpec::fgd()])
            .shape(ClusterShape::a100(4, 8))
            .workload(tiny_workload())
            .seeds([1, 2, 3])
            .sim(SimConfig {
                max_time_secs: Some(48 * HOUR),
                ..SimConfig::default()
            })
    }

    #[test]
    fn enumeration_is_cells_times_seeds() {
        let grid = tiny_grid();
        let scenarios = grid.scenarios();
        assert_eq!(grid.cell_count(), 2);
        assert_eq!(scenarios.len(), 6);
        // seeds vary fastest, then schedulers
        assert_eq!(scenarios[0].scheduler.name(), "YARN-CS");
        assert_eq!(scenarios[0].seed, 1);
        assert_eq!(scenarios[2].seed, 3);
        assert_eq!(scenarios[3].scheduler.name(), "FGD");
        assert_eq!(scenarios[3].cell, 1);
    }

    #[test]
    fn parallel_equals_serial() {
        let grid = tiny_grid();
        let serial = grid.run(Threads::Fixed(1));
        let parallel = grid.run(Threads::Fixed(4));
        assert_eq!(
            serde_json::to_string(&serial.report).unwrap(),
            serde_json::to_string(&parallel.report).unwrap()
        );
    }

    #[test]
    fn kept_reports_align_with_cells() {
        let grid = tiny_grid().keep_reports(true);
        let result = grid.run(Threads::Fixed(2));
        assert_eq!(result.sim_reports.len(), 2);
        assert_eq!(result.sim_reports[0].len(), 3);
        assert_eq!(
            result.sim_reports[0][0].summary(),
            result.report.cells[0].runs[0]
        );
    }

    #[test]
    fn default_axes_fill_in() {
        let grid = Grid::new()
            .scheduler(SchedulerSpec::yarn_cs())
            .shape(ClusterShape::a100(2, 8))
            .workload(tiny_workload());
        let scenarios = grid.scenarios();
        assert_eq!(scenarios.len(), 1);
        assert_eq!(scenarios[0].seed, 1);
        assert_eq!(scenarios[0].params.name, "default");
    }

    #[test]
    #[should_panic(expected = "at least one scheduler")]
    fn empty_scheduler_axis_rejected() {
        let _ = Grid::new()
            .shape(ClusterShape::a100(2, 8))
            .workload(tiny_workload())
            .scenarios();
    }

    #[test]
    fn shape_helpers() {
        let s = ClusterShape::a100(16, 8).named("pool");
        assert_eq!(s.name, "pool");
        assert_eq!(s.capacity_gpus(), 128.0);
        assert_eq!(s.build().capacity(None), 128.0);
    }
}
